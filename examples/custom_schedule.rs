//! Implementing a *new* load-balancing schedule from the public API —
//! the composability claim of the paper's §2 ("be able to add new
//! load-balancing algorithms"), demonstrated end to end.
//!
//! The schedule built here is **nonzero splitting** (Baxter's ModernGPU /
//! Dalton et al.): divide only the *atoms* evenly across threads
//! (ignoring tile boundaries in the split), then have each thread binary-
//! search the tile offsets once to find its starting tile. Compared to
//! merge-path it skips the boundary-items bookkeeping, at the price of
//! unbounded per-thread tile counts when many empty tiles cluster.
//!
//! Note what the example does **not** contain: any change to `loops`,
//! `simt`, or the SpMV computation. The schedule is ~40 lines against
//! public traits, and the kernel below consumes it exactly like the
//! built-ins.
//!
//! Run with: `cargo run --release --example custom_schedule`

use loops::ranges::{step_range, Charged, StepRange};
use loops::work::TileSet;
use loops::CsrTiles;
use simt::{GlobalMem, GpuSpec, LaneCtx, LaunchConfig};

/// Nonzero-splitting schedule: `atoms_per_thread` atoms per thread, tiles
/// recovered by one binary search per thread.
struct NonzeroSplit<'w, W> {
    work: &'w W,
    atoms_per_thread: usize,
}

impl<'w, W: TileSet> NonzeroSplit<'w, W> {
    fn new(work: &'w W, atoms_per_thread: usize) -> Self {
        Self {
            work,
            atoms_per_thread,
        }
    }

    fn num_threads(&self) -> usize {
        self.work.num_atoms().div_ceil(self.atoms_per_thread).max(1)
    }

    /// This thread's atom range plus its starting tile.
    fn assignment(&self, lane: &LaneCtx<'_>) -> (std::ops::Range<usize>, usize) {
        let a0 = (lane.global_thread_id() as usize * self.atoms_per_thread)
            .min(self.work.num_atoms());
        let a1 = (a0 + self.atoms_per_thread).min(self.work.num_atoms());
        // One global binary search over the tile offsets: find the tile
        // containing atom a0 (first tile whose end exceeds a0).
        lane.charge_search(self.work.num_tiles() as u64 + 1);
        let (mut lo, mut hi) = (0usize, self.work.num_tiles());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.work.tile_offset(mid + 1) <= a0 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (a0..a1, lo)
    }

    /// Charged range over an atom span (reusing the framework's ranges).
    fn atoms<'l, 'm>(
        &self,
        span: std::ops::Range<usize>,
        lane: &'l LaneCtx<'m>,
    ) -> Charged<'l, 'm, StepRange> {
        Charged::atoms(step_range(span.start, span.end, 1), lane)
    }
}

fn main() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(100_000, 100_000, 1_200_000, 1.8, 23);
    let x = sparse::dense::test_vector(a.cols());
    let work = CsrTiles::new(&a);
    let sched = NonzeroSplit::new(&work, 8);

    let mut y = vec![0.0f32; a.rows()];
    let (values, col_indices) = (a.values(), a.col_indices());
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads(
            &spec,
            LaunchConfig::over_threads(sched.num_threads() as u64, 256),
            |t| {
                let (span, mut tile) = sched.assignment(t);
                if span.is_empty() {
                    return;
                }
                let mut sum = 0.0f32;
                for nz in sched.atoms(span.clone(), t) {
                    // Advance over tile boundaries (empty tiles included).
                    while nz >= work.tile_offset(tile + 1) {
                        flush(&gy, t, tile, &mut sum, &work, &span);
                        tile += 1;
                    }
                    sum += values[nz] * x[col_indices[nz] as usize];
                }
                flush(&gy, t, tile, &mut sum, &work, &span);
            },
        )
        .expect("launch")
    };

    let want = a.spmv_ref(&x);
    let err = kernels::spmv::max_rel_error(&y, &want);
    println!(
        "nonzero-split SpMV: {} nnz in {:.4} ms (simulated), max rel err {err:.2e}",
        a.nnz(),
        report.elapsed_ms()
    );
    assert!(err < 2e-3);

    // Compare with the built-ins — the custom schedule slots right into
    // the same landscape.
    for kind in [
        loops::schedule::ScheduleKind::MergePath,
        loops::schedule::ScheduleKind::ThreadMapped,
    ] {
        let run = kernels::spmv(&spec, &a, &x, kind).unwrap();
        println!("{:<18} {:.4} ms", kind.to_string(), run.report.elapsed_ms());
    }
}

/// Write or atomically combine a finished tile's partial sum.
fn flush<W: TileSet>(
    gy: &GlobalMem<'_, f32>,
    t: &LaneCtx<'_>,
    tile: usize,
    sum: &mut f32,
    work: &W,
    span: &std::ops::Range<usize>,
) {
    if tile >= work.num_tiles() {
        return;
    }
    let r = work.tile_atoms(tile);
    t.charge_tile();
    if span.start <= r.start && r.end <= span.end {
        gy.store(tile, *sum); // whole tile owned by this thread
        t.write_bytes(4);
    } else if *sum != 0.0 {
        gy.fetch_add(tile, *sum); // straddles a thread boundary
        t.charge_atomic();
    }
    *sum = 0.0;
}
