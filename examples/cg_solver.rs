//! Conjugate Gradient on a grid Laplacian — the downstream-user workload:
//! a solver that owns its control flow and composes the framework's
//! load-balanced SpMV and device reductions inside it (the paper's §2
//! composability goal, exercised end to end).
//!
//! Run with: `cargo run --release --example cg_solver`

use kernels::cg::{cg, spd_laplacian};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let spec = GpuSpec::v100();
    let (nx, ny) = (96usize, 96usize);
    let a = spd_laplacian(nx, ny);
    println!(
        "system: {}x{} grid Laplacian (+0.5 shift) → {} unknowns, {} nnz",
        nx,
        ny,
        a.rows(),
        a.nnz()
    );

    // Manufactured solution: solve A x = b with known x*.
    let x_true = sparse::dense::test_vector(a.cols());
    let b = a.spmv_ref(&x_true);

    println!(
        "\n{:<16} {:>11} {:>14} {:>14} {:>12}",
        "schedule", "iterations", "residual", "max |x-x*|", "elapsed (ms)"
    );
    for kind in [
        ScheduleKind::MergePath,
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::Lrb,
    ] {
        let run = cg(&spec, &a, &b, kind, 1e-8, 5_000).expect("solve");
        let max_err = run
            .x
            .iter()
            .zip(&x_true)
            .map(|(g, w)| (g - w).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:<16} {:>11} {:>14.3e} {:>14.3e} {:>12.3}",
            kind.to_string(),
            run.iterations,
            run.residual,
            max_err,
            run.report.elapsed_ms()
        );
        assert!(max_err < 1e-2);
    }
    println!("\nSame solver, same convergence — only the SpMV's load-balancing changed.");
}
