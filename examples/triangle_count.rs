//! Triangle counting under different load-balancing schedules — the
//! workload Logarithmic Radix Binning (§7) was designed for: per-edge
//! intersection costs vary over orders of magnitude.
//!
//! Run with: `cargo run --release --example triangle_count`

use kernels::triangle::{forward_orientation, triangle_count, triangle_count_ref};
use kernels::Graph;
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    // Symmetrized RMAT graph: hubby, triangle-rich.
    let adj = sparse::gen::rmat(12, 12, (0.57, 0.19, 0.19), 55);
    let t = sparse::convert::transpose(&adj);
    let mut coo = sparse::Coo::empty(adj.rows(), adj.cols());
    for (r, c, v) in adj.iter().chain(t.iter()) {
        if r != c {
            coo.push(r, c, v.abs()).unwrap();
        }
    }
    coo.canonicalize();
    let g = Graph::new(sparse::convert::coo_to_csr(&coo));
    let dag = forward_orientation(&g);
    let fwd_stats = sparse::RowStats::of(&dag);
    println!(
        "graph: {} vertices, {} undirected edges; forward out-degrees: mean {:.1}, max {} (CV {:.2})",
        g.num_vertices(),
        g.num_edges() / 2,
        fwd_stats.mean,
        fwd_stats.max,
        fwd_stats.cv
    );

    let want = triangle_count_ref(&g);
    println!("reference count: {want} triangles\n");

    let spec = GpuSpec::v100();
    println!("{:<18} {:>13} {:>12}", "schedule", "elapsed (ms)", "count");
    for kind in [
        ScheduleKind::ThreadMapped,
        ScheduleKind::MergePath,
        ScheduleKind::WarpMapped,
        ScheduleKind::Lrb,
        ScheduleKind::WorkQueue(8),
    ] {
        let run = triangle_count(&spec, &g, kind).expect("launch");
        println!(
            "{:<18} {:>13.4} {:>12}",
            kind.to_string(),
            run.report.elapsed_ms(),
            run.triangles
        );
        assert_eq!(run.triangles, want);
    }
    println!("\nEvery schedule returns the same count; only the mapping of wedges to threads changed.");
}
