//! PageRank — power iteration where every step is one load-balanced SpMV.
//!
//! Demonstrates the reuse chain end to end: graph → normalized transpose
//! (sparse substrate) → SpMV under a pluggable schedule (the paper's
//! abstraction) → application-level convergence loop (user code).
//!
//! Run with: `cargo run --release --example pagerank`

use kernels::{pagerank, Graph};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let spec = GpuSpec::v100();
    let g = Graph::from_generator(sparse::gen::rmat(13, 16, (0.57, 0.19, 0.19), 99));
    println!(
        "RMAT graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let want = pagerank::pagerank_ref(&g, 1e-9, 300);
    println!("\n{:<18} {:>11} {:>13} {:>12}", "schedule", "iterations", "elapsed (ms)", "max |Δrank|");
    for kind in [
        ScheduleKind::MergePath,
        ScheduleKind::WarpMapped,
        ScheduleKind::WorkQueue(16),
    ] {
        let run = pagerank::pagerank(&spec, &g, kind, 1e-7, 200).expect("launch");
        let max_err = run
            .rank
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:<18} {:>11} {:>13.4} {:>12.2e}",
            kind.to_string(),
            run.iterations,
            run.report.elapsed_ms(),
            max_err
        );
        assert!(max_err < 1e-4);
    }

    // Top-5 ranked vertices, with degrees for context.
    let run = pagerank::pagerank(&spec, &g, ScheduleKind::MergePath, 1e-7, 200).unwrap();
    let mut order: Vec<usize> = (0..g.num_vertices()).collect();
    order.sort_by(|&a, &b| run.rank[b].total_cmp(&run.rank[a]));
    println!("\ntop vertices by rank:");
    for &v in order.iter().take(5) {
        println!(
            "  v{v:<8} rank {:.5}   out-degree {}",
            run.rank[v],
            g.degree(v)
        );
    }
}
