//! Single-Source Shortest Path (paper §5.3, Listing 5).
//!
//! The point of this example: the *same* load-balancing schedules that
//! power SpMV drive a data-centric graph traversal, untouched. Runs SSSP
//! on an RMAT graph under three schedules, validates against Dijkstra, and
//! shows per-schedule totals.
//!
//! Run with: `cargo run --release --example sssp`

use kernels::{reference, Graph};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let spec = GpuSpec::v100();
    // 2^14 vertices, ~16 edges each, Graph500 skew: hubby frontiers.
    let g = Graph::from_generator(sparse::gen::rmat(14, 16, (0.57, 0.19, 0.19), 7));
    let src = 0usize;
    println!(
        "RMAT graph: {} vertices, {} edges; source {src}",
        g.num_vertices(),
        g.num_edges()
    );

    let want = reference::sssp_ref(g.adjacency(), src);
    let reachable = want.iter().filter(|d| d.is_finite()).count();
    println!("Dijkstra reference: {reachable} reachable vertices\n");

    println!(
        "{:<18} {:>11} {:>13} {:>10}",
        "schedule", "iterations", "elapsed (ms)", "errors"
    );
    for kind in [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::MergePath,
    ] {
        let run = kernels::sssp::sssp(&spec, &g, src, kind).expect("launch");
        let errors = run
            .dist
            .iter()
            .zip(&want)
            .filter(|(g, w)| {
                if w.is_infinite() {
                    g.is_finite()
                } else {
                    (*g - *w).abs() > 1e-3 * w.max(1.0)
                }
            })
            .count();
        println!(
            "{:<18} {:>11} {:>13.4} {:>10}",
            kind.to_string(),
            run.iterations,
            run.report.elapsed_ms(),
            errors
        );
        assert_eq!(errors, 0);
    }
    println!("\nAll schedules agree with Dijkstra — scheduling is fully decoupled from the algorithm.");
}
