//! Multi-tenant SpMV serving on a simulated two-GPU pool.
//!
//! Loads a corpus subset, generates 1000 Zipf-distributed open-loop
//! requests, and drives them through the `runtime` crate: per-device
//! streams, a plan cache keyed by matrix fingerprint, and a batcher that
//! fuses tiny SpMVs into block-diagonal launches. Prints the resulting
//! [`RuntimeReport`] and the throughput scaling of the 2-device pool
//! over a single device on the same request stream.
//!
//! Run with: `cargo run --release --example serve`

use std::sync::Arc;

use runtime::{zipf_workload, Runtime, RuntimeConfig, WorkloadSpec};
use simt::GpuSpec;
use sparse::Csr;

fn main() {
    // A deterministic corpus slice, size-capped so the functional
    // execution of a thousand requests stays fast.
    const MAX_NNZ: usize = 250_000;
    let matrices: Vec<Arc<Csr<f32>>> = sparse::corpus::corpus_subset(20)
        .iter()
        .filter(|s| s.approx_nnz() <= MAX_NNZ)
        .take(10)
        .map(|s| Arc::new(s.build()))
        .collect();
    println!(
        "corpus: {} matrices, {}..{} nonzeros",
        matrices.len(),
        matrices.iter().map(|a| a.nnz()).min().unwrap(),
        matrices.iter().map(|a| a.nnz()).max().unwrap()
    );

    // 1000 mixed requests: Zipf-skewed matrix popularity (a few tenants
    // dominate), exponential inter-arrival gaps tight enough to keep the
    // pool saturated rather than arrival-bound.
    let workload = WorkloadSpec {
        requests: 1_000,
        zipf_s: 1.1,
        mean_interarrival_ms: 0.001,
        seed: 42,
    };
    let requests = zipf_workload(&matrices, &workload);
    println!(
        "workload: {} requests, zipf s={}, mean gap {} ms\n",
        requests.len(),
        workload.zipf_s,
        workload.mean_interarrival_ms
    );

    // Serve the same stream on a 1-device and a 2-device pool of V100s.
    let serve_on = |devices: usize| {
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                devices,
                ..RuntimeConfig::default()
            },
        );
        rt.serve(&requests).expect("serve")
    };

    let solo = serve_on(1);
    let pool = serve_on(2);

    println!("=== 2x V100 pool ===");
    print!("{}", pool.report);

    let hit_rate = pool.report.cache.hit_rate();
    let scaling = pool.report.throughput_rps() / solo.report.throughput_rps();
    println!(
        "\n1 device: {:.0} req/s → 2 devices: {:.0} req/s ({scaling:.2}x throughput)",
        solo.report.throughput_rps(),
        pool.report.throughput_rps()
    );
    assert!(
        hit_rate > 0.8,
        "plan-cache hit rate {:.1}% should exceed 80%",
        hit_rate * 100.0
    );
    assert!(
        scaling >= 1.5,
        "2-device pool should deliver ≥1.5x throughput, got {scaling:.2}x"
    );
    println!("plan-cache hit rate {:.1}% (>80%), pool scaling {scaling:.2}x (≥1.5x)", hit_rate * 100.0);
}
