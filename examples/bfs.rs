//! Breadth-First Search on the load-balanced traversal kernel (§5.3).
//!
//! Shows per-level frontier growth on an RMAT graph and validates depths
//! against the sequential reference under two schedules.
//!
//! Run with: `cargo run --release --example bfs`

use kernels::{reference, Frontier, Graph};
use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let spec = GpuSpec::v100();
    let g = Graph::from_generator(sparse::gen::rmat(13, 16, (0.57, 0.19, 0.19), 17));
    let src = 0usize;
    println!(
        "RMAT graph: {} vertices, {} edges; BFS from {src}\n",
        g.num_vertices(),
        g.num_edges()
    );

    // Show the frontier profile once (it is schedule-independent).
    let want = reference::bfs_ref(g.adjacency(), src);
    let max_depth = want.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(0);
    println!("level  frontier size   incident edges");
    let mut frontier = Frontier::source(src);
    let mut level = 0u32;
    while !frontier.is_empty() {
        println!(
            "{:>5}  {:>13}   {:>14}",
            level,
            frontier.len(),
            frontier.work_size(&g)
        );
        let next: Vec<u32> = (0..g.num_vertices())
            .map(|v| u32::from(want[v] == level + 1))
            .collect();
        frontier = Frontier::from_flags(&next);
        level += 1;
        if level > max_depth {
            break;
        }
    }

    println!("\nschedule           elapsed (ms)   levels   correct");
    for kind in [ScheduleKind::MergePath, ScheduleKind::WarpMapped] {
        let run = kernels::bfs::bfs(&spec, &g, src, kind).expect("launch");
        let ok = run.depth == want;
        println!(
            "{:<18} {:>12.4} {:>8}   {}",
            kind.to_string(),
            run.report.elapsed_ms(),
            run.iterations,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok);
    }
}
