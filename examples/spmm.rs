//! SpMM: "a simple loop wrapped around SpMV" (paper §5.3, Listing 4).
//!
//! Multiplies a sparse power-law matrix by a dense matrix of 8 columns
//! under both per-thread schedules, validates against the reference, and
//! shows that cost scales with the added column loop — the rewrite Yang
//! et al. did by hand comes free once scheduling is decoupled.
//!
//! Run with: `cargo run --release --example spmm`

use kernels::reference::spmm_ref;
use loops::schedule::ScheduleKind;
use simt::GpuSpec;
use sparse::DenseMatrix;

fn main() {
    let spec = GpuSpec::v100();
    let a = sparse::gen::powerlaw(50_000, 40_000, 700_000, 1.9, 11);
    let b = DenseMatrix::from_fn(40_000, 8, |r, c| ((r + 13 * c) as f32).sin() * 0.5);
    println!(
        "A: {}x{} ({} nnz)   B: {}x{} dense",
        a.rows(),
        a.cols(),
        a.nnz(),
        b.rows(),
        b.cols()
    );

    let want = spmm_ref(&a, &b);
    for kind in [ScheduleKind::ThreadMapped, ScheduleKind::MergePath] {
        let run = kernels::spmm::spmm(&spec, &a, &b, kind).expect("launch");
        let mut max_err = 0.0f32;
        for r in 0..a.rows() {
            for j in 0..b.cols() {
                let (g, w) = (run.c.get(r, j), want.get(r, j));
                max_err = max_err.max((g - w).abs() / w.abs().max(1.0));
            }
        }
        println!(
            "{:<16} elapsed {:>9.4} ms   total work {:>12.0} units   max rel err {:.2e}",
            kind.to_string(),
            run.report.elapsed_ms(),
            run.report.timing.total_units,
            max_err
        );
        assert!(max_err < 2e-3);
    }

    // The cost of the extra loop: same matrix against 1 column vs 8.
    let b1 = DenseMatrix::from_fn(40_000, 1, |r, _| (r as f32).cos());
    let r1 = kernels::spmm::spmm(&spec, &a, &b1, ScheduleKind::MergePath).unwrap();
    let r8 = kernels::spmm::spmm(&spec, &a, &b, ScheduleKind::MergePath).unwrap();
    println!(
        "\nListing-4 loop scaling: 1 column → {:.0} units, 8 columns → {:.0} units ({:.1}x)",
        r1.report.timing.total_units,
        r8.report.timing.total_units,
        r8.report.timing.total_units / r1.report.timing.total_units
    );
}
