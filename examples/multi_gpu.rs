//! Multi-GPU SpMV — the paper's §8 future work ("load-balancing schedules
//! that span across the GPU boundary"), runnable.
//!
//! Partitions a skewed matrix across a simulated DGX node two ways — the
//! cross-device analogues of thread-mapped (equal rows) and merge-path
//! (equal nonzeros) — and shows the device-level imbalance each produces.
//!
//! Run with: `cargo run --release --example multi_gpu`

use kernels::spmv_multi::{partition_rows, spmv_multi, Partition};
use loops::schedule::ScheduleKind;
use simt::MultiGpuSpec;

fn main() {
    // Power-law matrix with its rows sorted heaviest-first, so the skew is
    // *positional*: the leading row block holds most of the work. (Real
    // matrices ordered by degree — web crawls, preprocessed graphs — look
    // exactly like this, and it is the worst case for equal-rows
    // partitioning.)
    let a = {
        let p = sparse::gen::powerlaw(800_000, 800_000, 12_000_000, 1.6, 7);
        let order = sparse::reorder::degree_sort(&p);
        sparse::reorder::permute_rows(&p, &order)
    };
    let x = sparse::dense::test_vector(a.cols());
    let want = a.spmv_ref(&x);
    println!(
        "matrix: {}x{}, {} nnz, row-length CV {:.2}",
        a.rows(),
        a.cols(),
        a.nnz(),
        sparse::RowStats::of(&a).cv
    );

    for n in [2u32, 4, 8] {
        let node = MultiGpuSpec::dgx_v100(n);
        println!("\n=== {n}x V100 over NVLink ===");
        for (label, p) in [
            ("row-blocks  (thread-mapped, device level)", Partition::RowBlocks),
            ("nnz-balanced (merge-path, device level)", Partition::NnzBalanced),
        ] {
            let run = spmv_multi(&node, &a, &x, ScheduleKind::MergePath, p).expect("launch");
            let err = kernels::spmv::max_rel_error(&run.y, &want);
            assert!(err < 2e-3);
            let shares: Vec<String> = partition_rows(&a, n, p)
                .windows(2)
                .map(|w| {
                    let nnz = a.row_offsets()[w[1]] - a.row_offsets()[w[0]];
                    format!("{:.0}%", 100.0 * nnz as f64 / a.nnz() as f64)
                })
                .collect();
            println!(
                "{label:<44} elapsed {:>8.3} ms   imbalance {:>5.2}   nnz shares [{}]",
                run.report.elapsed_ms,
                run.report.device_imbalance(),
                shares.join(", ")
            );
        }
    }
    println!("\nEqual-nonzeros partitioning is merge-path's insight applied across devices.");
}
