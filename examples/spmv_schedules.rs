//! Switching load-balancing schedules with one identifier (paper §6.2).
//!
//! Runs the same SpMV computation under all five framework schedules plus
//! both baselines on two matrices with opposite personalities — a regular
//! banded matrix and a power-law matrix with hub rows — and prints the
//! landscape. Watch thread-mapped flip from competitive to catastrophic.
//!
//! Run with: `cargo run --release --example spmv_schedules`

use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let spec = GpuSpec::v100();
    let cases = [
        ("banded (regular)", sparse::gen::banded(200_000, 4, 1)),
        (
            "power-law (hub rows)",
            sparse::gen::powerlaw(200_000, 200_000, 1_800_000, 1.7, 2),
        ),
    ];
    let schedules = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::BlockMapped,
        ScheduleKind::GroupMapped(64),
        ScheduleKind::MergePath,
    ];

    for (name, a) in &cases {
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        let stats = sparse::RowStats::of(a);
        println!(
            "\n=== {name}: {}x{}, {} nnz, row-length CV {:.2}, max/mean {:.1} ===",
            a.rows(),
            a.cols(),
            a.nnz(),
            stats.cv,
            stats.max_over_mean
        );
        println!(
            "{:<22} {:>12} {:>12} {:>10} {:>8}",
            "schedule", "elapsed (ms)", "compute (ms)", "SM util", "check"
        );
        for kind in schedules {
            // The entire schedule switch is this one enum value.
            let run = kernels::spmv(&spec, a, &x, kind).expect("launch");
            let err = kernels::spmv::max_rel_error(&run.y, &want);
            println!(
                "{:<22} {:>12.4} {:>12.4} {:>9.0}% {:>8}",
                kind.to_string(),
                run.report.elapsed_ms(),
                run.report.timing.compute_ms,
                run.report.timing.sm_utilization * 100.0,
                if err < 2e-3 { "ok" } else { "FAIL" }
            );
        }
        for (label, run) in [
            ("cub-like (fused)", baselines::cub_spmv(&spec, a, &x).unwrap()),
            ("cusparse-like", baselines::cusparse_spmv(&spec, a, &x).unwrap()),
        ] {
            println!(
                "{:<22} {:>12.4} {:>12.4} {:>9.0}% {:>8}",
                label,
                run.report.elapsed_ms(),
                run.report.timing.compute_ms,
                run.report.timing.sm_utilization * 100.0,
                "ok"
            );
        }
        let pick = loops::Heuristic::paper().select(a.rows(), a.cols(), a.nnz());
        println!("heuristic would pick: {pick}");
    }
}
