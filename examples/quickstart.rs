//! Quickstart — the artifact's sanity check (paper Appendix A.3.1).
//!
//! ```text
//! bin/loops.spmv.merge_path -m chesapeake.mtx --validate -v
//! ```
//!
//! Builds the chesapeake-like 39×39 corpus matrix, runs the framework's
//! merge-path SpMV on the simulated V100, validates against the CPU
//! reference, and prints the artifact's output format.
//!
//! Run with: `cargo run --release --example quickstart`

use loops::schedule::ScheduleKind;
use simt::GpuSpec;

fn main() {
    let spec = GpuSpec::v100();
    let a = sparse::corpus::chesapeake();
    let x = vec![1.0f32; a.cols()];

    let run = kernels::spmv(&spec, &a, &x, ScheduleKind::MergePath).expect("launch failed");

    // Validate against the sequential reference.
    let want = a.spmv_ref(&x);
    let errors = run
        .y
        .iter()
        .zip(&want)
        .filter(|(g, w)| (*g - *w).abs() > 1e-3 * w.abs().max(1.0))
        .count();

    // The artifact's expected output format:
    println!("Elapsed (ms): {:.6}", run.report.elapsed_ms());
    println!("Matrix: chesapeake.mtx");
    println!("Dimensions: {} x {} ({})", a.rows(), a.cols(), a.nnz());
    println!("Errors: {errors}");

    assert_eq!(errors, 0, "validation must pass");
    println!();
    println!(
        "(simulated {}: {} SMs, warp {}, {:.0} GB/s; schedule: {})",
        spec.name, spec.num_sms, spec.warp_size, spec.mem_bw_gbs, run.schedule
    );
}
