//! # gpu-loops — facade crate
//!
//! Rust reproduction of *"A Programming Model for GPU Load Balancing"*
//! (Osama, Porumbescu, Owens; PPoPP '23). This crate re-exports the whole
//! workspace under one roof:
//!
//! * [`simt`] — the SIMT GPU simulator substrate (grid/block/warp/group
//!   execution, cost model, timing).
//! * [`sparse`] — CSR/CSC/COO formats, MatrixMarket IO, generators, and
//!   the SuiteSparse surrogate corpus.
//! * [`loops`] — the paper's contribution: work atoms/tiles/tile sets,
//!   composable device ranges, and pluggable load-balancing schedules.
//! * [`kernels`] — applications built on the abstraction: SpMV, SpMM,
//!   SpGEMM, BFS, SSSP.
//! * [`baselines`] — CUB-like and cuSparse-like comparators.
//! * [`runtime`] — a multi-tenant serving runtime: device pool, plan
//!   cache, tiny-request batcher, and bounded backpressure queue.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the substitution
//! rationale (no physical GPU is used; everything runs on the simulator).

pub use baselines;
pub use kernels;
pub use loops;
pub use runtime;
pub use simt;
pub use sparse;
