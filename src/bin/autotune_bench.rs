//! Workspace-root alias for the autotuner ablation, so
//! `cargo run --release --bin autotune_bench` works without `-p bench`.
//! See [`bench::autotune`].

fn main() {
    let cli = bench::Cli::parse();
    bench::autotune::run(&cli).expect("autotune bench run");
}
