//! Workspace-root alias for the telemetry perf-regression gate, so
//! `cargo run --release --bin telemetry_gate` works without `-p bench`.
//! See [`bench::telemetry`].

fn main() {
    std::process::exit(bench::telemetry::gate_main(std::env::args().skip(1)));
}
