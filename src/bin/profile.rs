//! Workspace-root alias for the trace/profile experiment, so
//! `cargo run --release --bin profile` works without `-p bench`.
//! See [`bench::profile`].

fn main() {
    let cli = bench::Cli::parse();
    bench::profile::run(&cli).expect("profile run");
}
