//! Workspace-root alias for the format-axis ablation, so
//! `cargo run --release --bin format_ablation` works without `-p bench`.
//! See [`bench::format_ablation`].

fn main() {
    let cli = bench::Cli::parse();
    bench::format_ablation::run(&cli).expect("format ablation run");
}
