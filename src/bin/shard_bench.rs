//! Workspace-root alias for the sharded-serving scaling sweep, so
//! `cargo run --release --bin shard_bench` works without `-p bench`.
//! See [`bench::shardbench`].

fn main() {
    let cli = bench::Cli::parse();
    bench::shardbench::run(&cli).expect("shard bench run");
}
