//! The collector: a [`TraceSink`] that folds the event stream into a
//! windowed [`MetricsRegistry`].
//!
//! Attaching the collector is the *only* integration the instrumented
//! crates need: `simt`, `runtime`, and `shard` already deliver every
//! relevant fact as a [`TraceEvent`], and the existing sink contract
//! guarantees the hooks are bitwise invisible when no sink is attached.
//! The mapping:
//!
//! | event | series |
//! |---|---|
//! | `Kernel` span | `device_busy_ms{device}`, `kernels_total{device}` |
//! | `Block` span | `sm_busy_ms{device}`, `blocks_total{device}` |
//! | `Fault` | `faults_total{device,kind}` |
//! | `Request` phases | `requests_total`, `batch_joins_total`, `plan_cache_{hits,misses}_total`, `retries_total` |
//! | `Counter` samples | gauges `queue_depth`, `cache_occupancy`, `batcher_occupancy` |
//! | `Dispatch` | `dispatches_total`, `batched_dispatches_total`, histogram `dispatch_ms` |
//! | `TenantSample` | `tenant_requests_total{tenant}`, `tenant_outcomes_total{tenant,outcome}`, `tenant_deadline_miss_total{tenant}`, `{outcome}_total`, histogram `request_latency_ms` (global + per tenant) |
//! | `Tune` | `tune_{explores,promotes}_total` |
//! | `Shard` | `shard_routed_total{shard}`, `shard_halo_bytes_total{shard}`, `shard_merge_bytes_total{shard}`, `shard_rejects_total{shard}` |
//!
//! Spans are charged to the window containing their *start*; instants
//! to the window containing their timestamp. At [`finish`] the SLO
//! detectors run over the complete registry and each alert is forwarded
//! to the optional downstream sink as a [`TraceEvent::Alert`].
//!
//! [`finish`]: TelemetryCollector::finish

use std::sync::{Arc, Mutex};

use trace::{RequestPhase, ShardPhase, TenantOutcome, TraceEvent, TraceSink, TunePhase};

use crate::metrics::{labels, MetricsRegistry, NO_LABELS};
use crate::slo::{evaluate, Alert, SloPolicy};

/// Collector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Window width on the simulated clock, in milliseconds.
    pub window_ms: f64,
    /// Detector thresholds.
    pub slo: SloPolicy,
    /// SMs per device, used by the dashboard to turn `sm_busy_ms` into
    /// utilization (0 = unknown; busy milliseconds are shown raw).
    pub sms_per_device: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            window_ms: 10.0,
            slo: SloPolicy::default(),
            sms_per_device: 0,
        }
    }
}

/// Everything one instrumented run produced: the windowed registry,
/// the alerts the detectors raised over it, and the config they ran
/// under. The input to every exporter.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// The windowed series.
    pub registry: MetricsRegistry,
    /// Alerts in deterministic (window, detector, scope) order.
    pub alerts: Vec<Alert>,
    /// The config the collector ran under.
    pub config: TelemetryConfig,
}

/// The sink. Interior mutability is a `Mutex` for the same reason as
/// `trace::Recorder`: emission happens on the single-threaded
/// timing-resolution path, so the lock is uncontended.
#[derive(Debug)]
pub struct TelemetryCollector {
    config: TelemetryConfig,
    registry: Mutex<MetricsRegistry>,
    downstream: Mutex<Option<Arc<dyn TraceSink>>>,
}

impl Default for TelemetryCollector {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl TelemetryCollector {
    /// A collector with the given windowing and SLO policy.
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            config,
            registry: Mutex::new(MetricsRegistry::new(config.window_ms)),
            downstream: Mutex::new(None),
        }
    }

    /// Forward detector alerts to `sink` (as [`TraceEvent::Alert`]s)
    /// when [`finish`](Self::finish) runs — typically a
    /// [`trace::Recorder`] so alerts appear on the exported timeline.
    pub fn set_downstream(&self, sink: Arc<dyn TraceSink>) {
        *self.downstream.lock().expect("collector poisoned") = Some(sink);
    }

    /// Run the SLO detectors over everything collected so far, forward
    /// each alert downstream, and return the snapshot.
    pub fn finish(&self) -> TelemetrySnapshot {
        let registry = self.registry.lock().expect("collector poisoned").clone();
        let alerts = evaluate(&registry, &self.config.slo);
        if let Some(sink) = self.downstream.lock().expect("collector poisoned").as_ref() {
            for a in &alerts {
                sink.event(&a.to_event());
            }
        }
        TelemetrySnapshot {
            registry,
            alerts,
            config: self.config,
        }
    }
}

fn device_label(device: u32) -> String {
    labels(&[("device", &device.to_string())])
}

fn tenant_label(tenant: u32) -> String {
    labels(&[("tenant", &tenant.to_string())])
}

impl TraceSink for TelemetryCollector {
    fn event(&self, ev: &TraceEvent) {
        let mut reg = self.registry.lock().expect("collector poisoned");
        match *ev {
            TraceEvent::Kernel {
                device,
                start_ms,
                end_ms,
                ..
            } => {
                let l = device_label(device);
                reg.counter_add("device_busy_ms", &l, start_ms, (end_ms - start_ms).max(0.0));
                reg.counter_add("kernels_total", &l, start_ms, 1.0);
            }
            TraceEvent::Block {
                device,
                start_ms,
                end_ms,
                ..
            } => {
                let l = device_label(device);
                reg.counter_add("sm_busy_ms", &l, start_ms, (end_ms - start_ms).max(0.0));
                reg.counter_add("blocks_total", &l, start_ms, 1.0);
            }
            TraceEvent::Fault {
                device,
                kind,
                ts_ms,
                ..
            } => {
                let l = labels(&[("device", &device.to_string()), ("kind", kind.name())]);
                reg.counter_add("faults_total", &l, ts_ms, 1.0);
            }
            TraceEvent::Request { phase, ts_ms, .. } => {
                let name = match phase {
                    RequestPhase::Enqueue => "requests_total",
                    RequestPhase::BatchJoin => "batch_joins_total",
                    RequestPhase::CacheHit => "plan_cache_hits_total",
                    RequestPhase::CacheMiss => "plan_cache_misses_total",
                    RequestPhase::Retry => "retries_total",
                    // Terminal outcomes are charged per tenant through
                    // `TenantSample`; counting them here too would
                    // double-book.
                    RequestPhase::Reject
                    | RequestPhase::DeadlineMiss
                    | RequestPhase::Complete => return,
                };
                reg.counter_add(name, NO_LABELS, ts_ms, 1.0);
            }
            TraceEvent::Counter {
                counter,
                ts_ms,
                value,
            } => {
                reg.gauge_set(counter.name(), NO_LABELS, ts_ms, value);
            }
            TraceEvent::Dispatch {
                start_ms,
                end_ms,
                batched,
                ..
            } => {
                reg.counter_add("dispatches_total", NO_LABELS, start_ms, 1.0);
                if batched {
                    reg.counter_add("batched_dispatches_total", NO_LABELS, start_ms, 1.0);
                }
                reg.hist_record("dispatch_ms", NO_LABELS, start_ms, (end_ms - start_ms).max(0.0));
            }
            TraceEvent::TenantSample {
                tenant,
                ts_ms,
                latency_ms,
                outcome,
            } => {
                let tl = tenant_label(tenant);
                reg.counter_add("tenant_requests_total", &tl, ts_ms, 1.0);
                let ol = labels(&[
                    ("tenant", &tenant.to_string()),
                    ("outcome", outcome.name()),
                ]);
                reg.counter_add("tenant_outcomes_total", &ol, ts_ms, 1.0);
                match outcome {
                    TenantOutcome::Served => {
                        reg.counter_add("served_total", NO_LABELS, ts_ms, 1.0);
                        reg.hist_record("request_latency_ms", NO_LABELS, ts_ms, latency_ms);
                        reg.hist_record("request_latency_ms", &tl, ts_ms, latency_ms);
                    }
                    TenantOutcome::Rejected => {
                        reg.counter_add("rejected_total", NO_LABELS, ts_ms, 1.0);
                    }
                    TenantOutcome::DeadlineMiss => {
                        reg.counter_add("deadline_miss_total", NO_LABELS, ts_ms, 1.0);
                        reg.counter_add("tenant_deadline_miss_total", &tl, ts_ms, 1.0);
                    }
                    TenantOutcome::Failed => {
                        reg.counter_add("failed_total", NO_LABELS, ts_ms, 1.0);
                    }
                }
            }
            TraceEvent::Tune { phase, ts_ms, .. } => {
                let name = match phase {
                    TunePhase::Explore => "tune_explores_total",
                    TunePhase::Promote => "tune_promotes_total",
                };
                reg.counter_add(name, NO_LABELS, ts_ms, 1.0);
            }
            TraceEvent::Shard {
                shard,
                phase,
                ts_ms,
                value,
            } => {
                let l = labels(&[("shard", &shard.to_string())]);
                match phase {
                    ShardPhase::Route => reg.counter_add("shard_routed_total", &l, ts_ms, 1.0),
                    ShardPhase::HaloExchange => {
                        reg.counter_add("shard_halo_bytes_total", &l, ts_ms, value);
                    }
                    ShardPhase::Merge => {
                        reg.counter_add("shard_merge_bytes_total", &l, ts_ms, value);
                    }
                    ShardPhase::Reject => reg.counter_add("shard_rejects_total", &l, ts_ms, 1.0),
                }
            }
            // Warp statistics are too fine-grained for windowed series;
            // spans and stream ops carry no windowed fact the kernel
            // span doesn't; alerts are the collector's *output*.
            TraceEvent::Warp { .. }
            | TraceEvent::StreamOp { .. }
            | TraceEvent::RequestSpan { .. }
            | TraceEvent::Alert { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Recorder;

    #[test]
    fn request_phases_map_to_counters() {
        let c = TelemetryCollector::default();
        for (phase, _) in [
            (RequestPhase::Enqueue, "requests_total"),
            (RequestPhase::CacheHit, "plan_cache_hits_total"),
            (RequestPhase::CacheMiss, "plan_cache_misses_total"),
            (RequestPhase::Retry, "retries_total"),
        ] {
            c.event(&TraceEvent::Request {
                id: 1,
                phase,
                ts_ms: 1.0,
            });
        }
        let snap = c.finish();
        for name in [
            "requests_total",
            "plan_cache_hits_total",
            "plan_cache_misses_total",
            "retries_total",
        ] {
            assert_eq!(snap.registry.counter_total(name, NO_LABELS), 1.0, "{name}");
        }
    }

    #[test]
    fn tenant_samples_feed_histograms_and_budgets() {
        let c = TelemetryCollector::default();
        c.event(&TraceEvent::TenantSample {
            tenant: 2,
            ts_ms: 1.0,
            latency_ms: 4.0,
            outcome: TenantOutcome::Served,
        });
        c.event(&TraceEvent::TenantSample {
            tenant: 2,
            ts_ms: 2.0,
            latency_ms: 9.0,
            outcome: TenantOutcome::DeadlineMiss,
        });
        let snap = c.finish();
        let tl = tenant_label(2);
        assert_eq!(snap.registry.counter_total("tenant_requests_total", &tl), 2.0);
        assert_eq!(snap.registry.counter_total("tenant_deadline_miss_total", &tl), 1.0);
        assert_eq!(snap.registry.counter_total("served_total", NO_LABELS), 1.0);
        assert_eq!(snap.registry.counter_total("deadline_miss_total", NO_LABELS), 1.0);
        let h = snap.registry.hist_total("request_latency_ms", &tl);
        assert_eq!(h.count, 1, "only served requests contribute latency");
        assert_eq!(h.max, 4.0);
    }

    #[test]
    fn finish_forwards_alerts_downstream() {
        let mut config = TelemetryConfig::default();
        config.slo.min_window_samples = 1;
        let c = TelemetryCollector::new(config);
        let recorder = Arc::new(Recorder::new());
        c.set_downstream(recorder.clone());
        // One tenant missing 100% of its deadline against a 1% budget.
        c.event(&TraceEvent::TenantSample {
            tenant: 0,
            ts_ms: 1.0,
            latency_ms: 0.0,
            outcome: TenantOutcome::DeadlineMiss,
        });
        let snap = c.finish();
        assert_eq!(snap.alerts.len(), 1);
        let data = recorder.snapshot();
        assert!(
            data.events
                .iter()
                .any(|e| matches!(e, TraceEvent::Alert { .. })),
            "alert forwarded to downstream sink"
        );
    }

    #[test]
    fn same_events_same_snapshot() {
        let run = || {
            let c = TelemetryCollector::default();
            for i in 0..100u64 {
                c.event(&TraceEvent::TenantSample {
                    tenant: (i % 3) as u32,
                    ts_ms: i as f64 * 0.7,
                    latency_ms: (i % 7) as f64,
                    outcome: TenantOutcome::Served,
                });
            }
            crate::export::to_csv(&c.finish())
        };
        assert_eq!(run(), run());
    }
}
