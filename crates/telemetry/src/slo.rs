//! The SLO engine: deterministic detectors evaluated over complete
//! windows of a [`MetricsRegistry`].
//!
//! Four detectors, each a pure function of the registry:
//!
//! * **burn rate** — each tenant has a deadline-miss *budget* (the
//!   fraction of its requests per window allowed to miss). The burn
//!   rate of a window is `miss_rate / budget`: 1.0 means the tenant is
//!   spending its error budget exactly as provisioned, 2.0 means twice
//!   as fast. Alert when burn ≥ the policy's `burn_rate_alert`.
//! * **cache-hit collapse** — windowed plan-cache hit rate below the
//!   policy floor.
//! * **queue growth** — a window's peak queue depth at least
//!   `queue_growth_factor` × the previous window's peak (with an
//!   absolute floor so an idle system's 0 → 2 wiggle never fires).
//! * **shard imbalance** — windowed routed-request skew
//!   (`max / mean` across shards) beyond the policy bound.
//!
//! Evaluation iterates windows in ascending order and detectors in a
//! fixed order, so the alert list is deterministic and two same-seed
//! runs produce identical alerts.

use trace::{AlertKind, TraceEvent};

use crate::metrics::{MetricsRegistry, NO_LABELS};

/// Thresholds for the detectors. The defaults are deliberately
/// permissive — a healthy run should produce zero alerts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Allowed per-window deadline-miss fraction per tenant.
    pub deadline_miss_budget: f64,
    /// Alert when a window's burn rate reaches this multiple of budget.
    pub burn_rate_alert: f64,
    /// Alert when a window's plan-cache hit rate drops below this.
    pub min_cache_hit_rate: f64,
    /// Alert when a window's peak queue depth reaches this multiple of
    /// the previous window's peak.
    pub queue_growth_factor: f64,
    /// Peaks below this absolute depth never fire the growth detector.
    pub queue_depth_floor: f64,
    /// Alert when windowed routed-load skew (max/mean) reaches this.
    pub max_shard_skew: f64,
    /// Windows with fewer samples than this are never judged — rate
    /// estimates over a handful of requests are noise.
    pub min_window_samples: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            deadline_miss_budget: 0.01,
            burn_rate_alert: 2.0,
            min_cache_hit_rate: 0.5,
            queue_growth_factor: 4.0,
            queue_depth_floor: 8.0,
            max_shard_skew: 2.0,
            min_window_samples: 8,
        }
    }
}

/// One fired detector: the typed payload behind a
/// [`TraceEvent::Alert`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// Which detector fired.
    pub kind: AlertKind,
    /// Tenant scope ([`u32::MAX`] for system-wide detectors).
    pub tenant: u32,
    /// The window the detector evaluated.
    pub window: u64,
    /// Window end on the simulated clock.
    pub ts_ms: f64,
    /// Observed value.
    pub value: f64,
    /// Threshold it crossed.
    pub threshold: f64,
}

impl Alert {
    /// The equivalent trace event, for forwarding to a sink.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::Alert {
            kind: self.kind,
            tenant: self.tenant,
            window: self.window,
            ts_ms: self.ts_ms,
            value: self.value,
            threshold: self.threshold,
        }
    }
}

/// Parse the tenant id out of a canonical `tenant="N"` label set.
fn tenant_of(label_set: &str) -> Option<u32> {
    label_set
        .strip_prefix("tenant=\"")?
        .strip_suffix('"')?
        .parse()
        .ok()
}

/// Run every detector over every complete window. Deterministic: output
/// order is (window, detector, tenant/shard) ascending.
pub fn evaluate(reg: &MetricsRegistry, policy: &SloPolicy) -> Vec<Alert> {
    let Some(max_window) = reg.max_window() else {
        return Vec::new();
    };
    let window_end = |w: u64| reg.window_start_ms(w) + reg.window_ms();
    let mut alerts = Vec::new();

    let tenant_labels: Vec<(u32, String)> = {
        let mut v: Vec<(u32, String)> = reg
            .counter_label_sets("tenant_requests_total")
            .into_iter()
            .filter_map(|l| Some((tenant_of(l)?, l.to_string())))
            .collect();
        v.sort_unstable();
        v
    };
    let shard_labels: Vec<String> = reg
        .counter_label_sets("shard_routed_total")
        .into_iter()
        .map(str::to_string)
        .collect();

    for w in 0..=max_window {
        // 1. Per-tenant burn rate.
        for (tenant, label) in &tenant_labels {
            let requests = reg.counter_window("tenant_requests_total", label, w);
            if (requests as u64) < policy.min_window_samples {
                continue;
            }
            let misses = reg.counter_window("tenant_deadline_miss_total", label, w);
            let burn = (misses / requests) / policy.deadline_miss_budget;
            if burn >= policy.burn_rate_alert {
                alerts.push(Alert {
                    kind: AlertKind::SloBurnRate,
                    tenant: *tenant,
                    window: w,
                    ts_ms: window_end(w),
                    value: burn,
                    threshold: policy.burn_rate_alert,
                });
            }
        }

        // 2. Cache-hit collapse.
        let hits = reg.counter_window("plan_cache_hits_total", NO_LABELS, w);
        let misses = reg.counter_window("plan_cache_misses_total", NO_LABELS, w);
        let lookups = hits + misses;
        if (lookups as u64) >= policy.min_window_samples {
            let rate = hits / lookups;
            if rate < policy.min_cache_hit_rate {
                alerts.push(Alert {
                    kind: AlertKind::CacheHitCollapse,
                    tenant: u32::MAX,
                    window: w,
                    ts_ms: window_end(w),
                    value: rate,
                    threshold: policy.min_cache_hit_rate,
                });
            }
        }

        // 3. Queue growth vs the previous window's peak.
        if w > 0 {
            let peak = reg
                .gauge_window("queue_depth", NO_LABELS, w)
                .map_or(0.0, |g| g.max);
            let prev = reg
                .gauge_window("queue_depth", NO_LABELS, w - 1)
                .map_or(0.0, |g| g.max);
            if peak >= policy.queue_depth_floor
                && prev > 0.0
                && peak >= policy.queue_growth_factor * prev
            {
                alerts.push(Alert {
                    kind: AlertKind::QueueGrowth,
                    tenant: u32::MAX,
                    window: w,
                    ts_ms: window_end(w),
                    value: peak,
                    threshold: policy.queue_growth_factor * prev,
                });
            }
        }

        // 4. Shard imbalance.
        if shard_labels.len() >= 2 {
            let routed: Vec<f64> = shard_labels
                .iter()
                .map(|l| reg.counter_window("shard_routed_total", l, w))
                .collect();
            let total: f64 = routed.iter().sum();
            if (total as u64) >= policy.min_window_samples {
                let mean = total / routed.len() as f64;
                let max = routed.iter().cloned().fold(0.0, f64::max);
                let skew = max / mean;
                if skew >= policy.max_shard_skew {
                    alerts.push(Alert {
                        kind: AlertKind::ShardImbalance,
                        tenant: u32::MAX,
                        window: w,
                        ts_ms: window_end(w),
                        value: skew,
                        threshold: policy.max_shard_skew,
                    });
                }
            }
        }
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::labels;

    fn tenant_window(reg: &mut MetricsRegistry, tenant: u32, w: f64, requests: u64, misses: u64) {
        let l = labels(&[("tenant", &tenant.to_string())]);
        reg.counter_add("tenant_requests_total", &l, w, requests as f64);
        reg.counter_add("tenant_deadline_miss_total", &l, w, misses as f64);
    }

    #[test]
    fn empty_registry_raises_nothing() {
        let reg = MetricsRegistry::new(10.0);
        assert!(evaluate(&reg, &SloPolicy::default()).is_empty());
    }

    #[test]
    fn burn_rate_fires_per_tenant_and_window() {
        let mut reg = MetricsRegistry::new(10.0);
        // Tenant 3 misses 10% of 100 requests against a 1% budget in
        // window 1; tenant 0 is healthy.
        tenant_window(&mut reg, 0, 15.0, 100, 0);
        tenant_window(&mut reg, 3, 15.0, 100, 10);
        let alerts = evaluate(&reg, &SloPolicy::default());
        assert_eq!(alerts.len(), 1);
        let a = alerts[0];
        assert_eq!(a.kind, AlertKind::SloBurnRate);
        assert_eq!(a.tenant, 3);
        assert_eq!(a.window, 1);
        assert_eq!(a.ts_ms, 20.0);
        assert!((a.value - 10.0).abs() < 1e-12, "burn {}", a.value);
    }

    #[test]
    fn small_windows_are_never_judged() {
        let mut reg = MetricsRegistry::new(10.0);
        tenant_window(&mut reg, 1, 5.0, 4, 4); // 100% misses, but only 4 requests
        assert!(evaluate(&reg, &SloPolicy::default()).is_empty());
    }

    #[test]
    fn cache_collapse_fires_below_floor() {
        let mut reg = MetricsRegistry::new(10.0);
        reg.counter_add("plan_cache_hits_total", NO_LABELS, 5.0, 2.0);
        reg.counter_add("plan_cache_misses_total", NO_LABELS, 5.0, 18.0);
        let alerts = evaluate(&reg, &SloPolicy::default());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::CacheHitCollapse);
        assert!((alerts[0].value - 0.1).abs() < 1e-12);
    }

    #[test]
    fn queue_growth_needs_floor_and_factor() {
        let mut reg = MetricsRegistry::new(10.0);
        reg.gauge_set("queue_depth", NO_LABELS, 5.0, 2.0);
        reg.gauge_set("queue_depth", NO_LABELS, 15.0, 16.0);
        let alerts = evaluate(&reg, &SloPolicy::default());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::QueueGrowth);
        assert_eq!(alerts[0].window, 1);
        assert_eq!(alerts[0].value, 16.0);

        // Same growth factor below the absolute floor: silent.
        let mut quiet = MetricsRegistry::new(10.0);
        quiet.gauge_set("queue_depth", NO_LABELS, 5.0, 1.0);
        quiet.gauge_set("queue_depth", NO_LABELS, 15.0, 4.0);
        assert!(evaluate(&quiet, &SloPolicy::default()).is_empty());
    }

    #[test]
    fn shard_imbalance_uses_max_over_mean() {
        let mut reg = MetricsRegistry::new(10.0);
        for (shard, n) in [(0u32, 30.0), (1, 5.0), (2, 1.0)] {
            let l = labels(&[("shard", &shard.to_string())]);
            reg.counter_add("shard_routed_total", &l, 5.0, n);
        }
        let alerts = evaluate(&reg, &SloPolicy::default());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::ShardImbalance);
        // 30 / (36/3) = 2.5
        assert!((alerts[0].value - 2.5).abs() < 1e-12);
    }

    #[test]
    fn alerts_convert_to_events() {
        let a = Alert {
            kind: AlertKind::SloBurnRate,
            tenant: 2,
            window: 4,
            ts_ms: 50.0,
            value: 3.0,
            threshold: 2.0,
        };
        match a.to_event() {
            TraceEvent::Alert { kind, tenant, window, .. } => {
                assert_eq!(kind, AlertKind::SloBurnRate);
                assert_eq!(tenant, 2);
                assert_eq!(window, 4);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }
}
