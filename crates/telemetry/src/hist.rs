//! The windowed histogram: log-bucketed over exact power-of-two edges.
//!
//! Buckets are keyed by `floor(log2(v))`, computed from the sample's
//! IEEE-754 *bit pattern* rather than `f64::log2`, so boundary values
//! land deterministically: `v = 2^k` is always the first value of
//! bucket `k` (`[2^k, 2^{k+1})`), never rounded into `k − 1` by a
//! transcendental's last ulp. Counts live in a `BTreeMap` keyed by the
//! exponent, which makes iteration order — and therefore every exporter
//! byte — independent of sample arrival order, and makes merging two
//! windows a per-key addition that is commutative by construction.

use std::collections::BTreeMap;

/// Bucket key reserved for samples `<= 0` (a latency of exactly zero is
/// representable; negative samples are clamped in with it rather than
/// silently dropped).
pub const ZERO_BUCKET: i32 = i32::MIN;

/// `floor(log2(v))` from the bit pattern: the unbiased IEEE-754
/// exponent. Subnormals and zero map to [`ZERO_BUCKET`]'s neighborhood
/// via the minimum normal exponent.
fn bucket_of(v: f64) -> i32 {
    if v <= 0.0 {
        return ZERO_BUCKET;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: smaller than every normal bucket.
        -1023
    } else {
        biased - 1023
    }
}

/// Upper edge of a bucket, for display and quantile estimation.
fn upper_edge(bucket: i32) -> f64 {
    if bucket == ZERO_BUCKET {
        0.0
    } else {
        2f64.powi((bucket + 1).clamp(-1022, 1023))
    }
}

/// A log-bucketed histogram of one window's samples.
///
/// Tracks exact `count`/`sum`/`min`/`max` alongside the buckets, so the
/// mean is exact and only quantiles are bucket-resolution estimates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogHistogram {
    /// Sample counts keyed by `floor(log2(v))`.
    pub buckets: BTreeMap<i32, u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Smallest sample (`0.0` when empty).
    pub min: f64,
    /// Largest sample (`0.0` when empty).
    pub max: f64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
    }

    /// Fold another window into this one. Merging is commutative: the
    /// bucket union is keyed addition, `min`/`max` are lattice joins,
    /// and the two `sum`s meet in one `f64` addition.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Exact mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate for `q ∈ [0, 1]`: the upper
    /// edge of the first bucket whose cumulative count reaches
    /// `ceil(q × count)`, clamped into the exact `[min, max]` envelope.
    /// `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper_edge(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterate `(upper_edge, cumulative_count)` pairs in ascending edge
    /// order — the shape Prometheus `_bucket{le=...}` lines want.
    pub fn cumulative(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut seen = 0u64;
        self.buckets.iter().map(move |(&b, &n)| {
            seen += n;
            (upper_edge(b), seen)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert!(h.buckets.is_empty());
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let mut h = LogHistogram::new();
        h.record(3.5);
        assert_eq!(h.count, 1);
        assert_eq!(h.min, 3.5);
        assert_eq!(h.max, 3.5);
        assert_eq!(h.mean(), 3.5);
        // Every quantile of a one-sample window is that sample: the
        // bucket edge (4.0) is clamped into [min, max].
        assert_eq!(h.quantile(0.0), 3.5);
        assert_eq!(h.quantile(0.5), 3.5);
        assert_eq!(h.quantile(1.0), 3.5);
    }

    #[test]
    fn boundary_values_land_in_the_upper_bucket() {
        // v = 2^k is the *first* value of bucket k, exactly.
        for k in [-10i32, -1, 0, 1, 10, 52] {
            let v = 2f64.powi(k);
            assert_eq!(bucket_of(v), k, "2^{k}");
            // One ulp below the boundary stays in bucket k − 1.
            let below = f64::from_bits(v.to_bits() - 1);
            assert_eq!(bucket_of(below), k - 1, "just under 2^{k}");
        }
        assert_eq!(bucket_of(0.0), ZERO_BUCKET);
        assert_eq!(bucket_of(-1.0), ZERO_BUCKET);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LogHistogram::new();
        for v in [0.5, 3.0, 100.0] {
            a.record(v);
        }
        let mut b = LogHistogram::new();
        for v in [0.001, 7.0] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.min, 0.001);
        assert_eq!(ab.max, 100.0);
        assert_eq!(ab.sum.to_bits(), ba.sum.to_bits());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = LogHistogram::new();
        a.record(2.0);
        let empty = LogHistogram::new();
        let mut ae = a.clone();
        ae.merge(&empty);
        assert_eq!(ae, a);
        let mut ea = LogHistogram::new();
        ea.merge(&a);
        assert_eq!(ea, a);
    }

    #[test]
    fn quantiles_bound_real_distributions() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i) * 0.1); // 0.1 .. 100.0
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Bucket-resolution: within one power of two of the truth.
        assert!((25.0..=100.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= h.max);
        assert_eq!(h.quantile(1.0), h.max);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_total() {
        let mut h = LogHistogram::new();
        for v in [0.25, 0.5, 1.0, 2.0, 4.0, 4.0] {
            h.record(v);
        }
        let pairs: Vec<(f64, u64)> = h.cumulative().collect();
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pairs.last().unwrap().1, h.count);
    }
}
