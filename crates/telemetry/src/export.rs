//! Exporters: Prometheus text exposition and the time-series CSV.
//!
//! Both walk the registry through its sorted views, so output bytes
//! depend only on the collected samples — never on interning or
//! insertion order. Floats are written with `Display`'s
//! shortest-roundtrip formatting, which is deterministic for equal
//! bit patterns; byte-identical runs therefore produce byte-identical
//! files, which CI enforces by diffing two seeded runs.

use crate::collect::TelemetrySnapshot;
use crate::hist::LogHistogram;

/// Quote one CSV field if it contains a comma or a quote (label sets
/// do: their canonical form is `key="value",key2="value2"`).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render the whole snapshot as a time-series CSV:
/// `window,start_ms,kind,metric,labels,field,value`, one row per
/// (series, window, statistic), plus one row per alert.
pub fn to_csv(snap: &TelemetrySnapshot) -> String {
    let reg = &snap.registry;
    let mut out = String::from("window,start_ms,kind,metric,labels,field,value\n");
    let mut row = |window: u64, kind: &str, metric: &str, labels: &str, field: &str, value: f64| {
        out.push_str(&format!(
            "{window},{},{kind},{metric},{},{field},{value}\n",
            reg.window_start_ms(window),
            csv_field(labels),
        ));
    };
    for (name, labels, windows) in reg.counters_sorted() {
        for (&w, &v) in windows {
            row(w, "counter", name, labels, "sum", v);
        }
    }
    for (name, labels, windows) in reg.gauges_sorted() {
        for (&w, g) in windows {
            row(w, "gauge", name, labels, "last", g.last);
            row(w, "gauge", name, labels, "min", g.min);
            row(w, "gauge", name, labels, "max", g.max);
            row(w, "gauge", name, labels, "samples", g.samples as f64);
        }
    }
    for (name, labels, windows) in reg.histograms_sorted() {
        for (&w, h) in windows {
            row(w, "hist", name, labels, "count", h.count as f64);
            row(w, "hist", name, labels, "sum", h.sum);
            row(w, "hist", name, labels, "min", h.min);
            row(w, "hist", name, labels, "max", h.max);
            row(w, "hist", name, labels, "p50", h.quantile(0.5));
            row(w, "hist", name, labels, "p99", h.quantile(0.99));
        }
    }
    for a in &snap.alerts {
        let scope = if a.tenant == u32::MAX {
            String::new()
        } else {
            format!("tenant=\"{}\"", a.tenant)
        };
        row(a.window, "alert", a.kind.name(), &scope, "value", a.value);
        row(a.window, "alert", a.kind.name(), &scope, "threshold", a.threshold);
    }
    out
}

fn prom_line(out: &mut String, name: &str, suffix: &str, labels: &str, value: f64) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format!("{value}\n"));
}

fn prom_hist(out: &mut String, name: &str, labels: &str, h: &LogHistogram) {
    for (edge, cum) in h.cumulative() {
        let le = if labels.is_empty() {
            format!("le=\"{edge}\"")
        } else {
            format!("{labels},le=\"{edge}\"")
        };
        prom_line(out, name, "_bucket", &le, cum as f64);
    }
    let inf = if labels.is_empty() {
        String::from("le=\"+Inf\"")
    } else {
        format!("{labels},le=\"+Inf\"")
    };
    prom_line(out, name, "_bucket", &inf, h.count as f64);
    prom_line(out, name, "_sum", labels, h.sum);
    prom_line(out, name, "_count", labels, h.count as f64);
}

/// Render a Prometheus text-format exposition snapshot: whole-run
/// counter totals, last-window gauge values, and merged whole-run
/// histograms with power-of-two `le` edges.
pub fn to_prometheus(snap: &TelemetrySnapshot) -> String {
    let reg = &snap.registry;
    let mut out = String::new();
    let mut last_type: Option<String> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if last_type.as_deref() != Some(name) {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_type = Some(name.to_string());
        }
    };

    for (name, labels, windows) in reg.counters_sorted() {
        type_line(&mut out, name, "counter");
        prom_line(&mut out, name, "", labels, windows.values().sum());
    }
    for (name, labels, windows) in reg.gauges_sorted() {
        type_line(&mut out, name, "gauge");
        if let Some(g) = windows.values().next_back() {
            prom_line(&mut out, name, "", labels, g.last);
        }
    }
    for (name, labels, windows) in reg.histograms_sorted() {
        type_line(&mut out, name, "histogram");
        let mut total = LogHistogram::new();
        for h in windows.values() {
            total.merge(h);
        }
        prom_hist(&mut out, name, labels, &total);
    }
    if !snap.alerts.is_empty() {
        out.push_str("# TYPE telemetry_alerts_total counter\n");
        let mut by_kind: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for a in &snap.alerts {
            *by_kind.entry(a.kind.name()).or_insert(0) += 1;
        }
        for (kind, n) in by_kind {
            prom_line(
                &mut out,
                "telemetry_alerts_total",
                "",
                &format!("kind=\"{kind}\""),
                n as f64,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{TelemetryCollector, TelemetryConfig};
    use trace::{TenantOutcome, TraceEvent, TraceSink};

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut config = TelemetryConfig::default();
        config.slo.min_window_samples = 1;
        let c = TelemetryCollector::new(config);
        c.event(&TraceEvent::TenantSample {
            tenant: 1,
            ts_ms: 1.0,
            latency_ms: 3.0,
            outcome: TenantOutcome::Served,
        });
        c.event(&TraceEvent::TenantSample {
            tenant: 1,
            ts_ms: 12.0,
            latency_ms: 0.0,
            outcome: TenantOutcome::DeadlineMiss,
        });
        c.event(&TraceEvent::Counter {
            counter: trace::CounterKind::QueueDepth,
            ts_ms: 2.0,
            value: 5.0,
        });
        c.finish()
    }

    #[test]
    fn csv_has_header_counters_gauges_hists_and_alerts() {
        let text = to_csv(&sample_snapshot());
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "window,start_ms,kind,metric,labels,field,value"
        );
        assert!(text.contains(",counter,tenant_requests_total,"));
        assert!(text.contains(",gauge,queue_depth,"));
        assert!(text.contains(",hist,request_latency_ms,"));
        assert!(text.contains(",alert,slo_burn_rate,"));
        // Label sets with commas are CSV-quoted with doubled quotes.
        assert!(text.contains("\"tenant=\"\"1\"\",outcome=\"\"served\"\"\""));
    }

    #[test]
    fn prometheus_has_types_totals_and_bucket_lines() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE tenant_requests_total counter"));
        assert!(text.contains("tenant_requests_total{tenant=\"1\"} 2\n"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 5\n"));
        assert!(text.contains("# TYPE request_latency_ms histogram"));
        assert!(text.contains("request_latency_ms_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("request_latency_ms_count 1\n"));
        assert!(text.contains("telemetry_alerts_total{kind=\"slo_burn_rate\"} 1\n"));
        // Exactly one TYPE line per metric name even with many label sets.
        assert_eq!(text.matches("# TYPE request_latency_ms histogram").count(), 1);
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        assert_eq!(to_csv(&a), to_csv(&b));
        assert_eq!(to_prometheus(&a), to_prometheus(&b));
    }
}
