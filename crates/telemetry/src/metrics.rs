//! The windowed metrics registry.
//!
//! Every series is `(metric name, label set) → window → value`, where a
//! window is `floor(ts_ms / window_ms)` on the **simulated** clock —
//! never wall time — so two runs with the same seed produce identical
//! window assignments and therefore byte-identical exports. Label sets
//! are interned once into small ids; the hot recording path hashes two
//! `u32`s, not strings. All storage is `BTreeMap`, so iteration order
//! (and every exporter byte) is independent of insertion order.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;

/// An interned string id (metric name or canonical label set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

/// The empty label set's canonical form.
pub const NO_LABELS: &str = "";

/// A deduplicating string table. Ids are assigned in first-seen order;
/// exporters resolve ids back to strings and sort by the *strings*, so
/// interning order never leaks into output bytes.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    index: BTreeMap<String, SymbolId>,
}

impl Interner {
    /// Intern `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = SymbolId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// Resolve an id back to its string.
    pub fn resolve(&self, id: SymbolId) -> &str {
        &self.strings[id.0 as usize]
    }
}

/// Render label pairs in canonical Prometheus form:
/// `key="value",key2="value2"`. Callers pass pairs in a fixed order per
/// call site, so equal label sets always produce equal strings.
pub fn labels(pairs: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

/// One window of a gauge series: last-written value plus the window's
/// extrema (queue depth's interesting statistic is its peak, not its
/// final sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeWindow {
    /// Last sample written in the window.
    pub last: f64,
    /// Smallest sample in the window.
    pub min: f64,
    /// Largest sample in the window.
    pub max: f64,
    /// Samples written.
    pub samples: u64,
}

/// A series key: interned metric name + interned canonical label set.
pub type SeriesKey = (SymbolId, SymbolId);

/// The registry: three families of windowed series over one shared
/// interner.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    window_ms: f64,
    interner: Interner,
    counters: BTreeMap<SeriesKey, BTreeMap<u64, f64>>,
    gauges: BTreeMap<SeriesKey, BTreeMap<u64, GaugeWindow>>,
    histograms: BTreeMap<SeriesKey, BTreeMap<u64, LogHistogram>>,
    last_ts_ms: f64,
}

impl MetricsRegistry {
    /// A registry bucketing samples into `window_ms`-wide windows of the
    /// simulated clock.
    pub fn new(window_ms: f64) -> Self {
        assert!(window_ms > 0.0, "window must be positive");
        Self {
            window_ms,
            interner: Interner::default(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            last_ts_ms: 0.0,
        }
    }

    /// The configured window width in simulated milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// The window index a simulated timestamp falls into.
    pub fn window_of(&self, ts_ms: f64) -> u64 {
        let w = (ts_ms / self.window_ms).floor();
        if w <= 0.0 {
            0
        } else {
            w as u64
        }
    }

    /// Simulated start time of a window.
    pub fn window_start_ms(&self, window: u64) -> f64 {
        window as f64 * self.window_ms
    }

    /// The latest simulated timestamp any sample carried.
    pub fn last_ts_ms(&self) -> f64 {
        self.last_ts_ms
    }

    fn key(&mut self, name: &str, label_set: &str) -> SeriesKey {
        (self.interner.intern(name), self.interner.intern(label_set))
    }

    fn touch(&mut self, ts_ms: f64) {
        if ts_ms > self.last_ts_ms {
            self.last_ts_ms = ts_ms;
        }
    }

    /// Add `v` to a counter series' current window.
    pub fn counter_add(&mut self, name: &str, label_set: &str, ts_ms: f64, v: f64) {
        self.touch(ts_ms);
        let w = self.window_of(ts_ms);
        let key = self.key(name, label_set);
        *self
            .counters
            .entry(key)
            .or_default()
            .entry(w)
            .or_insert(0.0) += v;
    }

    /// Write a gauge sample into its window.
    pub fn gauge_set(&mut self, name: &str, label_set: &str, ts_ms: f64, v: f64) {
        self.touch(ts_ms);
        let w = self.window_of(ts_ms);
        let key = self.key(name, label_set);
        let win = self
            .gauges
            .entry(key)
            .or_default()
            .entry(w)
            .or_insert(GaugeWindow {
                last: v,
                min: v,
                max: v,
                samples: 0,
            });
        win.last = v;
        if v < win.min {
            win.min = v;
        }
        if v > win.max {
            win.max = v;
        }
        win.samples += 1;
    }

    /// Record a histogram sample into its window.
    pub fn hist_record(&mut self, name: &str, label_set: &str, ts_ms: f64, v: f64) {
        self.touch(ts_ms);
        let w = self.window_of(ts_ms);
        let key = self.key(name, label_set);
        self.histograms
            .entry(key)
            .or_default()
            .entry(w)
            .or_default()
            .record(v);
    }

    /// Sum of a counter series across all windows (0 for absent series).
    pub fn counter_total(&self, name: &str, label_set: &str) -> f64 {
        self.lookup(&self.counters, name, label_set)
            .map_or(0.0, |wins| wins.values().sum())
    }

    /// One window of a counter series (0 when nothing was recorded).
    pub fn counter_window(&self, name: &str, label_set: &str, window: u64) -> f64 {
        self.lookup(&self.counters, name, label_set)
            .and_then(|wins| wins.get(&window).copied())
            .unwrap_or(0.0)
    }

    /// One window of a gauge series.
    pub fn gauge_window(&self, name: &str, label_set: &str, window: u64) -> Option<GaugeWindow> {
        self.lookup(&self.gauges, name, label_set)
            .and_then(|wins| wins.get(&window).copied())
    }

    /// One window of a histogram series.
    pub fn hist_window(&self, name: &str, label_set: &str, window: u64) -> Option<&LogHistogram> {
        self.lookup(&self.histograms, name, label_set)
            .and_then(|wins| wins.get(&window))
    }

    /// All windows of a histogram series merged into one histogram —
    /// the whole-run distribution.
    pub fn hist_total(&self, name: &str, label_set: &str) -> LogHistogram {
        let mut total = LogHistogram::new();
        if let Some(wins) = self.lookup(&self.histograms, name, label_set) {
            for h in wins.values() {
                total.merge(h);
            }
        }
        total
    }

    fn lookup<'a, T>(
        &self,
        map: &'a BTreeMap<SeriesKey, BTreeMap<u64, T>>,
        name: &str,
        label_set: &str,
    ) -> Option<&'a BTreeMap<u64, T>> {
        let name = self.interner.index.get(name)?;
        let label = self.interner.index.get(label_set)?;
        map.get(&(*name, *label))
    }

    /// The highest window index any series touched (`None` when empty).
    pub fn max_window(&self) -> Option<u64> {
        let c = self.counters.values().filter_map(|w| w.keys().max());
        let g = self.gauges.values().filter_map(|w| w.keys().max());
        let h = self.histograms.values().filter_map(|w| w.keys().max());
        c.chain(g).chain(h).max().copied()
    }

    /// Counter series sorted by `(name, labels)` strings — exporter
    /// order, independent of interning order.
    pub fn counters_sorted(&self) -> Vec<(&str, &str, &BTreeMap<u64, f64>)> {
        Self::sorted(&self.interner, &self.counters)
    }

    /// Gauge series in exporter order.
    pub fn gauges_sorted(&self) -> Vec<(&str, &str, &BTreeMap<u64, GaugeWindow>)> {
        Self::sorted(&self.interner, &self.gauges)
    }

    /// Histogram series in exporter order.
    pub fn histograms_sorted(&self) -> Vec<(&str, &str, &BTreeMap<u64, LogHistogram>)> {
        Self::sorted(&self.interner, &self.histograms)
    }

    /// Label sets (canonical strings) under one metric name, sorted.
    pub fn hist_label_sets(&self, name: &str) -> Vec<&str> {
        self.histograms_sorted()
            .into_iter()
            .filter(|(n, _, _)| *n == name)
            .map(|(_, l, _)| l)
            .collect()
    }

    /// Label sets under one counter name, sorted.
    pub fn counter_label_sets(&self, name: &str) -> Vec<&str> {
        self.counters_sorted()
            .into_iter()
            .filter(|(n, _, _)| *n == name)
            .map(|(_, l, _)| l)
            .collect()
    }

    fn sorted<'a, T>(
        interner: &'a Interner,
        map: &'a BTreeMap<SeriesKey, BTreeMap<u64, T>>,
    ) -> Vec<(&'a str, &'a str, &'a BTreeMap<u64, T>)> {
        let mut rows: Vec<_> = map
            .iter()
            .map(|((n, l), wins)| (interner.resolve(*n), interner.resolve(*l), wins))
            .collect();
        rows.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_floor_of_simulated_time() {
        let reg = MetricsRegistry::new(10.0);
        assert_eq!(reg.window_of(0.0), 0);
        assert_eq!(reg.window_of(9.999), 0);
        assert_eq!(reg.window_of(10.0), 1);
        assert_eq!(reg.window_of(25.0), 2);
        assert_eq!(reg.window_start_ms(2), 20.0);
    }

    #[test]
    fn counters_accumulate_per_window() {
        let mut reg = MetricsRegistry::new(10.0);
        reg.counter_add("requests_total", NO_LABELS, 1.0, 1.0);
        reg.counter_add("requests_total", NO_LABELS, 2.0, 1.0);
        reg.counter_add("requests_total", NO_LABELS, 11.0, 1.0);
        assert_eq!(reg.counter_window("requests_total", NO_LABELS, 0), 2.0);
        assert_eq!(reg.counter_window("requests_total", NO_LABELS, 1), 1.0);
        assert_eq!(reg.counter_total("requests_total", NO_LABELS), 3.0);
        assert_eq!(reg.max_window(), Some(1));
    }

    #[test]
    fn gauges_track_window_extrema_and_last() {
        let mut reg = MetricsRegistry::new(10.0);
        for (t, v) in [(1.0, 3.0), (2.0, 8.0), (3.0, 5.0)] {
            reg.gauge_set("queue_depth", NO_LABELS, t, v);
        }
        let w = reg.gauge_window("queue_depth", NO_LABELS, 0).unwrap();
        assert_eq!(w.last, 5.0);
        assert_eq!(w.min, 3.0);
        assert_eq!(w.max, 8.0);
        assert_eq!(w.samples, 3);
        assert!(reg.gauge_window("queue_depth", NO_LABELS, 1).is_none());
    }

    #[test]
    fn label_sets_separate_series() {
        let mut reg = MetricsRegistry::new(10.0);
        let a = labels(&[("tenant", "0")]);
        let b = labels(&[("tenant", "1")]);
        assert_eq!(a, "tenant=\"0\"");
        reg.counter_add("outcomes_total", &a, 1.0, 2.0);
        reg.counter_add("outcomes_total", &b, 1.0, 5.0);
        assert_eq!(reg.counter_total("outcomes_total", &a), 2.0);
        assert_eq!(reg.counter_total("outcomes_total", &b), 5.0);
        assert_eq!(reg.counter_label_sets("outcomes_total"), vec![a.as_str(), b.as_str()]);
    }

    #[test]
    fn sorted_views_ignore_interning_order() {
        let mut reg = MetricsRegistry::new(10.0);
        reg.counter_add("zzz", NO_LABELS, 0.0, 1.0);
        reg.counter_add("aaa", NO_LABELS, 0.0, 1.0);
        let names: Vec<&str> = reg.counters_sorted().iter().map(|r| r.0).collect();
        assert_eq!(names, vec!["aaa", "zzz"]);
    }

    #[test]
    fn hist_total_merges_all_windows() {
        let mut reg = MetricsRegistry::new(10.0);
        reg.hist_record("latency_ms", NO_LABELS, 1.0, 2.0);
        reg.hist_record("latency_ms", NO_LABELS, 15.0, 8.0);
        let total = reg.hist_total("latency_ms", NO_LABELS);
        assert_eq!(total.count, 2);
        assert_eq!(total.min, 2.0);
        assert_eq!(total.max, 8.0);
    }
}
