//! # telemetry — deterministic windowed metrics on the simulated clock
//!
//! Every signal the repo emitted before this crate was either an
//! end-of-run aggregate (`RuntimeReport`, `LaunchReport`) or a raw
//! event stream (`trace`). This crate is the middle layer a serving
//! operator actually watches: time series. Samples are bucketed into
//! fixed windows of the **simulated** clock (`floor(ts_ms /
//! window_ms)`), so the series are a pure function of the seeded run —
//! two same-seed runs export byte-identical files, and CI diffs them.
//!
//! Layers:
//!
//! * [`metrics::MetricsRegistry`] — counters, gauges (with per-window
//!   extrema), and log-bucketed histograms ([`hist::LogHistogram`],
//!   exact power-of-two edges), keyed by interned `(name, label set)`.
//! * [`collect::TelemetryCollector`] — a [`trace::TraceSink`] that
//!   folds the existing event stream into the registry. Attaching it is
//!   the only integration instrumented crates need, so the disabled
//!   path stays the one-branch `Option` check that PR 2 proved bitwise
//!   invisible.
//! * [`slo`] — per-tenant deadline-miss budgets with window burn
//!   rates, plus cache-collapse / queue-growth / shard-imbalance
//!   detectors, each raising a typed `TraceEvent::Alert`.
//! * [`export`] + [`dashboard`] — Prometheus text exposition, the
//!   `telemetry_serve.csv` time series, and the operator dashboard.
//!
//! The crate depends only on `trace` and knows nothing about the
//! simulator or runtime; like the recorder, it observes and never
//! influences.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collect;
pub mod dashboard;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod slo;

pub use collect::{TelemetryCollector, TelemetryConfig, TelemetrySnapshot};
pub use export::{to_csv, to_prometheus};
pub use hist::LogHistogram;
pub use metrics::{labels, GaugeWindow, Interner, MetricsRegistry, SymbolId, NO_LABELS};
pub use slo::{evaluate, Alert, SloPolicy};
