//! The text dashboard: the operator's one-screen view of a run.
//!
//! Three blocks — a per-window table (traffic, latency, queue, cache,
//! device busy), a per-tenant SLO table (outcomes, miss rate, budget
//! burn), and the alert log. Rendered from a [`TelemetrySnapshot`], so
//! it shares the exporters' determinism guarantees.

use crate::collect::TelemetrySnapshot;
use crate::metrics::NO_LABELS;

fn tenant_of(label_set: &str) -> Option<u32> {
    label_set
        .strip_prefix("tenant=\"")?
        .strip_suffix('"')?
        .parse()
        .ok()
}

/// Render the dashboard.
pub fn render(snap: &TelemetrySnapshot) -> String {
    let reg = &snap.registry;
    let mut out = String::new();
    let windows = reg.max_window().map_or(0, |w| w + 1);
    let latency = reg.hist_total("request_latency_ms", NO_LABELS);
    out.push_str(&format!(
        "== telemetry dashboard: {windows} windows × {} ms, {} requests, {} served, p50 {:.4} ms, p99 {:.4} ms, {} alerts ==\n",
        reg.window_ms(),
        reg.counter_total("requests_total", NO_LABELS),
        reg.counter_total("served_total", NO_LABELS),
        latency.quantile(0.5),
        latency.quantile(0.99),
        snap.alerts.len(),
    ));
    if windows == 0 {
        out.push_str("  (no samples)\n");
        return out;
    }

    // Per-window table.
    let device_labels = reg.counter_label_sets("device_busy_ms");
    let devices = device_labels.len().max(1) as f64;
    out.push_str(&format!(
        "\n{:>6} {:>10} {:>8} {:>8} {:>6} {:>10} {:>7} {:>7} {:>8} {:>7}\n",
        "window", "start ms", "requests", "served", "miss", "p99 ms", "queue", "cache%", "util%", "alerts"
    ));
    for w in 0..windows {
        let requests = reg.counter_window("requests_total", NO_LABELS, w);
        let served = reg.counter_window("served_total", NO_LABELS, w);
        let miss = reg.counter_window("deadline_miss_total", NO_LABELS, w);
        let p99 = reg
            .hist_window("request_latency_ms", NO_LABELS, w)
            .map_or(0.0, |h| h.quantile(0.99));
        let queue = reg
            .gauge_window("queue_depth", NO_LABELS, w)
            .map_or(0.0, |g| g.max);
        let hits = reg.counter_window("plan_cache_hits_total", NO_LABELS, w);
        let misses = reg.counter_window("plan_cache_misses_total", NO_LABELS, w);
        let cache = if hits + misses > 0.0 {
            100.0 * hits / (hits + misses)
        } else {
            0.0
        };
        let busy: f64 = device_labels
            .iter()
            .map(|l| reg.counter_window("device_busy_ms", l, w))
            .sum();
        let util = 100.0 * busy / (devices * reg.window_ms());
        let alerts = snap.alerts.iter().filter(|a| a.window == w).count();
        out.push_str(&format!(
            "{w:>6} {:>10.1} {requests:>8.0} {served:>8.0} {miss:>6.0} {p99:>10.4} {queue:>7.0} {cache:>7.1} {util:>8.1} {alerts:>7}\n",
            reg.window_start_ms(w),
        ));
    }

    // Per-tenant SLO table.
    let mut tenants: Vec<(u32, String)> = reg
        .counter_label_sets("tenant_requests_total")
        .into_iter()
        .filter_map(|l| Some((tenant_of(l)?, l.to_string())))
        .collect();
    tenants.sort_unstable();
    if !tenants.is_empty() {
        out.push_str(&format!(
            "\nper-tenant SLO (budget {:.2}% misses/window, alert at {:.1}× burn):\n",
            100.0 * snap.config.slo.deadline_miss_budget,
            snap.config.slo.burn_rate_alert,
        ));
        out.push_str(&format!(
            "{:>7} {:>9} {:>8} {:>7} {:>8} {:>9} {:>10}\n",
            "tenant", "requests", "served", "missed", "miss%", "burn", "p99 ms"
        ));
        for (tenant, label) in &tenants {
            let requests = reg.counter_total("tenant_requests_total", label);
            let missed = reg.counter_total("tenant_deadline_miss_total", label);
            let h = reg.hist_total("request_latency_ms", label);
            let miss_rate = if requests > 0.0 { missed / requests } else { 0.0 };
            let burn = miss_rate / snap.config.slo.deadline_miss_budget;
            out.push_str(&format!(
                "{tenant:>7} {requests:>9.0} {:>8} {missed:>7.0} {:>8.2} {burn:>9.2} {:>10.4}\n",
                h.count,
                100.0 * miss_rate,
                h.quantile(0.99),
            ));
        }
    }

    // Alert log.
    if !snap.alerts.is_empty() {
        out.push_str("\nalerts:\n");
        for a in &snap.alerts {
            let scope = if a.tenant == u32::MAX {
                String::from("system")
            } else {
                format!("tenant {}", a.tenant)
            };
            out.push_str(&format!(
                "  window {:>4} {scope:<10} {:<18} value {:.4} vs threshold {:.4}\n",
                a.window,
                a.kind.name(),
                a.value,
                a.threshold,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{TelemetryCollector, TelemetryConfig};
    use trace::{TenantOutcome, TraceEvent, TraceSink};

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = TelemetryCollector::default().finish();
        let text = render(&snap);
        assert!(text.contains("telemetry dashboard"));
        assert!(text.contains("(no samples)"));
    }

    #[test]
    fn dashboard_shows_windows_tenants_and_alerts() {
        let mut config = TelemetryConfig::default();
        config.slo.min_window_samples = 1;
        let c = TelemetryCollector::new(config);
        c.event(&TraceEvent::TenantSample {
            tenant: 4,
            ts_ms: 1.0,
            latency_ms: 2.0,
            outcome: TenantOutcome::Served,
        });
        c.event(&TraceEvent::TenantSample {
            tenant: 4,
            ts_ms: 11.0,
            latency_ms: 0.0,
            outcome: TenantOutcome::DeadlineMiss,
        });
        let snap = c.finish();
        let text = render(&snap);
        assert!(text.contains("per-tenant SLO"));
        assert!(text.contains("alerts:"));
        assert!(text.contains("tenant 4"));
        assert!(text.contains("slo_burn_rate"));
    }
}
