//! MatrixMarket (`.mtx`) reading and writing.
//!
//! The paper's artifact consumes SuiteSparse matrices as MatrixMarket
//! coordinate files; this module implements the subset the collection
//! actually uses: `matrix coordinate {real|integer|pattern}
//! {general|symmetric|skew-symmetric}`. Pattern entries get value 1.0;
//! symmetric files are expanded to full storage (off-diagonal entries are
//! mirrored), matching the artifact's loader. The paper's appendix warns
//! that some collection files are mislabeled `.mtx`; we surface those as
//! [`Error::Parse`] so harnesses can skip them, exactly as `run.sh` does.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::{Error, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

fn parse_err(line: usize, msg: impl Into<String>) -> Error {
    Error::Parse {
        line,
        msg: msg.into(),
    }
}

/// Read a MatrixMarket coordinate file into COO form.
pub fn read_coo<R: Read>(reader: R) -> Result<Coo<f32>> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err(0, "empty file"))?
        .map_err(Error::Io)?;
    let mut lineno = 1usize;
    let toks: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if toks.len() < 4 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(parse_err(1, "missing %%MatrixMarket matrix header"));
    }
    if toks[2] != "coordinate" {
        return Err(parse_err(1, format!("unsupported format '{}'", toks[2])));
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(1, format!("unsupported field '{other}'"))),
    };
    let symmetry = match toks.get(4).map(String::as_str) {
        None | Some("general") => Symmetry::General,
        Some("symmetric") => Symmetry::Symmetric,
        Some("skew-symmetric") => Symmetry::SkewSymmetric,
        Some(other) => return Err(parse_err(1, format!("unsupported symmetry '{other}'"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(Error::Io)?;
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err(lineno, "missing size line"))?;
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(parse_err(lineno, "size line must be 'rows cols nnz'"));
    }
    let rows: usize = dims[0]
        .parse()
        .map_err(|_| parse_err(lineno, "bad row count"))?;
    let cols: usize = dims[1]
        .parse()
        .map_err(|_| parse_err(lineno, "bad col count"))?;
    let nnz: usize = dims[2]
        .parse()
        .map_err(|_| parse_err(lineno, "bad nnz count"))?;

    let mut coo = Coo::empty(rows, cols);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(Error::Io)?;
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing row"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad row index"))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing col"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad col index"))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(lineno, "index out of declared bounds"));
        }
        let v: f32 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| parse_err(lineno, "missing value"))?
                .parse()
                .map_err(|_| parse_err(lineno, "bad value"))?,
        };
        let (r0, c0) = (r as u32 - 1, c as u32 - 1);
        coo.push(r0, c0, v).expect("bounds checked above");
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r0 != c0 => {
                coo.push(c0, r0, v).expect("bounds checked above");
            }
            Symmetry::SkewSymmetric if r0 != c0 => {
                coo.push(c0, r0, -v).expect("bounds checked above");
            }
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            lineno,
            format!("declared {nnz} entries but found {seen}"),
        ));
    }
    Ok(coo)
}

/// Read a MatrixMarket file straight into canonical CSR.
pub fn read_csr<R: Read>(reader: R) -> Result<Csr<f32>> {
    let mut coo = read_coo(reader)?;
    coo.canonicalize();
    Ok(crate::convert::coo_to_csr(&coo))
}

/// Read a `.mtx` file from disk into CSR.
pub fn read_csr_path(path: impl AsRef<Path>) -> Result<Csr<f32>> {
    let f = std::fs::File::open(path)?;
    read_csr(f)
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_csr<W: Write>(mut w: W, csr: &Csr<f32>) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", csr.rows(), csr.cols(), csr.nnz())?;
    for (r, c, v) in csr.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 4 5\n\
        1 1 1.0\n\
        1 3 2.0\n\
        3 1 3.0\n\
        3 2 4.0\n\
        3 4 5.0\n";

    #[test]
    fn reads_general_real_file() {
        let csr = read_csr(GENERAL.as_bytes()).unwrap();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.row(2).0, &[0, 1, 3]);
    }

    #[test]
    fn symmetric_entries_are_mirrored() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
            3 3 3\n\
            1 1 1.0\n\
            2 1 2.0\n\
            3 2 3.0\n";
        let csr = read_csr(src.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 5); // diagonal not duplicated
        let (c0, _) = csr.row(0);
        assert_eq!(c0, &[0, 1]);
    }

    #[test]
    fn skew_symmetric_negates_mirror() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
            2 2 1\n\
            2 1 5.0\n";
        let csr = read_csr(src.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 2);
        let (_, v0) = csr.row(0);
        assert_eq!(v0, &[-5.0]);
        let (_, v1) = csr.row(1);
        assert_eq!(v1, &[5.0]);
    }

    #[test]
    fn pattern_files_get_unit_values() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
            2 2 2\n\
            1 2\n\
            2 1\n";
        let csr = read_csr(src.as_bytes()).unwrap();
        assert_eq!(csr.values(), &[1.0, 1.0]);
    }

    #[test]
    fn integer_field_parses() {
        let src = "%%MatrixMarket matrix coordinate integer general\n\
            1 1 1\n\
            1 1 7\n";
        let csr = read_csr(src.as_bytes()).unwrap();
        assert_eq!(csr.values(), &[7.0]);
    }

    #[test]
    fn malformed_files_error_with_line_numbers() {
        assert!(matches!(
            read_csr("not a header\n".as_bytes()),
            Err(Error::Parse { line: 1, .. })
        ));
        let bad_count = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(matches!(read_csr(bad_count.as_bytes()), Err(Error::Parse { .. })));
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(read_csr(oob.as_bytes()), Err(Error::Parse { line: 3, .. })));
        let array = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(matches!(read_csr(array.as_bytes()), Err(Error::Parse { line: 1, .. })));
    }

    #[test]
    fn write_read_roundtrip() {
        let csr = read_csr(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csr(&mut buf, &csr).unwrap();
        let back = read_csr(buf.as_slice()).unwrap();
        assert_eq!(csr, back);
    }

    #[test]
    fn duplicate_coordinates_sum_on_read() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
            1 1 2\n\
            1 1 1.5\n\
            1 1 2.5\n";
        let csr = read_csr(src.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.values(), &[4.0]);
    }
}
