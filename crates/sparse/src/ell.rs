//! ELLPACK (ELL) storage: every row padded to a fixed width.
//!
//! The paper's related work (§7) contrasts *active* load balancing with
//! formats that are "already-load-balanced/-partitioned": ELL is the
//! classic example — every row stores exactly `width` slots (unused ones
//! padded), so a tile-per-thread schedule is perfectly regular by
//! construction. The price is the padding itself: a single long row
//! inflates every row's storage to its length, which is why ELL shines on
//! stencils and dies on power laws — a trade the ablation harness can
//! now measure directly against the scheduling-based answers.

use crate::csr::Csr;
use crate::error::{Error, Result};

/// Sentinel column index marking a padded slot.
pub const PAD: u32 = u32::MAX;

/// An ELL matrix: `rows × width` slots, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Ell<V = f32> {
    rows: usize,
    cols: usize,
    width: usize,
    col_indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Copy + Default> Ell<V> {
    /// Build from a CSR matrix, padding every row to the longest row's
    /// length. Fails if the padding would exceed `max_fill` times the
    /// stored nonzeros (the guard real systems use before choosing ELL).
    pub fn from_csr(csr: &Csr<V>, max_fill: f64) -> Result<Self> {
        let width = (0..csr.rows()).map(|r| csr.row_len(r)).max().unwrap_or(0);
        let slots = csr.rows() * width;
        if csr.nnz() > 0 && slots as f64 > max_fill * csr.nnz() as f64 {
            return Err(Error::Invalid(format!(
                "ELL fill {slots} exceeds {max_fill}x nnz {} — format unsuitable",
                csr.nnz()
            )));
        }
        let mut col_indices = vec![PAD; slots];
        let mut values = vec![V::default(); slots];
        for r in 0..csr.rows() {
            let (cols, vals) = csr.row(r);
            let base = r * width;
            col_indices[base..base + cols.len()].copy_from_slice(cols);
            values[base..base + vals.len()].copy_from_slice(vals);
        }
        Ok(Self {
            rows: csr.rows(),
            cols: csr.cols(),
            width,
            col_indices,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Slots per row (the padded width).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total slots including padding.
    pub fn slots(&self) -> usize {
        self.col_indices.len()
    }

    /// Stored (non-padded) entries.
    pub fn nnz(&self) -> usize {
        self.col_indices.iter().filter(|&&c| c != PAD).count()
    }

    /// Padded column-index array (`rows × width`).
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Padded values array (`rows × width`).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The slot range of row `r`.
    pub fn row_slots(&self, r: usize) -> std::ops::Range<usize> {
        r * self.width..(r + 1) * self.width
    }

    /// Convert back to canonical CSR (drops padding).
    pub fn to_csr(&self) -> Csr<V> {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for s in self.row_slots(r) {
                if self.col_indices[s] != PAD {
                    triplets.push((r as u32, self.col_indices[s], self.values[s]));
                }
            }
        }
        Csr::from_triplets(self.rows, self.cols, triplets)
            .expect("ELL slots are in-bounds by construction")
    }
}

impl Ell<f32> {
    /// Reference sequential SpMV over the padded layout.
    pub fn spmv_ref(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut sum = 0.0f64;
            for s in self.row_slots(r) {
                let c = self.col_indices[s];
                if c != PAD {
                    sum += f64::from(self.values[s]) * f64::from(x[c as usize]);
                }
            }
            *yr = sum as f32;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn from_csr_pads_to_longest_row() {
        let e = Ell::from_csr(&sample(), 10.0).unwrap();
        assert_eq!(e.width(), 3);
        assert_eq!(e.slots(), 9);
        assert_eq!(e.nnz(), 5);
        // Row 1 is empty: all padding.
        assert!(e.row_slots(1).all(|s| e.col_indices()[s] == PAD));
    }

    #[test]
    fn roundtrips_through_csr() {
        let a = crate::gen::uniform(50, 40, 400, 61);
        let e = Ell::from_csr(&a, 50.0).unwrap();
        assert_eq!(e.to_csr(), a);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = crate::gen::banded(100, 3, 62);
        let e = Ell::from_csr(&a, 2.0).unwrap();
        let x = crate::dense::test_vector(100);
        assert_eq!(e.spmv_ref(&x), a.spmv_ref(&x));
    }

    #[test]
    fn fill_guard_rejects_pathological_padding() {
        // One row of 1000, the rest of 1: fill would be ~500x.
        let a = crate::gen::hub_rows(1_000, 1_000, 1, 1_000, 1, 63);
        assert!(matches!(
            Ell::from_csr(&a, 4.0),
            Err(Error::Invalid(_))
        ));
        // But a permissive threshold accepts it.
        assert!(Ell::from_csr(&a, 1e6).is_ok());
    }

    #[test]
    fn empty_matrix() {
        let e = Ell::<f32>::from_csr(&Csr::empty(4, 4), 1.0).unwrap();
        assert_eq!(e.width(), 0);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.spmv_ref(&[0.0; 4]), vec![0.0; 4]);
    }
}
