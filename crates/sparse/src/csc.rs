//! Compressed Sparse Column storage.
//!
//! Included because the paper lists CSC among the formats its iterator
//! mapping supports (§3.1/§4.1); under the abstraction a CSC matrix's
//! *tiles* are columns and its *atoms* are nonzeros.

use crate::error::{Error, Result};

/// A CSC sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<V = f32> {
    rows: usize,
    cols: usize,
    col_offsets: Vec<usize>,
    row_indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Copy> Csc<V> {
    /// Build from raw parts, validating the CSC invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_offsets: Vec<usize>,
        row_indices: Vec<u32>,
        values: Vec<V>,
    ) -> Result<Self> {
        if col_offsets.len() != cols + 1 {
            return Err(Error::Invalid(format!(
                "col_offsets has {} entries, expected cols+1 = {}",
                col_offsets.len(),
                cols + 1
            )));
        }
        if col_offsets.first() != Some(&0) || col_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::Invalid(
                "col_offsets must start at 0 and be non-decreasing".into(),
            ));
        }
        let nnz = *col_offsets.last().expect("len >= 1");
        if row_indices.len() != nnz || values.len() != nnz {
            return Err(Error::Invalid("nnz mismatch".into()));
        }
        if row_indices.iter().any(|&r| r as usize >= rows) {
            return Err(Error::Invalid("row index out of bounds".into()));
        }
        Ok(Self {
            rows,
            cols,
            col_offsets,
            row_indices,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (work tiles under the abstraction).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column offsets (`cols + 1` entries).
    pub fn col_offsets(&self) -> &[usize] {
        &self.col_offsets
    }

    /// Row indices (`nnz` entries).
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Values (`nnz` entries).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Nonzero count of column `c`.
    pub fn col_len(&self, c: usize) -> usize {
        self.col_offsets[c + 1] - self.col_offsets[c]
    }

    /// Row indices and values of column `c`.
    pub fn col(&self, c: usize) -> (&[u32], &[V]) {
        let range = self.col_offsets[c]..self.col_offsets[c + 1];
        (&self.row_indices[range.clone()], &self.values[range])
    }
}

impl Csc<f32> {
    /// Reference sequential SpMV via column scatter: `y = A·x`.
    pub fn spmv_ref(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0f32; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r as usize] += v * xc;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;
    use crate::csr::Csr;

    fn sample_csr() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_structure() {
        assert!(Csc::<f32>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csc::<f32>::from_parts(2, 1, vec![0, 1], vec![7], vec![1.0]).is_err());
        assert!(Csc::<f32>::from_parts(2, 1, vec![1, 1], vec![], vec![]).is_err());
    }

    #[test]
    fn column_access() {
        let csc = convert::csr_to_csc(&sample_csr());
        assert_eq!(csc.col_len(0), 2);
        let (rows, vals) = csc.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        assert_eq!(csc.col_len(2), 1);
    }

    #[test]
    fn csc_spmv_matches_csr_spmv() {
        let csr = sample_csr();
        let csc = convert::csr_to_csc(&csr);
        let x = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(csr.spmv_ref(&x), csc.spmv_ref(&x));
    }
}
