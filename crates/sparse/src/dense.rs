//! Dense vector/matrix helpers for the SpMV/SpMM kernels.

/// A row-major dense matrix (the `B` and `C` operands of SpMM, Listing 4).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<V = f32> {
    rows: usize,
    cols: usize,
    data: Vec<V>,
}

impl<V: Copy + Default> DenseMatrix<V> {
    /// A zeroed `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![V::default(); rows * cols],
        }
    }

    /// Build from a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<V>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer must be rows*cols");
        Self { rows, cols, data }
    }

    /// Fill from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> V) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major index of `(r, c)`.
    #[inline]
    pub fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> V {
        self.data[self.idx(r, c)]
    }

    /// Set element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: V) {
        let i = self.idx(r, c);
        self.data[i] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[V] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[V] {
        &self.data
    }

    /// Mutable flat buffer (for `simt::GlobalMem` views).
    pub fn as_mut_slice(&mut self) -> &mut [V] {
        &mut self.data
    }
}

/// Deterministic dense test vector: `x[i] = sin(i) * 0.5 + 1.0` — nonzero,
/// sign-varying, bounded, reproducible across platforms.
pub fn test_vector(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32).sin() * 0.5) + 1.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::<f32>::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0, 7.5]);
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_checks_length() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0f32; 3]);
    }

    #[test]
    fn test_vector_is_deterministic_and_nonzero() {
        let a = test_vector(100);
        let b = test_vector(100);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v != 0.0 && v.abs() <= 1.5));
    }
}
