//! Coordinate (triplet) storage.
//!
//! The natural ingest format — MatrixMarket files are COO — and one of the
//! formats the paper's framework maps to atoms/tiles (§3.1: every stored
//! entry is an atom; a row is a tile).

use crate::error::{Error, Result};

/// A COO sparse matrix (parallel row/col/value arrays).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<V = f32> {
    rows: usize,
    cols: usize,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Copy> Coo<V> {
    /// Build from parallel arrays, validating bounds and equal lengths.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_indices: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<V>,
    ) -> Result<Self> {
        if row_indices.len() != col_indices.len() || row_indices.len() != values.len() {
            return Err(Error::Invalid(
                "row/col/value arrays must have equal length".into(),
            ));
        }
        if row_indices.iter().any(|&r| r as usize >= rows) {
            return Err(Error::Invalid("row index out of bounds".into()));
        }
        if col_indices.iter().any(|&c| c as usize >= cols) {
            return Err(Error::Invalid("column index out of bounds".into()));
        }
        Ok(Self {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        })
    }

    /// An empty `rows × cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_indices: Vec::new(),
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Append one entry (bounds-checked).
    pub fn push(&mut self, r: u32, c: u32, v: V) -> Result<()> {
        if r as usize >= self.rows || c as usize >= self.cols {
            return Err(Error::Invalid(format!("entry ({r},{c}) out of bounds")));
        }
        self.row_indices.push(r);
        self.col_indices.push(c);
        self.values.push(v);
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row index array.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Column index array.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Value array.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Iterate `(row, col, value)` in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, V)> + '_ {
        self.row_indices
            .iter()
            .zip(&self.col_indices)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sort entries into row-major order (stable by (row, col)).
    pub fn sort(&mut self) {
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        perm.sort_by_key(|&i| (self.row_indices[i], self.col_indices[i]));
        self.row_indices = perm.iter().map(|&i| self.row_indices[i]).collect();
        self.col_indices = perm.iter().map(|&i| self.col_indices[i]).collect();
        self.values = perm.iter().map(|&i| self.values[i]).collect();
    }

    /// `true` if entries are sorted row-major with no duplicate positions.
    pub fn is_canonical(&self) -> bool {
        (1..self.nnz()).all(|i| {
            let prev = (self.row_indices[i - 1], self.col_indices[i - 1]);
            let cur = (self.row_indices[i], self.col_indices[i]);
            prev < cur
        })
    }
}

impl<V: Copy + std::ops::AddAssign> Coo<V> {
    /// Sort and merge duplicate coordinates by summing their values.
    pub fn canonicalize(&mut self) {
        self.sort();
        let n = self.nnz();
        if n == 0 {
            return;
        }
        let mut w = 0usize;
        for i in 1..n {
            if self.row_indices[i] == self.row_indices[w]
                && self.col_indices[i] == self.col_indices[w]
            {
                let add = self.values[i];
                self.values[w] += add;
            } else {
                w += 1;
                self.row_indices[w] = self.row_indices[i];
                self.col_indices[w] = self.col_indices[i];
                self.values[w] = self.values[i];
            }
        }
        self.row_indices.truncate(w + 1);
        self.col_indices.truncate(w + 1);
        self.values.truncate(w + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        Coo::from_parts(
            3,
            4,
            vec![2, 0, 2, 0, 2],
            vec![3, 0, 0, 2, 1],
            vec![5.0, 1.0, 3.0, 2.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Coo::<f32>::from_parts(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(Coo::<f32>::from_parts(2, 2, vec![5], vec![0], vec![1.0]).is_err());
        assert!(Coo::<f32>::from_parts(2, 2, vec![0], vec![5], vec![1.0]).is_err());
        assert!(sample().nnz() == 5);
    }

    #[test]
    fn push_checks_bounds() {
        let mut m = Coo::<f32>::empty(2, 2);
        assert!(m.push(1, 1, 3.0).is_ok());
        assert!(m.push(2, 0, 3.0).is_err());
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn sort_orders_row_major() {
        let mut m = sample();
        assert!(!m.is_canonical());
        m.sort();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 0, 3.0),
                (2, 1, 4.0),
                (2, 3, 5.0)
            ]
        );
        assert!(m.is_canonical());
    }

    #[test]
    fn canonicalize_sums_duplicates() {
        let mut m = Coo::from_parts(
            2,
            2,
            vec![0, 1, 0, 0],
            vec![0, 1, 0, 1],
            vec![1.0f32, 2.0, 3.0, 4.0],
        )
        .unwrap();
        m.canonicalize();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 4.0), (0, 1, 4.0), (1, 1, 2.0)]);
        assert!(m.is_canonical());
    }

    #[test]
    fn canonicalize_empty_is_noop() {
        let mut m = Coo::<f32>::empty(3, 3);
        m.canonicalize();
        assert_eq!(m.nnz(), 0);
    }
}
