//! Matrix reordering utilities — the data-side lever of the locality
//! story (the paper's §8 names "caching and locality" as the orthogonal
//! model still to be built; reordering is how practitioners move that
//! needle today).
//!
//! * [`degree_sort`] — rows sorted by descending length: concentrates the
//!   heavy rows, the worst case for equal-rows partitioning (used by the
//!   multi-GPU demo) and a common preprocessing step for binning;
//! * [`rcm`] — Reverse Cuthill–McKee: the classic bandwidth-reducing
//!   ordering that packs each row's column accesses close together,
//!   directly improving gather locality;
//! * [`permute_symmetric`] — apply a permutation to rows *and* columns
//!   (graph relabeling);
//! * [`permute_rows`] — row-only permutation.

use crate::csr::Csr;
use std::collections::VecDeque;

/// Permutation `perm` as "new index `i` holds old index `perm[i]`".
pub type Permutation = Vec<u32>;

/// Rows sorted by descending nonzero count (ties by index).
pub fn degree_sort<V: Copy>(a: &Csr<V>) -> Permutation {
    let mut order: Vec<u32> = (0..a.rows() as u32).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(a.row_len(r as usize)), r));
    order
}

/// Reverse Cuthill–McKee ordering of a symmetric pattern (treats the
/// pattern of `a ∪ aᵀ` implicitly by requiring `a` symmetric in
/// structure; non-symmetric inputs still produce a valid permutation,
/// just without the bandwidth guarantee).
pub fn rcm<V: Copy>(a: &Csr<V>) -> Permutation {
    let n = a.rows();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    // Process components from lowest-degree unvisited seeds (standard CM).
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&r| (a.row_len(r as usize), r));
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        let mut q = VecDeque::from([seed]);
        while let Some(u) = q.pop_front() {
            order.push(u);
            let (nbrs, _) = a.row(u as usize);
            let mut next: Vec<u32> = nbrs
                .iter()
                .copied()
                .filter(|&v| {
                    let fresh = (v as usize) < n && !visited[v as usize];
                    if fresh {
                        visited[v as usize] = true;
                    }
                    fresh
                })
                .collect();
            next.sort_by_key(|&v| (a.row_len(v as usize), v));
            q.extend(next);
        }
    }
    order.reverse(); // the "reverse" in RCM
    order
}

/// Apply `perm` to rows and columns: `B[i, j] = A[perm[i], perm[j]]`.
pub fn permute_symmetric<V: Copy>(a: &Csr<V>, perm: &[u32]) -> Csr<V> {
    assert_eq!(perm.len(), a.rows(), "permutation must cover all rows");
    assert_eq!(a.rows(), a.cols(), "symmetric permutation needs square");
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    let mut triplets = Vec::with_capacity(a.nnz());
    for (new_r, &old_r) in perm.iter().enumerate() {
        let (cols, vals) = a.row(old_r as usize);
        for (&c, &v) in cols.iter().zip(vals) {
            triplets.push((new_r as u32, inv[c as usize], v));
        }
    }
    Csr::from_triplets(a.rows(), a.cols(), triplets).expect("permutation preserves validity")
}

/// Apply `perm` to rows only: `B[i, :] = A[perm[i], :]`.
pub fn permute_rows<V: Copy>(a: &Csr<V>, perm: &[u32]) -> Csr<V> {
    assert_eq!(perm.len(), a.rows(), "permutation must cover all rows");
    let mut triplets = Vec::with_capacity(a.nnz());
    for (new_r, &old_r) in perm.iter().enumerate() {
        let (cols, vals) = a.row(old_r as usize);
        for (&c, &v) in cols.iter().zip(vals) {
            triplets.push((new_r as u32, c, v));
        }
    }
    Csr::from_triplets(a.rows(), a.cols(), triplets).expect("permutation preserves validity")
}

/// Structural bandwidth: `max |row − col|` over stored entries.
pub fn bandwidth<V: Copy>(a: &Csr<V>) -> usize {
    a.iter()
        .map(|(r, c, _)| (i64::from(r) - i64::from(c)).unsigned_abs() as usize)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.len() == n
            && p.iter().all(|&i| {
                let fresh = (i as usize) < n && !seen[i as usize];
                if fresh {
                    seen[i as usize] = true;
                }
                fresh
            })
    }

    #[test]
    fn degree_sort_orders_heaviest_first() {
        let a = crate::gen::powerlaw(500, 500, 6_000, 1.8, 1);
        let p = degree_sort(&a);
        assert!(is_permutation(&p, 500));
        let lens: Vec<usize> = p.iter().map(|&r| a.row_len(r as usize)).collect();
        assert!(lens.windows(2).all(|w| w[0] >= w[1]), "descending");
    }

    #[test]
    fn rcm_is_a_permutation_on_any_graph() {
        for seed in 0..3u64 {
            let a = crate::gen::uniform(200, 200, 1_500, seed);
            let p = rcm(&a);
            assert!(is_permutation(&p, 200), "seed {seed}");
        }
        // Disconnected graphs too.
        let a = crate::gen::block_diag(8, 4, 9);
        assert!(is_permutation(&rcm(&a), 32));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_a_shuffled_band() {
        // Take a narrow band, destroy its ordering, let RCM recover it.
        let band = crate::gen::banded(400, 2, 3);
        let shuffle: Vec<u32> = {
            let mut p: Vec<u32> = (0..400).collect();
            // Deterministic scramble.
            p.sort_by_key(|&i| (i as u64).wrapping_mul(2654435761) % 997);
            p
        };
        let scrambled = permute_symmetric(&band, &shuffle);
        assert!(bandwidth(&scrambled) > 50, "scramble destroyed the band");
        let recovered = permute_symmetric(&scrambled, &rcm(&scrambled));
        assert!(
            bandwidth(&recovered) < bandwidth(&scrambled) / 4,
            "RCM: {} -> {}",
            bandwidth(&scrambled),
            bandwidth(&recovered)
        );
    }

    #[test]
    fn symmetric_permutation_preserves_spmv_up_to_relabeling() {
        let a = crate::gen::uniform(100, 100, 800, 5);
        let p = rcm(&a);
        let b = permute_symmetric(&a, &p);
        let x: Vec<f32> = crate::dense::test_vector(100);
        // x permuted the same way: y_b = P y_a.
        let xp: Vec<f32> = p.iter().map(|&old| x[old as usize]).collect();
        let ya = a.spmv_ref(&x);
        let yb = b.spmv_ref(&xp);
        for (new, &old) in p.iter().enumerate() {
            assert!((yb[new] - ya[old as usize]).abs() < 1e-4);
        }
    }

    #[test]
    fn row_permutation_preserves_row_contents() {
        let a = crate::gen::uniform(50, 60, 300, 7);
        let p = degree_sort(&a);
        let b = permute_rows(&a, &p);
        for (new, &old) in p.iter().enumerate() {
            assert_eq!(b.row(new), a.row(old as usize));
        }
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        assert_eq!(bandwidth(&crate::gen::diagonal(64, 8)), 0);
        assert_eq!(bandwidth(&crate::gen::banded(64, 3, 8)), 3);
    }
}
