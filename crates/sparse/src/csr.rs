//! Compressed Sparse Row storage.
//!
//! The format at the heart of the paper's examples (Listing 1): three
//! arrays — row offsets, column indices, values. Rows are the paper's
//! *work tiles*; nonzeros are its *work atoms*; the whole matrix is the
//! *tile set* (§3.1).

use crate::error::{Error, Result};

/// A CSR sparse matrix with `V`-typed values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<V = f32> {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Copy> Csr<V> {
    /// Build from raw parts, validating every CSR invariant.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<u32>,
        values: Vec<V>,
    ) -> Result<Self> {
        if row_offsets.len() != rows + 1 {
            return Err(Error::Invalid(format!(
                "row_offsets has {} entries, expected rows+1 = {}",
                row_offsets.len(),
                rows + 1
            )));
        }
        if row_offsets.first() != Some(&0) {
            return Err(Error::Invalid("row_offsets must start at 0".into()));
        }
        if row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::Invalid("row_offsets must be non-decreasing".into()));
        }
        let nnz = *row_offsets.last().expect("len >= 1");
        if col_indices.len() != nnz || values.len() != nnz {
            return Err(Error::Invalid(format!(
                "nnz mismatch: offsets say {nnz}, indices {} values {}",
                col_indices.len(),
                values.len()
            )));
        }
        if col_indices.iter().any(|&c| c as usize >= cols) {
            return Err(Error::Invalid("column index out of bounds".into()));
        }
        Ok(Self {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// An empty `rows × cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_offsets: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from (row, col, value) triplets; duplicates are summed where
    /// `V: AddAssign` is not required because duplicates are kept adjacent
    /// — use [`crate::Coo`] if you need dedup-with-sum semantics.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(u32, u32, V)>,
    ) -> Result<Self> {
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_offsets = vec![0usize; rows + 1];
        let mut col_indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for &(r, c, v) in &triplets {
            if r as usize >= rows {
                return Err(Error::Invalid(format!("row index {r} out of bounds")));
            }
            row_offsets[r as usize + 1] += 1;
            col_indices.push(c);
            values.push(v);
        }
        for i in 0..rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        Self::from_parts(rows, cols, row_offsets, col_indices, values)
    }

    /// Number of rows (work tiles).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros (work atoms).
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// The row-offsets array (`rows + 1` entries).
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// The column-indices array (`nnz` entries).
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// The values array (`nnz` entries).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Mutable values (structure stays fixed).
    pub fn values_mut(&mut self) -> &mut [V] {
        &mut self.values
    }

    /// Mutable access to column indices and values together, for in-place
    /// per-row reordering (crate-internal; invariants are re-checked by
    /// callers).
    pub(crate) fn cols_vals_mut(&mut self) -> (&mut [u32], &mut [V]) {
        (&mut self.col_indices, &mut self.values)
    }

    /// Nonzero count of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row_offsets[r + 1] - self.row_offsets[r]
    }

    /// The half-open atom range `[start, end)` of row `r`.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_offsets[r]..self.row_offsets[r + 1]
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[V]) {
        let range = self.row_range(r);
        (&self.col_indices[range.clone()], &self.values[range])
    }

    /// Iterate `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, V)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Lengths of every row — the paper's "atoms per tile" sequence.
    pub fn row_lengths(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_len(r)).collect()
    }

    /// Approximate device-memory footprint in bytes (offsets as 4-byte on
    /// device, indices 4-byte, values `size_of::<V>()`).
    pub fn device_bytes(&self) -> u64 {
        (4 * (self.rows + 1) + 4 * self.nnz() + std::mem::size_of::<V>() * self.nnz()) as u64
    }

    /// Extract the contiguous row block `rows_range` as its own matrix
    /// (offsets rebased to zero, column space unchanged) — the unit of a
    /// 1-D multi-device partition.
    pub fn row_slice(&self, rows_range: std::ops::Range<usize>) -> Csr<V> {
        assert!(
            rows_range.start <= rows_range.end && rows_range.end <= self.rows,
            "row slice out of bounds"
        );
        let base = self.row_offsets[rows_range.start];
        let end = self.row_offsets[rows_range.end];
        let row_offsets: Vec<usize> = self.row_offsets[rows_range.start..=rows_range.end]
            .iter()
            .map(|&o| o - base)
            .collect();
        Csr {
            rows: rows_range.len(),
            cols: self.cols,
            row_offsets,
            col_indices: self.col_indices[base..end].to_vec(),
            values: self.values[base..end].to_vec(),
        }
    }
}

impl Csr<f32> {
    /// Reference sequential SpMV: `y = A·x`. Ground truth for every test
    /// and every simulated kernel validation.
    pub fn spmv_ref(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "x must have one entry per column");
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut sum = 0.0f64; // accumulate in f64 to stabilize the reference
            for (&c, &v) in cols.iter().zip(vals) {
                sum += f64::from(v) * f64::from(x[c as usize]);
            }
            *yr = sum as f32;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3×4 example:
    /// ```text
    /// [1 0 2 0]
    /// [0 0 0 0]
    /// [3 4 0 5]
    /// ```
    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors_agree_with_structure() {
        let a = sample();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.row_len(0), 2);
        assert_eq!(a.row_len(1), 0);
        assert_eq!(a.row_len(2), 3);
        assert_eq!(a.row_range(2), 2..5);
        let (c, v) = a.row(2);
        assert_eq!(c, &[0, 1, 3]);
        assert_eq!(v, &[3.0, 4.0, 5.0]);
        assert_eq!(a.row_lengths(), vec![2, 0, 3]);
    }

    #[test]
    fn iter_yields_all_entries_in_row_major_order() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(
            entries,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 0, 3.0),
                (2, 1, 4.0),
                (2, 3, 5.0)
            ]
        );
    }

    #[test]
    fn from_triplets_sorts_and_matches() {
        let t = vec![
            (2u32, 3u32, 5.0f32),
            (0, 0, 1.0),
            (2, 0, 3.0),
            (0, 2, 2.0),
            (2, 1, 4.0),
        ];
        let a = Csr::from_triplets(3, 4, t).unwrap();
        assert_eq!(a, sample());
    }

    #[test]
    fn spmv_ref_computes_expected_product() {
        let a = sample();
        let y = a.spmv_ref(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![1.0 + 6.0, 0.0, 3.0 + 8.0 + 20.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::<f32>::empty(5, 7);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.spmv_ref(&[0.0; 7]), vec![0.0; 5]);
    }

    #[test]
    fn invariants_are_enforced() {
        // wrong offsets length
        assert!(Csr::<f32>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // not starting at zero
        assert!(Csr::<f32>::from_parts(1, 2, vec![1, 1], vec![], vec![]).is_err());
        // decreasing offsets
        assert!(
            Csr::<f32>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // column out of range
        assert!(Csr::<f32>::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // nnz mismatch
        assert!(Csr::<f32>::from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        // triplet row out of range
        assert!(Csr::from_triplets(1, 1, vec![(3u32, 0u32, 1.0f32)]).is_err());
    }

    #[test]
    #[should_panic(expected = "one entry per column")]
    fn spmv_ref_checks_x_length() {
        sample().spmv_ref(&[1.0]);
    }

    #[test]
    fn device_bytes_counts_all_arrays() {
        let a = sample();
        assert_eq!(a.device_bytes(), (4 * 4 + 4 * 5 + 4 * 5) as u64);
    }

    #[test]
    fn row_slice_rebases_offsets() {
        let a = sample();
        let s = a.row_slice(1..3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.row_offsets(), &[0, 0, 3]);
        assert_eq!(s.row(1).0, &[0, 1, 3]);
        // Full slice is identity; empty slice is empty.
        assert_eq!(a.row_slice(0..3), a);
        assert_eq!(a.row_slice(2..2).nnz(), 0);
    }

    #[test]
    fn row_slices_partition_spmv() {
        let a = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let full = a.spmv_ref(&x);
        let top = a.row_slice(0..2).spmv_ref(&x);
        let bot = a.row_slice(2..3).spmv_ref(&x);
        assert_eq!(&full[..2], &top[..]);
        assert_eq!(&full[2..], &bot[..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_slice_bounds_checked() {
        let _ = sample().row_slice(1..9);
    }
}
