//! Row-aligned sharding of a CSR matrix with halo (ghost-column)
//! metadata — the distribution layer under multi-shard serving.
//!
//! A [`ShardPlan`] cuts a matrix into contiguous row blocks, one per
//! shard. Row alignment is the load-bearing choice: each shard's partial
//! `y` is a contiguous slice of the global result, so merging shard
//! outputs is pure concatenation — bitwise identical to a single-shard
//! run, with no cross-shard reduction that could reassociate floating
//! point (see `DESIGN.md` §11).
//!
//! Three partitioners mirror the intra-device scheduling story one more
//! level up (after `kernels::spmv_multi` did it across devices):
//!
//! * [`ShardStrategy::Rows1D`] — equal rows per shard (thread-mapped
//!   writ large; vulnerable to nnz skew);
//! * [`ShardStrategy::Nnz1D`] — equal nonzeros per shard via binary
//!   search on the row offsets (merge-path's insight);
//! * [`ShardStrategy::RowNnz2D`] — the 2D compromise: balances the
//!   joint objective ½·rows + ½·nnz, so a shard is penalized both for
//!   drawing too many rows (output/merge traffic) and too many nonzeros
//!   (compute).
//!
//! Each shard also carries *halo* metadata: the distinct input columns
//! it reads that another shard owns (ownership of `x[j]` follows the
//! row boundaries, clamped to the column count). Those ghost entries
//! are what a distributed run must fetch before computing, and their
//! byte volume is what `simt::exchange` converts into a communication
//! charge.

use std::ops::Range;

use crate::csr::Csr;

/// How rows are divided among shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardStrategy {
    /// Equal row counts per shard (1D over rows).
    Rows1D,
    /// Equal nonzero counts per shard (1D over nnz; binary search on
    /// the row offsets).
    Nnz1D,
    /// Joint row×nnz balance: each shard receives an equal share of
    /// `½·rows + ½·nnz`, trading output size against compute.
    RowNnz2D,
}

impl ShardStrategy {
    /// Stable display name (used in CSV output).
    pub fn name(self) -> &'static str {
        match self {
            Self::Rows1D => "rows1d",
            Self::Nnz1D => "nnz1d",
            Self::RowNnz2D => "rownnz2d",
        }
    }
}

/// One shard's slice of the matrix, plus its communication footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// The global rows this shard owns (contiguous, half-open).
    pub rows: Range<usize>,
    /// Nonzeros inside that row block.
    pub nnz: usize,
    /// Distinct referenced columns owned by *other* shards — the ghost
    /// entries of `x` this shard must fetch before an SpMV.
    pub ghost_cols: usize,
    /// Ghost columns broken down by owning shard (`shards` entries;
    /// the own-shard entry is always 0).
    pub ghost_by_owner: Vec<usize>,
}

impl ShardInfo {
    /// Bytes of `f32` input this shard fetches from its peers.
    pub fn halo_bytes(&self) -> u64 {
        4 * self.ghost_cols as u64
    }

    /// Bytes of `f32` output this shard contributes to the merge.
    pub fn output_bytes(&self) -> u64 {
        4 * self.rows.len() as u64
    }
}

/// A row-aligned partition of one matrix across `n` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The strategy that produced the boundaries.
    pub strategy: ShardStrategy,
    /// Row boundaries (`shards + 1` entries, monotone, covering
    /// `0..rows`).
    pub boundaries: Vec<usize>,
    /// Per-shard metadata, in shard order.
    pub shards: Vec<ShardInfo>,
    cols: usize,
}

impl ShardPlan {
    /// Partition `a` into `shards` contiguous row blocks and compute
    /// each block's ghost-column footprint.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn partition<V: Copy>(a: &Csr<V>, shards: usize, strategy: ShardStrategy) -> Self {
        assert!(shards > 0, "need at least one shard");
        let offsets = a.row_offsets();
        let mut boundaries = Vec::with_capacity(shards + 1);
        boundaries.push(0usize);
        for i in 1..shards {
            let row = match strategy {
                ShardStrategy::Rows1D => a.rows() * i / shards,
                ShardStrategy::Nnz1D => {
                    let target = a.nnz() * i / shards;
                    offsets.partition_point(|&o| o < target)
                }
                ShardStrategy::RowNnz2D => {
                    // cost(r) = r + offsets[r] is strictly increasing in
                    // r, so the equal-share cut is a binary search on the
                    // joint objective (the ½/½ weights cancel).
                    let target = (a.rows() + a.nnz()) * i / shards;
                    let (mut lo, mut hi) = (0usize, a.rows() + 1);
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        if mid + offsets[mid] < target {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    lo
                }
            };
            let prev = *boundaries.last().expect("non-empty");
            boundaries.push(row.min(a.rows()).max(prev));
        }
        boundaries.push(a.rows());

        let owner_of_col = |c: usize| -> usize {
            // x-ownership follows the row boundaries (exact for the
            // square matrices the corpus generates; clamped otherwise).
            let r = c.min(a.rows().saturating_sub(1));
            boundaries.partition_point(|&b| b <= r).saturating_sub(1)
        };
        let mut shard_infos = Vec::with_capacity(shards);
        let mut seen = vec![usize::MAX; a.cols()];
        for s in 0..shards {
            let rows = boundaries[s]..boundaries[s + 1];
            let nnz = offsets[rows.end] - offsets[rows.start];
            let mut ghost_by_owner = vec![0usize; shards];
            let mut ghost_cols = 0usize;
            for &c in &a.col_indices()[offsets[rows.start]..offsets[rows.end]] {
                let c = c as usize;
                if seen[c] == s {
                    continue; // already counted for this shard
                }
                seen[c] = s;
                let owner = owner_of_col(c);
                if owner != s {
                    ghost_cols += 1;
                    ghost_by_owner[owner] += 1;
                }
            }
            shard_infos.push(ShardInfo {
                rows,
                nnz,
                ghost_cols,
                ghost_by_owner,
            });
        }
        Self {
            strategy,
            boundaries,
            shards: shard_infos,
            cols: a.cols(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning global row `r`.
    pub fn owner_of_row(&self, r: usize) -> usize {
        self.boundaries.partition_point(|&b| b <= r).saturating_sub(1)
    }

    /// Materialize shard `s`'s sub-matrix (row slice; the column space
    /// is kept so the full replicated `x` applies unchanged).
    pub fn submatrix<V: Copy>(&self, a: &Csr<V>, s: usize) -> Csr<V> {
        a.row_slice(self.shards[s].rows.clone())
    }

    /// Total ghost bytes across all shards (the exchange volume one
    /// distributed SpMV generates).
    pub fn total_halo_bytes(&self) -> u64 {
        self.shards.iter().map(ShardInfo::halo_bytes).sum()
    }

    /// The largest single shard's ghost bytes — the wall-clock-bounding
    /// transfer in a bulk-synchronous exchange.
    pub fn max_halo_bytes(&self) -> u64 {
        self.shards.iter().map(ShardInfo::halo_bytes).max().unwrap_or(0)
    }

    /// The largest shard output slice in bytes — bounds the result
    /// gather in a bulk-synchronous merge.
    pub fn max_output_bytes(&self) -> u64 {
        self.shards.iter().map(ShardInfo::output_bytes).max().unwrap_or(0)
    }

    /// Column count of the partitioned matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    const STRATEGIES: [ShardStrategy; 3] = [
        ShardStrategy::Rows1D,
        ShardStrategy::Nnz1D,
        ShardStrategy::RowNnz2D,
    ];

    #[test]
    fn boundaries_cover_all_rows_monotonically() {
        let a = gen::powerlaw(5_000, 5_000, 80_000, 1.8, 7);
        for strategy in STRATEGIES {
            for n in [1usize, 2, 3, 8, 16] {
                let p = ShardPlan::partition(&a, n, strategy);
                assert_eq!(p.boundaries.len(), n + 1);
                assert_eq!(p.boundaries[0], 0);
                assert_eq!(*p.boundaries.last().unwrap(), a.rows());
                assert!(p.boundaries.windows(2).all(|w| w[0] <= w[1]));
                let total_nnz: usize = p.shards.iter().map(|s| s.nnz).sum();
                assert_eq!(total_nnz, a.nnz(), "{strategy:?} n={n}");
            }
        }
    }

    #[test]
    fn submatrices_reassemble_the_matrix() {
        let a = gen::uniform(1_000, 1_000, 12_000, 8);
        let p = ShardPlan::partition(&a, 4, ShardStrategy::Nnz1D);
        let mut rows = 0usize;
        for s in 0..p.num_shards() {
            let sub = p.submatrix(&a, s);
            assert_eq!(sub.rows(), p.shards[s].rows.len());
            assert_eq!(sub.cols(), a.cols());
            assert_eq!(sub.nnz(), p.shards[s].nnz);
            rows += sub.rows();
        }
        assert_eq!(rows, a.rows());
    }

    #[test]
    fn diagonal_matrix_has_no_ghosts() {
        let a = gen::diagonal(256, 3);
        for strategy in STRATEGIES {
            let p = ShardPlan::partition(&a, 8, strategy);
            assert_eq!(p.total_halo_bytes(), 0, "{strategy:?}");
            assert!(p.shards.iter().all(|s| s.ghost_cols == 0));
        }
    }

    #[test]
    fn ghost_accounting_is_consistent() {
        let a = gen::powerlaw(2_000, 2_000, 30_000, 1.6, 9);
        let p = ShardPlan::partition(&a, 4, ShardStrategy::Rows1D);
        assert!(p.total_halo_bytes() > 0, "random pattern must cross shards");
        for (s, info) in p.shards.iter().enumerate() {
            assert_eq!(info.ghost_by_owner.len(), 4);
            assert_eq!(info.ghost_by_owner[s], 0, "no ghosts from self");
            assert_eq!(
                info.ghost_by_owner.iter().sum::<usize>(),
                info.ghost_cols
            );
            assert_eq!(info.halo_bytes(), 4 * info.ghost_cols as u64);
            // A shard cannot fetch more distinct ghosts than it has
            // distinct referenced columns (bounded by both nnz and cols).
            assert!(info.ghost_cols <= info.nnz.min(a.cols()));
        }
        assert!(p.max_halo_bytes() <= p.total_halo_bytes());
    }

    #[test]
    fn nnz_balance_ranks_strategies_on_skewed_matrices() {
        let a = gen::powerlaw(20_000, 20_000, 300_000, 1.7, 10);
        let spread = |p: &ShardPlan| {
            let max = p.shards.iter().map(|s| s.nnz).max().unwrap() as f64;
            max / (a.nnz() as f64 / p.num_shards() as f64)
        };
        let rows = ShardPlan::partition(&a, 8, ShardStrategy::Rows1D);
        let nnz = ShardPlan::partition(&a, 8, ShardStrategy::Nnz1D);
        let joint = ShardPlan::partition(&a, 8, ShardStrategy::RowNnz2D);
        assert!(spread(&nnz) < 1.1, "nnz1d spread {}", spread(&nnz));
        assert!(spread(&nnz) <= spread(&joint) + 1e-9);
        assert!(spread(&joint) <= spread(&rows) + 1e-9);
    }

    #[test]
    fn row_owner_matches_boundaries() {
        let a = gen::uniform(100, 100, 600, 11);
        let p = ShardPlan::partition(&a, 3, ShardStrategy::Rows1D);
        for s in 0..p.num_shards() {
            for r in p.shards[s].rows.clone() {
                assert_eq!(p.owner_of_row(r), s);
            }
        }
    }

    #[test]
    fn more_shards_than_rows_yields_empty_tail_shards() {
        let a = gen::uniform(5, 5, 10, 12);
        let p = ShardPlan::partition(&a, 16, ShardStrategy::Nnz1D);
        assert_eq!(p.num_shards(), 16);
        assert_eq!(*p.boundaries.last().unwrap(), 5);
        let nonempty = p.shards.iter().filter(|s| !s.rows.is_empty()).count();
        assert!(nonempty <= 5);
        let total: usize = p.shards.iter().map(|s| s.rows.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let a = gen::uniform(10, 10, 20, 13);
        let _ = ShardPlan::partition(&a, 0, ShardStrategy::Rows1D);
    }
}
