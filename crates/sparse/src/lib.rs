//! # sparse — sparse matrix formats, generators, and the evaluation corpus
//!
//! Substrate crate for the PPoPP '23 load-balancing reproduction. Provides:
//!
//! * the storage formats the paper's framework ingests — [`Csr`], [`Csc`],
//!   [`Coo`] — plus dense vectors/matrices and conversions between them
//!   (§3.1 / §4.1 of the paper);
//! * MatrixMarket (`.mtx`) reading and writing, so real SuiteSparse files
//!   can be used when present ([`mm`]);
//! * deterministic synthetic matrix generators spanning the structural
//!   families that drive SuiteSparse's diversity ([`gen`]);
//! * row-distribution statistics quantifying load imbalance ([`stats`]);
//! * the **SuiteSparse surrogate corpus** used by every experiment
//!   ([`corpus`]): ~300 seeded matrices covering the nnz and imbalance
//!   ranges of the real collection (the real collection is 886 GB and not
//!   available offline — see DESIGN.md for the substitution argument).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convert;
pub mod coo;
pub mod corpus;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod ell;
pub mod error;
pub mod format;
pub mod gen;
pub mod hybrid;
pub mod mm;
pub mod partition;
pub mod reorder;
pub mod rng;
pub mod stats;

pub use coo::Coo;
pub use corpus::{suite_sparse_surrogate, CorpusSpec, Family};
pub use csc::Csc;
pub use csr::Csr;
pub use dense::DenseMatrix;
pub use ell::Ell;
pub use error::{Error, Result};
pub use format::{FormatKind, FormatStats, ParseFormatError};
pub use hybrid::Hybrid;
pub use partition::{ShardInfo, ShardPlan, ShardStrategy};
pub use rng::Prng;
pub use stats::RowStats;
