//! Row-length distribution statistics — the quantitative face of the
//! paper's "load imbalance".
//!
//! A matrix whose rows have wildly different nonzero counts defeats
//! tile-per-thread scheduling (§1); these metrics let the corpus and the
//! experiment reports state *how* irregular each dataset is. The
//! coefficient of variation (CV) and the Gini coefficient of the
//! row-length distribution are the two standard summaries; `max/mean` is
//! the "longest pole" ratio that predicts thread-mapped worst cases.

use crate::csr::Csr;

/// Summary statistics of a row-length (atoms-per-tile) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowStats {
    /// Number of rows (tiles).
    pub rows: usize,
    /// Total nonzeros (atoms).
    pub nnz: usize,
    /// Shortest row.
    pub min: usize,
    /// Longest row.
    pub max: usize,
    /// Mean row length.
    pub mean: f64,
    /// Standard deviation of row lengths.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`; 0 for a regular
    /// matrix, ≳1 for power-law structure).
    pub cv: f64,
    /// Gini coefficient of row lengths (0 = perfectly even, → 1 = all
    /// atoms in one row).
    pub gini: f64,
    /// `max / mean` — the factor by which the longest pole exceeds the
    /// average tile.
    pub max_over_mean: f64,
    /// Fraction of rows that are empty.
    pub empty_frac: f64,
}

impl RowStats {
    /// Compute statistics from a row-length sequence.
    pub fn from_lengths(lengths: &[usize]) -> Self {
        let rows = lengths.len();
        if rows == 0 {
            return Self {
                rows: 0,
                nnz: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
                cv: 0.0,
                gini: 0.0,
                max_over_mean: 0.0,
                empty_frac: 0.0,
            };
        }
        let nnz: usize = lengths.iter().sum();
        let min = lengths.iter().copied().min().unwrap_or(0);
        let max = lengths.iter().copied().max().unwrap_or(0);
        let mean = nnz as f64 / rows as f64;
        let var = lengths
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / rows as f64;
        let std_dev = var.sqrt();
        let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };
        let gini = gini_coefficient(lengths);
        let empty = lengths.iter().filter(|&&l| l == 0).count();
        Self {
            rows,
            nnz,
            min,
            max,
            mean,
            std_dev,
            cv,
            gini,
            max_over_mean: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            empty_frac: empty as f64 / rows as f64,
        }
    }

    /// Statistics of a CSR matrix's rows.
    pub fn of<V: Copy>(csr: &Csr<V>) -> Self {
        Self::from_lengths(&csr.row_lengths())
    }
}

/// Gini coefficient of a non-negative sample (0 = equal, → 1 = one holder).
fn gini_coefficient(lengths: &[usize]) -> f64 {
    let n = lengths.len();
    let total: usize = lengths.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable();
    // G = (2 * sum_i(i * x_i) / (n * sum(x))) - (n + 1)/n  with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_matrix_has_zero_dispersion() {
        let s = RowStats::from_lengths(&[5; 100]);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.cv, 0.0);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.max_over_mean, 1.0);
        assert_eq!(s.empty_frac, 0.0);
    }

    #[test]
    fn single_hub_row_maximizes_inequality() {
        let mut lengths = vec![0usize; 100];
        lengths[42] = 1000;
        let s = RowStats::from_lengths(&lengths);
        assert_eq!(s.nnz, 1000);
        assert!(s.gini > 0.98, "gini = {}", s.gini);
        assert!(s.max_over_mean > 99.0);
        assert!((s.empty_frac - 0.99).abs() < 1e-12);
    }

    #[test]
    fn gini_of_half_and_half() {
        // Half the rows hold everything: G = 0.5 in the large-n limit.
        let mut lengths = vec![0usize; 1000];
        for l in lengths.iter_mut().take(500) {
            *l = 10;
        }
        let s = RowStats::from_lengths(&lengths);
        assert!((s.gini - 0.5).abs() < 0.01, "gini = {}", s.gini);
    }

    #[test]
    fn empty_input_is_all_zeros() {
        let s = RowStats::from_lengths(&[]);
        assert_eq!(s.rows, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn mean_and_std_match_hand_computation() {
        let s = RowStats::from_lengths(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        let expected_std = (8.0f64 / 3.0).sqrt();
        assert!((s.std_dev - expected_std).abs() < 1e-12);
        assert!((s.cv - expected_std / 4.0).abs() < 1e-12);
    }

    #[test]
    fn of_reads_csr_rows() {
        let csr = Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0f32, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let s = RowStats::of(&csr);
        assert_eq!(s.rows, 3);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.max, 3);
        assert!((s.empty_frac - 1.0 / 3.0).abs() < 1e-12);
    }
}
