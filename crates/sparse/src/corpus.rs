//! The SuiteSparse surrogate corpus.
//!
//! The paper evaluates on (approximately) the entire SuiteSparse Matrix
//! Collection — ~2,800 matrices, 886 GB on disk. That collection is not
//! available offline, so every experiment in this reproduction runs over
//! this deterministic synthetic surrogate instead: ~250 seeded matrices
//! spanning the same two axes the evaluation plots — total work (nnz,
//! roughly 300 to 4 M) and row-length imbalance (CV ~0 regular PDE
//! matrices up to Gini ≳ 0.9 hub-dominated graphs). A handful of entries
//! are shaped after specific matrices the paper's artifact names
//! (`chesapeake`, `08blocks`, `1138_bus`, `144`).
//!
//! Specs are cheap descriptions; [`CorpusSpec::build`] materializes the
//! matrix on demand so harnesses can stream the corpus without holding it
//! all in memory.

use crate::csr::Csr;
use crate::gen;

/// Structural family of a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Erdős–Rényi uniform random.
    Uniform,
    /// Power-law row-degree distribution.
    PowerLaw,
    /// RMAT (Graph500) adjacency.
    Rmat,
    /// Banded / tridiagonal-like.
    Banded,
    /// 5- or 9-point grid stencils.
    Stencil,
    /// Pure diagonal.
    Diagonal,
    /// Dense block-diagonal.
    BlockDiag,
    /// Single-column sparse vector.
    SingleColumn,
    /// Few monster rows among tiny rows (adversarial).
    HubRows,
    /// Small named lookalikes of artifact matrices.
    Tiny,
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    Uniform { rows: usize, cols: usize, nnz: usize },
    PowerLaw { rows: usize, cols: usize, nnz: usize, alpha: f64 },
    Rmat { scale: u32, ef: usize },
    Banded { n: usize, bw: usize },
    Stencil5 { nx: usize, ny: usize },
    Stencil9 { nx: usize, ny: usize },
    Diagonal { n: usize },
    BlockDiag { blocks: usize, bsize: usize },
    SingleColumn { rows: usize, nnz: usize },
    HubRows { rows: usize, cols: usize, hubs: usize, hub_len: usize, base_len: usize },
}

/// A recipe for one corpus matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Unique dataset name (plays the role of SuiteSparse's matrix name in
    /// every CSV the harness emits).
    pub name: String,
    /// Structural family.
    pub family: Family,
    /// Generator seed.
    pub seed: u64,
    kind: Kind,
}

impl CorpusSpec {
    /// Materialize the matrix.
    pub fn build(&self) -> Csr<f32> {
        match self.kind {
            Kind::Uniform { rows, cols, nnz } => gen::uniform(rows, cols, nnz, self.seed),
            Kind::PowerLaw { rows, cols, nnz, alpha } => {
                gen::powerlaw(rows, cols, nnz, alpha, self.seed)
            }
            Kind::Rmat { scale, ef } => gen::rmat(scale, ef, (0.57, 0.19, 0.19), self.seed),
            Kind::Banded { n, bw } => gen::banded(n, bw, self.seed),
            Kind::Stencil5 { nx, ny } => gen::stencil5(nx, ny, self.seed),
            Kind::Stencil9 { nx, ny } => gen::stencil9(nx, ny, self.seed),
            Kind::Diagonal { n } => gen::diagonal(n, self.seed),
            Kind::BlockDiag { blocks, bsize } => gen::block_diag(blocks, bsize, self.seed),
            Kind::SingleColumn { rows, nnz } => gen::single_column(rows, nnz, self.seed),
            Kind::HubRows { rows, cols, hubs, hub_len, base_len } => {
                gen::hub_rows(rows, cols, hubs, hub_len, base_len, self.seed)
            }
        }
    }

    /// Rough nnz of the built matrix, without building it (exact for the
    /// structured families, a target for the random ones).
    pub fn approx_nnz(&self) -> usize {
        match self.kind {
            Kind::Uniform { nnz, .. } | Kind::PowerLaw { nnz, .. } => nnz,
            Kind::Rmat { scale, ef } => ef << scale,
            Kind::Banded { n, bw } => n * (2 * bw + 1),
            Kind::Stencil5 { nx, ny } => 5 * nx * ny,
            Kind::Stencil9 { nx, ny } => 9 * nx * ny,
            Kind::Diagonal { n } => n,
            Kind::BlockDiag { blocks, bsize } => blocks * bsize * bsize,
            Kind::SingleColumn { nnz, .. } => nnz,
            Kind::HubRows { rows, hubs, hub_len, base_len, .. } => {
                hubs * hub_len + (rows - hubs) * base_len
            }
        }
    }
}

fn spec(name: String, family: Family, seed: u64, kind: Kind) -> CorpusSpec {
    CorpusSpec {
        name,
        family,
        seed,
        kind,
    }
}

/// Build the full surrogate corpus (~250 matrices, ~70 M total nonzeros).
pub fn suite_sparse_surrogate() -> Vec<CorpusSpec> {
    let mut out = Vec::new();
    let mut seed = 1000u64;
    let mut next_seed = || {
        seed += 1;
        seed
    };

    // --- Erdős–Rényi: regular-ish, spanning 4 decades of nnz -------------
    for &rows in &[1_000usize, 4_000, 16_000, 65_000, 260_000] {
        for &mean in &[4usize, 16, 64] {
            for rep in 0..3u64 {
                let nnz = rows * mean;
                if nnz > 4_200_000 {
                    continue;
                }
                out.push(spec(
                    format!("er_{rows}r_d{mean}_{rep}"),
                    Family::Uniform,
                    next_seed(),
                    Kind::Uniform {
                        rows,
                        cols: rows,
                        nnz,
                    },
                ));
            }
        }
    }

    // --- Rectangular (tall/wide) uniform matrices -------------------------
    for &(rows, cols) in &[
        (2_000usize, 200_000usize),
        (200_000, 2_000),
        (500, 50_000),
        (50_000, 500),
        (1_000_000, 64),
        (64, 1_000_000),
    ] {
        out.push(spec(
            format!("rect_{rows}x{cols}"),
            Family::Uniform,
            next_seed(),
            Kind::Uniform {
                rows,
                cols,
                nnz: (rows.max(cols) * 8).min(2_000_000),
            },
        ));
    }

    // --- Power-law: the imbalanced heart of the corpus -------------------
    for &rows in &[4_000usize, 16_000, 65_000, 260_000] {
        for &mean in &[8usize, 16, 32] {
            for &alpha in &[1.7f64, 2.0, 2.5] {
                let nnz = rows * mean;
                if nnz > 4_200_000 {
                    continue;
                }
                out.push(spec(
                    format!("pl_{rows}r_d{mean}_a{}", (alpha * 10.0) as u32),
                    Family::PowerLaw,
                    next_seed(),
                    Kind::PowerLaw {
                        rows,
                        cols: rows,
                        nnz,
                        alpha,
                    },
                ));
            }
        }
    }

    // --- RMAT graphs ------------------------------------------------------
    for &scale in &[8u32, 10, 11, 12, 13, 14, 15, 16] {
        for &ef in &[8usize, 16] {
            if (ef << scale) > 4_200_000 {
                continue;
            }
            out.push(spec(
                format!("rmat_s{scale}_e{ef}"),
                Family::Rmat,
                next_seed(),
                Kind::Rmat { scale, ef },
            ));
        }
    }

    // --- Structured / PDE --------------------------------------------------
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        for &bw in &[1usize, 2, 4, 8, 16] {
            if n * (2 * bw + 1) > 4_200_000 {
                continue;
            }
            out.push(spec(
                format!("band_{n}n_bw{bw}"),
                Family::Banded,
                next_seed(),
                Kind::Banded { n, bw },
            ));
        }
    }
    for &side in &[32usize, 64, 100, 178, 316, 562, 700] {
        out.push(spec(
            format!("grid5_{side}x{side}"),
            Family::Stencil,
            next_seed(),
            Kind::Stencil5 { nx: side, ny: side },
        ));
        out.push(spec(
            format!("grid9_{side}x{side}"),
            Family::Stencil,
            next_seed(),
            Kind::Stencil9 { nx: side, ny: side },
        ));
    }
    for &n in &[100usize, 10_000, 100_000, 1_000_000] {
        out.push(spec(
            format!("diag_{n}"),
            Family::Diagonal,
            next_seed(),
            Kind::Diagonal { n },
        ));
    }
    for &(blocks, bsize) in &[
        (64usize, 16usize),
        (256, 32),
        (1024, 8),
        (32, 128),
        (4096, 4),
        (128, 64),
    ] {
        out.push(spec(
            format!("blkdiag_{blocks}x{bsize}"),
            Family::BlockDiag,
            next_seed(),
            Kind::BlockDiag { blocks, bsize },
        ));
    }

    // --- Single-column sparse vectors (the CUB heuristic case) -----------
    for &rows in &[1_000usize, 10_000, 100_000, 1_000_000] {
        for &fill in &[10usize, 30, 70, 95] {
            out.push(spec(
                format!("spvec_{rows}r_f{fill}"),
                Family::SingleColumn,
                next_seed(),
                Kind::SingleColumn {
                    rows,
                    nnz: rows * fill / 100,
                },
            ));
        }
    }

    // --- Hub-row adversaries ----------------------------------------------
    for &rows in &[10_000usize, 100_000] {
        for &hubs in &[1usize, 4, 8, 64] {
            let hub_len = (rows / 10).min(50_000);
            out.push(spec(
                format!("hub_{rows}r_h{hubs}"),
                Family::HubRows,
                next_seed(),
                Kind::HubRows {
                    rows,
                    cols: rows,
                    hubs,
                    hub_len,
                    base_len: 3,
                },
            ));
        }
    }

    // --- Star rows: one (near-)dense row, the adversarial extreme --------
    // Real SuiteSparse has these (circuit matrices, constraint rows); they
    // are where warp-per-row baselines collapse hardest.
    for &(rows, hub_len) in &[
        (200_000usize, 200_000usize),
        (500_000, 500_000),
        (2_000_000, 2_000_000),
    ] {
        out.push(spec(
            format!("star_{rows}"),
            Family::HubRows,
            next_seed(),
            Kind::HubRows {
                rows,
                cols: rows,
                hubs: 1,
                hub_len,
                base_len: 1,
            },
        ));
    }
    // Wide stars: a handful of rows, one of them near-dense — the shape
    // where a warp-per-row baseline's critical path dwarfs all other work.
    for &(rows, cols) in &[(1_000usize, 2_000_000usize), (5_000, 500_000), (200, 100_000)] {
        out.push(spec(
            format!("widestar_{rows}x{cols}"),
            Family::HubRows,
            next_seed(),
            Kind::HubRows {
                rows,
                cols,
                hubs: 1,
                hub_len: cols,
                base_len: 1,
            },
        ));
    }

    // --- Tiny / named lookalikes -------------------------------------------
    out.push(spec(
        "chesapeake".into(),
        Family::Tiny,
        77,
        Kind::Uniform {
            rows: 39,
            cols: 39,
            nnz: 340,
        },
    ));
    out.push(spec(
        "08blocks".into(),
        Family::Tiny,
        78,
        Kind::Uniform {
            rows: 300,
            cols: 300,
            nnz: 592,
        },
    ));
    out.push(spec(
        "1138_bus".into(),
        Family::Tiny,
        79,
        Kind::Banded {
            n: 1138,
            bw: 2,
        },
    ));
    out.push(spec(
        "144".into(),
        Family::Tiny,
        80,
        Kind::Uniform {
            rows: 144_649,
            cols: 144_649,
            nnz: 2_148_786,
        },
    ));
    for &n in &[16usize, 25, 50, 80, 128, 200, 333, 500, 800] {
        out.push(spec(
            format!("tiny_er_{n}"),
            Family::Tiny,
            next_seed(),
            Kind::Uniform {
                rows: n,
                cols: n,
                nnz: n * 6,
            },
        ));
        out.push(spec(
            format!("tiny_pl_{n}"),
            Family::Tiny,
            next_seed(),
            Kind::PowerLaw {
                rows: n,
                cols: n,
                nnz: n * 6,
                alpha: 1.8,
            },
        ));
    }

    out
}

/// A deterministic small subset for fast experiments and tests: `n`
/// entries spread evenly across the full corpus ordering.
pub fn corpus_subset(n: usize) -> Vec<CorpusSpec> {
    let all = suite_sparse_surrogate();
    if n >= all.len() {
        return all;
    }
    let stride = all.len() as f64 / n as f64;
    (0..n)
        .map(|i| all[(i as f64 * stride) as usize].clone())
        .collect()
}

/// The artifact's sanity-check matrix: a chesapeake-like 39×39 graph with
/// 340 nonzeros.
pub fn chesapeake() -> Csr<f32> {
    suite_sparse_surrogate()
        .into_iter()
        .find(|s| s.name == "chesapeake")
        .expect("corpus always contains chesapeake")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;
    use std::collections::HashSet;

    #[test]
    fn corpus_is_large_and_uniquely_named() {
        let c = suite_sparse_surrogate();
        assert!(c.len() >= 170, "corpus has {} entries", c.len());
        let names: HashSet<_> = c.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), c.len(), "names must be unique");
    }

    #[test]
    fn corpus_total_work_is_bounded() {
        let total: usize = suite_sparse_surrogate()
            .iter()
            .map(|s| s.approx_nnz())
            .sum();
        assert!(total < 200_000_000, "total approx nnz = {total}");
        assert!(total > 40_000_000, "total approx nnz = {total}");
    }

    #[test]
    fn corpus_spans_the_imbalance_axis() {
        // Build a few representatives and check CV coverage.
        let c = suite_sparse_surrogate();
        let find = |prefix: &str| {
            c.iter()
                .find(|s| s.name.starts_with(prefix))
                .unwrap_or_else(|| panic!("no {prefix} entry"))
                .build()
        };
        let regular = RowStats::of(&find("band_1000n"));
        let skewed = RowStats::of(&find("pl_16000r_d16_a17"));
        let adversarial = RowStats::of(&find("hub_10000r_h1"));
        assert!(regular.cv < 0.2);
        assert!(skewed.cv > 1.0);
        assert!(adversarial.max_over_mean > 50.0);
    }

    #[test]
    fn chesapeake_matches_the_artifact_shape() {
        let m = chesapeake();
        assert_eq!(m.rows(), 39);
        assert_eq!(m.cols(), 39);
        assert!((300..=380).contains(&m.nnz()), "nnz = {}", m.nnz());
    }

    #[test]
    fn corpus_includes_single_column_matrices() {
        let c = suite_sparse_surrogate();
        let sv = c
            .iter()
            .find(|s| s.family == Family::SingleColumn)
            .unwrap()
            .build();
        assert_eq!(sv.cols(), 1);
    }

    #[test]
    fn subset_is_deterministic_and_bounded() {
        let a = corpus_subset(10);
        let b = corpus_subset(10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let all = corpus_subset(10_000);
        assert_eq!(all.len(), suite_sparse_surrogate().len());
    }

    #[test]
    fn specs_build_and_match_declared_family_sizes() {
        // Spot-check one per family (kept small).
        for s in corpus_subset(24) {
            if s.approx_nnz() > 300_000 {
                continue;
            }
            let m = s.build();
            assert!(m.rows() > 0);
            let approx = s.approx_nnz() as f64;
            if approx > 0.0 {
                let ratio = m.nnz() as f64 / approx;
                assert!(
                    (0.5..=1.5).contains(&ratio),
                    "{}: nnz {} vs approx {}",
                    s.name,
                    m.nnz(),
                    approx
                );
            }
        }
    }
}
