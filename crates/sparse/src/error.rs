//! Error type shared by the sparse crate.

use std::fmt;

/// Errors raised while constructing, converting, or parsing matrices.
#[derive(Debug)]
pub enum Error {
    /// Structural invariant violated (message describes it).
    Invalid(String),
    /// MatrixMarket parse failure with 1-based line number.
    Parse {
        /// Line where the failure occurred (1-based, 0 = header missing).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid(m) => write!(f, "invalid matrix: {m}"),
            Self::Parse { line, msg } => write!(f, "MatrixMarket parse error at line {line}: {msg}"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = Error::Parse {
            line: 3,
            msg: "oops".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
