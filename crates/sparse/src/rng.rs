//! Self-contained deterministic PRNG (xoshiro256++ seeded via SplitMix64).
//!
//! The environment this reproduction builds in has no crates.io access, so
//! the generators cannot lean on the `rand` crate. This module provides the
//! small slice of functionality they need — seeded construction, uniform
//! integers in a range, uniform floats, Bernoulli draws — with the same
//! determinism guarantee: one seed, one bit-exact stream, on every
//! platform. The algorithm is Blackman & Vigna's xoshiro256++, the same
//! family `rand`'s `SmallRng` uses.

/// A seeded deterministic random number generator.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed the full 256-bit state from one `u64` by running SplitMix64,
    /// exactly like `rand`'s `SeedableRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * ((self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32))
    }

    /// Uniform index in the half-open range `[lo, hi)`. Panics if empty.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        // Multiply-shift (Lemire) with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let (hi128, lo128) = {
                let m = (x as u128) * (span as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo128 >= span || lo128 >= span.wrapping_neg() % span {
                return lo + hi128 as usize;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given rate (mean `1/rate`),
    /// for open-loop arrival processes. Deterministic per stream state.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Inverse transform; 1 - u avoids ln(0).
        -(1.0 - self.f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        let mut c = Prng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f32_range(0.1, 1.0);
            assert!((0.1..1.0).contains(&y), "y = {y}");
            let z = r.f64_range(-3.0, 3.0);
            assert!((-3.0..3.0).contains(&z));
        }
    }

    #[test]
    fn index_is_exact_and_covers_range() {
        let mut r = Prng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.index(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.index(5, 7);
            assert!(v == 5 || v == 6);
        }
        assert_eq!(r.index(3, 4), 3);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Prng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01, "hits = {hits}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = Prng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_index_range_panics() {
        let _ = Prng::seed_from_u64(0).index(4, 4);
    }
}
