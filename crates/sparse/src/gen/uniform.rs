//! Erdős–Rényi-style uniform random matrices.

use super::{from_row_lengths, rng_for};
use crate::csr::Csr;

/// A `rows × cols` matrix with approximately `nnz` entries placed
/// uniformly: each row's length is drawn from a narrow distribution around
/// `nnz / rows` (Poisson-like), columns uniform. Low imbalance — the
/// regime where simple schedules already work well.
pub fn uniform(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr<f32> {
    let mut rng = rng_for(seed);
    if rows == 0 || cols == 0 {
        return Csr::empty(rows, cols);
    }
    let mean = nnz as f64 / rows as f64;
    let lengths: Vec<usize> = (0..rows)
        .map(|_| {
            // Binomial-ish jitter: mean ± sqrt(mean).
            let jitter = if mean >= 1.0 {
                rng.f64_range(-mean.sqrt(), mean.sqrt())
            } else {
                0.0
            };
            let l = (mean + jitter).round();
            if l <= 0.0 {
                // Small means: Bernoulli on the fractional part.
                usize::from(rng.chance(mean.clamp(0.0, 1.0)))
            } else {
                l as usize
            }
        })
        .map(|l| l.min(cols))
        .collect();
    from_row_lengths(rows, cols, &lengths, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn nnz_lands_near_target() {
        let m = uniform(1000, 1000, 20_000, 9);
        let nnz = m.nnz() as f64;
        assert!((nnz - 20_000.0).abs() < 2_000.0, "nnz = {nnz}");
    }

    #[test]
    fn imbalance_is_low() {
        let m = uniform(2000, 2000, 40_000, 10);
        let s = RowStats::of(&m);
        assert!(s.cv < 0.5, "cv = {}", s.cv);
        assert!(s.max_over_mean < 3.0, "max/mean = {}", s.max_over_mean);
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(uniform(0, 10, 100, 1).nnz(), 0);
        assert_eq!(uniform(10, 0, 100, 1).nnz(), 0);
        let tiny = uniform(10, 10, 0, 1);
        assert!(tiny.nnz() <= 10);
    }

    #[test]
    fn very_sparse_mean_below_one() {
        let m = uniform(1000, 1000, 100, 11);
        // Bernoulli regime: some rows empty, none longer than 1.
        assert!(m.row_lengths().iter().all(|&l| l <= 1));
        assert!(m.nnz() > 20 && m.nnz() < 400, "nnz = {}", m.nnz());
    }
}
