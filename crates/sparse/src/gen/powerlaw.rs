//! Power-law (scale-free) matrices — the paper's load-imbalance villains.

use super::{from_row_lengths, rng_for};
use crate::csr::Csr;

/// A matrix whose row lengths follow a (discretized, truncated) power law
/// with exponent `alpha`: `P(len = k) ∝ k^-alpha`. Smaller `alpha` →
/// heavier tail → more brutal hub rows. Lengths are scaled so total nnz
/// approximates `nnz_target`.
///
/// Web graphs, social networks, and citation matrices — the datasets on
/// which thread-mapped SpMV collapses and merge-path shines (§6.2) — all
/// live in this family.
pub fn powerlaw(rows: usize, cols: usize, nnz_target: usize, alpha: f64, seed: u64) -> Csr<f32> {
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    let mut rng = rng_for(seed);
    if rows == 0 || cols == 0 || nnz_target == 0 {
        return Csr::empty(rows, cols);
    }
    // Inverse-transform sampling of a Pareto tail, truncated at `cols`.
    let max_len = cols as f64;
    let mut raw: Vec<f64> = (0..rows)
        .map(|_| {
            let u: f64 = rng.f64();
            // Pareto with x_min = 1: x = (1 - u)^(-1/(alpha-1))
            (1.0 - u).powf(-1.0 / (alpha - 1.0)).min(max_len)
        })
        .collect();
    let raw_total: f64 = raw.iter().sum();
    let scale = nnz_target as f64 / raw_total;
    let lengths: Vec<usize> = raw
        .iter_mut()
        .map(|r| ((*r * scale).round() as usize).min(cols))
        .collect();
    from_row_lengths(rows, cols, &lengths, &mut rng)
}

/// A scale-free matrix with a **minimum-degree floor**: every row holds
/// at least `k_min` entries, and the excess above the floor follows a
/// (truncated) power law with exponent `alpha`, scaled so total nnz
/// approximates `nnz_target`.
///
/// This is the shape of real-world serving graphs — links, follower,
/// and citation matrices whose crawlers guarantee a few edges per node
/// while the hub tail stays Pareto — and it is the natural habitat of
/// the hybrid ELL+COO split: the floor makes a dense, padding-free slab
/// of width ≈ `k_min`, and the hub excess spills to the coordinate
/// tail instead of inflating every row. (A floorless [`powerlaw`]
/// matrix is hybrid-hostile: most rows are near-empty, so any slab is
/// mostly padding.)
pub fn powerlaw_floor(
    rows: usize,
    cols: usize,
    k_min: usize,
    nnz_target: usize,
    alpha: f64,
    seed: u64,
) -> Csr<f32> {
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    assert!(
        nnz_target >= rows * k_min,
        "nnz target must cover the floor ({} rows × k_min {})",
        rows,
        k_min
    );
    let mut rng = rng_for(seed);
    if rows == 0 || cols == 0 || nnz_target == 0 {
        return Csr::empty(rows, cols);
    }
    // Pareto(x_min = 1) shifted to start at zero: the excess a row
    // carries above the floor, truncated so no row exceeds `cols`.
    let max_extra = (cols.saturating_sub(k_min)) as f64;
    let extras: Vec<f64> = (0..rows)
        .map(|_| {
            let u: f64 = rng.f64();
            ((1.0 - u).powf(-1.0 / (alpha - 1.0)) - 1.0).min(max_extra)
        })
        .collect();
    let extra_total: f64 = extras.iter().sum();
    let extra_budget = (nnz_target - rows * k_min) as f64;
    let scale = if extra_total > 0.0 {
        extra_budget / extra_total
    } else {
        0.0
    };
    let lengths: Vec<usize> = extras
        .iter()
        .map(|e| (k_min + (e * scale).round() as usize).min(cols))
        .collect();
    from_row_lengths(rows, cols, &lengths, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn heavy_tail_produces_high_imbalance() {
        let m = powerlaw(5000, 5000, 100_000, 1.8, 21);
        let s = RowStats::of(&m);
        assert!(s.cv > 1.0, "cv = {}", s.cv);
        assert!(s.max_over_mean > 10.0, "max/mean = {}", s.max_over_mean);
    }

    #[test]
    fn nnz_lands_near_target() {
        let m = powerlaw(5000, 5000, 100_000, 2.2, 22);
        let nnz = m.nnz() as f64;
        assert!(
            (nnz - 100_000.0).abs() / 100_000.0 < 0.25,
            "nnz = {nnz} (target 100k)"
        );
    }

    #[test]
    fn steeper_exponent_is_tamer() {
        let wild = RowStats::of(&powerlaw(4000, 4000, 80_000, 1.6, 23));
        let tame = RowStats::of(&powerlaw(4000, 4000, 80_000, 3.5, 23));
        assert!(wild.gini > tame.gini, "{} vs {}", wild.gini, tame.gini);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn alpha_must_exceed_one() {
        let _ = powerlaw(10, 10, 10, 1.0, 0);
    }

    #[test]
    fn empty_target_is_empty() {
        assert_eq!(powerlaw(10, 10, 0, 2.0, 0).nnz(), 0);
    }

    #[test]
    fn floor_holds_and_nnz_lands_near_target() {
        let m = powerlaw_floor(8_000, 8_000, 10, 120_000, 1.8, 31);
        let lengths = m.row_lengths();
        assert!(lengths.iter().all(|&l| l >= 10), "floor violated");
        let nnz = m.nnz() as f64;
        assert!(
            (nnz - 120_000.0).abs() / 120_000.0 < 0.15,
            "nnz = {nnz} (target 120k)"
        );
    }

    #[test]
    fn floored_tail_is_still_heavy() {
        let m = powerlaw_floor(8_000, 8_000, 10, 120_000, 1.8, 31);
        let s = RowStats::of(&m);
        assert!(s.max_over_mean > 5.0, "max/mean = {}", s.max_over_mean);
    }

    #[test]
    fn floored_powerlaw_is_hybrid_friendly() {
        // The structural contrast with the floorless generator: the
        // stats-driven split finds a near-floor slab with little
        // padding and a small spill fraction — the shape on which the
        // hybrid serve is worth promoting.
        let m = powerlaw_floor(8_000, 8_000, 10, 120_000, 1.8, 31);
        let s = crate::FormatStats::of(&m);
        assert!(s.hybrid_width >= 10, "slab should cover the floor");
        assert!(s.hybrid_width < s.max_row);
        let spill_frac = s.hybrid_spill as f64 / s.nnz as f64;
        assert!(spill_frac < 0.35, "spill fraction {spill_frac}");
        let pad = s.rows * s.hybrid_width - (s.nnz - s.hybrid_spill);
        assert!(
            (pad as f64) < 0.25 * s.nnz as f64,
            "slab padding {pad} vs nnz {}",
            s.nnz
        );
    }

    #[test]
    #[should_panic(expected = "cover the floor")]
    fn floor_must_fit_inside_the_target() {
        let _ = powerlaw_floor(100, 100, 10, 500, 2.0, 0);
    }
}
