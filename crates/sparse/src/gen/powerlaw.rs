//! Power-law (scale-free) matrices — the paper's load-imbalance villains.

use super::{from_row_lengths, rng_for};
use crate::csr::Csr;

/// A matrix whose row lengths follow a (discretized, truncated) power law
/// with exponent `alpha`: `P(len = k) ∝ k^-alpha`. Smaller `alpha` →
/// heavier tail → more brutal hub rows. Lengths are scaled so total nnz
/// approximates `nnz_target`.
///
/// Web graphs, social networks, and citation matrices — the datasets on
/// which thread-mapped SpMV collapses and merge-path shines (§6.2) — all
/// live in this family.
pub fn powerlaw(rows: usize, cols: usize, nnz_target: usize, alpha: f64, seed: u64) -> Csr<f32> {
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    let mut rng = rng_for(seed);
    if rows == 0 || cols == 0 || nnz_target == 0 {
        return Csr::empty(rows, cols);
    }
    // Inverse-transform sampling of a Pareto tail, truncated at `cols`.
    let max_len = cols as f64;
    let mut raw: Vec<f64> = (0..rows)
        .map(|_| {
            let u: f64 = rng.f64();
            // Pareto with x_min = 1: x = (1 - u)^(-1/(alpha-1))
            (1.0 - u).powf(-1.0 / (alpha - 1.0)).min(max_len)
        })
        .collect();
    let raw_total: f64 = raw.iter().sum();
    let scale = nnz_target as f64 / raw_total;
    let lengths: Vec<usize> = raw
        .iter_mut()
        .map(|r| ((*r * scale).round() as usize).min(cols))
        .collect();
    from_row_lengths(rows, cols, &lengths, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn heavy_tail_produces_high_imbalance() {
        let m = powerlaw(5000, 5000, 100_000, 1.8, 21);
        let s = RowStats::of(&m);
        assert!(s.cv > 1.0, "cv = {}", s.cv);
        assert!(s.max_over_mean > 10.0, "max/mean = {}", s.max_over_mean);
    }

    #[test]
    fn nnz_lands_near_target() {
        let m = powerlaw(5000, 5000, 100_000, 2.2, 22);
        let nnz = m.nnz() as f64;
        assert!(
            (nnz - 100_000.0).abs() / 100_000.0 < 0.25,
            "nnz = {nnz} (target 100k)"
        );
    }

    #[test]
    fn steeper_exponent_is_tamer() {
        let wild = RowStats::of(&powerlaw(4000, 4000, 80_000, 1.6, 23));
        let tame = RowStats::of(&powerlaw(4000, 4000, 80_000, 3.5, 23));
        assert!(wild.gini > tame.gini, "{} vs {}", wild.gini, tame.gini);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn alpha_must_exceed_one() {
        let _ = powerlaw(10, 10, 10, 1.0, 0);
    }

    #[test]
    fn empty_target_is_empty() {
        assert_eq!(powerlaw(10, 10, 0, 2.0, 0).nnz(), 0);
    }
}
