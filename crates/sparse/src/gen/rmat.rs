//! Recursive-MATrix (RMAT) graph generator (Graph500 style).

use super::{draw_value, rng_for};
use crate::coo::Coo;
use crate::convert::coo_to_csr;
use crate::csr::Csr;

/// Generate the adjacency matrix of an RMAT graph with `2^scale` vertices
/// and `edge_factor * 2^scale` directed edges, using partition
/// probabilities `(a, b, c)` (with `d = 1 - a - b - c`). Graph500 uses
/// `(0.57, 0.19, 0.19)`.
///
/// RMAT graphs combine power-law degrees with community structure — the
/// canonical graph-analytics workload (BFS/SSSP in §5.3).
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64), seed: u64) -> Csr<f32> {
    let (a, b, c) = probs;
    let d = 1.0 - a - b - c;
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "partition probabilities must be a valid distribution"
    );
    let n = 1usize << scale;
    let edges = edge_factor * n;
    let mut rng = rng_for(seed);
    let mut coo = Coo::empty(n, n);
    for _ in 0..edges {
        let (mut r, mut c_idx) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let u: f64 = rng.f64();
            if u < a {
                // top-left: nothing to add
            } else if u < a + b {
                c_idx += half;
            } else if u < a + b + c {
                r += half;
            } else {
                r += half;
                c_idx += half;
            }
            half >>= 1;
        }
        coo.push(r as u32, c_idx as u32, draw_value(&mut rng))
            .expect("quadrant walk stays in bounds");
    }
    coo.canonicalize();
    coo_to_csr(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    const G500: (f64, f64, f64) = (0.57, 0.19, 0.19);

    #[test]
    fn dimensions_and_density_match_parameters() {
        let m = rmat(8, 8, G500, 5);
        assert_eq!(m.rows(), 256);
        assert_eq!(m.cols(), 256);
        // Duplicates collapse, so nnz ≤ edges but should stay substantial.
        assert!(m.nnz() <= 8 * 256);
        assert!(m.nnz() > 4 * 256, "nnz = {}", m.nnz());
    }

    #[test]
    fn skewed_probabilities_create_hub_rows() {
        let skewed = RowStats::of(&rmat(10, 16, G500, 6));
        let flat = RowStats::of(&rmat(10, 16, (0.25, 0.25, 0.25), 6));
        assert!(
            skewed.max_over_mean > 2.0 * flat.max_over_mean,
            "skewed {} vs flat {}",
            skewed.max_over_mean,
            flat.max_over_mean
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(rmat(6, 4, G500, 1), rmat(6, 4, G500, 1));
        assert_ne!(rmat(6, 4, G500, 1), rmat(6, 4, G500, 2));
    }

    #[test]
    #[should_panic(expected = "valid distribution")]
    fn rejects_bad_probabilities() {
        let _ = rmat(4, 2, (0.6, 0.3, 0.3), 0);
    }
}
