//! Special-case matrices the evaluation depends on.

use super::{from_row_lengths, rng_for};
use crate::csr::Csr;

/// A single-column matrix (`cols = 1`) — a sparse vector. This is the
/// exact shape for which CUB short-circuits merge-path into a specialized
/// thread-mapped kernel, the one regime where CUB beats the framework in
/// Figure 2.
pub fn single_column(rows: usize, nnz: usize, seed: u64) -> Csr<f32> {
    let mut rng = rng_for(seed);
    let nnz = nnz.min(rows);
    // Choose which rows hold the single entry.
    let mut chosen = vec![false; rows];
    let mut placed = 0usize;
    while placed < nnz {
        let r = rng.index(0, rows);
        if !chosen[r] {
            chosen[r] = true;
            placed += 1;
        }
    }
    let lengths: Vec<usize> = chosen.iter().map(|&c| usize::from(c)).collect();
    from_row_lengths(rows, 1, &lengths, &mut rng)
}

/// An adversarial matrix: `hubs` monster rows of `hub_len` nonzeros among
/// otherwise `base_len`-entry rows. The worst case for tile-per-thread
/// scheduling — one warp drags the whole device (§1's motivating
/// imbalance).
pub fn hub_rows(
    rows: usize,
    cols: usize,
    hubs: usize,
    hub_len: usize,
    base_len: usize,
    seed: u64,
) -> Csr<f32> {
    let mut rng = rng_for(seed);
    let hubs = hubs.min(rows);
    let mut lengths = vec![base_len.min(cols); rows];
    // Spread hubs deterministically across the row space.
    let stride = (rows / hubs.max(1)).max(1);
    for h in 0..hubs {
        lengths[h * stride % rows.max(1)] = hub_len.min(cols);
    }
    from_row_lengths(rows, cols, &lengths, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn single_column_has_one_column_and_short_rows() {
        let m = single_column(1000, 400, 7);
        assert_eq!(m.cols(), 1);
        assert_eq!(m.nnz(), 400);
        assert!(m.row_lengths().iter().all(|&l| l <= 1));
        assert!(m.col_indices().iter().all(|&c| c == 0));
    }

    #[test]
    fn single_column_caps_nnz_at_rows() {
        let m = single_column(10, 50, 8);
        assert_eq!(m.nnz(), 10);
    }

    #[test]
    fn hub_rows_creates_the_advertised_imbalance() {
        let m = hub_rows(10_000, 10_000, 4, 5_000, 3, 9);
        let s = RowStats::of(&m);
        assert_eq!(s.max, 5_000);
        assert!(s.max_over_mean > 100.0, "max/mean = {}", s.max_over_mean);
        // All but the hubs are tiny.
        let long_rows = m.row_lengths().iter().filter(|&&l| l > 100).count();
        assert_eq!(long_rows, 4);
    }

    #[test]
    fn hub_rows_with_more_hubs_than_rows_saturates() {
        let m = hub_rows(4, 16, 100, 8, 1, 10);
        assert!(m.row_lengths().contains(&8));
    }
}
