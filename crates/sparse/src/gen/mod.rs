//! Deterministic synthetic sparse matrix generators.
//!
//! These stand in for the SuiteSparse Matrix Collection (886 GB, offline
//! unavailable — see DESIGN.md). Each generator is seeded and reproducible
//! and targets one structural family that drives the collection's
//! diversity of row-length (atoms-per-tile) distributions:
//!
//! | generator | family | imbalance character |
//! |---|---|---|
//! | [`uniform`] | Erdős–Rényi random | low CV, Poisson-ish rows |
//! | [`powerlaw`] | scale-free / web / social | heavy tail, hub rows |
//! | [`powerlaw_floor`] | scale-free with min degree | dense floor + hub tail |
//! | [`rmat`] | Graph500-style RMAT | power-law with locality |
//! | [`banded`], [`stencil5`], [`stencil9`], [`diagonal`] | PDE / structured | perfectly regular |
//! | [`block_diag`] | multibody / FEM blocks | regular, dense blocks |
//! | [`single_column`] | sparse vector (SpVV) | the CUB heuristic's case |
//! | [`hub_rows`] | adversarial | few monster rows among tiny ones |

mod powerlaw;
mod rmat;
mod special;
mod structured;
mod uniform;

pub use powerlaw::{powerlaw, powerlaw_floor};
pub use rmat::rmat;
pub use special::{hub_rows, single_column};
pub use structured::{banded, block_diag, diagonal, stencil5, stencil9};
pub use uniform::uniform;

use crate::csr::Csr;
use crate::rng::Prng;

/// Deterministic RNG shared by all generators.
pub(crate) fn rng_for(seed: u64) -> Prng {
    Prng::seed_from_u64(seed)
}

/// Draw a nonzero value in `[-1, -0.1] ∪ [0.1, 1]` (bounded away from zero
/// so cancellation never hides kernel bugs in tests).
pub(crate) fn draw_value(rng: &mut Prng) -> f32 {
    let mag = rng.f32_range(0.1, 1.0);
    if rng.chance(0.5) {
        mag
    } else {
        -mag
    }
}

/// Build a CSR matrix with the given per-row lengths: each row gets
/// `lengths[r].min(cols)` distinct random columns (sorted) with random
/// values.
pub(crate) fn from_row_lengths(
    rows: usize,
    cols: usize,
    lengths: &[usize],
    rng: &mut Prng,
) -> Csr<f32> {
    assert_eq!(lengths.len(), rows);
    let mut row_offsets = Vec::with_capacity(rows + 1);
    row_offsets.push(0usize);
    let total: usize = lengths.iter().map(|&l| l.min(cols)).sum();
    let mut col_indices = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    let mut scratch: Vec<u32> = Vec::new();
    for &want in lengths {
        let len = want.min(cols);
        sample_distinct_sorted(cols, len, rng, &mut scratch);
        for &c in &scratch {
            col_indices.push(c);
            values.push(draw_value(rng));
        }
        row_offsets.push(col_indices.len());
    }
    Csr::from_parts(rows, cols, row_offsets, col_indices, values)
        .expect("generator output satisfies CSR invariants")
}

/// Sample `len` distinct column indices in `[0, cols)`, sorted ascending,
/// into `out`. Uses Floyd's algorithm for sparse draws and a dense
/// reservoir when `len` is a large fraction of `cols`.
pub(crate) fn sample_distinct_sorted(
    cols: usize,
    len: usize,
    rng: &mut Prng,
    out: &mut Vec<u32>,
) {
    out.clear();
    debug_assert!(len <= cols);
    if len == 0 {
        return;
    }
    if len * 3 >= cols {
        // Dense case: Bernoulli-style selection via partial shuffle.
        let mut all: Vec<u32> = (0..cols as u32).collect();
        for i in 0..len {
            let j = rng.index(i, cols);
            all.swap(i, j);
        }
        out.extend_from_slice(&all[..len]);
    } else {
        // Floyd's algorithm: O(len) expected.
        let mut set = std::collections::HashSet::with_capacity(len * 2);
        for j in (cols - len)..cols {
            let t = rng.index(0, j + 1) as u32;
            if !set.insert(t) {
                set.insert(j as u32);
                out.push(j as u32);
            } else {
                out.push(t);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    debug_assert_eq!(out.len(), len, "distinct sample must hit target length");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_hits_exact_length_and_bounds() {
        let mut rng = rng_for(1);
        let mut out = Vec::new();
        for &(cols, len) in &[(10usize, 10usize), (1000, 3), (100, 60), (7, 0), (1, 1)] {
            sample_distinct_sorted(cols, len, &mut rng, &mut out);
            assert_eq!(out.len(), len, "cols={cols} len={len}");
            assert!(out.windows(2).all(|w| w[0] < w[1]));
            assert!(out.iter().all(|&c| (c as usize) < cols));
        }
    }

    #[test]
    fn from_row_lengths_builds_requested_structure() {
        let mut rng = rng_for(2);
        let m = from_row_lengths(4, 16, &[3, 0, 16, 100], &mut rng);
        assert_eq!(m.row_lengths(), vec![3, 0, 16, 16]); // capped at cols
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = uniform(100, 100, 1000, 42);
        let b = uniform(100, 100, 1000, 42);
        let c = uniform(100, 100, 1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn values_bounded_away_from_zero() {
        let m = uniform(50, 50, 500, 3);
        assert!(m
            .values()
            .iter()
            .all(|&v| (0.1..=1.0).contains(&v.abs())));
    }
}
