//! Perfectly regular matrices: bands, stencils, diagonals, dense blocks.
//!
//! These are the PDE/FEM half of SuiteSparse — the regime where
//! thread-mapped scheduling is already optimal and any load-balancing
//! setup cost is pure overhead (the left side of Figure 3's landscape).

use super::{draw_value, rng_for};
use crate::csr::Csr;

/// Banded matrix: row `r` holds entries in columns `[r-bw, r+bw]` clipped
/// to the matrix. `n × n`, fully regular.
pub fn banded(n: usize, bw: usize, seed: u64) -> Csr<f32> {
    let mut rng = rng_for(seed);
    let mut row_offsets = Vec::with_capacity(n + 1);
    row_offsets.push(0usize);
    let mut col_indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..n {
        let lo = r.saturating_sub(bw);
        let hi = (r + bw).min(n.saturating_sub(1));
        for c in lo..=hi {
            col_indices.push(c as u32);
            values.push(draw_value(&mut rng));
        }
        row_offsets.push(col_indices.len());
    }
    Csr::from_parts(n, n, row_offsets, col_indices, values)
        .expect("band construction preserves invariants")
}

/// Identity-pattern diagonal matrix with random values.
pub fn diagonal(n: usize, seed: u64) -> Csr<f32> {
    banded(n, 0, seed)
}

/// 5-point stencil (2-D Laplacian pattern) on an `nx × ny` grid:
/// `n = nx*ny` rows, ≤ 5 entries per row.
pub fn stencil5(nx: usize, ny: usize, seed: u64) -> Csr<f32> {
    stencil(nx, ny, &[(0i64, 0i64), (-1, 0), (1, 0), (0, -1), (0, 1)], seed)
}

/// 9-point stencil on an `nx × ny` grid.
pub fn stencil9(nx: usize, ny: usize, seed: u64) -> Csr<f32> {
    let offs: Vec<(i64, i64)> = (-1..=1)
        .flat_map(|dy| (-1..=1).map(move |dx| (dx, dy)))
        .collect();
    stencil(nx, ny, &offs, seed)
}

fn stencil(nx: usize, ny: usize, offsets: &[(i64, i64)], seed: u64) -> Csr<f32> {
    let n = nx * ny;
    let mut rng = rng_for(seed);
    let mut row_offsets = Vec::with_capacity(n + 1);
    row_offsets.push(0usize);
    let mut col_indices = Vec::new();
    let mut values = Vec::new();
    for y in 0..ny as i64 {
        for x in 0..nx as i64 {
            let mut cols: Vec<u32> = offsets
                .iter()
                .filter_map(|&(dx, dy)| {
                    let (cx, cy) = (x + dx, y + dy);
                    (cx >= 0 && cy >= 0 && cx < nx as i64 && cy < ny as i64)
                        .then(|| (cy * nx as i64 + cx) as u32)
                })
                .collect();
            cols.sort_unstable();
            for c in cols {
                col_indices.push(c);
                values.push(draw_value(&mut rng));
            }
            row_offsets.push(col_indices.len());
        }
    }
    Csr::from_parts(n, n, row_offsets, col_indices, values)
        .expect("stencil construction preserves invariants")
}

/// Block-diagonal matrix: `blocks` dense blocks of `block_size²` entries.
pub fn block_diag(blocks: usize, block_size: usize, seed: u64) -> Csr<f32> {
    let n = blocks * block_size;
    let mut rng = rng_for(seed);
    let mut row_offsets = Vec::with_capacity(n + 1);
    row_offsets.push(0usize);
    let mut col_indices = Vec::new();
    let mut values = Vec::new();
    for b in 0..blocks {
        let base = b * block_size;
        for _r in 0..block_size {
            for c in 0..block_size {
                col_indices.push((base + c) as u32);
                values.push(draw_value(&mut rng));
            }
            row_offsets.push(col_indices.len());
        }
    }
    Csr::from_parts(n, n, row_offsets, col_indices, values)
        .expect("block construction preserves invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RowStats;

    #[test]
    fn banded_has_expected_widths() {
        let m = banded(10, 2, 1);
        assert_eq!(m.row_len(0), 3); // cols 0..=2
        assert_eq!(m.row_len(5), 5); // cols 3..=7
        assert_eq!(m.row_len(9), 3);
        assert_eq!(m.rows(), 10);
    }

    #[test]
    fn diagonal_is_one_per_row() {
        let m = diagonal(32, 2);
        assert_eq!(m.nnz(), 32);
        for r in 0..32 {
            assert_eq!(m.row(r).0, &[r as u32]);
        }
    }

    #[test]
    fn stencil5_interior_rows_have_five_entries() {
        let m = stencil5(10, 10, 3);
        assert_eq!(m.rows(), 100);
        // interior point (5,5) = row 55
        assert_eq!(m.row_len(55), 5);
        // corner (0,0) = row 0: self + right + up = 3
        assert_eq!(m.row_len(0), 3);
        let s = RowStats::of(&m);
        assert!(s.cv < 0.2, "stencils are regular, cv = {}", s.cv);
    }

    #[test]
    fn stencil9_interior_rows_have_nine_entries() {
        let m = stencil9(8, 8, 4);
        assert_eq!(m.row_len(9 + 8 * 2), 9); // an interior row
        assert_eq!(m.row_len(0), 4); // corner: 2x2 neighborhood
    }

    #[test]
    fn block_diag_rows_are_block_size_long() {
        let m = block_diag(4, 8, 5);
        assert_eq!(m.rows(), 32);
        assert_eq!(m.nnz(), 4 * 64);
        assert!(m.row_lengths().iter().all(|&l| l == 8));
        // Entry (9, c) lives in block 1: columns 8..16.
        assert!(m.row(9).0.iter().all(|&c| (8..16).contains(&c)));
    }

    #[test]
    fn stencil_columns_sorted_in_every_row() {
        let m = stencil9(6, 7, 8);
        for r in 0..m.rows() {
            let (cols, _) = m.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
