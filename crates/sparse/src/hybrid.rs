//! Hybrid ELL + COO storage: a dense-lane slab plus a coordinate spill
//! tail.
//!
//! The classic answer to ELL's fatal flaw (one hub row inflates every
//! row's storage): keep a slab holding the first `width` entries of every
//! row — perfectly regular, so a tile-per-thread schedule balances it by
//! construction — and spill each row's excess into a COO tail served by a
//! per-entry scatter pass. The split width comes from
//! [`crate::FormatStats::hybrid_width`]: the slab widens while at least
//! `1 / `[`crate::format::HYBRID_TAIL_COST`] of the rows still extend
//! past it, so the slab tracks the bulk of the row-length distribution
//! and the hub rows pay the (costlier, but balanced) tail scatter.
//!
//! **Entry-order contract.** Row `r`'s entries appear slab-first, then
//! tail, each preserving the CSR storage order. A consumer that folds the
//! slab prefix left-to-right and then applies tail entries in storage
//! order reproduces the CSR row fold *exactly* — the bitwise-equality
//! hook the format-generic kernels rely on.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::ell::PAD;
use crate::format::FormatStats;

/// A hybrid matrix: `rows × width` ELL slab plus a COO spill tail.
#[derive(Debug, Clone, PartialEq)]
pub struct Hybrid<V = f32> {
    rows: usize,
    cols: usize,
    width: usize,
    slab_cols: Vec<u32>,
    slab_vals: Vec<V>,
    tail: Coo<V>,
}

impl<V: Copy + Default> Hybrid<V> {
    /// Split a CSR matrix at the given slab width: each row's first
    /// `min(len, width)` entries go to the slab (padded with
    /// [`PAD`]), the rest spill to the tail in storage order.
    pub fn from_csr(csr: &Csr<V>, width: usize) -> Self {
        let rows = csr.rows();
        let slots = rows * width;
        let mut slab_cols = vec![PAD; slots];
        let mut slab_vals = vec![V::default(); slots];
        let mut tail_rows = Vec::new();
        let mut tail_cols = Vec::new();
        let mut tail_vals = Vec::new();
        for r in 0..rows {
            let (cols, vals) = csr.row(r);
            let keep = cols.len().min(width);
            let base = r * width;
            slab_cols[base..base + keep].copy_from_slice(&cols[..keep]);
            slab_vals[base..base + keep].copy_from_slice(&vals[..keep]);
            for i in keep..cols.len() {
                tail_rows.push(r as u32);
                tail_cols.push(cols[i]);
                tail_vals.push(vals[i]);
            }
        }
        let tail = Coo::from_parts(rows, csr.cols(), tail_rows, tail_cols, tail_vals)
            .expect("tail entries are in-bounds by construction");
        Self {
            rows,
            cols: csr.cols(),
            width,
            slab_cols,
            slab_vals,
            tail,
        }
    }

    /// Split at the stats-driven width ([`FormatStats::hybrid_width`]).
    pub fn from_csr_auto(csr: &Csr<V>) -> Self {
        Self::from_csr(csr, FormatStats::of(csr).hybrid_width)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Slab width (slots per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total slab slots including padding.
    pub fn slab_slots(&self) -> usize {
        self.slab_cols.len()
    }

    /// Stored (non-padded) slab entries.
    pub fn slab_nnz(&self) -> usize {
        self.slab_cols.iter().filter(|&&c| c != PAD).count()
    }

    /// Entries in the spill tail.
    pub fn tail_nnz(&self) -> usize {
        self.tail.nnz()
    }

    /// Total stored entries (slab + tail).
    pub fn nnz(&self) -> usize {
        self.slab_nnz() + self.tail_nnz()
    }

    /// Padded slab column-index array (`rows × width`, [`PAD`] marks
    /// unused slots).
    pub fn slab_col_indices(&self) -> &[u32] {
        &self.slab_cols
    }

    /// Padded slab values array (`rows × width`).
    pub fn slab_values(&self) -> &[V] {
        &self.slab_vals
    }

    /// The spill tail, row-major in the source matrix's storage order.
    pub fn tail(&self) -> &Coo<V> {
        &self.tail
    }

    /// The slab slot range of row `r`.
    pub fn row_slots(&self, r: usize) -> std::ops::Range<usize> {
        r * self.width..(r + 1) * self.width
    }

    /// Convert back to CSR: slab prefix then tail entries per row, in
    /// storage order (the inverse of [`from_csr`](Self::from_csr)).
    pub fn to_csr(&self) -> Csr<V> {
        let mut row_offsets = vec![0usize; self.rows + 1];
        for r in 0..self.rows {
            let stored = self.row_slots(r).filter(|&s| self.slab_cols[s] != PAD).count();
            row_offsets[r + 1] = stored;
        }
        for &r in self.tail.row_indices() {
            row_offsets[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        let nnz = row_offsets[self.rows];
        let mut col_indices = vec![0u32; nnz];
        let mut values = vec![V::default(); nnz];
        let mut cursor: Vec<usize> = row_offsets[..self.rows].to_vec();
        for r in 0..self.rows {
            for s in self.row_slots(r) {
                if self.slab_cols[s] != PAD {
                    col_indices[cursor[r]] = self.slab_cols[s];
                    values[cursor[r]] = self.slab_vals[s];
                    cursor[r] += 1;
                }
            }
        }
        for (r, c, v) in self.tail.iter() {
            col_indices[cursor[r as usize]] = c;
            values[cursor[r as usize]] = v;
            cursor[r as usize] += 1;
        }
        Csr::from_parts(self.rows, self.cols, row_offsets, col_indices, values)
            .expect("hybrid entries are in-bounds by construction")
    }
}

impl Hybrid<f32> {
    /// Reference sequential SpMV over the split layout (slab pass, then
    /// tail scatter), accumulating in f64 like the other references.
    pub fn spmv_ref(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0f64; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            for s in self.row_slots(r) {
                let c = self.slab_cols[s];
                if c != PAD {
                    *yr += f64::from(self.slab_vals[s]) * f64::from(x[c as usize]);
                }
            }
        }
        for (r, c, v) in self.tail.iter() {
            y[r as usize] += f64::from(v) * f64::from(x[c as usize]);
        }
        y.into_iter().map(|v| v as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn splits_at_the_requested_width() {
        let h = Hybrid::from_csr(&sample(), 2);
        assert_eq!(h.width(), 2);
        assert_eq!(h.slab_slots(), 6);
        assert_eq!(h.slab_nnz(), 4); // rows 0 and 2 keep 2 each
        assert_eq!(h.tail_nnz(), 1); // row 2 spills its third entry
        assert_eq!(h.nnz(), sample().nnz());
        let entries: Vec<_> = h.tail().iter().collect();
        assert_eq!(entries, vec![(2, 3, 5.0)]);
    }

    #[test]
    fn width_zero_is_all_tail() {
        let h = Hybrid::from_csr(&sample(), 0);
        assert_eq!(h.slab_nnz(), 0);
        assert_eq!(h.tail_nnz(), 5);
        assert_eq!(h.to_csr(), sample());
    }

    #[test]
    fn wide_slab_has_empty_tail() {
        let h = Hybrid::from_csr(&sample(), 3);
        assert_eq!(h.tail_nnz(), 0);
        assert_eq!(h.slab_nnz(), 5);
        assert_eq!(h.to_csr(), sample());
    }

    #[test]
    fn roundtrips_through_csr_at_every_width() {
        let a = crate::gen::powerlaw(100, 100, 1_200, 1.8, 21);
        for w in [0, 1, 3, 7, 50] {
            assert_eq!(Hybrid::from_csr(&a, w).to_csr(), a, "width {w}");
        }
        assert_eq!(Hybrid::from_csr_auto(&a).to_csr(), a);
    }

    #[test]
    fn tail_is_canonical_for_sorted_sources() {
        // Generators emit column-sorted rows, so the spill tail inherits
        // canonical row-major order — the property the COO tile adapter
        // and the scatter pass's fold-order contract both rely on.
        let a = crate::gen::powerlaw(150, 150, 2_000, 1.7, 33);
        let h = Hybrid::from_csr_auto(&a);
        assert!(h.tail().is_canonical() || h.tail_nnz() == 0);
    }

    #[test]
    fn spmv_matches_csr_reference() {
        let a = crate::gen::powerlaw(120, 120, 1_500, 1.8, 44);
        let x = crate::dense::test_vector(120);
        let want = a.spmv_ref(&x);
        for w in [0, 2, 9] {
            let h = Hybrid::from_csr(&a, w);
            let got = h.spmv_ref(&x);
            for (g, w_) in got.iter().zip(&want) {
                assert!((g - w_).abs() <= 1e-5 * w_.abs().max(1.0));
            }
        }
    }

    #[test]
    fn auto_split_uses_the_stats_width_and_stays_narrow() {
        let a = crate::gen::powerlaw(200, 200, 3_000, 1.8, 12);
        let h = Hybrid::from_csr_auto(&a);
        let s = FormatStats::of(&a);
        assert_eq!(h.width(), s.hybrid_width);
        assert_eq!(h.tail_nnz(), s.hybrid_spill);
        // The slab stays far denser than full ELL would be: the power
        // law's hub rows live in the tail, not as padding on every row.
        assert!(h.width() < s.max_row);
        assert!((h.width() as f64) < 4.0 * s.mean, "width {} mean {}", h.width(), s.mean);
    }

    #[test]
    fn empty_matrix() {
        let h = Hybrid::<f32>::from_csr_auto(&Csr::empty(4, 4));
        assert_eq!(h.width(), 0);
        assert_eq!(h.nnz(), 0);
        assert_eq!(h.spmv_ref(&[0.0; 4]), vec![0.0; 4]);
    }
}
