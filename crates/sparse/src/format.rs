//! Format identity and the cheap structural summary that drives format
//! selection.
//!
//! The paper's claim (§5.2.1) is that work decomposition is independent of
//! the storage format — a non-CSR format only needs a "slightly more
//! complex iterator". Making that real in the engine requires a *name* for
//! each format ([`FormatKind`], the representation-axis analogue of the
//! schedule enum) and a *cheap summary* of a matrix's structure
//! ([`FormatStats`]) so the candidate enumerator can prune formats that
//! are structurally hopeless (ELL on a power law) before the autotuner
//! ever pays to measure them.

use crate::csr::Csr;
use crate::stats::RowStats;

/// Identifier for a sparse storage format — the representation-axis
/// counterpart of the schedule enum. The autotuner sweeps the
/// (schedule × format) product; this is the format coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Compressed sparse row — the canonical serving format.
    Csr,
    /// Coordinate triplets (canonical row-major order).
    Coo,
    /// Compressed sparse column (tiles are columns).
    Csc,
    /// ELLPACK: every row padded to the longest row's width.
    Ell,
    /// Hybrid ELL + COO: a dense-lane slab of the first `w` entries per
    /// row plus a coordinate spill tail for the excess.
    Hybrid,
}

impl FormatKind {
    /// The stable identifier used in CSV columns, trace labels, and
    /// plan-cache keys. `Display` emits exactly this string and
    /// [`std::str::FromStr`] round-trips it.
    pub fn base_name(&self) -> &'static str {
        match self {
            Self::Csr => "csr",
            Self::Coo => "coo",
            Self::Csc => "csc",
            Self::Ell => "ell",
            Self::Hybrid => "hybrid",
        }
    }

    /// Every format kind, in declaration order (useful for sweeps).
    pub const ALL: [FormatKind; 5] = [
        FormatKind::Csr,
        FormatKind::Coo,
        FormatKind::Csc,
        FormatKind::Ell,
        FormatKind::Hybrid,
    ];
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.base_name())
    }
}

/// Error returned when a string names no [`FormatKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError(String);

impl std::fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown format {:?} (expected csr, coo, csc, ell, or hybrid)",
            self.0
        )
    }
}

impl std::error::Error for ParseFormatError {}

impl std::str::FromStr for FormatKind {
    type Err = ParseFormatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "csr" => Ok(Self::Csr),
            "coo" => Ok(Self::Coo),
            "csc" => Ok(Self::Csc),
            "ell" => Ok(Self::Ell),
            "hybrid" => Ok(Self::Hybrid),
            _ => Err(ParseFormatError(s.to_owned())),
        }
    }
}

/// Modeled cost of serving one spilled tail entry relative to one slab
/// lane slot. The tail pays a per-entry coordinate scatter (an atomic
/// accumulate plus explicit row/col index traffic); a slab slot is one
/// step of a dense, perfectly regular sweep. The split widens the slab
/// while at least `1 / HYBRID_TAIL_COST` of the rows still extend past
/// it — Bell & Garland's classic HYB rule, with this constant playing
/// the role of their ELL-vs-COO throughput ratio.
pub const HYBRID_TAIL_COST: f64 = 4.0;

/// A cheap structural summary used to filter format candidates before
/// the autotuner measures them.
///
/// One `O(rows log rows)` pass over the row lengths; no format
/// conversion is performed. The interesting derived quantities:
///
/// * [`ell_fill`](Self::ell_fill) — padded slots per stored nonzero if
///   the matrix were stored ELL. `1.0` is a perfectly regular matrix;
///   a power law blows this up by orders of magnitude, which is the
///   pruning signal for ELL candidates.
/// * [`hybrid_width`](Self::hybrid_width) /
///   [`hybrid_spill`](Self::hybrid_spill) — the stats-driven split for
///   the [`crate::Hybrid`] format: the slab widens while at least
///   `1 / `[`HYBRID_TAIL_COST`] of the rows still extend past it, so
///   hub rows spill instead of inflating every row's storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Longest row (the ELL width).
    pub max_row: usize,
    /// Mean row length.
    pub mean: f64,
    /// Coefficient of variation of row lengths (≳1 → power-law-like).
    pub cv: f64,
    /// Longest row over mean row length.
    pub max_over_mean: f64,
    /// ELL slots (`rows × max_row`) per stored nonzero; `0` when empty.
    pub ell_fill: f64,
    /// Stats-driven hybrid slab width (see type docs).
    pub hybrid_width: usize,
    /// Tail entries spilled at [`hybrid_width`](Self::hybrid_width).
    pub hybrid_spill: usize,
}

impl FormatStats {
    /// Summarize a CSR matrix's structure.
    pub fn of<V: Copy>(csr: &Csr<V>) -> Self {
        Self::from_lengths(csr.rows(), csr.cols(), &csr.row_lengths())
    }

    /// Summarize from a row-length sequence.
    pub fn from_lengths(rows: usize, cols: usize, lengths: &[usize]) -> Self {
        let rs = RowStats::from_lengths(lengths);
        let ell_fill = if rs.nnz > 0 {
            (rows * rs.max) as f64 / rs.nnz as f64
        } else {
            0.0
        };
        let (hybrid_width, hybrid_spill) = hybrid_split(lengths, rs.nnz);
        Self {
            rows,
            cols,
            nnz: rs.nnz,
            max_row: rs.max,
            mean: rs.mean,
            cv: rs.cv,
            max_over_mean: rs.max_over_mean,
            ell_fill,
            hybrid_width,
            hybrid_spill,
        }
    }
}

/// The cost-balanced slab width and the spill `Σ max(0, len − w)` at
/// that width. Widening the slab by one lane costs `rows` fresh slots
/// (shorter rows pad) and rescues one tail entry from every row still
/// longer than the slab, each worth [`HYBRID_TAIL_COST`] slots — so the
/// split grows while `longer_than(w) · HYBRID_TAIL_COST > rows`. The
/// predicate is monotone in `w`, so the answer is a binary search over
/// sorted lengths.
fn hybrid_split(lengths: &[usize], nnz: usize) -> (usize, usize) {
    if nnz == 0 {
        return (0, 0);
    }
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable();
    // suffix[i] = sum of sorted[i..].
    let n = sorted.len();
    let mut suffix = vec![0usize; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + sorted[i];
    }
    let spill_at = |w: usize| -> usize {
        // Rows with len > w spill (len − w) entries each.
        let i = sorted.partition_point(|&l| l <= w);
        suffix[i] - w * (n - i)
    };
    let longer_than = |w: usize| -> usize { n - sorted.partition_point(|&l| l <= w) };
    let max = *sorted.last().expect("nnz > 0 implies rows > 0");
    let (mut lo, mut hi) = (0usize, max);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if longer_than(mid) as f64 * HYBRID_TAIL_COST > n as f64 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, spill_at(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display_their_base_names() {
        assert_eq!(FormatKind::Csr.to_string(), "csr");
        assert_eq!(FormatKind::Coo.to_string(), "coo");
        assert_eq!(FormatKind::Csc.to_string(), "csc");
        assert_eq!(FormatKind::Ell.to_string(), "ell");
        assert_eq!(FormatKind::Hybrid.to_string(), "hybrid");
    }

    #[test]
    fn from_str_round_trips_display_for_every_kind() {
        for kind in FormatKind::ALL {
            let parsed: FormatKind = kind.to_string().parse().expect("round-trip");
            assert_eq!(parsed, kind, "{kind}");
        }
    }

    #[test]
    fn junk_strings_are_rejected_with_context() {
        for bad in ["CSR", "ell(4)", "dense", ""] {
            let err = bad.parse::<FormatKind>().unwrap_err();
            assert!(err.to_string().contains("unknown format"), "{bad}");
        }
    }

    #[test]
    fn regular_matrix_has_unit_fill_and_full_width_split() {
        let s = FormatStats::from_lengths(100, 100, &[5; 100]);
        assert_eq!(s.nnz, 500);
        assert_eq!(s.max_row, 5);
        assert!((s.ell_fill - 1.0).abs() < 1e-12);
        // Regular rows: every row extends to width 5, so widening the
        // slab always pays — the split degenerates to pure ELL, no tail.
        assert_eq!(s.hybrid_width, 5);
        assert_eq!(s.hybrid_spill, 0);
    }

    #[test]
    fn hub_rows_blow_up_fill_but_not_hybrid_width() {
        // 99 rows of 2 plus one hub row of 300.
        let mut lengths = vec![2usize; 99];
        lengths.push(300);
        let s = FormatStats::from_lengths(100, 1000, &lengths);
        assert_eq!(s.nnz, 498);
        assert_eq!(s.max_row, 300);
        assert!(s.ell_fill > 50.0, "fill = {}", s.ell_fill);
        // The hybrid split keeps the slab narrow: past width 2 only the
        // hub row is left, and one row can't pay for 100 rows of
        // padding — its 298 excess entries spill to the tail.
        assert_eq!(s.hybrid_width, 2);
        assert_eq!(s.hybrid_spill, 298);
        assert!(s.cv > 1.0);
    }

    #[test]
    fn empty_matrix_is_all_zeros() {
        let s = FormatStats::from_lengths(5, 5, &[0; 5]);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.ell_fill, 0.0);
        assert_eq!(s.hybrid_width, 0);
        assert_eq!(s.hybrid_spill, 0);
    }

    #[test]
    fn of_matches_from_lengths() {
        let a = crate::gen::powerlaw(200, 200, 3_000, 1.8, 12);
        let s = FormatStats::of(&a);
        let t = FormatStats::from_lengths(a.rows(), a.cols(), &a.row_lengths());
        assert_eq!(s, t);
        // Power law: high fill, narrow hybrid slab relative to max row.
        assert!(s.ell_fill > 2.0, "fill = {}", s.ell_fill);
        assert!(s.hybrid_width < s.max_row);
    }

    #[test]
    fn split_stops_exactly_where_widening_stops_paying() {
        let lengths = [1usize, 3, 7, 2, 9, 4, 4, 30];
        let s = FormatStats::from_lengths(8, 64, &lengths);
        let spill = |w: usize| -> usize {
            lengths.iter().map(|&l| l.saturating_sub(w)).sum()
        };
        let longer = |w: usize| lengths.iter().filter(|&&l| l > w).count();
        let rows = lengths.len();
        assert_eq!(s.hybrid_spill, spill(s.hybrid_width));
        // At the chosen width another lane no longer pays its padding…
        assert!(longer(s.hybrid_width) as f64 * HYBRID_TAIL_COST <= rows as f64);
        // …and one lane earlier it still did (the width is minimal).
        if s.hybrid_width > 0 {
            assert!(
                longer(s.hybrid_width - 1) as f64 * HYBRID_TAIL_COST > rows as f64,
                "width not minimal"
            );
        }
    }
}
