//! Conversions between sparse formats.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::csr::Csr;

/// COO → CSR. Entries are sorted row-major; duplicate positions are kept
/// (call [`Coo::canonicalize`] first to merge them).
pub fn coo_to_csr<V: Copy>(coo: &Coo<V>) -> Csr<V> {
    let mut counts = vec![0usize; coo.rows() + 1];
    for &r in coo.row_indices() {
        counts[r as usize + 1] += 1;
    }
    for i in 0..coo.rows() {
        counts[i + 1] += counts[i];
    }
    let row_offsets = counts.clone();
    let nnz = coo.nnz();
    let mut cursor = counts;
    let mut col_indices = vec![0u32; nnz];
    let mut values: Vec<V> = Vec::with_capacity(nnz);
    // SAFETY-free scatter: fill with first value then overwrite.
    values.extend(coo.values().iter().copied());
    // Stable counting-sort scatter by row; within a row we then sort by col.
    for ((&r, &c), &v) in coo
        .row_indices()
        .iter()
        .zip(coo.col_indices())
        .zip(coo.values())
    {
        let dst = cursor[r as usize];
        col_indices[dst] = c;
        values[dst] = v;
        cursor[r as usize] += 1;
    }
    // Sort each row segment by column to reach canonical CSR.
    let mut result = Csr::from_parts(coo.rows(), coo.cols(), row_offsets, col_indices, values)
        .expect("scatter preserves CSR invariants");
    sort_rows_by_column(&mut result);
    result
}

fn sort_rows_by_column<V: Copy>(csr: &mut Csr<V>) {
    let offsets = csr.row_offsets().to_vec();
    let (cols, vals) = csr.cols_vals_mut();
    let mut scratch: Vec<(u32, V)> = Vec::new();
    for w in offsets.windows(2) {
        let range = w[0]..w[1];
        if range.len() <= 1 || cols[range.clone()].windows(2).all(|p| p[0] <= p[1]) {
            continue;
        }
        scratch.clear();
        scratch.extend(
            cols[range.clone()]
                .iter()
                .copied()
                .zip(vals[range.clone()].iter().copied()),
        );
        scratch.sort_by_key(|&(c, _)| c);
        for (dst, &(c, v)) in range.zip(&scratch) {
            cols[dst] = c;
            vals[dst] = v;
        }
    }
}

/// CSR → COO, in canonical row-major order.
pub fn csr_to_coo<V: Copy>(csr: &Csr<V>) -> Coo<V> {
    let mut rows = Vec::with_capacity(csr.nnz());
    let mut cols = Vec::with_capacity(csr.nnz());
    let mut vals = Vec::with_capacity(csr.nnz());
    for (r, c, v) in csr.iter() {
        rows.push(r);
        cols.push(c);
        vals.push(v);
    }
    Coo::from_parts(csr.rows(), csr.cols(), rows, cols, vals)
        .expect("CSR entries are in bounds by construction")
}

/// CSR → CSC (column-major compression of the same matrix).
pub fn csr_to_csc<V: Copy>(csr: &Csr<V>) -> Csc<V> {
    let mut counts = vec![0usize; csr.cols() + 1];
    for &c in csr.col_indices() {
        counts[c as usize + 1] += 1;
    }
    for i in 0..csr.cols() {
        counts[i + 1] += counts[i];
    }
    let col_offsets = counts.clone();
    let mut cursor = counts;
    let nnz = csr.nnz();
    let mut row_indices = vec![0u32; nnz];
    let mut values: Vec<V> = csr.values().to_vec();
    for (r, c, v) in csr.iter() {
        let dst = cursor[c as usize];
        row_indices[dst] = r;
        values[dst] = v;
        cursor[c as usize] += 1;
    }
    Csc::from_parts(csr.rows(), csr.cols(), col_offsets, row_indices, values)
        .expect("scatter preserves CSC invariants")
}

/// Transpose a CSR matrix (rows become columns) returning CSR.
pub fn transpose<V: Copy>(csr: &Csr<V>) -> Csr<V> {
    let csc = csr_to_csc(csr);
    Csr::from_parts(
        csr.cols(),
        csr.rows(),
        csc.col_offsets().to_vec(),
        csc.row_indices().to_vec(),
        csc.values().to_vec(),
    )
    .expect("CSC of A is CSR of A^T")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_coo_roundtrip() {
        let a = sample();
        let coo = csr_to_coo(&a);
        assert!(coo.is_canonical());
        let back = coo_to_csr(&coo);
        assert_eq!(a, back);
    }

    #[test]
    fn coo_to_csr_sorts_unsorted_input() {
        let coo = Coo::from_parts(
            3,
            4,
            vec![2, 0, 2, 0, 2],
            vec![3, 2, 0, 0, 1],
            vec![5.0f32, 2.0, 3.0, 1.0, 4.0],
        )
        .unwrap();
        assert_eq!(coo_to_csr(&coo), sample());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = sample();
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_swaps_dimensions_and_moves_entries() {
        let t = transpose(&sample());
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        // A[2,3] = 5 → T[3,2] = 5
        let (cols, vals) = t.row(3);
        assert_eq!(cols, &[2]);
        assert_eq!(vals, &[5.0]);
    }

    #[test]
    fn csc_spmv_equivalence_on_random_matrix() {
        use crate::gen;
        let a = gen::uniform(64, 48, 500, 7);
        let csc = csr_to_csc(&a);
        let x: Vec<f32> = (0..48).map(|i| (i as f32).sin()).collect();
        let y1 = a.spmv_ref(&x);
        let y2 = csc.spmv_ref(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-4 * u.abs().max(1.0), "{u} vs {v}");
        }
    }
}
