//! The plan cache: (kernel, fingerprint) → prepared [`KernelPlan`],
//! LRU-bounded.
//!
//! Preparing a plan costs real (simulated) time — LRB's binning launches,
//! merge-path's partition build — and serving workloads are heavily
//! skewed: a few popular matrices receive most requests. Memoizing the
//! prepared plan per [`PlanKey`] turns that skew into wins: a cache
//! hit skips schedule selection *and* setup, and the launch runs the
//! cheaper prepartitioned path. The plan type is the dispatch engine's
//! kernel-agnostic [`KernelPlan`], so one cache serves SpMV, SpMM and
//! BFS side by side — the kernel name in the key keeps a matrix's SpMV
//! plan from answering for its SpMM plan (their artifacts differ even on
//! the same sparsity pattern).

use std::collections::HashMap;
use std::sync::Arc;

use loops::dispatch::{KernelKind, KernelPlan};
use sparse::FormatKind;

use crate::fingerprint::Fingerprint;

/// Cache key: which kernel, over which storage format, on which matrix.
/// The kernel component is the same [`KernelKind`] that prefixes the
/// engine's trace labels ([`loops::dispatch::trace_label`]), so the
/// cache and the timeline agree on what a plan is for; the format
/// component lets per-format prepared plans coexist for one matrix (the
/// hybrid slab's flat-span plan next to CSR's merge-path table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Engine kernel.
    pub kernel: KernelKind,
    /// Storage format the plan's tile geometry was prepared over.
    pub format: FormatKind,
    /// Fingerprint of the operand's sparsity pattern.
    pub fp: Fingerprint,
}

/// Hit/miss/eviction counters for a serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: usize,
    /// Lookups that missed (and inserted after preparing).
    pub misses: usize,
    /// Entries dropped to stay within capacity.
    pub evictions: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 if none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of prepared plans keyed by kernel + matrix fingerprint.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<PlanKey, (Arc<KernelPlan>, u64)>,
    stats: CacheStats,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (capacity 0 disables
    /// caching: every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a plan, counting the hit or miss.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<KernelPlan>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some((plan, used)) => {
                *used = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(plan))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly prepared plan, evicting the least-recently-used
    /// entry if over capacity.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<KernelPlan>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        self.entries.insert(key, (plan, self.clock));
        while self.entries.len() > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
                .expect("non-empty");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
    }

    /// Drop a cached plan (a launch through it failed, so it is treated
    /// as poisoned and the next request re-prepares). Not counted as an
    /// eviction — those measure capacity pressure.
    pub fn remove(&mut self, key: &PlanKey) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loops::schedule::ScheduleKind;

    fn plan() -> Arc<KernelPlan> {
        Arc::new(KernelPlan {
            schedule: ScheduleKind::ThreadMapped,
            block_dim: 256,
            merge_starts: None,
            lrb: None,
            setup_ms: 0.0,
        })
    }

    fn key(n: usize) -> PlanKey {
        keyed(KernelKind::Spmv, n)
    }

    fn keyed(kernel: KernelKind, n: usize) -> PlanKey {
        PlanKey {
            kernel,
            format: FormatKind::Csr,
            fp: Fingerprint {
                rows: n,
                cols: n,
                nnz: n,
                max_row: 1,
                cv_milli: 0,
                pattern: n as u64,
            },
        }
    }

    #[test]
    fn hit_after_insert_and_stats() {
        let mut c = PlanCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan());
        assert!(c.get(&key(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan());
        c.insert(key(2), plan());
        let _ = c.get(&key(1)); // 2 is now LRU
        c.insert(key(3), plan());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "LRU entry should be evicted");
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_drops_a_poisoned_entry_without_counting_eviction() {
        let mut c = PlanCache::new(4);
        c.insert(key(1), plan());
        assert!(c.remove(&key(1)));
        assert!(!c.remove(&key(1)), "second remove finds nothing");
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().evictions, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn same_matrix_different_kernels_are_distinct_entries() {
        let mut c = PlanCache::new(4);
        c.insert(keyed(KernelKind::Spmv, 1), plan());
        assert!(
            c.get(&keyed(KernelKind::Spmm, 1)).is_none(),
            "spmm must not see the spmv plan"
        );
        c.insert(keyed(KernelKind::Spmm, 1), plan());
        assert!(c.get(&keyed(KernelKind::Spmv, 1)).is_some());
        assert!(c.get(&keyed(KernelKind::Spmm, 1)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn same_matrix_different_formats_are_distinct_entries() {
        let mut c = PlanCache::new(4);
        c.insert(key(1), plan());
        let hybrid = PlanKey {
            format: FormatKind::Hybrid,
            ..key(1)
        };
        assert!(
            c.get(&hybrid).is_none(),
            "the hybrid plan must not be answered by the CSR plan"
        );
        c.insert(hybrid, plan());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&hybrid).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        c.insert(key(1), plan());
        assert!(c.get(&key(1)).is_none());
        assert!(c.is_empty());
    }
}
