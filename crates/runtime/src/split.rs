//! The global split/merge aggregation layer: one request fanned out
//! across shard runtimes, partials merged bitwise.
//!
//! A split execution runs one kernel over a row-aligned
//! [`ShardPlan`](sparse::ShardPlan): every shard computes its
//! contiguous row block against the full (replicated, post-halo-
//! exchange) input vector, through its *own* runtime's plan cache
//! ([`Runtime::run_spmv_pinned`]), and the aggregator concatenates the
//! partial slices. Because the partition is row-aligned and the pinned
//! schedule is flat-span (see [`decomposable`]), the concatenation is
//! **bitwise identical** to running the same schedule on the whole
//! matrix on one shard — the oracle tests assert exactly this.
//!
//! What lives here versus in the `shard` crate: this module is the
//! kernel-level mechanics (schedule coercion, fan-out, bitwise merge);
//! the `shard` crate owns the serving policy around it (consistent-hash
//! routing, global admission, communication charges, trace emission).

use std::sync::Arc;

use loops::heuristic::Heuristic;
use loops::schedule::ScheduleKind;
use sparse::Csr;

use crate::{Runtime, ShardCounters};

/// Coerce a schedule to the nearest *bitwise row-decomposable* one.
///
/// Only flat-span schedules fold each row's products left-to-right in
/// atom order independent of the launch geometry, which is what makes a
/// row-sliced execution bit-equal to the full-matrix run. Merge-path
/// (partition-relative partial spans combined by `atomicAdd`) maps to a
/// work-queue of the same items-per-thread granularity — the dynamic
/// schedule with the closest load-balancing behaviour — and the
/// cooperative-reduce family (lane partials interleaved in
/// batch-relative order) plus LRB (cooperative bins) map to
/// thread-mapped. The same move `kernels::spmm` makes for its
/// unsupported families, applied for a different reason: there it is
/// capability, here it is bitwise reproducibility.
pub fn decomposable(kind: ScheduleKind) -> ScheduleKind {
    match kind {
        ScheduleKind::ThreadMapped | ScheduleKind::WorkQueue(_) => kind,
        ScheduleKind::MergePath => {
            ScheduleKind::WorkQueue(loops::dispatch::MERGE_ITEMS_PER_THREAD as u32)
        }
        ScheduleKind::WarpMapped
        | ScheduleKind::BlockMapped
        | ScheduleKind::GroupMapped(_)
        | ScheduleKind::Lrb => ScheduleKind::ThreadMapped,
    }
}

/// The schedule a split execution pins for `a`: the paper's heuristic
/// choice for the *global* matrix, coerced to a decomposable schedule.
/// Every shard — and the single-shard baseline — runs this one
/// schedule, so shard count never changes the result bits.
pub fn pinned_schedule(a: &Csr<f32>) -> ScheduleKind {
    decomposable(Heuristic::paper().select(a.rows(), a.cols(), a.nnz()))
}

/// Result of one split execution across shard runtimes.
#[derive(Debug, Clone)]
pub struct SplitRun {
    /// The merged output vector (bitwise equal to the single-shard
    /// run's).
    pub y: Vec<f32>,
    /// Each shard's simulated kernel time in milliseconds (0 for
    /// shards whose row block is empty).
    pub shard_elapsed_ms: Vec<f64>,
    /// Shards that served their partial from a cached plan.
    pub cache_hits: usize,
    /// The pinned schedule every shard ran.
    pub schedule: ScheduleKind,
}

impl SplitRun {
    /// The slowest shard's kernel time — the compute half of the
    /// bulk-synchronous critical path (communication is priced
    /// separately by `simt::exchange`).
    pub fn critical_shard_ms(&self) -> f64 {
        self.shard_elapsed_ms.iter().fold(0.0, |m, &t| m.max(t))
    }
}

/// Fan one SpMV out across `shards` (shard `i` computes `subs[i]`, its
/// row block of the global matrix) and merge the partials by
/// concatenation.
///
/// `subs` must be row-aligned blocks covering the global matrix in
/// order, each keeping the full column space (what
/// [`sparse::ShardPlan::submatrix`] produces), and `kind` must be
/// decomposable — pass it through [`decomposable`] or take it from
/// [`pinned_schedule`].
///
/// # Panics
/// If `shards` and `subs` disagree in length, or `kind` is not
/// decomposable.
pub fn split_spmv(
    shards: &mut [Runtime],
    subs: &[Arc<Csr<f32>>],
    x: &[f32],
    kind: ScheduleKind,
) -> simt::Result<SplitRun> {
    assert_eq!(shards.len(), subs.len(), "one sub-matrix per shard");
    assert_eq!(
        kind,
        decomposable(kind),
        "split execution requires a bitwise row-decomposable schedule"
    );
    let total_rows: usize = subs.iter().map(|a| a.rows()).sum();
    let mut y = Vec::with_capacity(total_rows);
    let mut shard_elapsed_ms = Vec::with_capacity(shards.len());
    let mut cache_hits = 0usize;
    for (rt, sub) in shards.iter_mut().zip(subs) {
        if sub.rows() == 0 {
            shard_elapsed_ms.push(0.0);
            continue;
        }
        let run = rt.run_spmv_pinned(sub, x, kind)?;
        y.extend_from_slice(&run.output);
        shard_elapsed_ms.push(run.report.elapsed_ms());
        if run.cache_hit {
            cache_hits += 1;
        }
    }
    Ok(SplitRun {
        y,
        shard_elapsed_ms,
        cache_hits,
        schedule: kind,
    })
}

/// Merge per-shard partial vectors by concatenation — the only merge a
/// row-aligned partition needs, and the reason it is bitwise exact: no
/// arithmetic happens, so no rounding can diverge from the single-shard
/// path.
pub fn merge_partials(parts: &[Vec<f32>]) -> Vec<f32> {
    let mut y = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        y.extend_from_slice(p);
    }
    y
}

/// Fold per-shard [`ShardCounters`] into group totals.
pub fn sum_shard_counters(counters: &[ShardCounters]) -> ShardCounters {
    let mut total = ShardCounters::default();
    for c in counters {
        total.routed += c.routed;
        total.halo_bytes += c.halo_bytes;
        total.merges += c.merges;
        total.shard_rejects += c.shard_rejects;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeConfig;
    use simt::GpuSpec;
    use sparse::{ShardPlan, ShardStrategy};

    fn bits(y: &[f32]) -> Vec<u32> {
        y.iter().map(|v| v.to_bits()).collect()
    }

    fn group(n: usize) -> Vec<Runtime> {
        (0..n)
            .map(|_| Runtime::new(GpuSpec::v100(), RuntimeConfig::default()))
            .collect()
    }

    #[test]
    fn coercion_is_idempotent_and_flat_span_only() {
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::WorkQueue(4),
            ScheduleKind::Lrb,
        ] {
            let d = decomposable(kind);
            assert_eq!(d, decomposable(d), "{kind}: coercion must be idempotent");
            assert!(
                matches!(d, ScheduleKind::ThreadMapped | ScheduleKind::WorkQueue(_)),
                "{kind} coerced to non-flat-span {d}"
            );
        }
    }

    #[test]
    fn split_spmv_merges_bitwise_identically_to_one_shard() {
        let a = Arc::new(sparse::gen::powerlaw(2_000, 2_000, 30_000, 1.7, 21));
        let x = sparse::dense::test_vector(a.cols());
        let kind = pinned_schedule(&a);
        let single = split_spmv(&mut group(1), &[Arc::clone(&a)], &x, kind)
            .unwrap()
            .y;
        for n in [2usize, 4, 8] {
            let plan = ShardPlan::partition(a.as_ref(), n, ShardStrategy::Nnz1D);
            let subs: Vec<Arc<Csr<f32>>> = (0..n)
                .map(|s| Arc::new(plan.submatrix(a.as_ref(), s)))
                .collect();
            let run = split_spmv(&mut group(n), &subs, &x, kind).unwrap();
            assert_eq!(bits(&run.y), bits(&single), "{n} shards diverged");
            assert_eq!(run.shard_elapsed_ms.len(), n);
            assert!(run.critical_shard_ms() > 0.0);
        }
    }

    #[test]
    fn split_spmv_warm_path_hits_shard_local_caches() {
        let a = Arc::new(sparse::gen::uniform(1_500, 1_500, 20_000, 22));
        let x = sparse::dense::test_vector(a.cols());
        let kind = pinned_schedule(&a);
        let plan = ShardPlan::partition(a.as_ref(), 4, ShardStrategy::RowNnz2D);
        let subs: Vec<Arc<Csr<f32>>> = (0..4)
            .map(|s| Arc::new(plan.submatrix(a.as_ref(), s)))
            .collect();
        let mut shards = group(4);
        let cold = split_spmv(&mut shards, &subs, &x, kind).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = split_spmv(&mut shards, &subs, &x, kind).unwrap();
        assert_eq!(warm.cache_hits, 4, "every shard must replay its plan");
        assert_eq!(bits(&warm.y), bits(&cold.y), "warm path must not change bits");
    }

    #[test]
    fn empty_shards_are_skipped() {
        let a = Arc::new(sparse::gen::uniform(3, 3, 6, 23));
        let x = sparse::dense::test_vector(a.cols());
        let plan = ShardPlan::partition(a.as_ref(), 8, ShardStrategy::Rows1D);
        let subs: Vec<Arc<Csr<f32>>> = (0..8)
            .map(|s| Arc::new(plan.submatrix(a.as_ref(), s)))
            .collect();
        let run = split_spmv(&mut group(8), &subs, &x, ScheduleKind::ThreadMapped).unwrap();
        assert_eq!(run.y.len(), 3);
        assert_eq!(
            run.shard_elapsed_ms.iter().filter(|&&t| t == 0.0).count(),
            8 - subs.iter().filter(|s| s.rows() > 0).count()
        );
    }

    #[test]
    #[should_panic(expected = "row-decomposable")]
    fn merge_path_is_rejected_unpinned() {
        let a = Arc::new(sparse::gen::uniform(100, 100, 500, 24));
        let x = sparse::dense::test_vector(a.cols());
        let _ = split_spmv(
            &mut group(1),
            &[Arc::clone(&a)],
            &x,
            ScheduleKind::MergePath,
        );
    }

    #[test]
    fn merge_partials_concatenates() {
        let merged = merge_partials(&[vec![1.0f32, 2.0], vec![], vec![3.0]]);
        assert_eq!(merged, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn shard_counter_sums_fold_componentwise() {
        let total = sum_shard_counters(&[
            ShardCounters {
                routed: 3,
                halo_bytes: 16,
                merges: 2,
                shard_rejects: 1,
            },
            ShardCounters::default(),
            ShardCounters {
                routed: 1,
                halo_bytes: 4,
                merges: 1,
                shard_rejects: 0,
            },
        ]);
        assert_eq!(total.routed, 4);
        assert_eq!(total.halo_bytes, 20);
        assert_eq!(total.merges, 3);
        assert_eq!(total.shard_rejects, 1);
        assert!(total.is_active());
        assert!(!ShardCounters::default().is_active());
    }
}
