//! Small-request batching: coalesce tiny SpMVs into one block-diagonal
//! launch.
//!
//! Launch overhead is a fixed ~10 µs; a 500-row SpMV finishes in less
//! simulated time than it costs to launch. A serving runtime therefore
//! holds tiny requests briefly and fuses the accumulated batch into one
//! matrix: `diag(A₁ … Aₖ)` acting on `[x₁; …; xₖ]` computes every
//! member's product in a single launch, paying the overhead once. The
//! block-diagonal structure keeps results exact — row blocks are
//! independent, so member `i`'s slice of `y` is bitwise what a solo
//! launch would have produced under the same schedule shape.

use sparse::Csr;

/// Block-diagonal concatenation `diag(parts[0], …, parts[k-1])`.
///
/// Rows and columns are the sums of the members'; member `i`'s rows map
/// to the output rows `row_start(i) .. row_start(i+1)`.
pub fn block_diag(parts: &[&Csr<f32>]) -> Csr<f32> {
    let rows: usize = parts.iter().map(|a| a.rows()).sum();
    let cols: usize = parts.iter().map(|a| a.cols()).sum();
    let nnz: usize = parts.iter().map(|a| a.nnz()).sum();
    assert!(cols <= u32::MAX as usize, "combined width exceeds u32 column indices");
    let mut row_offsets = Vec::with_capacity(rows + 1);
    let mut col_indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    row_offsets.push(0usize);
    let (mut nnz_base, mut col_base) = (0usize, 0u32);
    for a in parts {
        row_offsets.extend(a.row_offsets()[1..].iter().map(|&o| o + nnz_base));
        col_indices.extend(a.col_indices().iter().map(|&c| c + col_base));
        values.extend_from_slice(a.values());
        nnz_base += a.nnz();
        col_base += a.cols() as u32;
    }
    Csr::from_parts(rows, cols, row_offsets, col_indices, values)
        .expect("block-diagonal of valid CSRs is valid")
}

/// Concatenate the members' input vectors in the same order.
pub fn concat_x(xs: &[&[f32]]) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.iter().map(|x| x.len()).sum());
    for x in xs {
        out.extend_from_slice(x);
    }
    out
}

/// Split a fused result back into per-member vectors of the given row
/// counts.
pub fn split_y(y: &[f32], row_counts: &[usize]) -> Vec<Vec<f32>> {
    assert_eq!(y.len(), row_counts.iter().sum::<usize>());
    let mut out = Vec::with_capacity(row_counts.len());
    let mut at = 0;
    for &n in row_counts {
        out.push(y[at..at + n].to_vec());
        at += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_diag_matches_solo_reference_products() {
        let a = sparse::gen::uniform(40, 30, 300, 7);
        let b = sparse::gen::powerlaw(25, 50, 200, 1.6, 8);
        let c = Csr::<f32>::empty(5, 5);
        let xs: Vec<Vec<f32>> = [&a, &b, &c]
            .iter()
            .map(|m| sparse::dense::test_vector(m.cols()))
            .collect();
        let fused = block_diag(&[&a, &b, &c]);
        assert_eq!(fused.rows(), 70);
        assert_eq!(fused.cols(), 85);
        assert_eq!(fused.nnz(), a.nnz() + b.nnz());
        let x = concat_x(&[&xs[0], &xs[1], &xs[2]]);
        let y = fused.spmv_ref(&x);
        let parts = split_y(&y, &[40, 25, 5]);
        for (part, (m, x)) in parts.iter().zip([(&a, &xs[0]), (&b, &xs[1]), (&c, &xs[2])]) {
            assert_eq!(part, &m.spmv_ref(x));
        }
    }

    #[test]
    fn single_member_roundtrips() {
        let a = sparse::gen::uniform(10, 10, 50, 9);
        let fused = block_diag(&[&a]);
        assert_eq!(fused.row_offsets(), a.row_offsets());
        assert_eq!(fused.col_indices(), a.col_indices());
    }
}
