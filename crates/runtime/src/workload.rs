//! Open-loop serving workloads: Zipf-skewed matrix popularity with
//! Poisson arrivals.
//!
//! Serving traffic is skewed — a few models/matrices take most requests —
//! and open-loop: requests arrive on their own clock, not when the server
//! is ready. `zipf_workload` reproduces both with the repo's deterministic
//! PRNG, so every bench run sees the same request stream.

use std::sync::Arc;

use sparse::{Csr, Prng};

use crate::Request;

/// Workload shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Zipf skew exponent `s` (0 = uniform popularity; ~1 = classic skew).
    pub zipf_s: f64,
    /// Mean inter-arrival gap in simulated milliseconds (exponential).
    pub mean_interarrival_ms: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            requests: 1_000,
            zipf_s: 1.1,
            mean_interarrival_ms: 0.05,
            seed: 42,
        }
    }
}

/// Generate an open-loop request stream over `matrices`: request `i`
/// targets a Zipf-popular matrix (rank = input order) and arrives after
/// an exponential gap. Each matrix gets one shared deterministic input
/// vector. The matrix's popularity rank doubles as the request's tenant
/// id, so per-tenant telemetry follows the Zipf skew.
pub fn zipf_workload(matrices: &[Arc<Csr<f32>>], spec: &WorkloadSpec) -> Vec<Request> {
    assert!(!matrices.is_empty(), "workload needs at least one matrix");
    let mut rng = Prng::seed_from_u64(spec.seed);
    // Zipf CDF over ranks: weight(i) = 1 / (i+1)^s.
    let weights: Vec<f64> = (0..matrices.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let xs: Vec<Arc<[f32]>> = matrices
        .iter()
        .map(|a| Arc::from(sparse::dense::test_vector(a.cols()).into_boxed_slice()))
        .collect();
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(spec.requests);
    for id in 0..spec.requests {
        t += rng.exp(1.0 / spec.mean_interarrival_ms.max(1e-9));
        let u = rng.f64();
        let idx = cdf.partition_point(|&c| c < u).min(matrices.len() - 1);
        out.push(Request {
            id: id as u64,
            tenant: idx as u32,
            matrix: Arc::clone(&matrices[idx]),
            x: Arc::clone(&xs[idx]),
            arrival_ms: t,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Arc<Csr<f32>>> {
        (0..6)
            .map(|i| Arc::new(sparse::gen::uniform(100 + i * 10, 100, 800, i as u64)))
            .collect()
    }

    #[test]
    fn workload_is_deterministic_and_ordered() {
        let m = corpus();
        let spec = WorkloadSpec {
            requests: 200,
            ..WorkloadSpec::default()
        };
        let a = zipf_workload(&m, &spec);
        let b = zipf_workload(&m, &spec);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(a
            .iter()
            .zip(&b)
            .all(|(p, q)| p.arrival_ms == q.arrival_ms && Arc::ptr_eq(&p.matrix, &q.matrix)));
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let m = corpus();
        let spec = WorkloadSpec {
            requests: 2_000,
            zipf_s: 1.2,
            ..WorkloadSpec::default()
        };
        let reqs = zipf_workload(&m, &spec);
        let head = reqs
            .iter()
            .filter(|r| Arc::ptr_eq(&r.matrix, &m[0]))
            .count();
        let tail = reqs
            .iter()
            .filter(|r| Arc::ptr_eq(&r.matrix, &m[5]))
            .count();
        assert!(head > 3 * tail.max(1), "rank 0: {head}, rank 5: {tail}");
    }
}
