//! Online, profile-guided schedule autotuning (closing the loop the
//! paper opens in §6.2).
//!
//! The static heuristic picks one schedule per matrix from three summary
//! statistics — but the paper's own results show no single schedule wins
//! across sparsity patterns, and the dispatch engine made every schedule
//! interchangeable behind a [`KernelPlan`]. This module walks the
//! candidate space *online*: each plan-cache miss for a tuned key serves
//! the request under one candidate ([`loops::dispatch::candidates`]
//! enumerates the space, including group-size and chunk-width variants)
//! and records the **simulated cost** the launch reports. The simulator
//! is deterministic, so one measurement per candidate is exact — no
//! repetition, no noise floor. When every candidate is measured, the
//! winner's prepared plan is **promoted** into the plan cache, and from
//! then on requests take the ordinary warm path (prepartitioned
//! merge-path tables, cached LRB bins) with zero tuner involvement.
//!
//! The policy is seeded epsilon-greedy: the first serve of a key always
//! explores (nothing is known), after that each miss explores the next
//! unmeasured candidate with probability `epsilon` and otherwise
//! exploits the best-measured one — so request latency stays close to
//! best-known while the sweep trickles to completion. Exploration order
//! is a seeded shuffle of the candidate list, decorrelating which
//! schedules pay the early-exploration cost across keys without losing
//! determinism: the same seed and request stream reproduce the same
//! choices, measurements, and promotions bitwise.
//!
//! Costs are measured on the *planned* (warm) path: the tuner prepares
//! the candidate's plan first and serves through it, so what it compares
//! is exactly the steady-state cost the cache will serve afterwards —
//! a cold merge-path launch would be charged for in-kernel diagonal
//! searches the warm path never runs, biasing the sweep against the
//! schedules that benefit most from caching.

use std::collections::HashMap;
use std::sync::Arc;

use loops::dispatch::{Candidate, KernelPlan};
use sparse::Prng;

use crate::cache::PlanKey;

/// Autotuner knobs. Off by default: a runtime with a default config
/// serves bit-for-bit as it did before the tuner existed.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Master switch. When `false` the tuner is never consulted and the
    /// static heuristic picks every schedule.
    pub enabled: bool,
    /// Probability that a plan-cache miss explores the next unmeasured
    /// candidate once at least one cost is known (the first miss always
    /// explores). Higher converges faster; lower keeps pre-promotion
    /// latency closer to best-known.
    pub epsilon: f64,
    /// Seed for the exploration-order shuffle and the epsilon draws.
    /// The tuner has its own generator so enabling it never perturbs
    /// the runtime's retry/chaos stream.
    pub seed: u64,
    /// Maximum number of plan keys tracked; keys arriving after the
    /// table is full are served by the static heuristic (bounding tuner
    /// memory on long-tailed corpora).
    pub max_keys: usize,
    /// Whether the sweep includes non-CSR format candidates. `false`
    /// restricts the space to the schedule axis (the pre-format tuner,
    /// kept as the ablation baseline).
    pub formats: bool,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            epsilon: 0.4,
            seed: 0x70e5,
            max_keys: 256,
            formats: true,
        }
    }
}

/// What the tuner asks the caller to do for one plan-cache miss.
#[derive(Debug, Clone)]
pub enum TuneAction {
    /// Serve under this unmeasured (schedule × format) candidate, then
    /// report the measured cost (and the prepared plan) back through
    /// [`Autotuner::record`].
    Explore(Candidate),
    /// Serve under the best-measured candidate; nothing to report.
    Exploit {
        /// The best-measured (schedule × format) cell so far.
        candidate: Candidate,
        /// Its retained plan, if one was recorded (serve through it).
        plan: Option<Arc<KernelPlan>>,
        /// `true` if this key already promoted a winner but the plan
        /// cache has since evicted it — the caller should re-insert
        /// `plan` so the warm path resumes.
        promote: bool,
    },
}

/// A completed sweep: the winning candidate to install in the plan
/// cache.
#[derive(Debug, Clone)]
pub struct Promotion {
    /// The winning (schedule × format) cell.
    pub candidate: Candidate,
    /// Its prepared plan, ready to insert into the cache.
    pub plan: Arc<KernelPlan>,
    /// Its measured warm-path cost in simulated milliseconds.
    pub cost_ms: f64,
}

/// Lifetime counters (monotone; serve-level reports diff snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneStats {
    /// Requests served under an unmeasured candidate.
    pub explores: usize,
    /// Sweeps completed (winner promoted into the plan cache).
    pub promotes: usize,
    /// Plan keys currently tracked.
    pub keys: usize,
}

/// Per-key sweep state.
#[derive(Debug)]
struct KeyState {
    /// Candidates in (seeded-shuffled) exploration order.
    order: Vec<Candidate>,
    /// Measured warm-path cost per candidate, parallel to `order`.
    costs: Vec<Option<f64>>,
    /// Index and cost of the best-measured candidate.
    best: Option<(usize, f64)>,
    /// The best candidate's prepared plan.
    best_plan: Option<Arc<KernelPlan>>,
    /// The sweep finished and its winner was handed out.
    promoted: bool,
}

impl KeyState {
    fn next_unmeasured(&self) -> Option<usize> {
        self.costs.iter().position(Option::is_none)
    }
}

/// The online schedule autotuner: per-[`PlanKey`] sweep state plus the
/// seeded exploration stream. See the module docs for the policy.
#[derive(Debug)]
pub struct Autotuner {
    cfg: TuneConfig,
    rng: Prng,
    states: HashMap<PlanKey, KeyState>,
    explores: usize,
    promotes: usize,
}

impl Autotuner {
    /// A tuner with its own generator seeded from `cfg.seed`.
    pub fn new(cfg: TuneConfig) -> Self {
        Self {
            rng: Prng::seed_from_u64(cfg.seed),
            cfg,
            states: HashMap::new(),
            explores: 0,
            promotes: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TuneConfig {
        self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TuneStats {
        TuneStats {
            explores: self.explores,
            promotes: self.promotes,
            keys: self.states.len(),
        }
    }

    /// Decide how to serve a plan-cache miss for `key`. Returns `None`
    /// when the caller should use the static-heuristic path unchanged:
    /// tuning disabled, the key table full, or an empty candidate space.
    /// `enumerate` is only invoked the first time a key is seen.
    pub fn choose(
        &mut self,
        key: PlanKey,
        enumerate: impl FnOnce() -> Vec<Candidate>,
    ) -> Option<TuneAction> {
        if !self.cfg.enabled {
            return None;
        }
        if !self.states.contains_key(&key) {
            if self.states.len() >= self.cfg.max_keys {
                return None;
            }
            let mut order = enumerate();
            // Seeded Fisher–Yates: unbias which candidate eats the
            // first-exploration latency, deterministically.
            for i in (1..order.len()).rev() {
                let j = self.rng.index(0, i + 1);
                order.swap(i, j);
            }
            let costs = vec![None; order.len()];
            self.states.insert(
                key,
                KeyState {
                    order,
                    costs,
                    best: None,
                    best_plan: None,
                    promoted: false,
                },
            );
        }
        // Epsilon draw happens before borrowing the state so the
        // generator is consumed in a fixed order.
        let coin = self.rng.f64();
        let state = self.states.get_mut(&key).expect("state just ensured");
        if state.order.is_empty() {
            return None;
        }
        if state.promoted {
            let (bi, _) = state.best.expect("promoted key has a best");
            return Some(TuneAction::Exploit {
                candidate: state.order[bi],
                plan: state.best_plan.clone(),
                promote: true,
            });
        }
        match (state.next_unmeasured(), state.best) {
            // Nothing measured yet: the only way to learn is to explore.
            (Some(i), None) => Some(TuneAction::Explore(state.order[i])),
            (Some(i), Some((bi, _))) => {
                if coin < self.cfg.epsilon {
                    Some(TuneAction::Explore(state.order[i]))
                } else {
                    Some(TuneAction::Exploit {
                        candidate: state.order[bi],
                        plan: state.best_plan.clone(),
                        promote: false,
                    })
                }
            }
            // Fully measured but not promoted: `record` promotes as the
            // last measurement lands, so this only happens if that
            // promotion's cache entry was lost before `record` ran —
            // treat as exploit.
            (None, Some((bi, _))) => Some(TuneAction::Exploit {
                candidate: state.order[bi],
                plan: state.best_plan.clone(),
                promote: false,
            }),
            (None, None) => None,
        }
    }

    /// Report the measured warm-path cost of an explored candidate.
    /// Returns the [`Promotion`] when this measurement completes the
    /// key's sweep; the caller installs it in the plan cache. Repeat
    /// measurements of an already-measured candidate are ignored (the
    /// simulator is deterministic, so they carry no new information).
    pub fn record(
        &mut self,
        key: PlanKey,
        candidate: Candidate,
        cost_ms: f64,
        plan: Option<Arc<KernelPlan>>,
    ) -> Option<Promotion> {
        let state = self.states.get_mut(&key)?;
        let slot = state.order.iter().position(|k| *k == candidate)?;
        if state.costs[slot].is_none() {
            state.costs[slot] = Some(cost_ms);
            self.explores += 1;
            // Strict less-than: ties keep the earlier-measured candidate,
            // so the winner never depends on float comparison quirks.
            let better = match state.best {
                None => true,
                Some((_, best_cost)) => cost_ms < best_cost,
            };
            if better {
                state.best = Some((slot, cost_ms));
                state.best_plan = plan;
            }
        }
        if state.next_unmeasured().is_none() && !state.promoted {
            state.promoted = true;
            self.promotes += 1;
            let (bi, best_cost) = state.best.expect("measured sweep has a best");
            let plan = state
                .best_plan
                .clone()
                .expect("every recorded candidate carried a plan");
            return Some(Promotion {
                candidate: state.order[bi],
                plan,
                cost_ms: best_cost,
            });
        }
        None
    }

    /// Whether `key`'s sweep has completed and promoted a winner.
    pub fn is_promoted(&self, key: &PlanKey) -> bool {
        self.states.get(key).is_some_and(|s| s.promoted)
    }

    /// The promoted winner for `key`, if its sweep completed.
    pub fn winner(&self, key: &PlanKey) -> Option<Candidate> {
        let state = self.states.get(key)?;
        if !state.promoted {
            return None;
        }
        state.best.map(|(i, _)| state.order[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use loops::dispatch::KernelKind;
    use loops::schedule::ScheduleKind;
    use sparse::FormatKind;

    fn key(rows: usize) -> PlanKey {
        // Distinct row counts guarantee distinct fingerprints (the
        // generator may drop colliding nonzeros, so distinct *nnz*
        // requests would not).
        PlanKey {
            kernel: KernelKind::Spmv,
            format: FormatKind::Csr,
            fp: Fingerprint::of(&sparse::gen::uniform(rows, 16, 4 * rows, 1)),
        }
    }

    fn csr(kind: ScheduleKind) -> Candidate {
        (kind, FormatKind::Csr)
    }

    fn plan(candidate: Candidate) -> Arc<KernelPlan> {
        Arc::new(KernelPlan {
            schedule: candidate.0,
            block_dim: 256,
            merge_starts: None,
            lrb: None,
            setup_ms: 0.0,
        })
    }

    fn drive_sweep(tuner: &mut Autotuner, k: PlanKey, cost_of: impl Fn(Candidate) -> f64) -> Promotion {
        let space = || {
            vec![
                csr(ScheduleKind::ThreadMapped),
                csr(ScheduleKind::MergePath),
                (ScheduleKind::ThreadMapped, FormatKind::Hybrid),
            ]
        };
        for _ in 0..1000 {
            match tuner.choose(k, space) {
                Some(TuneAction::Explore(c)) => {
                    if let Some(p) = tuner.record(k, c, cost_of(c), Some(plan(c))) {
                        return p;
                    }
                }
                Some(TuneAction::Exploit { .. }) => {}
                None => panic!("tuner gave up mid-sweep"),
            }
        }
        panic!("sweep did not converge in 1000 requests");
    }

    #[test]
    fn disabled_tuner_is_never_consulted() {
        let mut t = Autotuner::new(TuneConfig::default());
        assert!(t.choose(key(32), || vec![csr(ScheduleKind::ThreadMapped)]).is_none());
        assert_eq!(t.stats(), TuneStats::default());
    }

    #[test]
    fn sweep_measures_every_candidate_once_and_promotes_the_cheapest() {
        let cfg = TuneConfig {
            enabled: true,
            ..TuneConfig::default()
        };
        let mut t = Autotuner::new(cfg);
        let k = key(48);
        // The hybrid cell wins: the sweep must compare across formats,
        // not just schedules.
        let winner = (ScheduleKind::ThreadMapped, FormatKind::Hybrid);
        let promo = drive_sweep(&mut t, k, |c| {
            if c == winner {
                0.25
            } else if c.0 == ScheduleKind::MergePath {
                0.5
            } else {
                1.0
            }
        });
        assert_eq!(promo.candidate, winner);
        assert_eq!(promo.cost_ms, 0.25);
        assert_eq!(t.stats().explores, 3, "each candidate measured exactly once");
        assert_eq!(t.stats().promotes, 1);
        assert_eq!(t.winner(&k), Some(winner));
        // After promotion the tuner hands back the winner for cache
        // re-insertion instead of exploring again.
        match t.choose(k, || panic!("candidate space must not be re-enumerated")) {
            Some(TuneAction::Exploit { candidate, plan, promote }) => {
                assert_eq!(candidate, winner);
                assert!(promote);
                assert_eq!(plan.unwrap().schedule, ScheduleKind::ThreadMapped);
            }
            other => panic!("expected promoted exploit, got {other:?}"),
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_choice_sequence() {
        let cfg = TuneConfig {
            enabled: true,
            seed: 99,
            ..TuneConfig::default()
        };
        let run = || {
            let mut t = Autotuner::new(cfg);
            let k = key(64);
            let mut seq = Vec::new();
            for _ in 0..20 {
                match t.choose(k, || {
                    vec![
                        csr(ScheduleKind::ThreadMapped),
                        csr(ScheduleKind::MergePath),
                        csr(ScheduleKind::WarpMapped),
                        (ScheduleKind::ThreadMapped, FormatKind::Ell),
                    ]
                }) {
                    Some(TuneAction::Explore((kind, fmt))) => {
                        seq.push(format!("explore {kind}/{fmt}"));
                        t.record(k, (kind, fmt), 1.0 + seq.len() as f64, Some(plan((kind, fmt))));
                    }
                    Some(TuneAction::Exploit { candidate: (kind, fmt), .. }) => {
                        seq.push(format!("exploit {kind}/{fmt}"));
                    }
                    None => seq.push("none".into()),
                }
            }
            seq
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn key_table_is_bounded() {
        let cfg = TuneConfig {
            enabled: true,
            max_keys: 2,
            ..TuneConfig::default()
        };
        let mut t = Autotuner::new(cfg);
        assert!(t.choose(key(16), || vec![csr(ScheduleKind::ThreadMapped)]).is_some());
        assert!(t.choose(key(17), || vec![csr(ScheduleKind::ThreadMapped)]).is_some());
        // A third distinct key is refused; the caller serves statically.
        assert!(t.choose(key(18), || vec![csr(ScheduleKind::ThreadMapped)]).is_none());
        assert_eq!(t.stats().keys, 2);
        // Known keys keep tuning.
        assert!(t.choose(key(16), || panic!("no re-enumeration")).is_some());
    }

    #[test]
    fn exploit_between_explorations_serves_best_so_far() {
        let cfg = TuneConfig {
            enabled: true,
            epsilon: 0.0, // never explore once something is measured
            ..TuneConfig::default()
        };
        let mut t = Autotuner::new(cfg);
        let k = key(80);
        let space = || vec![csr(ScheduleKind::ThreadMapped), csr(ScheduleKind::MergePath)];
        let Some(TuneAction::Explore(first)) = t.choose(k, space) else {
            panic!("first serve must explore");
        };
        t.record(k, first, 2.0, Some(plan(first)));
        // With epsilon 0 the sweep stalls on exploit — always best-so-far.
        for _ in 0..10 {
            match t.choose(k, space) {
                Some(TuneAction::Exploit { candidate, promote, .. }) => {
                    assert_eq!(candidate, first);
                    assert!(!promote);
                }
                other => panic!("expected exploit, got {other:?}"),
            }
        }
        assert_eq!(t.stats().promotes, 0);
    }
}
