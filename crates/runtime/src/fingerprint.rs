//! Matrix fingerprints — the plan-cache key.
//!
//! A prepared [`SpmvPlan`](kernels::plan::SpmvPlan) depends only on the
//! matrix's *row structure*: the schedule heuristic reads `rows`/`cols`/
//! `nnz`, the merge-path partition reads the row offsets, and LRB bins
//! rows by length. The fingerprint therefore combines the shape, the
//! row-length distribution summary ([`RowStats`]), and an FNV-1a hash of
//! the row-offset array. Two matrices with the same fingerprint get the
//! same plan; any change to the row structure changes the fingerprint and
//! invalidates the cached plan.

use sparse::stats::RowStats;
use sparse::Csr;

/// Cache key identifying a matrix's plan-relevant structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Row count.
    pub rows: usize,
    /// Column count (the heuristic's other α test).
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Longest row.
    pub max_row: usize,
    /// Coefficient of variation of row lengths, in thousandths (quantized
    /// so the key stays hashable).
    pub cv_milli: u64,
    /// FNV-1a hash over the row-offset array — detects any row-structure
    /// change the summary statistics miss.
    pub pattern: u64,
}

impl Fingerprint {
    /// Fingerprint a CSR matrix (O(rows)).
    pub fn of(a: &Csr<f32>) -> Self {
        let stats = RowStats::of(a);
        Self {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            max_row: stats.max,
            cv_milli: (stats.cv * 1e3).round() as u64,
            pattern: fnv1a_usizes(a.row_offsets()),
        }
    }
}

/// A constant-time validation stamp for address-keyed fingerprint
/// memoization.
///
/// [`Fingerprint::of`] is O(rows), so the runtime memoizes it by
/// allocation address — but an address is not an identity: the allocator
/// reuses a dropped matrix's address for the next one, and a memo that
/// trusts the address alone then serves the *old* matrix's fingerprint
/// (and therefore someone else's cached plan). The stamp re-reads the
/// header (`rows`/`cols`/`nnz`) plus an FNV-1a probe of eight evenly
/// spaced row offsets in O(1), so every memo hit can be validated
/// against the matrix actually presented. A colliding stamp would need a
/// different matrix to agree on shape, nonzero count, and all eight
/// sampled offsets; a false mismatch merely recomputes the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderStamp {
    rows: usize,
    cols: usize,
    nnz: usize,
    probe: u64,
}

impl HeaderStamp {
    /// Number of row offsets the probe samples.
    const SAMPLES: usize = 8;

    /// Stamp a CSR matrix in O(1).
    pub fn of(a: &Csr<f32>) -> Self {
        let offs = a.row_offsets();
        let last = offs.len() - 1; // offsets has rows + 1 ≥ 1 entries
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in 0..Self::SAMPLES {
            let idx = last * k / (Self::SAMPLES - 1);
            h ^= offs[idx] as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            probe: h,
        }
    }
}

/// 64-bit FNV-1a over a usize slice (little-endian bytes).
fn fnv1a_usizes(data: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in data {
        for b in (v as u64).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_structure_same_fingerprint() {
        let a = sparse::gen::powerlaw(500, 500, 8_000, 1.8, 1);
        let b = a.clone();
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn value_changes_keep_fingerprint() {
        let a = sparse::gen::uniform(200, 200, 2_000, 2);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 2.0;
        }
        // Plans are pattern-only: new values, same plan.
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn row_structure_changes_fingerprint() {
        // Same rows/cols/nnz, different distribution of nonzeros per row.
        let a = sparse::gen::uniform(300, 300, 3_000, 3);
        let b = sparse::gen::powerlaw(300, 300, 3_000, 1.9, 3);
        // powerlaw may not land exactly on 3_000 nnz; compare against a
        // same-shape permutation instead for the strict case below.
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));

        // Strict: identical summary shape, shuffled row lengths → the
        // pattern hash still separates them.
        let c = Csr::from_triplets(3, 3, vec![(0u32, 0u32, 1.0f32), (0, 1, 1.0), (2, 2, 1.0)])
            .unwrap();
        let d = Csr::from_triplets(3, 3, vec![(0u32, 0u32, 1.0f32), (2, 1, 1.0), (2, 2, 1.0)])
            .unwrap();
        assert_ne!(Fingerprint::of(&c), Fingerprint::of(&d));
    }

    #[test]
    fn stamp_is_stable_for_a_matrix_and_separates_structures() {
        let a = sparse::gen::uniform(300, 300, 3_000, 3);
        assert_eq!(HeaderStamp::of(&a), HeaderStamp::of(&a.clone()));
        // Different shape.
        let b = sparse::gen::uniform(301, 300, 3_000, 3);
        assert_ne!(HeaderStamp::of(&a), HeaderStamp::of(&b));
        // Same shape and nnz, different row distribution: the offset
        // probe separates them.
        let c = sparse::gen::powerlaw(300, 300, 3_000, 1.9, 3);
        if c.nnz() == a.nnz() {
            assert_ne!(HeaderStamp::of(&a), HeaderStamp::of(&c));
        }
        // Degenerate shapes stamp without panicking.
        let _ = HeaderStamp::of(&sparse::gen::uniform(1, 1, 0, 1));
    }
}
