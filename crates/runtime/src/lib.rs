//! # runtime — a multi-tenant kernel-serving runtime on the simulator
//!
//! The paper's framework answers "how do I balance *one* kernel?". This
//! crate asks the serving question on top of it: many SpMV requests,
//! against a skewed mix of matrices, arriving on an open-loop clock,
//! sharing a pool of simulated GPUs. It composes four pieces:
//!
//! * **Device pool** — N [`DeviceSim`]s, each with several streams;
//!   requests dispatch to the earliest-available stream (least-loaded
//!   device on ties), so kernels overlap across streams and devices
//!   exactly as the stream model allows.
//! * **Plan cache** ([`PlanCache`]) — prepared engine
//!   [`KernelPlan`]s memoized by
//!   [`PlanKey`] (kernel + storage format + matrix [`Fingerprint`]): a hit skips
//!   schedule selection and setup (LRB binning, merge-path partition
//!   search) and launches the cheaper prepartitioned kernel. Results
//!   stay bitwise identical to the cold path. SpMV requests flow through
//!   it inside [`Runtime::serve`]; [`Runtime::run_spmm`] and
//!   [`Runtime::run_bfs`] give SpMM and BFS the same warm path.
//! * **Small-request batcher** ([`batch`]) — tiny SpMVs wait up to a
//!   short window and fuse into one block-diagonal launch, paying the
//!   launch overhead once.
//! * **Admission queue** — a bounded in-flight window with a
//!   [`QueuePolicy`]: `Reject` drops excess requests, `Block` delays
//!   submission until a slot frees (the delay shows up as queueing
//!   latency).
//!
//! [`Runtime::serve`] drives a request stream through all of this
//! deterministically and returns per-request [`Completion`]s plus a
//! [`RuntimeReport`] (cache hit rate, p50/p99 latency, per-device
//! occupancy, throughput).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotune;
pub mod batch;
pub mod cache;
pub mod fingerprint;
pub mod split;
pub mod workload;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use kernels::formats::{self, PreparedOperand};
use kernels::graph::Graph;
use kernels::plan;
use kernels::spmm;
use kernels::spmv::{spmv_with_model, spmv_with_plan, SpmvRun, DEFAULT_BLOCK};
use kernels::traversal::TRAVERSAL_BLOCK;
use kernels::bfs;
use loops::dispatch::{trace_label, Candidate, KernelKind, KernelPlan};
use loops::heuristic::Heuristic;
use loops::schedule::ScheduleKind;
use simt::{CostModel, DeviceSim, FaultCounters, FaultPlan, GpuSpec, LaunchReport, SimError, StreamId};
use sparse::{Csr, DenseMatrix, FormatKind, Prng};
use trace::{CounterKind, RequestPhase, TenantOutcome, TraceEvent, TraceSink, TunePhase};

pub use autotune::{Autotuner, TuneAction, TuneConfig, TuneStats};
pub use cache::{CacheStats, PlanCache, PlanKey};
pub use fingerprint::{Fingerprint, HeaderStamp};
pub use split::{decomposable, pinned_schedule, split_spmv, SplitRun};
pub use workload::{zipf_workload, WorkloadSpec};

/// What to do when the in-flight window is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Delay submission until a slot frees; the wait becomes latency.
    Block,
    /// Drop the request (counted in [`RuntimeReport::rejected`]).
    Reject,
}

/// Pool-, queue-, batch-, and cache-sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Streams (FIFO lanes) per device.
    pub streams_per_device: usize,
    /// Maximum jobs in flight before backpressure engages.
    pub queue_depth: usize,
    /// Backpressure policy.
    pub policy: QueuePolicy,
    /// How long a tiny request may wait for batch-mates (simulated ms).
    pub batch_window_ms: f64,
    /// Maximum tiny requests fused into one launch (≤ 1 disables
    /// batching).
    pub batch_max: usize,
    /// Requests on matrices with at most this many nonzeros are "tiny"
    /// and eligible for batching.
    pub tiny_nnz: usize,
    /// Plan-cache capacity in entries (0 disables caching).
    pub plan_cache_capacity: usize,
    /// Keep each request's result vector in its [`Completion`] (memory
    /// for verification; benches turn this off).
    pub keep_results: bool,
    /// Per-request deadline relative to arrival (simulated ms): a
    /// request whose job cannot *start* by `arrival + deadline_ms` is
    /// dropped and counted in [`RuntimeReport::deadline_missed`].
    /// `INFINITY` (the default) disables deadlines.
    pub deadline_ms: f64,
    /// Failed dispatch attempts retried per request before giving up
    /// (the request then counts in [`RuntimeReport::failed`]).
    pub max_retries: u32,
    /// Base retry backoff (simulated ms); attempt *n* waits
    /// `retry_backoff_ms · 2^(n-1)`, scaled by jitter.
    pub retry_backoff_ms: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is multiplied by
    /// `1 + retry_jitter · u` with `u` drawn from the runtime's seeded
    /// stream, decorrelating retry storms without losing determinism.
    pub retry_jitter: f64,
    /// Seed for the retry-jitter / chaos stream.
    pub retry_seed: u64,
    /// Consecutive dispatch failures after which a device is evicted
    /// from the pool for [`Self::cooldown_ms`].
    pub evict_after: u32,
    /// How long an evicted device sits out before re-admission
    /// (simulated ms). Devices lost to a kill fault never return.
    pub cooldown_ms: f64,
    /// Chaos knob: probability that preparing a [`KernelPlan`] fails,
    /// exercising the graceful-degradation path (serve via the
    /// heuristic schedule, skip caching). 0.0 (the default) disables it.
    pub plan_fail_prob: f64,
    /// Online schedule autotuning (see [`autotune`]). Off by default:
    /// with `tune.enabled == false` every output is bitwise identical
    /// to a runtime without the tuner.
    pub tune: TuneConfig,
    /// Host execution backend for every launch this runtime performs
    /// (see [`simt::host`]). `None` (the default) defers to the ambient
    /// thread-scoped backend or the `LOOPS_HOST_THREADS` environment
    /// default. Results, reports, and the simulated clock are bitwise
    /// identical for every backend; only host wall-clock changes.
    pub host_backend: Option<simt::HostBackend>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            devices: 1,
            streams_per_device: 4,
            queue_depth: 64,
            policy: QueuePolicy::Block,
            batch_window_ms: 0.05,
            batch_max: 8,
            tiny_nnz: 4_096,
            plan_cache_capacity: 128,
            keep_results: false,
            deadline_ms: f64::INFINITY,
            max_retries: 3,
            retry_backoff_ms: 0.05,
            retry_jitter: 0.5,
            retry_seed: 0x5eed,
            evict_after: 3,
            cooldown_ms: 5.0,
            plan_fail_prob: 0.0,
            tune: TuneConfig::default(),
            host_backend: None,
        }
    }
}

/// One SpMV request: `y = matrix · x`, arriving at `arrival_ms` on the
/// open-loop clock.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the [`Completion`].
    pub id: u64,
    /// Tenant the request belongs to. Purely an accounting label — it
    /// never influences scheduling or routing — but the telemetry layer
    /// keys per-tenant latency histograms and deadline-miss budgets on
    /// it. The Zipf workload generator assigns each matrix's popularity
    /// rank as its tenant.
    pub tenant: u32,
    /// The (shared) matrix.
    pub matrix: Arc<Csr<f32>>,
    /// The (shared) input vector; must have `matrix.cols()` entries.
    pub x: Arc<[f32]>,
    /// Arrival time in simulated milliseconds.
    pub arrival_ms: f64,
}

/// Outcome of one served request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Its arrival time.
    pub arrival_ms: f64,
    /// When its job started on a device stream.
    pub start_ms: f64,
    /// When its job completed.
    pub end_ms: f64,
    /// Pool index of the device that ran it.
    pub device: usize,
    /// True if the request was served inside a fused batch launch.
    pub batched: bool,
    /// Plan-cache outcome (`None` for batched launches, which bypass the
    /// cache — fused shapes are one-off).
    pub cache_hit: Option<bool>,
    /// Schedule the job ran under.
    pub schedule: ScheduleKind,
    /// Storage format the job was served from (non-CSR only after the
    /// autotuner promotes a format winner; batches always fuse CSR).
    pub format: FormatKind,
    /// Dispatch attempts the job took (1 = first try succeeded; more
    /// means faults were retried or failed over).
    pub attempts: u32,
    /// The result vector, if [`RuntimeConfig::keep_results`] was set.
    pub y: Option<Vec<f32>>,
}

impl Completion {
    /// End-to-end latency: queueing + batching wait + execution.
    pub fn latency_ms(&self) -> f64 {
        self.end_ms - self.arrival_ms
    }
}

/// Why a request was dropped instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Admission control shed it ([`QueuePolicy::Reject`]).
    Rejected,
    /// It could not start before `arrival + deadline_ms`.
    DeadlineMissed,
    /// Every dispatch attempt failed (retries exhausted or no device
    /// left alive).
    Failed,
}

/// One dropped request: the runtime accounts for every submission, so
/// `completions` plus `dropped` always partition the input stream.
#[derive(Debug, Clone, Copy)]
pub struct DroppedRequest {
    /// The request's id.
    pub id: u64,
    /// When the drop decision was made (serving clock).
    pub ts_ms: f64,
    /// Why.
    pub reason: DropReason,
}

/// Per-device serving totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// Pool index.
    pub device: usize,
    /// Kernels this device completed.
    pub jobs: usize,
    /// Mean SM busy fraction over the device's makespan.
    pub sm_occupancy: f64,
    /// The device's completion time.
    pub makespan_ms: f64,
    /// Injected faults this device has fired (all zero without a
    /// [`FaultPlan`]).
    pub faults: FaultCounters,
}

/// Counters of the sharded-serving aggregation layer (all zero for a
/// plain single-runtime serve; filled in by the `shard` crate's group
/// serving paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Requests the router forwarded to a shard (whole requests in
    /// routed mode; split requests count once, at their home shard).
    pub routed: usize,
    /// Ghost-column bytes moved by halo exchanges.
    pub halo_bytes: u64,
    /// Partial-result merges performed (one per split request served).
    pub merges: usize,
    /// Requests dropped by the *global* admission layer before routing
    /// (a subset of [`RuntimeReport::rejected`]).
    pub shard_rejects: usize,
}

impl ShardCounters {
    /// True if any sharded-serving activity was recorded.
    pub fn is_active(&self) -> bool {
        self.routed > 0 || self.shard_rejects > 0 || self.merges > 0 || self.halo_bytes > 0
    }
}

/// Aggregated metrics of one [`Runtime::serve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Requests in the input stream.
    pub submitted: usize,
    /// Requests that completed.
    pub served: usize,
    /// Requests dropped by [`QueuePolicy::Reject`].
    pub rejected: usize,
    /// Requests dropped because they could not start by their deadline.
    pub deadline_missed: usize,
    /// Requests dropped after exhausting retries (or with no live
    /// device left).
    pub failed: usize,
    /// Dispatch attempts that failed and were retried.
    pub retries: usize,
    /// Requests whose job completed on a different device than their
    /// first dispatch attempt targeted.
    pub failovers: usize,
    /// Requests served via the heuristic path because plan construction
    /// or a cached-plan launch failed (graceful degradation).
    pub plan_fallbacks: usize,
    /// Times a device was removed from the pool (cooldown eviction or
    /// permanent loss).
    pub device_evictions: usize,
    /// Fused launches issued by the batcher.
    pub batches: usize,
    /// Requests served inside those fused launches.
    pub batched_requests: usize,
    /// Plan-cache counters for this call.
    pub cache: CacheStats,
    /// Autotuner exploration serves issued during this call (0 when
    /// tuning is disabled).
    pub tune_explores: usize,
    /// Schedules the autotuner promoted into the plan cache during this
    /// call.
    pub tune_promotes: usize,
    /// Median latency (ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub latency_p99_ms: f64,
    /// Mean latency (ms).
    pub latency_mean_ms: f64,
    /// Completion time of the last job (ms).
    pub makespan_ms: f64,
    /// Sharded-serving counters (all zero outside a shard group).
    pub shard: ShardCounters,
    /// Per-device totals (cumulative over the runtime's lifetime).
    pub devices: Vec<DeviceReport>,
}

impl RuntimeReport {
    /// Served requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.served as f64 / (self.makespan_ms * 1e-3)
        }
    }

    /// Every submission is accounted for exactly once:
    /// `submitted == served + rejected + deadline_missed + failed`.
    /// The failover and chaos tests assert this reconciliation under
    /// every fault plan. When shard counters are live, routing must
    /// account for every submission too — each request was either
    /// forwarded to a shard or shed by the global admission layer
    /// (`routed + shard_rejects == submitted`), and global sheds are a
    /// subset of all rejections. Batching counters must agree with each
    /// other as well: a fused launch always covers at least two
    /// members, so `batches` and `batched_requests` are zero together
    /// and otherwise `batched_requests ≥ 2 × batches`.
    pub fn reconciles(&self) -> bool {
        let base =
            self.submitted == self.served + self.rejected + self.deadline_missed + self.failed;
        let sharded = !self.shard.is_active()
            || (self.shard.routed + self.shard.shard_rejects == self.submitted
                && self.rejected >= self.shard.shard_rejects);
        let batching = (self.batches == 0) == (self.batched_requests == 0)
            && self.batched_requests >= 2 * self.batches;
        base && sharded && batching
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {}/{} requests ({} rejected) in {:.3} simulated ms → {:.0} req/s",
            self.served,
            self.submitted,
            self.rejected,
            self.makespan_ms,
            self.throughput_rps()
        )?;
        writeln!(
            f,
            "plan cache: {} hits / {} misses ({:.1}% hit rate, {} evictions)",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions
        )?;
        writeln!(
            f,
            "latency: p50 {:.4} ms, p99 {:.4} ms, mean {:.4} ms",
            self.latency_p50_ms, self.latency_p99_ms, self.latency_mean_ms
        )?;
        writeln!(
            f,
            "batching: {} fused launches covering {} requests",
            self.batches, self.batched_requests
        )?;
        if self.tune_explores + self.tune_promotes > 0 {
            writeln!(
                f,
                "autotune: {} exploration serves, {} promotions",
                self.tune_explores, self.tune_promotes
            )?;
        }
        if self.shard.is_active() {
            writeln!(
                f,
                "sharding: {} routed, {} merges, {} halo bytes, {} global rejects",
                self.shard.routed,
                self.shard.merges,
                self.shard.halo_bytes,
                self.shard.shard_rejects
            )?;
        }
        writeln!(
            f,
            "resilience: {} retries, {} failovers, {} deadline-missed, {} failed, \
             {} plan fallbacks, {} device evictions",
            self.retries,
            self.failovers,
            self.deadline_missed,
            self.failed,
            self.plan_fallbacks,
            self.device_evictions
        )?;
        for d in &self.devices {
            write!(
                f,
                "device {}: {} jobs, SM occupancy {:.1}%, busy until {:.3} ms",
                d.device,
                d.jobs,
                d.sm_occupancy * 100.0,
                d.makespan_ms
            )?;
            let fc = &d.faults;
            if fc.transient_launch_failures + fc.stalled_dispatches + fc.lost_dispatches > 0
                || fc.degraded_sms > 0
            {
                write!(
                    f,
                    " [faults: {} transient, {} stalled, {} lost, {} degraded SMs]",
                    fc.transient_launch_failures,
                    fc.stalled_dispatches,
                    fc.lost_dispatches,
                    fc.degraded_sms
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Completions plus the aggregated report.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Per-request outcomes, in submission order.
    pub completions: Vec<Completion>,
    /// Requests the runtime dropped (rejected, deadline-missed, or
    /// failed), so every submission is accounted for.
    pub dropped: Vec<DroppedRequest>,
    /// Aggregated metrics.
    pub report: RuntimeReport,
}

/// Health of one pool device as seen by the dispatcher.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceHealth {
    /// Failures since the last success (reset on success or eviction).
    consecutive_failures: u32,
    /// The device sits out until this serving-clock time.
    evicted_until_ms: f64,
    /// Permanently lost (kill fault observed); never re-admitted.
    dead: bool,
}

/// Counters one `serve` call accumulates across its submissions.
#[derive(Debug, Default)]
struct ServeCounters {
    retries: usize,
    failovers: usize,
    deadline_missed: usize,
    failed: usize,
    plan_fallbacks: usize,
    device_evictions: usize,
}

/// How one submission (solo request or fused batch) resolved.
enum SubmitOutcome {
    /// The job ran; one completion per member.
    Done(Vec<Completion>),
    /// The whole job was dropped at `ts_ms` for this reason.
    Dropped(DropReason, f64),
}

/// Fingerprint-memo bound: past this many entries the memo is cleared
/// (see [`Runtime::fingerprint_of`]).
const FP_MEMO_CAP: usize = 1024;

/// Prepared-operand cache bound: past this many entries the cache is
/// cleared outright (it is a pure memoization of deterministic
/// conversions — the only cost of clearing is re-converting on the next
/// format serve).
const OPERAND_CACHE_CAP: usize = 64;

/// Amortization horizon for the modeled one-time conversion cost: an
/// exploration serve for a non-CSR candidate records
/// `warm_cost + convert_ms / CONVERT_AMORTIZE_SERVES`, so a format only
/// promotes when its steady-state win survives the conversion bill
/// spread over a plausible reuse count. A key only reaches promotion
/// after surviving a full ε-greedy sweep — i.e. it is already one of
/// the workload's hot, repeatedly-served fingerprints, which under the
/// Zipf-skewed streams this runtime targets means hundreds of warm
/// serves; 256 stays on the conservative side of that. Warm serves
/// after promotion pay nothing — the operand is cached by
/// `(fingerprint, format)`.
const CONVERT_AMORTIZE_SERVES: f64 = 256.0;

/// The serving runtime: device pool + plan cache + batcher + queue.
#[derive(Debug)]
pub struct Runtime {
    cfg: RuntimeConfig,
    spec: GpuSpec,
    model: CostModel,
    heuristic: Heuristic,
    devices: Vec<DeviceSim>,
    streams: Vec<Vec<StreamId>>,
    health: Vec<DeviceHealth>,
    cache: PlanCache,
    /// Fingerprints memoized by allocation address. The address is only
    /// a *hint*: every hit is validated against a [`HeaderStamp`] of the
    /// matrix actually presented, because allocators reuse addresses
    /// (see [`Runtime::fingerprint_of`]).
    fp_memo: HashMap<usize, (HeaderStamp, Fingerprint)>,
    /// Converted operands memoized by `(fingerprint, format)`: the
    /// conversion is deterministic and its modeled cost is charged to
    /// the tuner exactly once (amortized), so warm format serves skip
    /// it entirely.
    operands: HashMap<(Fingerprint, FormatKind), Arc<PreparedOperand>>,
    tuner: Autotuner,
    sink: Option<Arc<dyn TraceSink>>,
    /// Seeded stream for retry jitter and chaos draws. Healthy serves
    /// draw nothing from it, so fault-free behaviour is independent of
    /// the seed.
    rng: Prng,
}

/// Outcome of a plan-cached standalone run ([`Runtime::run_spmm`],
/// [`Runtime::run_bfs`]): the kernel output plus which cache path
/// served it.
#[derive(Debug, Clone)]
pub struct PlannedRun<T> {
    /// The kernel's output.
    pub output: T,
    /// Launch report of the run (accumulated over levels for BFS).
    pub report: LaunchReport,
    /// The schedule the plan pinned.
    pub schedule: ScheduleKind,
    /// True if the plan came from the cache.
    pub cache_hit: bool,
}

impl Runtime {
    /// A pool of `cfg.devices` copies of `spec` with the standard cost
    /// model and the paper's schedule heuristic.
    pub fn new(spec: GpuSpec, cfg: RuntimeConfig) -> Self {
        Self::with_model(spec, CostModel::standard(), Heuristic::paper(), cfg)
    }

    /// Full control over cost model and heuristic.
    pub fn with_model(
        spec: GpuSpec,
        model: CostModel,
        heuristic: Heuristic,
        cfg: RuntimeConfig,
    ) -> Self {
        assert!(cfg.devices >= 1, "pool needs at least one device");
        assert!(cfg.streams_per_device >= 1, "devices need at least one stream");
        assert!(cfg.queue_depth >= 1, "queue depth must be positive");
        let mut devices = Vec::with_capacity(cfg.devices);
        let mut streams = Vec::with_capacity(cfg.devices);
        for _ in 0..cfg.devices {
            let mut d = DeviceSim::with_model(spec.clone(), model.clone());
            streams.push((0..cfg.streams_per_device).map(|_| d.create_stream()).collect());
            devices.push(d);
        }
        Self {
            cache: PlanCache::new(cfg.plan_cache_capacity),
            health: vec![DeviceHealth::default(); cfg.devices],
            rng: Prng::seed_from_u64(cfg.retry_seed),
            tuner: Autotuner::new(cfg.tune),
            cfg,
            spec,
            model,
            heuristic,
            devices,
            streams,
            fp_memo: HashMap::new(),
            operands: HashMap::new(),
            sink: None,
        }
    }

    /// Attach a [`FaultPlan`] to pool device `device`: its dispatches
    /// run under the plan's degraded SMs, stall/kill windows, and
    /// transient launch failures, and the runtime's retry / failover /
    /// eviction machinery handles the fallout. Deterministic: the same
    /// plans and request stream reproduce the same serve bitwise.
    pub fn set_fault_plan(&mut self, device: usize, plan: FaultPlan) {
        self.devices[device].set_fault_plan(plan);
    }

    /// Detach any fault plan from pool device `device` and clear its
    /// health record (a fresh device in the same slot).
    pub fn clear_fault_plan(&mut self, device: usize) {
        self.devices[device].clear_fault_plan();
        self.health[device] = DeviceHealth::default();
    }

    /// The pool's device architecture.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Attach a trace sink: request-lifecycle events (enqueue, batch
    /// join, cache hit/miss, reject, dispatch, complete) and queue/cache
    /// counters flow from the runtime, and every pool device emits its
    /// kernel/block timeline stamped with its pool index. Serving results
    /// are unchanged — instrumentation only observes values the runtime
    /// already computes. (Attached explicitly rather than via
    /// `simt::tracing::scoped` so the solo measurement launches inside
    /// `submit` stay untraced; only their replays onto the shared
    /// timeline appear, which is what actually happens on the device.)
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        for (i, d) in self.devices.iter_mut().enumerate() {
            d.set_trace(sink.clone(), i as u32);
        }
        self.sink = Some(sink);
    }

    fn emit(&self, ev: TraceEvent) {
        if let Some(s) = &self.sink {
            s.event(&ev);
        }
    }

    /// Plan-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Fingerprint a matrix, memoized by allocation address so popular
    /// operands hash their full row structure (O(rows)) once.
    ///
    /// The address is a *hint*, not an identity: when a matrix is
    /// dropped, the allocator happily hands its address to the next
    /// allocation, and a memo keyed by address alone would then return
    /// the dropped matrix's fingerprint — serving the new matrix with a
    /// stale plan built for someone else's row structure. Every hit is
    /// therefore validated against an O(1) [`HeaderStamp`] of the matrix
    /// actually presented; a mismatch recomputes and replaces the entry.
    /// The memo is also bounded: at [`FP_MEMO_CAP`] entries it is
    /// cleared outright (it is a pure memoization — the only cost of
    /// clearing is re-hashing on the next request).
    fn fingerprint_of(&mut self, ptr: usize, a: &Csr<f32>) -> Fingerprint {
        let stamp = HeaderStamp::of(a);
        if let Some((cached_stamp, fp)) = self.fp_memo.get(&ptr) {
            if *cached_stamp == stamp {
                return *fp;
            }
        }
        let fp = Fingerprint::of(a);
        if self.fp_memo.len() >= FP_MEMO_CAP && !self.fp_memo.contains_key(&ptr) {
            self.fp_memo.clear();
        }
        self.fp_memo.insert(ptr, (stamp, fp));
        fp
    }

    /// The autotuner's lifetime counters (see [`autotune`]).
    pub fn tune_stats(&self) -> TuneStats {
        self.tuner.stats()
    }

    /// The (schedule × format) cell the autotuner promoted for
    /// `(kernel, fingerprint of a)`, if that key's sweep has completed.
    pub fn tuned_candidate(&mut self, kernel: KernelKind, a: &Csr<f32>) -> Option<Candidate> {
        let fp = Fingerprint::of(a);
        self.tuner.winner(&Self::logical_key(kernel, fp))
    }

    /// The logical tuning/lookup key for a kernel over a matrix. Sweep
    /// state is tracked once per (kernel, matrix) under the CSR format
    /// slot — the *candidates* span formats; the winner's prepared plan
    /// is cached under its own format's [`PlanKey`].
    fn logical_key(kernel: KernelKind, fp: Fingerprint) -> PlanKey {
        PlanKey {
            kernel,
            format: FormatKind::Csr,
            fp,
        }
    }

    /// Fetch (or deterministically convert and memoize) `a` prepared in
    /// `format`. The bool is true when this call performed the
    /// conversion — the caller charges the modeled cost exactly then.
    fn prepared_operand(
        &mut self,
        fp: Fingerprint,
        a: &Csr<f32>,
        format: FormatKind,
    ) -> simt::Result<(Arc<PreparedOperand>, bool)> {
        if let Some(op) = self.operands.get(&(fp, format)) {
            return Ok((Arc::clone(op), false));
        }
        let op = Arc::new(PreparedOperand::prepare(a, format)?);
        if self.operands.len() >= OPERAND_CACHE_CAP {
            self.operands.clear();
        }
        self.operands.insert((fp, format), Arc::clone(&op));
        Ok((op, true))
    }

    fn emit_tune(
        &self,
        kernel: KernelKind,
        candidate: Candidate,
        phase: TunePhase,
        ts_ms: f64,
        cost_ms: f64,
    ) {
        if self.sink.is_some() {
            let (kind, format) = candidate;
            // CSR cells keep the plain schedule label (byte-identical
            // timelines for schedule-only sweeps); format cells tag it.
            let label = if format == FormatKind::Csr {
                kind.to_string()
            } else {
                format!("{kind}@{format}")
            };
            self.emit(TraceEvent::Tune {
                kernel: kernel.base_name(),
                schedule: trace::label::intern(&label),
                phase,
                ts_ms,
                cost_ms,
            });
        }
    }

    /// Serve one solo SpMV plan-cache miss through the autotuner, if it
    /// wants the key. Returns `None` when the static-heuristic path
    /// should run unchanged (tuning disabled, or the key table is
    /// full). Exploration serves run the candidate's *planned* warm
    /// path, so the recorded cost is exactly the steady-state cost the
    /// cache would serve after promotion; a candidate whose plan fails
    /// to prepare is served via the heuristic and stays unmeasured (a
    /// later miss retries it).
    fn spmv_tuned_miss(
        &mut self,
        key: PlanKey,
        a: &Csr<f32>,
        x: &[f32],
        now: f64,
        ctrs: &mut ServeCounters,
    ) -> simt::Result<Option<(SpmvRun, FormatKind)>> {
        let formats_on = self.cfg.tune.formats;
        let Some(action) = self.tuner.choose(key, || {
            let mut space = loops::dispatch::candidates(KernelKind::Spmv, a);
            if !formats_on {
                space.retain(|&(_, f)| f == FormatKind::Csr);
            }
            space
        }) else {
            return Ok(None);
        };
        match action {
            TuneAction::Explore((kind, format)) => {
                let prepared = self.spmv_candidate_plan(key.fp, a, (kind, format));
                match prepared {
                    Ok((plan, op)) => {
                        let run = match &op {
                            Some(op) => formats::spmv_format_with_plan(
                                &self.spec, &self.model, a, op, x, &plan,
                            )?,
                            None => spmv_with_plan(&self.spec, &self.model, a, x, &plan)?,
                        };
                        // The recorded cost is the steady-state (warm)
                        // cost plus the amortized share of the one-time
                        // conversion — CSR's share is zero.
                        let convert = op.as_ref().map_or(0.0, |o| o.convert_ms());
                        let cost =
                            run.report.elapsed_ms() + convert / CONVERT_AMORTIZE_SERVES;
                        self.emit_tune(key.kernel, (kind, format), TunePhase::Explore, now, cost);
                        if let Some(p) = self.tuner.record(key, (kind, format), cost, Some(plan)) {
                            self.emit_tune(key.kernel, p.candidate, TunePhase::Promote, now, p.cost_ms);
                            self.cache
                                .insert(PlanKey { format: p.candidate.1, ..key }, p.plan);
                        }
                        Ok(Some((run, format)))
                    }
                    Err(_) => {
                        ctrs.plan_fallbacks += 1;
                        let kind = self.heuristic.select(a.rows(), a.cols(), a.nnz());
                        Ok(Some((
                            spmv_with_model(&self.spec, &self.model, a, x, kind, DEFAULT_BLOCK)?,
                            FormatKind::Csr,
                        )))
                    }
                }
            }
            TuneAction::Exploit {
                candidate: (kind, format),
                plan,
                promote,
            } => {
                let run = match plan {
                    Some(p) => {
                        if promote {
                            // A promoted winner fell out of the LRU cache:
                            // re-install it so the warm path resumes.
                            self.cache
                                .insert(PlanKey { format, ..key }, Arc::clone(&p));
                        }
                        if format == FormatKind::Csr {
                            spmv_with_plan(&self.spec, &self.model, a, x, &p)?
                        } else {
                            let (op, _) = self.prepared_operand(key.fp, a, format)?;
                            formats::spmv_format_with_plan(&self.spec, &self.model, a, &op, x, &p)?
                        }
                    }
                    None => {
                        return Ok(Some((
                            spmv_with_model(&self.spec, &self.model, a, x, kind, DEFAULT_BLOCK)?,
                            FormatKind::Csr,
                        )))
                    }
                };
                Ok(Some((run, format)))
            }
        }
    }

    /// Prepare the plan (and, for non-CSR cells, the converted operand)
    /// an SpMV exploration serve runs through. The CSR cell takes the
    /// pre-existing [`kernels::plan::prepare`] path so schedule-only
    /// tuning stays byte-identical to the pre-format tuner.
    #[allow(clippy::type_complexity)]
    fn spmv_candidate_plan(
        &mut self,
        fp: Fingerprint,
        a: &Csr<f32>,
        (kind, format): Candidate,
    ) -> simt::Result<(Arc<KernelPlan>, Option<Arc<PreparedOperand>>)> {
        if format == FormatKind::Csr {
            let plan = plan::prepare(&self.spec, &self.model, a, kind, DEFAULT_BLOCK)?;
            Ok((Arc::new(plan), None))
        } else {
            let (op, _) = self.prepared_operand(fp, a, format)?;
            let plan =
                formats::prepare_format_plan(&self.spec, &self.model, a, &op, kind, DEFAULT_BLOCK)?;
            Ok((Arc::new(plan), Some(op)))
        }
    }

    /// [`Self::spmv_tuned_miss`]'s SpMM counterpart (standalone path, so
    /// tune events carry `ts_ms = 0`).
    fn spmm_tuned_miss(
        &mut self,
        key: PlanKey,
        a: &Csr<f32>,
        b: &DenseMatrix<f32>,
    ) -> simt::Result<Option<spmm::SpmmRun>> {
        let formats_on = self.cfg.tune.formats;
        let Some(action) = self.tuner.choose(key, || {
            let mut space = loops::dispatch::candidates(KernelKind::Spmm, a);
            if !formats_on {
                space.retain(|&(_, f)| f == FormatKind::Csr);
            }
            space
        }) else {
            return Ok(None);
        };
        match action {
            TuneAction::Explore((kind, format)) => {
                let (run, plan, convert) = if format == FormatKind::Csr {
                    let plan = Arc::new(spmm::prepare(&self.spec, &self.model, a, kind)?);
                    let run = spmm::spmm_with_plan(&self.spec, &self.model, a, b, &plan)?;
                    (run, plan, 0.0)
                } else {
                    let (op, _) = self.prepared_operand(key.fp, a, format)?;
                    let run = formats::spmm_format(&self.spec, &self.model, a, &op, b, kind)?;
                    // A format plan is schedule-only here (format cells
                    // coerce to flat spans, which carry no artifacts).
                    let plan = Arc::new(formats::prepare_format_plan(
                        &self.spec,
                        &self.model,
                        a,
                        &op,
                        run.schedule,
                        DEFAULT_BLOCK,
                    )?);
                    (run, plan, op.convert_ms())
                };
                let cost = run.report.elapsed_ms() + convert / CONVERT_AMORTIZE_SERVES;
                self.emit_tune(key.kernel, (kind, format), TunePhase::Explore, 0.0, cost);
                if let Some(p) = self.tuner.record(key, (kind, format), cost, Some(plan)) {
                    self.emit_tune(key.kernel, p.candidate, TunePhase::Promote, 0.0, p.cost_ms);
                    self.cache
                        .insert(PlanKey { format: p.candidate.1, ..key }, p.plan);
                }
                Ok(Some(run))
            }
            TuneAction::Exploit {
                candidate: (kind, format),
                plan,
                promote,
            } => {
                let run = match plan {
                    Some(p) => {
                        if promote {
                            self.cache
                                .insert(PlanKey { format, ..key }, Arc::clone(&p));
                        }
                        if format == FormatKind::Csr {
                            spmm::spmm_with_plan(&self.spec, &self.model, a, b, &p)?
                        } else {
                            let (op, _) = self.prepared_operand(key.fp, a, format)?;
                            formats::spmm_format(&self.spec, &self.model, a, &op, b, p.schedule)?
                        }
                    }
                    None => spmm::spmm_with_model(&self.spec, &self.model, a, b, kind)?,
                };
                Ok(Some(run))
            }
        }
    }

    /// Serve one standalone SpMV through the plan cache with a *pinned*
    /// schedule — the shard crate's per-shard execution primitive. The
    /// first call for a matrix prepares and caches a [`KernelPlan`] for
    /// `kind` under the `("spmv", fingerprint)` key; later calls replay
    /// it, skipping setup. A cached plan whose schedule disagrees with
    /// the pin (the same sub-matrix served through a differently-pinned
    /// path) is re-prepared rather than silently un-pinning the caller:
    /// sharded merges are bitwise-correct only under the schedule the
    /// split layer chose. Warm and cold runs are bitwise identical
    /// ([`kernels::plan`]'s contract).
    pub fn run_spmv_pinned(
        &mut self,
        a: &Arc<Csr<f32>>,
        x: &[f32],
        kind: ScheduleKind,
    ) -> simt::Result<PlannedRun<Vec<f32>>> {
        let fp = self.fingerprint_of(Arc::as_ptr(a) as usize, a);
        let key = Self::logical_key(KernelKind::Spmv, fp);
        let cached = self.cache.get(&key).filter(|p| p.schedule == kind);
        let (run, cache_hit) = match cached {
            Some(p) => match spmv_with_plan(&self.spec, &self.model, a, x, &p) {
                Ok(run) => (run, true),
                Err(_) => {
                    self.cache.remove(&key);
                    (
                        spmv_with_model(&self.spec, &self.model, a, x, kind, DEFAULT_BLOCK)?,
                        false,
                    )
                }
            },
            None => {
                let p = Arc::new(plan::prepare(&self.spec, &self.model, a, kind, DEFAULT_BLOCK)?);
                let run = spmv_with_plan(&self.spec, &self.model, a, x, &p)?;
                self.cache.insert(key, p);
                (run, false)
            }
        };
        Ok(PlannedRun {
            output: run.y,
            report: run.report,
            schedule: run.schedule,
            cache_hit,
        })
    }

    /// Serve one SpMM through the plan cache. The first call for a
    /// matrix prepares and caches a [`KernelPlan`] under the
    /// `("spmm", fingerprint)` key; later calls replay it — against
    /// *any* dense `B`, since the artifacts depend only on `a`'s
    /// sparsity pattern — skipping schedule selection and the in-kernel
    /// merge-path searches. Output is bitwise identical to the cold
    /// [`kernels::spmm::spmm`] path; a cached plan whose launch fails is
    /// evicted and the call falls back to the cold path.
    pub fn run_spmm(
        &mut self,
        a: &Arc<Csr<f32>>,
        b: &DenseMatrix<f32>,
    ) -> simt::Result<PlannedRun<DenseMatrix<f32>>> {
        let fp = self.fingerprint_of(Arc::as_ptr(a) as usize, a);
        let logical = Self::logical_key(KernelKind::Spmm, fp);
        // A promoted non-CSR winner lives under its own format's cache
        // key; with tuning off the winner is always absent and the
        // lookup is the logical (CSR) one, unchanged.
        let winner_format = self
            .tuner
            .winner(&logical)
            .map_or(FormatKind::Csr, |(_, f)| f);
        let key = PlanKey { format: winner_format, ..logical };
        let kind = self.heuristic.select(a.rows(), a.cols(), a.nnz());
        let (run, cache_hit) = match self.cache.get(&key) {
            Some(plan) => {
                let served = if winner_format == FormatKind::Csr {
                    spmm::spmm_with_plan(&self.spec, &self.model, a, b, &plan)
                } else {
                    self.prepared_operand(fp, a, winner_format).and_then(|(op, _)| {
                        formats::spmm_format(&self.spec, &self.model, a, &op, b, plan.schedule)
                    })
                };
                match served {
                    Ok(run) => (run, true),
                    Err(_) => {
                        self.cache.remove(&key);
                        (spmm::spmm_with_model(&self.spec, &self.model, a, b, kind)?, false)
                    }
                }
            }
            None => match self.spmm_tuned_miss(logical, a, b)? {
                Some(run) => (run, false),
                None => {
                    let plan = Arc::new(spmm::prepare(&self.spec, &self.model, a, kind)?);
                    let run = spmm::spmm_with_plan(&self.spec, &self.model, a, b, &plan)?;
                    self.cache.insert(key, plan);
                    (run, false)
                }
            },
        };
        Ok(PlannedRun {
            output: run.c,
            report: run.report,
            schedule: run.schedule,
            cache_hit,
        })
    }

    /// Serve one BFS through the plan cache. Frontiers change every
    /// level, so there is no reusable partition artifact; what the plan
    /// pins — and the cache amortizes — is the schedule choice for the
    /// graph's adjacency matrix, plus its fingerprinting. Warm and cold
    /// runs are bitwise identical.
    pub fn run_bfs(&mut self, g: &Arc<Graph>, src: usize) -> simt::Result<PlannedRun<Vec<u32>>> {
        let fp = self.fingerprint_of(Arc::as_ptr(g) as usize, g.adjacency());
        let key = Self::logical_key(KernelKind::Bfs, fp);
        // `exploring` carries the candidate to measure for the tuner
        // after the run (frontier kernels are CSR-only, so its format
        // component is always CSR); BFS cost depends on the frontier
        // (and therefore on `src`), so the sweep measures each candidate
        // on whichever source its exploration serve happens to carry —
        // acceptable for a steady-state workload that revisits sources.
        let (plan, cache_hit, exploring) = match self.cache.get(&key) {
            Some(plan) => (plan, true, None),
            None => {
                let adj = g.adjacency();
                let tuned = self
                    .tuner
                    .choose(key, || loops::dispatch::candidates(KernelKind::Bfs, adj));
                match tuned {
                    Some(TuneAction::Explore(candidate)) => {
                        (Self::traversal_plan(candidate.0), false, Some(candidate))
                    }
                    Some(TuneAction::Exploit {
                        candidate,
                        plan,
                        promote,
                    }) => {
                        let plan = plan.unwrap_or_else(|| Self::traversal_plan(candidate.0));
                        if promote {
                            self.cache.insert(key, Arc::clone(&plan));
                        }
                        (plan, false, None)
                    }
                    None => {
                        let kind = self.heuristic.select(adj.rows(), adj.cols(), adj.nnz());
                        let plan = Self::traversal_plan(kind);
                        self.cache.insert(key, Arc::clone(&plan));
                        (plan, false, None)
                    }
                }
            }
        };
        let run = bfs::bfs_with_model(&self.spec, &self.model, g, src, plan.schedule)?;
        if let Some(candidate) = exploring {
            let cost = run.report.elapsed_ms();
            self.emit_tune(key.kernel, candidate, TunePhase::Explore, 0.0, cost);
            if let Some(p) = self.tuner.record(key, candidate, cost, Some(Arc::clone(&plan))) {
                self.emit_tune(key.kernel, p.candidate, TunePhase::Promote, 0.0, p.cost_ms);
                self.cache.insert(key, p.plan);
            }
        }
        Ok(PlannedRun {
            output: run.depth,
            report: run.report,
            schedule: plan.schedule,
            cache_hit,
        })
    }

    /// A traversal plan is schedule-only: no partition artifacts survive
    /// the per-level frontier churn.
    fn traversal_plan(kind: ScheduleKind) -> Arc<KernelPlan> {
        Arc::new(KernelPlan {
            schedule: kind,
            block_dim: TRAVERSAL_BLOCK,
            merge_starts: None,
            lrb: None,
            setup_ms: 0.0,
        })
    }

    /// Serve a request stream to completion. Requests are processed in
    /// arrival order (ties by id); the call is deterministic for a given
    /// runtime state and input — including under
    /// [`RuntimeConfig::host_backend`], which changes host wall-clock
    /// only, never results or the simulated timeline.
    pub fn serve(&mut self, requests: &[Request]) -> simt::Result<ServeResult> {
        match self.cfg.host_backend {
            Some(b) => simt::host::scoped(b, || self.serve_inner(requests)),
            None => self.serve_inner(requests),
        }
    }

    // (The batch-flush macro resets `deadline` on every use; the final
    // flush's reset is intentionally dead.)
    #[allow(unused_assignments)]
    fn serve_inner(&mut self, requests: &[Request]) -> simt::Result<ServeResult> {
        let cache_before = self.cache.stats();
        let tune_before = self.tuner.stats();
        let mut order: Vec<&Request> = requests.iter().collect();
        order.sort_by(|a, b| {
            a.arrival_ms
                .partial_cmp(&b.arrival_ms)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });

        let mut completions: Vec<Completion> = Vec::with_capacity(order.len());
        let mut dropped: Vec<DroppedRequest> = Vec::new();
        let mut in_flight: Vec<f64> = Vec::new(); // job end times
        let mut rejected = 0usize;
        let mut batches = 0usize;
        let mut batched_requests = 0usize;
        let mut ctrs = ServeCounters::default();
        // Pending tiny requests: (request, effective submit time).
        let mut pending: Vec<(&Request, f64)> = Vec::new();
        let mut deadline = f64::INFINITY;

        macro_rules! flush_batch {
            ($at:expr) => {
                if !pending.is_empty() {
                    let at: f64 = $at;
                    let members = std::mem::take(&mut pending);
                    deadline = f64::INFINITY;
                    self.emit(TraceEvent::Counter {
                        counter: CounterKind::BatcherOccupancy,
                        ts_ms: at,
                        value: 0.0,
                    });
                    // Members whose deadline already passed while waiting
                    // for batch-mates are dropped before the launch forms
                    // (a batch can time out whole if every member did).
                    let mut live: Vec<(&Request, f64)> = Vec::with_capacity(members.len());
                    for (r, pt) in members {
                        if at > r.arrival_ms + self.cfg.deadline_ms {
                            ctrs.deadline_missed += 1;
                            dropped.push(DroppedRequest {
                                id: r.id,
                                ts_ms: at,
                                reason: DropReason::DeadlineMissed,
                            });
                            self.emit(TraceEvent::Request {
                                id: r.id,
                                phase: RequestPhase::DeadlineMiss,
                                ts_ms: at,
                            });
                            self.emit(TraceEvent::TenantSample {
                                tenant: r.tenant,
                                ts_ms: at,
                                latency_ms: at - r.arrival_ms,
                                outcome: TenantOutcome::DeadlineMiss,
                            });
                        } else {
                            live.push((r, pt));
                        }
                    }
                    if !live.is_empty() {
                        if live.len() > 1 {
                            batches += 1;
                            batched_requests += live.len();
                        }
                        match self.submit(&live, at, &mut ctrs)? {
                            SubmitOutcome::Done(done) => {
                                in_flight.push(done[0].end_ms);
                                completions.extend(done);
                            }
                            SubmitOutcome::Dropped(reason, ts) => {
                                for (r, _) in &live {
                                    dropped.push(DroppedRequest { id: r.id, ts_ms: ts, reason });
                                }
                            }
                        }
                    }
                }
            };
        }

        for r in order {
            assert_eq!(
                r.x.len(),
                r.matrix.cols(),
                "request {}: x must have one entry per column",
                r.id
            );
            let mut t = r.arrival_ms;
            self.emit(TraceEvent::Request {
                id: r.id,
                phase: RequestPhase::Enqueue,
                ts_ms: r.arrival_ms,
            });
            // A due batch flushes before this arrival is admitted.
            if deadline <= t {
                let at = deadline.max(pending.iter().fold(0.0f64, |m, (_, pt)| m.max(*pt)));
                flush_batch!(at);
            }
            // Admission control against the in-flight window.
            in_flight.retain(|&end| end > t);
            self.emit(TraceEvent::Counter {
                counter: CounterKind::QueueDepth,
                ts_ms: t,
                value: in_flight.len() as f64,
            });
            if in_flight.len() >= self.cfg.queue_depth {
                match self.cfg.policy {
                    QueuePolicy::Reject => {
                        rejected += 1;
                        dropped.push(DroppedRequest {
                            id: r.id,
                            ts_ms: t,
                            reason: DropReason::Rejected,
                        });
                        self.emit(TraceEvent::Request {
                            id: r.id,
                            phase: RequestPhase::Reject,
                            ts_ms: t,
                        });
                        self.emit(TraceEvent::TenantSample {
                            tenant: r.tenant,
                            ts_ms: t,
                            latency_ms: t - r.arrival_ms,
                            outcome: TenantOutcome::Rejected,
                        });
                        continue;
                    }
                    QueuePolicy::Block => {
                        // Wait until enough jobs drain to open a slot.
                        in_flight.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                        while in_flight.len() >= self.cfg.queue_depth {
                            t = t.max(in_flight.remove(0));
                        }
                        in_flight.retain(|&end| end > t);
                    }
                }
            }
            // Deadline check at admission: a blocked queue may already
            // have eaten the request's whole budget.
            if t > r.arrival_ms + self.cfg.deadline_ms {
                ctrs.deadline_missed += 1;
                dropped.push(DroppedRequest {
                    id: r.id,
                    ts_ms: t,
                    reason: DropReason::DeadlineMissed,
                });
                self.emit(TraceEvent::Request {
                    id: r.id,
                    phase: RequestPhase::DeadlineMiss,
                    ts_ms: t,
                });
                self.emit(TraceEvent::TenantSample {
                    tenant: r.tenant,
                    ts_ms: t,
                    latency_ms: t - r.arrival_ms,
                    outcome: TenantOutcome::DeadlineMiss,
                });
                continue;
            }
            let tiny = self.cfg.batch_max > 1 && r.matrix.nnz() <= self.cfg.tiny_nnz;
            if tiny {
                if pending.is_empty() {
                    deadline = t + self.cfg.batch_window_ms;
                }
                self.emit(TraceEvent::Request {
                    id: r.id,
                    phase: RequestPhase::BatchJoin,
                    ts_ms: t,
                });
                pending.push((r, t));
                self.emit(TraceEvent::Counter {
                    counter: CounterKind::BatcherOccupancy,
                    ts_ms: t,
                    value: pending.len() as f64,
                });
                if pending.len() >= self.cfg.batch_max {
                    flush_batch!(t);
                }
            } else {
                match self.submit(&[(r, t)], t, &mut ctrs)? {
                    SubmitOutcome::Done(done) => {
                        in_flight.push(done[0].end_ms);
                        completions.extend(done);
                    }
                    SubmitOutcome::Dropped(reason, ts) => {
                        dropped.push(DroppedRequest { id: r.id, ts_ms: ts, reason });
                    }
                }
            }
        }
        if !pending.is_empty() {
            let at = pending
                .iter()
                .fold(deadline.min(1e300), |m, (_, pt)| m.max(*pt));
            flush_batch!(at);
        }

        // Aggregate.
        let mut latencies: Vec<f64> = completions.iter().map(Completion::latency_ms).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pick = |p: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                let idx = ((p * latencies.len() as f64).ceil() as usize).max(1) - 1;
                latencies[idx.min(latencies.len() - 1)]
            }
        };
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let makespan_ms = completions.iter().fold(0.0f64, |m, c| m.max(c.end_ms));
        let cache_after = self.cache.stats();
        let report = RuntimeReport {
            submitted: requests.len(),
            served: completions.len(),
            rejected,
            deadline_missed: ctrs.deadline_missed,
            failed: ctrs.failed,
            retries: ctrs.retries,
            failovers: ctrs.failovers,
            plan_fallbacks: ctrs.plan_fallbacks,
            device_evictions: ctrs.device_evictions,
            batches,
            batched_requests,
            cache: CacheStats {
                hits: cache_after.hits - cache_before.hits,
                misses: cache_after.misses - cache_before.misses,
                evictions: cache_after.evictions - cache_before.evictions,
            },
            tune_explores: self.tuner.stats().explores - tune_before.explores,
            tune_promotes: self.tuner.stats().promotes - tune_before.promotes,
            latency_p50_ms: pick(0.50),
            latency_p99_ms: pick(0.99),
            latency_mean_ms: mean,
            makespan_ms,
            shard: ShardCounters::default(),
            devices: self
                .devices
                .iter()
                .enumerate()
                .map(|(i, d)| DeviceReport {
                    device: i,
                    jobs: d.jobs_done(),
                    sm_occupancy: d.sm_occupancy(),
                    makespan_ms: d.makespan_ms(),
                    faults: d.fault_counters(),
                })
                .collect(),
        };
        debug_assert!(report.reconciles(), "request accounting must balance");
        Ok(ServeResult {
            completions,
            dropped,
            report,
        })
    }

    /// Run one job (solo request or fused batch) and place it on the
    /// earliest-available healthy stream at or after `submit_ms`,
    /// retrying faulted dispatches with exponential backoff and failing
    /// over across devices.
    fn submit(
        &mut self,
        members: &[(&Request, f64)],
        submit_ms: f64,
        ctrs: &mut ServeCounters,
    ) -> simt::Result<SubmitOutcome> {
        // Execute functionally + time solo, via the plan cache for solo
        // requests; fused batches are one-off shapes and bypass it.
        let (run, cache_hit, format) = if members.len() == 1 {
            let a = &members[0].0.matrix;
            let x = &members[0].0.x;
            let fp = self.fingerprint_of(Arc::as_ptr(a) as usize, a);
            let logical = Self::logical_key(KernelKind::Spmv, fp);
            // A promoted non-CSR winner's plan lives under its own
            // format's cache key; with tuning off the winner is always
            // absent, so the lookup — and everything downstream — is
            // byte-identical to the pre-format runtime.
            let winner_format = self
                .tuner
                .winner(&logical)
                .map_or(FormatKind::Csr, |(_, f)| f);
            let key = PlanKey { format: winner_format, ..logical };
            let outcome = match self.cache.get(&key) {
                // Graceful degradation: a cached plan whose launch fails
                // is treated as poisoned — evict it and fall back to the
                // heuristic path rather than failing the request.
                Some(plan) => {
                    let served = if winner_format == FormatKind::Csr {
                        spmv_with_plan(&self.spec, &self.model, a, x, &plan)
                    } else {
                        self.prepared_operand(fp, a, winner_format).and_then(|(op, _)| {
                            formats::spmv_format_with_plan(
                                &self.spec, &self.model, a, &op, x, &plan,
                            )
                        })
                    };
                    match served {
                        Ok(run) => (run, Some(true), winner_format),
                        Err(_) => {
                            self.cache.remove(&key);
                            ctrs.plan_fallbacks += 1;
                            let kind = self.heuristic.select(a.rows(), a.cols(), a.nnz());
                            (
                                spmv_with_model(
                                    &self.spec,
                                    &self.model,
                                    a,
                                    x,
                                    kind,
                                    DEFAULT_BLOCK,
                                )?,
                                Some(false),
                                FormatKind::Csr,
                            )
                        }
                    }
                }
                None => match self.spmv_tuned_miss(logical, a, x, submit_ms, ctrs)? {
                    // The autotuner wanted this miss (tuning enabled and
                    // the key is tracked): it served the request under a
                    // candidate or best-known (schedule × format) cell.
                    Some((run, fmt)) => (run, Some(false), fmt),
                    None => {
                        let kind = self.heuristic.select(a.rows(), a.cols(), a.nnz());
                        let run =
                            spmv_with_model(&self.spec, &self.model, a, x, kind, DEFAULT_BLOCK)?;
                        // Plan construction can fail (chaos-injected here;
                        // in principle also a real setup failure): the
                        // request is still served through the heuristic run
                        // above — only the cache misses out.
                        let prepared: simt::Result<KernelPlan> = if self.cfg.plan_fail_prob > 0.0
                            && self.rng.chance(self.cfg.plan_fail_prob)
                        {
                            Err(simt::LaunchError::EmptyLaunch)
                        } else {
                            plan::prepare(&self.spec, &self.model, a, kind, DEFAULT_BLOCK)
                        };
                        match prepared {
                            Ok(plan) => self.cache.insert(key, Arc::new(plan)),
                            Err(_) => ctrs.plan_fallbacks += 1,
                        }
                        (run, Some(false), FormatKind::Csr)
                    }
                },
            };
            self.emit(TraceEvent::Request {
                id: members[0].0.id,
                phase: if outcome.1 == Some(true) {
                    RequestPhase::CacheHit
                } else {
                    RequestPhase::CacheMiss
                },
                ts_ms: submit_ms,
            });
            self.emit(TraceEvent::Counter {
                counter: CounterKind::CacheOccupancy,
                ts_ms: submit_ms,
                value: self.cache.len() as f64,
            });
            outcome
        } else {
            let parts: Vec<&Csr<f32>> = members.iter().map(|(r, _)| r.matrix.as_ref()).collect();
            let fused = batch::block_diag(&parts);
            let xs: Vec<&[f32]> = members.iter().map(|(r, _)| r.x.as_ref()).collect();
            let x = batch::concat_x(&xs);
            let kind = self
                .heuristic
                .select(fused.rows(), fused.cols(), fused.nnz());
            (
                spmv_with_model(&self.spec, &self.model, &fused, &x, kind, DEFAULT_BLOCK)?,
                None,
                FormatKind::Csr,
            )
        };

        // Dispatch with bounded retry + failover. The job's deadline is
        // the strictest member's (batches die whole once it passes —
        // the fused launch cannot be split after the fact).
        let job_deadline = members
            .iter()
            .fold(f64::INFINITY, |m, (r, _)| m.min(r.arrival_ms + self.cfg.deadline_ms));
        let label = trace_label(KernelKind::Spmv, run.schedule);
        let mut when = submit_ms;
        let mut attempt = 0u32;
        let mut first_device: Option<usize> = None;
        let (dev_idx, stream, job) = loop {
            let picked = self.pick_stream(when);
            // The job must *start* by the deadline: check the earliest
            // achievable start across the pool, not just the submit
            // clock — a backed-up pool misses deadlines while idle
            // clocks would not.
            let earliest_start = picked
                .map(|(di, s)| self.devices[di].stream_ready_ms(s).max(when))
                .unwrap_or(when);
            if earliest_start > job_deadline {
                ctrs.deadline_missed += members.len();
                for (r, _) in members {
                    self.emit(TraceEvent::Request {
                        id: r.id,
                        phase: RequestPhase::DeadlineMiss,
                        ts_ms: when,
                    });
                    self.emit(TraceEvent::TenantSample {
                        tenant: r.tenant,
                        ts_ms: when,
                        latency_ms: when - r.arrival_ms,
                        outcome: TenantOutcome::DeadlineMiss,
                    });
                }
                return Ok(SubmitOutcome::Dropped(DropReason::DeadlineMissed, when));
            }
            let Some((dev_idx, stream)) = picked else {
                // No device admits work right now: jump to the earliest
                // cooldown expiry, or give up if the pool is dead.
                match self.earliest_readmission(when) {
                    Some(at) => {
                        when = at;
                        continue;
                    }
                    None => {
                        ctrs.failed += members.len();
                        for (r, _) in members {
                            self.emit(TraceEvent::TenantSample {
                                tenant: r.tenant,
                                ts_ms: when,
                                latency_ms: when - r.arrival_ms,
                                outcome: TenantOutcome::Failed,
                            });
                        }
                        return Ok(SubmitOutcome::Dropped(DropReason::Failed, when));
                    }
                }
            };
            first_device.get_or_insert(dev_idx);
            match self.devices[dev_idx].try_replay_named(stream, &run.report, when, label) {
                Ok(mut job) => {
                    self.health[dev_idx].consecutive_failures = 0;
                    if first_device != Some(dev_idx) {
                        ctrs.failovers += members.len();
                    }
                    // Failed attempts burned launch overhead; fold it
                    // into the job's cumulative report without
                    // re-charging SM time or traffic.
                    for _ in 0..attempt {
                        job.report
                            .fold_failed_attempt(self.spec.launch_overhead_us * 1e-3);
                    }
                    break (dev_idx, stream, job);
                }
                Err(SimError::Launch(e)) => return Err(e),
                Err(e) => {
                    attempt += 1;
                    ctrs.retries += 1;
                    let at_ms = match e {
                        SimError::DeviceLost { at_ms, .. }
                        | SimError::TransientLaunch { at_ms, .. } => at_ms,
                        SimError::Launch(_) => unreachable!("handled above"),
                    };
                    let h = &mut self.health[dev_idx];
                    if matches!(e, SimError::DeviceLost { .. }) {
                        if !h.dead {
                            h.dead = true;
                            ctrs.device_evictions += 1;
                        }
                    } else {
                        h.consecutive_failures += 1;
                        if h.consecutive_failures >= self.cfg.evict_after {
                            h.evicted_until_ms = at_ms + self.cfg.cooldown_ms;
                            h.consecutive_failures = 0;
                            ctrs.device_evictions += 1;
                        }
                    }
                    for (r, _) in members {
                        self.emit(TraceEvent::Request {
                            id: r.id,
                            phase: RequestPhase::Retry,
                            ts_ms: at_ms,
                        });
                    }
                    if attempt > self.cfg.max_retries {
                        ctrs.failed += members.len();
                        for (r, _) in members {
                            self.emit(TraceEvent::TenantSample {
                                tenant: r.tenant,
                                ts_ms: at_ms,
                                latency_ms: at_ms - r.arrival_ms,
                                outcome: TenantOutcome::Failed,
                            });
                        }
                        return Ok(SubmitOutcome::Dropped(DropReason::Failed, at_ms));
                    }
                    // Exponential backoff with seeded jitter.
                    let backoff = self.cfg.retry_backoff_ms
                        * 2f64.powi(attempt as i32 - 1)
                        * (1.0 + self.cfg.retry_jitter * self.rng.f64());
                    when = when.max(at_ms) + backoff;
                }
            }
        };
        if self.sink.is_some() {
            let batched = members.len() > 1;
            for (r, _) in members {
                self.emit(TraceEvent::Dispatch {
                    id: r.id,
                    device: dev_idx as u32,
                    stream: stream.index(),
                    start_ms: job.start_ms,
                    end_ms: job.end_ms,
                    batched,
                });
                self.emit(TraceEvent::RequestSpan {
                    id: r.id,
                    start_ms: r.arrival_ms.min(job.start_ms),
                    end_ms: job.end_ms,
                    device: dev_idx as u32,
                });
                self.emit(TraceEvent::Request {
                    id: r.id,
                    phase: RequestPhase::Complete,
                    ts_ms: job.end_ms,
                });
                self.emit(TraceEvent::TenantSample {
                    tenant: r.tenant,
                    ts_ms: job.end_ms,
                    latency_ms: job.end_ms - r.arrival_ms,
                    outcome: TenantOutcome::Served,
                });
            }
        }

        Ok(SubmitOutcome::Done(self.complete(
            members,
            &run,
            dev_idx,
            cache_hit,
            format,
            &job,
            attempt + 1,
        )))
    }

    /// Earliest-available stream among devices the runtime still
    /// believes healthy; least-loaded device on ties. `None` if every
    /// device is known-dead or cooling down at `submit_ms`.
    ///
    /// Deliberately *not* omniscient about injected kills: a dead device
    /// is discovered by a failed dispatch (which marks
    /// [`DeviceHealth::dead`] and counts an eviction), the way a real
    /// scheduler learns from a lost launch rather than from the fault
    /// injector.
    fn pick_stream(&self, submit_ms: f64) -> Option<(usize, StreamId)> {
        let mut best: Option<(f64, f64, usize, StreamId)> = None;
        for (di, d) in self.devices.iter().enumerate() {
            let h = &self.health[di];
            if h.dead || h.evicted_until_ms > submit_ms {
                continue;
            }
            for &s in &self.streams[di] {
                let start = d.stream_ready_ms(s).max(submit_ms);
                let tie = d.makespan_ms();
                let better = match &best {
                    None => true,
                    Some((bs, bt, _, _)) => {
                        start < *bs - 1e-12 || (start < *bs + 1e-12 && tie < *bt - 1e-12)
                    }
                };
                if better {
                    best = Some((start, tie, di, s));
                }
            }
        }
        best.map(|(_, _, di, s)| (di, s))
    }

    /// The earliest time after `now` at which an evicted (but not dead)
    /// device re-admits work; `None` if the whole pool is permanently
    /// lost.
    fn earliest_readmission(&self, now: f64) -> Option<f64> {
        self.health
            .iter()
            .filter(|h| !h.dead)
            .map(|h| h.evicted_until_ms)
            .filter(|&t| t > now)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    #[allow(clippy::too_many_arguments)]
    fn complete(
        &self,
        members: &[(&Request, f64)],
        run: &SpmvRun,
        device: usize,
        cache_hit: Option<bool>,
        format: FormatKind,
        job: &simt::JobReport,
        attempts: u32,
    ) -> Vec<Completion> {
        let (start_ms, end_ms) = (job.start_ms, job.end_ms);
        let batched = members.len() > 1;
        let ys: Vec<Option<Vec<f32>>> = if self.cfg.keep_results {
            if batched {
                let counts: Vec<usize> = members.iter().map(|(r, _)| r.matrix.rows()).collect();
                batch::split_y(&run.y, &counts)
                    .into_iter()
                    .map(Some)
                    .collect()
            } else {
                vec![Some(run.y.clone())]
            }
        } else {
            members.iter().map(|_| None).collect()
        };
        members
            .iter()
            .zip(ys)
            .map(|((r, _), y)| Completion {
                id: r.id,
                arrival_ms: r.arrival_ms,
                start_ms,
                end_ms,
                device,
                batched,
                cache_hit,
                schedule: run.schedule,
                format,
                attempts,
                y,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize, seed: u64) -> Vec<Arc<Csr<f32>>> {
        (0..n)
            .map(|i| {
                Arc::new(sparse::gen::powerlaw(
                    2_000 + 500 * i,
                    2_000 + 500 * i,
                    30_000 + 5_000 * i,
                    1.7,
                    seed + i as u64,
                ))
            })
            .collect()
    }

    fn stream(matrices: &[Arc<Csr<f32>>], n: usize) -> Vec<Request> {
        zipf_workload(
            matrices,
            &WorkloadSpec {
                requests: n,
                zipf_s: 1.1,
                mean_interarrival_ms: 0.02,
                seed: 7,
            },
        )
    }

    #[test]
    fn serves_all_requests_and_caches_plans() {
        let m = corpus(4, 100);
        let reqs = stream(&m, 120);
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.served, 120);
        assert_eq!(out.report.rejected, 0);
        // 4 distinct matrices → 4 misses, everything else hits.
        assert_eq!(out.report.cache.misses, 4);
        assert!(out.report.cache.hit_rate() > 0.9);
        assert!(out.report.latency_p99_ms >= out.report.latency_p50_ms);
        assert!(out.report.makespan_ms > 0.0);
        assert!(out.report.devices[0].sm_occupancy > 0.0);
    }

    #[test]
    fn spmm_warm_path_reuses_one_plan_across_different_b() {
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let a = Arc::new(sparse::gen::powerlaw(2_000, 2_000, 40_000, 1.8, 500));
        let b1 = DenseMatrix::from_fn(2_000, 4, |r, c| ((r + 3 * c) as f32).sin());
        let b2 = DenseMatrix::from_fn(2_000, 4, |r, c| ((2 * r + c) as f32).cos());
        let bits =
            |m: &DenseMatrix<f32>| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        let first = rt.run_spmm(&a, &b1).unwrap();
        assert!(!first.cache_hit);
        let warm = rt.run_spmm(&a, &b1).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(bits(&first.output), bits(&warm.output));
        assert_eq!(first.schedule, warm.schedule);

        // The cached plan serves a *different* B bitwise-identically to
        // the cold path, and the prepartitioned replay issues less work.
        let other = rt.run_spmm(&a, &b2).unwrap();
        assert!(other.cache_hit);
        let cold =
            spmm::spmm_with_model(rt.spec(), &CostModel::standard(), &a, &b2, other.schedule)
                .unwrap();
        assert_eq!(bits(&other.output), bits(&cold.c));
        assert!(other.report.timing.total_units < cold.report.timing.total_units);
        assert_eq!(rt.cache_stats().misses, 1);
        assert_eq!(rt.cache_stats().hits, 2);
    }

    #[test]
    fn bfs_warm_path_pins_schedule_and_matches_cold() {
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let g = Arc::new(Graph::from_generator(sparse::gen::powerlaw(
            3_000, 3_000, 50_000, 1.8, 501,
        )));
        let first = rt.run_bfs(&g, 0).unwrap();
        assert!(!first.cache_hit);
        let warm = rt.run_bfs(&g, 0).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(first.output, warm.output);
        assert_eq!(first.schedule, warm.schedule);
        assert_eq!(
            first.report.elapsed_ms().to_bits(),
            warm.report.elapsed_ms().to_bits(),
            "pinned schedule must replay bitwise"
        );
        let cold =
            bfs::bfs_with_model(rt.spec(), &CostModel::standard(), &g, 0, first.schedule).unwrap();
        assert_eq!(cold.depth, first.output);
    }

    #[test]
    fn one_cache_serves_spmv_spmm_and_bfs_side_by_side() {
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let m = corpus(1, 600);
        let reqs = stream(&m, 10);
        rt.serve(&reqs).unwrap();
        let spmv_misses = rt.cache_stats().misses;
        let b = DenseMatrix::from_fn(m[0].cols(), 2, |r, c| (r + c) as f32);
        rt.run_spmm(&m[0], &b).unwrap();
        // Same matrix, different kernel: the SpMV plan must not answer.
        assert_eq!(rt.cache_stats().misses, spmv_misses + 1);
        let warm = rt.run_spmm(&m[0], &b).unwrap();
        assert!(warm.cache_hit);
    }

    #[test]
    fn results_match_reference_under_serving() {
        let m = corpus(3, 200);
        let reqs = stream(&m, 40);
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                keep_results: true,
                ..RuntimeConfig::default()
            },
        );
        let out = rt.serve(&reqs).unwrap();
        for c in &out.completions {
            let r = reqs.iter().find(|r| r.id == c.id).unwrap();
            let want = r.matrix.spmv_ref(&r.x);
            let got = c.y.as_ref().expect("keep_results");
            let err = kernels::spmv::max_rel_error(got, &want);
            assert!(err < 2e-3, "request {}: err {err}", c.id);
        }
    }

    #[test]
    fn serving_is_deterministic() {
        let m = corpus(3, 300);
        let reqs = stream(&m, 80);
        let run = |_: u32| {
            let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
            let out = rt.serve(&reqs).unwrap();
            (
                out.report.makespan_ms,
                out.report.latency_p99_ms,
                out.report.cache.hits,
                out.completions.iter().map(|c| c.end_ms).sum::<f64>(),
            )
        };
        assert_eq!(run(0), run(1));
    }

    #[test]
    fn two_devices_outrun_one_under_load() {
        let m = corpus(4, 400);
        // Arrivals far faster than one device's lanes can drain: the
        // makespan is service-bound, so doubling the pool ≈ halves it.
        let reqs = zipf_workload(
            &m,
            &WorkloadSpec {
                requests: 150,
                zipf_s: 1.1,
                mean_interarrival_ms: 0.002,
                seed: 7,
            },
        );
        let serve_with = |devices: usize| {
            let mut rt = Runtime::new(
                GpuSpec::v100(),
                RuntimeConfig {
                    devices,
                    ..RuntimeConfig::default()
                },
            );
            rt.serve(&reqs).unwrap().report
        };
        let one = serve_with(1);
        let two = serve_with(2);
        assert_eq!(one.served, two.served);
        let speedup = two.throughput_rps() / one.throughput_rps();
        assert!(
            speedup >= 1.5,
            "2-device throughput speedup only {speedup:.2}x ({:.0} vs {:.0} req/s)",
            two.throughput_rps(),
            one.throughput_rps()
        );
        // Both devices actually served jobs.
        assert!(two.devices.iter().all(|d| d.jobs > 0));
    }

    #[test]
    fn reject_policy_sheds_load_block_policy_serves_all() {
        let m = corpus(2, 500);
        let reqs = stream(&m, 100);
        let serve_with = |policy: QueuePolicy| {
            let mut rt = Runtime::new(
                GpuSpec::v100(),
                RuntimeConfig {
                    queue_depth: 2,
                    policy,
                    ..RuntimeConfig::default()
                },
            );
            rt.serve(&reqs).unwrap().report
        };
        let rej = serve_with(QueuePolicy::Reject);
        assert!(rej.rejected > 0, "tight queue should shed load");
        assert_eq!(rej.served + rej.rejected, 100);
        let blk = serve_with(QueuePolicy::Block);
        assert_eq!(blk.served, 100);
        assert_eq!(blk.rejected, 0);
        // Blocking converts drops into waiting.
        assert!(blk.latency_p99_ms > rej.latency_p99_ms);
    }

    #[test]
    fn tiny_requests_are_batched_and_still_correct() {
        let tiny: Vec<Arc<Csr<f32>>> = (0..6)
            .map(|i| Arc::new(sparse::gen::uniform(60, 60, 400, 600 + i)))
            .collect();
        let reqs = zipf_workload(
            &tiny,
            &WorkloadSpec {
                requests: 64,
                zipf_s: 0.8,
                mean_interarrival_ms: 0.002,
                seed: 11,
            },
        );
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                keep_results: true,
                ..RuntimeConfig::default()
            },
        );
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.served, 64);
        assert!(out.report.batches > 0, "tiny mix should coalesce");
        assert!(out.report.batched_requests > out.report.batches);
        for c in out.completions.iter().filter(|c| c.batched) {
            let r = reqs.iter().find(|r| r.id == c.id).unwrap();
            let want = r.matrix.spmv_ref(&r.x);
            let err = kernels::spmv::max_rel_error(c.y.as_ref().unwrap(), &want);
            assert!(err < 2e-3, "batched request {}: err {err}", c.id);
        }
    }

    #[test]
    fn batching_beats_serial_tiny_launches_on_makespan() {
        let tiny: Vec<Arc<Csr<f32>>> = (0..4)
            .map(|i| Arc::new(sparse::gen::uniform(50, 50, 300, 700 + i)))
            .collect();
        let reqs = zipf_workload(
            &tiny,
            &WorkloadSpec {
                requests: 48,
                zipf_s: 0.5,
                mean_interarrival_ms: 0.001,
                seed: 13,
            },
        );
        let serve_with = |batch_max: usize| {
            let mut rt = Runtime::new(
                GpuSpec::v100(),
                RuntimeConfig {
                    batch_max,
                    streams_per_device: 1,
                    ..RuntimeConfig::default()
                },
            );
            rt.serve(&reqs).unwrap().report
        };
        let unbatched = serve_with(1);
        let batched = serve_with(8);
        assert_eq!(unbatched.batches, 0);
        assert!(batched.batches > 0);
        assert!(
            batched.makespan_ms < unbatched.makespan_ms,
            "batched {} ms vs unbatched {} ms",
            batched.makespan_ms,
            unbatched.makespan_ms
        );
    }

    #[test]
    fn empty_serve_reports_zeros_without_nan() {
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let out = rt.serve(&[]).unwrap();
        let rep = &out.report;
        assert_eq!(rep.submitted, 0);
        assert_eq!(rep.served, 0);
        assert_eq!(rep.latency_p50_ms, 0.0);
        assert_eq!(rep.latency_p99_ms, 0.0);
        assert_eq!(rep.latency_mean_ms, 0.0);
        assert_eq!(rep.throughput_rps(), 0.0);
        assert!(!rep.latency_mean_ms.is_nan());
        // Display must render the degenerate report cleanly.
        let text = format!("{rep}");
        assert!(text.contains("served 0/0"));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn single_request_percentiles_collapse() {
        let m = corpus(1, 900);
        let reqs = vec![Request {
            id: 0,
            tenant: 0,
            matrix: Arc::clone(&m[0]),
            x: Arc::from(sparse::dense::test_vector(m[0].cols()).into_boxed_slice()),
            arrival_ms: 0.0,
        }];
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let out = rt.serve(&reqs).unwrap();
        let rep = &out.report;
        assert_eq!(rep.served, 1);
        assert_eq!(rep.latency_p50_ms, rep.latency_p99_ms);
        assert_eq!(rep.latency_p50_ms, rep.latency_mean_ms);
        assert!(rep.latency_p50_ms > 0.0);
    }

    #[test]
    fn all_rejected_report_displays_cleanly() {
        // A fully-rejected serve can't happen (the first request is always
        // admitted), so exercise Display on a constructed report plus a
        // heavy-rejection real serve.
        let rep = RuntimeReport {
            submitted: 5,
            served: 0,
            rejected: 5,
            deadline_missed: 0,
            failed: 0,
            retries: 0,
            failovers: 0,
            plan_fallbacks: 0,
            device_evictions: 0,
            batches: 0,
            batched_requests: 0,
            cache: CacheStats::default(),
            tune_explores: 0,
            tune_promotes: 0,
            latency_p50_ms: 0.0,
            latency_p99_ms: 0.0,
            latency_mean_ms: 0.0,
            makespan_ms: 0.0,
            shard: ShardCounters::default(),
            devices: vec![],
        };
        assert_eq!(rep.throughput_rps(), 0.0);
        let text = format!("{rep}");
        assert!(text.contains("served 0/5 requests (5 rejected)"));
        assert!(!text.contains("NaN"));

        let m = corpus(1, 950);
        let reqs = stream(&m, 50);
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                queue_depth: 1,
                policy: QueuePolicy::Reject,
                batch_max: 1,
                ..RuntimeConfig::default()
            },
        );
        let out = rt.serve(&reqs).unwrap();
        assert!(out.report.rejected > 0);
        let text = format!("{}", out.report);
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn full_report_reconciles_and_displays_every_counter() {
        // Every counter nonzero, mutually consistent: 16 submissions =
        // 10 served + 3 rejected + 2 deadline-missed + 1 failed; 14
        // routed + 2 global sheds = 16; 2 fused launches covering 5.
        let rep = RuntimeReport {
            submitted: 16,
            served: 10,
            rejected: 3,
            deadline_missed: 2,
            failed: 1,
            retries: 4,
            failovers: 2,
            plan_fallbacks: 1,
            device_evictions: 1,
            batches: 2,
            batched_requests: 5,
            cache: CacheStats {
                hits: 7,
                misses: 9,
                evictions: 1,
            },
            tune_explores: 3,
            tune_promotes: 1,
            latency_p50_ms: 0.5,
            latency_p99_ms: 2.5,
            latency_mean_ms: 0.75,
            makespan_ms: 12.0,
            shard: ShardCounters {
                routed: 14,
                halo_bytes: 4096,
                merges: 6,
                shard_rejects: 2,
            },
            devices: vec![DeviceReport {
                device: 0,
                jobs: 10,
                sm_occupancy: 0.5,
                makespan_ms: 12.0,
                faults: simt::FaultCounters {
                    transient_launch_failures: 3,
                    stalled_dispatches: 2,
                    lost_dispatches: 1,
                    degraded_sms: 4,
                },
            }],
        };
        assert!(rep.reconciles());
        let text = format!("{rep}");
        // Every counter's value and label surface in the Display output.
        for needle in [
            "served 10/16 requests (3 rejected)",
            "7 hits / 9 misses",
            "1 evictions",
            "p50 0.5",
            "p99 2.5",
            "mean 0.75",
            "2 fused launches covering 5 requests",
            "3 exploration serves, 1 promotions",
            "14 routed, 6 merges, 4096 halo bytes, 2 global rejects",
            "4 retries, 2 failovers, 2 deadline-missed, 1 failed",
            "1 plan fallbacks, 1 device evictions",
            "device 0: 10 jobs",
            "3 transient, 2 stalled, 1 lost, 4 degraded SMs",
        ] {
            assert!(text.contains(needle), "Display missing {needle:?}:\n{text}");
        }

        // Each accounting identity is load-bearing: breaking any one
        // breaks reconciliation.
        let mut bad = rep.clone();
        bad.served += 1;
        assert!(!bad.reconciles(), "submission identity");
        let mut bad = rep.clone();
        bad.shard.routed -= 1;
        assert!(!bad.reconciles(), "routing identity");
        let mut bad = rep.clone();
        bad.shard.shard_rejects = 4;
        assert!(!bad.reconciles(), "shed subset identity");
        let mut bad = rep.clone();
        bad.batched_requests = 0;
        assert!(!bad.reconciles(), "batching identity");
        let mut bad = rep;
        bad.batches = 3;
        assert!(!bad.reconciles(), "batch-coverage identity");
    }

    #[test]
    fn traced_serve_matches_untraced_and_covers_lifecycle() {
        let m = corpus(3, 1000);
        let reqs = stream(&m, 60);
        let run = |sink: Option<Arc<trace::Recorder>>| {
            let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
            if let Some(s) = &sink {
                rt.set_trace_sink(s.clone());
            }
            let out = rt.serve(&reqs).unwrap();
            (
                out.report.makespan_ms,
                out.report.latency_p99_ms,
                out.report.cache.hits,
                out.completions
                    .iter()
                    .map(|c| (c.id, c.start_ms, c.end_ms, c.device))
                    .collect::<Vec<_>>(),
            )
        };
        let rec = Arc::new(trace::Recorder::new());
        assert_eq!(run(None), run(Some(rec.clone())), "tracing must not perturb serving");

        let data = rec.snapshot();
        let phase_count = |p: RequestPhase| {
            data.events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Request { phase, .. } if *phase == p))
                .count()
        };
        assert_eq!(phase_count(RequestPhase::Enqueue), 60);
        assert_eq!(phase_count(RequestPhase::Complete), 60);
        assert_eq!(
            phase_count(RequestPhase::CacheHit) + phase_count(RequestPhase::CacheMiss),
            data.events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Dispatch { batched: false, .. }))
                .count()
        );
        // Every dispatch sits inside its request's span.
        for ev in &data.events {
            if let TraceEvent::Dispatch { id, start_ms, end_ms, .. } = ev {
                let span = data
                    .events
                    .iter()
                    .find_map(|e| match e {
                        TraceEvent::RequestSpan { id: sid, start_ms, end_ms, .. }
                            if sid == id =>
                        {
                            Some((*start_ms, *end_ms))
                        }
                        _ => None,
                    })
                    .expect("dispatch has a request span");
                assert!(*start_ms >= span.0 - 1e-12 && *end_ms <= span.1 + 1e-12);
            }
        }
        // Device kernels were traced through replay_named with schedule names.
        assert!(data
            .kernels()
            .all(|k| matches!(k, TraceEvent::Kernel { name, .. } if name.starts_with("spmv/"))));
        assert!(data.kernels().count() > 0);
        // Counters flowed.
        assert!(data
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Counter { counter: CounterKind::QueueDepth, .. })));
        assert!(data.events.iter().any(
            |e| matches!(e, TraceEvent::Counter { counter: CounterKind::CacheOccupancy, .. })
        ));
    }

    #[test]
    fn cache_capacity_evicts_and_remisses() {
        let m = corpus(3, 800);
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                plan_cache_capacity: 1,
                batch_max: 1,
                ..RuntimeConfig::default()
            },
        );
        // Round-robin through 3 matrices: every access under capacity 1
        // misses after the first eviction.
        let reqs: Vec<Request> = (0..9)
            .map(|i| Request {
                id: i,
                tenant: (i % 3) as u32,
                matrix: Arc::clone(&m[(i % 3) as usize]),
                x: Arc::from(
                    sparse::dense::test_vector(m[(i % 3) as usize].cols()).into_boxed_slice(),
                ),
                arrival_ms: i as f64,
            })
            .collect();
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.cache.hits, 0);
        assert_eq!(out.report.cache.misses, 9);
        assert!(out.report.cache.evictions >= 6);
    }

    // ---- resilience ----------------------------------------------------

    fn resilient_cfg() -> RuntimeConfig {
        RuntimeConfig {
            devices: 2,
            keep_results: true,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn healthy_fault_plans_are_bitwise_transparent_to_serving() {
        let m = corpus(3, 300);
        let reqs = stream(&m, 80);
        let serve = |plans: bool| {
            let mut rt = Runtime::new(GpuSpec::v100(), resilient_cfg());
            if plans {
                for d in 0..2 {
                    rt.set_fault_plan(d, FaultPlan::healthy(99));
                }
            }
            rt.serve(&reqs).unwrap()
        };
        let base = serve(false);
        let faulted = serve(true);
        assert_eq!(base.report, faulted.report);
        for (a, b) in base.completions.iter().zip(&faulted.completions) {
            assert_eq!(a.y, b.y, "healthy plans must not perturb results");
            assert_eq!(a.end_ms.to_bits(), b.end_ms.to_bits());
        }
    }

    #[test]
    fn flaky_launches_retry_and_still_serve_everything() {
        let m = corpus(3, 310);
        let reqs = stream(&m, 60);
        let mut rt = Runtime::new(GpuSpec::v100(), resilient_cfg());
        rt.set_fault_plan(0, FaultPlan::healthy(5).with_flaky_launches(0.3));
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.served, 60);
        assert_eq!(out.report.failed, 0);
        assert!(out.report.retries > 0, "30% flaky launches must trigger retries");
        assert!(out.report.reconciles());
        assert!(out.completions.iter().any(|c| c.attempts > 1));
        assert!(out.report.devices[0].faults.transient_launch_failures > 0);
    }

    #[test]
    fn killed_device_fails_over_without_losing_requests() {
        let m = corpus(3, 320);
        let reqs = stream(&m, 60);
        let mut rt = Runtime::new(GpuSpec::v100(), resilient_cfg());
        rt.set_fault_plan(0, FaultPlan::healthy(6).with_kill_at(0.3));
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.served, 60, "survivor absorbs all work");
        assert_eq!(out.report.failed + out.report.rejected, 0);
        assert!(out.report.device_evictions >= 1);
        assert!(out.report.reconciles());
        // No duplicated or lost ids.
        let mut ids: Vec<u64> = out.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60);
        // Work lands only on the survivor after the kill tick.
        for c in &out.completions {
            if c.start_ms >= 0.3 {
                assert_eq!(c.device, 1, "dead device must not be scheduled");
            }
        }
    }

    #[test]
    fn whole_pool_dead_fails_requests_but_reconciles() {
        let m = corpus(1, 330);
        let reqs = stream(&m, 10);
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                devices: 1,
                ..RuntimeConfig::default()
            },
        );
        rt.set_fault_plan(0, FaultPlan::healthy(7).with_kill_at(0.0));
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.served, 0);
        assert_eq!(out.report.failed, 10);
        assert!(out.report.reconciles());
        assert_eq!(out.dropped.len(), 10);
        assert!(out
            .dropped
            .iter()
            .all(|d| d.reason == DropReason::Failed));
    }

    #[test]
    fn tight_deadlines_shed_late_requests() {
        // A burst: every request arrives at t=0, so streams back up and
        // late dispatches cannot start inside the deadline.
        let m = corpus(2, 340);
        let reqs: Vec<Request> = (0..80)
            .map(|i| Request {
                id: i,
                tenant: (i % 2) as u32,
                matrix: Arc::clone(&m[(i % 2) as usize]),
                x: Arc::from(
                    sparse::dense::test_vector(m[(i % 2) as usize].cols()).into_boxed_slice(),
                ),
                arrival_ms: 0.0,
            })
            .collect();
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                deadline_ms: 0.05,
                ..RuntimeConfig::default()
            },
        );
        let out = rt.serve(&reqs).unwrap();
        assert!(out.report.deadline_missed > 0, "0.05 ms deadline must shed load");
        assert!(out.report.served > 0, "early requests still make it");
        assert!(out.report.reconciles());
        assert_eq!(
            out.dropped
                .iter()
                .filter(|d| d.reason == DropReason::DeadlineMissed)
                .count(),
            out.report.deadline_missed
        );
    }

    #[test]
    fn plan_failures_degrade_to_heuristic_path() {
        let m = corpus(3, 350);
        let reqs = stream(&m, 30);
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                plan_fail_prob: 1.0,
                batch_max: 1,
                keep_results: true,
                ..RuntimeConfig::default()
            },
        );
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(out.report.served, 30, "plan failures must not fail requests");
        assert_eq!(out.report.plan_fallbacks, 30, "every prepare was chaos-failed");
        assert_eq!(out.report.cache.hits, 0, "nothing ever cached");
        assert!(out.report.reconciles());
    }

    #[test]
    fn chaos_serving_is_seed_deterministic() {
        let m = corpus(3, 360);
        let reqs = stream(&m, 60);
        let run = || {
            let mut rt = Runtime::new(
                GpuSpec::v100(),
                RuntimeConfig {
                    deadline_ms: 2.0,
                    ..resilient_cfg()
                },
            );
            rt.set_fault_plan(0, FaultPlan::healthy(11).with_flaky_launches(0.25));
            rt.set_fault_plan(
                1,
                FaultPlan::healthy(12)
                    .with_degraded_sms(0.2, 0.4, 0.8)
                    .with_stall(0.5, 0.2),
            );
            rt.serve(&reqs).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.end_ms.to_bits(), y.end_ms.to_bits());
            assert_eq!(x.y, y.y, "identical seeds must give identical results");
        }
        assert!(a.report.reconciles());
    }

    #[test]
    fn fp_memo_revalidates_on_address_reuse() {
        // Regression: the memo used to key on the allocation address
        // alone, so a new matrix landing on a dropped matrix's address
        // was served the old fingerprint (and therefore the old matrix's
        // cached plan). Present two different matrices under the same
        // address key: the old code returns `a`'s fingerprint for `b`.
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let a = sparse::gen::uniform(500, 500, 5_000, 1);
        let b = sparse::gen::powerlaw(700, 700, 9_000, 1.8, 2);
        let reused_addr = 0xdead_usize;
        let fa = rt.fingerprint_of(reused_addr, &a);
        assert_eq!(fa, Fingerprint::of(&a));
        let fb = rt.fingerprint_of(reused_addr, &b);
        assert_eq!(
            fb,
            Fingerprint::of(&b),
            "memo served a stale fingerprint across address reuse"
        );
        assert_ne!(fa, fb);
        // A true re-presentation of the same matrix still memo-hits.
        assert_eq!(rt.fingerprint_of(reused_addr, &b), fb);
    }

    #[test]
    fn fp_memo_survives_real_allocator_reuse() {
        // Best-effort end-to-end variant: drop each Arc before allocating
        // the next so the allocator is free to hand out the same block.
        // Whether or not reuse happens on this allocator, every memo
        // answer must match the matrix actually presented.
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        for i in 0..64u64 {
            let m = Arc::new(sparse::gen::uniform(
                400 + i as usize,
                400,
                4_000 + 13 * i as usize,
                i,
            ));
            let fp = rt.fingerprint_of(Arc::as_ptr(&m) as usize, &m);
            assert_eq!(fp, Fingerprint::of(&m));
        }
    }

    #[test]
    fn fp_memo_is_bounded() {
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let m = sparse::gen::uniform(100, 100, 1_000, 9);
        for addr in 0..(FP_MEMO_CAP * 2 + 3) {
            rt.fingerprint_of(addr, &m);
        }
        assert!(rt.fp_memo.len() <= FP_MEMO_CAP);
    }

    #[test]
    fn tuning_disabled_by_default_stays_idle() {
        let m = corpus(2, 11);
        let reqs = stream(&m, 60);
        let mut rt = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let out = rt.serve(&reqs).unwrap();
        assert_eq!(rt.tune_stats(), TuneStats::default());
        assert_eq!(out.report.tune_explores, 0);
        assert_eq!(out.report.tune_promotes, 0);
        assert!(!format!("{}", out.report).contains("autotune:"));
    }

    #[test]
    fn tuned_serve_explores_then_promotes_and_goes_warm() {
        let m = corpus(1, 21);
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                tune: TuneConfig {
                    enabled: true,
                    ..TuneConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        let out = rt.serve(&stream(&m, 200)).unwrap();
        assert!(out.report.reconciles());
        let stats = rt.tune_stats();
        assert!(
            stats.explores >= 2,
            "sweep should issue exploration serves, got {stats:?}"
        );
        assert_eq!(stats.promotes, 1, "single-matrix corpus promotes once");
        assert_eq!(out.report.tune_promotes, 1);
        assert!(format!("{}", out.report).contains("autotune:"));
        let winner = rt
            .tuned_candidate(KernelKind::Spmv, &m[0])
            .expect("sweep completed");

        // Post-promotion serves are warm cache hits under the winner.
        let again = rt.serve(&stream(&m, 40)).unwrap();
        assert_eq!(again.report.tune_explores, 0);
        assert_eq!(again.report.cache.misses, 0);
        for c in &again.completions {
            assert_eq!(c.schedule, winner.0);
            assert_eq!(c.format, winner.1);
            assert_eq!(c.cache_hit, Some(true));
        }
    }

    #[test]
    fn tuned_spmm_promotes_and_warm_output_is_stable() {
        let mut rt = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                tune: TuneConfig {
                    enabled: true,
                    epsilon: 1.0, // always finish the sweep first
                    ..TuneConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        let a = Arc::new(sparse::gen::powerlaw(1_500, 1_500, 20_000, 1.8, 5));
        let b = DenseMatrix::from_fn(1_500, 4, |r, c| ((r + 2 * c) as f32).sin());
        // With ε = 1 every run before promotion is a sweep miss; the
        // candidate space size depends on which format cells the matrix
        // qualifies for, so drive until the promotion lands.
        for _ in 0..16 {
            rt.run_spmm(&a, &b).unwrap();
            if rt.tune_stats().promotes == 1 {
                break;
            }
        }
        assert_eq!(rt.tune_stats().promotes, 1, "SpMM sweep should finish");
        let winner = rt
            .tuned_candidate(KernelKind::Spmm, &a)
            .expect("sweep completed");
        let bits = |m: &DenseMatrix<f32>| {
            m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let w1 = rt.run_spmm(&a, &b).unwrap();
        assert!(w1.cache_hit);
        assert_eq!(w1.schedule, winner.0);
        let w2 = rt.run_spmm(&a, &b).unwrap();
        assert_eq!(bits(&w1.output), bits(&w2.output));
    }

    #[test]
    fn tuned_bfs_promotes_and_matches_untuned_depths() {
        let gen = || sparse::gen::powerlaw(3_000, 3_000, 50_000, 1.8, 501);
        let g = Arc::new(Graph::from_generator(gen()));
        let mut tuned = Runtime::new(
            GpuSpec::v100(),
            RuntimeConfig {
                tune: TuneConfig {
                    enabled: true,
                    epsilon: 1.0,
                    ..TuneConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        let mut fixed = Runtime::new(GpuSpec::v100(), RuntimeConfig::default());
        let want = fixed.run_bfs(&g, 0).unwrap().output;
        let mut last = None;
        for _ in 0..32 {
            last = Some(tuned.run_bfs(&g, 0).unwrap());
            if tuned.tune_stats().promotes == 1 {
                break;
            }
        }
        assert_eq!(tuned.tune_stats().promotes, 1, "BFS sweep should finish");
        // Every candidate schedule computes the same depths, tuned or not.
        assert_eq!(last.unwrap().output, want);
        let warm = tuned.run_bfs(&g, 0).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.output, want);
    }
}
