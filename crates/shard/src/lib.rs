//! # shard — sharded distributed serving over partitioned matrices
//!
//! The serving runtime (`runtime`) scales *within* one node: a device
//! pool behind one plan cache. This crate scales *across* nodes: a
//! [`ShardGroup`] of N independent runtimes joined by an interconnect
//! whose cost model (`simt::exchange`) prices the data movement the
//! single-node path never pays.
//!
//! Three layers:
//!
//! * **Partitioning** (`sparse::partition`) — 1D row, 1D nnz, and 2D
//!   row×nnz splits of a CSR matrix into row-aligned sub-matrices with
//!   halo (ghost-column) metadata: which input-vector entries each
//!   shard needs but does not own.
//! * **Routing** ([`HashRing`]) — consistent hashing of tenants onto
//!   shards with virtual nodes: deterministic, and adding a shard
//!   remaps only ~`1/n` of tenants.
//! * **Serving** ([`ShardGroup`]) — split mode (every request
//!   data-parallel across all shards, paying a bulk-synchronous
//!   halo-exchange + merge charge) and routed mode (whole requests to
//!   their tenant's home shard, no communication). Split-mode results
//!   are **bitwise identical** to the single-shard path at any shard
//!   count, because the partition is row-aligned (merging is
//!   concatenation) and the schedule is pinned to a flat-span one
//!   (`runtime::split::pinned_schedule`) whose per-row fold order is
//!   position-independent.
//!
//! `shard_bench` sweeps shard count × corpus family and writes the
//! scaling curve — including where the communication charge overtakes
//! the compute win — to `results/shard_scaling.csv`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod group;
pub mod ring;

pub use group::{ShardGroup, ShardGroupConfig, ShardPageRank};
pub use ring::HashRing;
