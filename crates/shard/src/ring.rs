//! Consistent-hash tenant routing.
//!
//! A [`HashRing`] maps tenant ids to shards through the classic
//! virtual-node construction: each shard owns `vnodes` pseudo-random
//! points on a `u64` circle, and a tenant routes to the owner of the
//! first point at or after its own hash (wrapping at the top). The two
//! properties the serving layer leans on:
//!
//! * **Determinism** — every point is derived from `(seed, shard,
//!   vnode)` by a splitmix64-style mixer, so the same configuration
//!   routes the same tenants to the same shards on every run (the
//!   benches byte-diff their CSVs on this).
//! * **Bounded remapping** — adding or removing one shard only moves
//!   the tenants whose successor point changed: an expected `1/n`
//!   fraction, not a full reshuffle as with `tenant % n`. The unit
//!   tests pin an upper bound on the remapped fraction.

/// The finalizer of splitmix64 — a full-avalanche `u64 → u64` mixer,
/// used both for ring points and for tenant placement. std-only (the
/// workspace has no crates.io access), matching `sparse::rng`'s choice
/// of generator family.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs — the circle.
    points: Vec<(u64, u32)>,
    /// Virtual nodes per shard.
    vnodes: usize,
    /// Seed every point and placement hash derives from.
    seed: u64,
}

impl HashRing {
    /// Build a ring over shards `0..shards` with `vnodes` points each.
    ///
    /// # Panics
    /// If `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize, seed: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(vnodes > 0, "need at least one virtual node per shard");
        let mut ring = Self {
            points: Vec::with_capacity(shards * vnodes),
            vnodes,
            seed,
        };
        for s in 0..shards {
            ring.insert_points(s as u32);
        }
        ring.points.sort_unstable();
        ring
    }

    fn point_of(&self, shard: u32, vnode: usize) -> u64 {
        mix64(self.seed ^ mix64((u64::from(shard) << 32) | vnode as u64))
    }

    fn insert_points(&mut self, shard: u32) {
        for v in 0..self.vnodes {
            self.points.push((self.point_of(shard, v), shard));
        }
    }

    /// Add a shard's virtual nodes to the ring. Re-adding a present
    /// shard is a no-op, so membership stays one point-set per shard.
    pub fn add_shard(&mut self, shard: u32) {
        if self.contains(shard) {
            return;
        }
        self.insert_points(shard);
        self.points.sort_unstable();
    }

    /// Remove every virtual node of `shard`; its tenants fall through
    /// to the next point on the circle.
    ///
    /// # Panics
    /// If the removal would empty the ring.
    pub fn remove_shard(&mut self, shard: u32) {
        self.points.retain(|&(_, s)| s != shard);
        assert!(!self.points.is_empty(), "cannot remove the last shard");
    }

    /// True if `shard` currently owns points on the ring.
    pub fn contains(&self, shard: u32) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// Shards currently on the ring.
    pub fn num_shards(&self) -> usize {
        let mut seen: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Route a tenant to its home shard: the owner of the first ring
    /// point at or after the tenant's hash, wrapping past the top.
    pub fn route(&self, tenant: u64) -> u32 {
        let h = mix64(self.seed ^ mix64(tenant));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[if idx == self.points.len() { 0 } else { idx }].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_per_seed() {
        let a = HashRing::new(8, 64, 42);
        let b = HashRing::new(8, 64, 42);
        let c = HashRing::new(8, 64, 43);
        let mut moved = 0;
        for t in 0..10_000u64 {
            assert_eq!(a.route(t), b.route(t), "same seed must agree");
            if a.route(t) != c.route(t) {
                moved += 1;
            }
        }
        assert!(moved > 5_000, "a new seed must reshuffle placement");
    }

    #[test]
    fn every_shard_receives_traffic() {
        let ring = HashRing::new(16, 64, 7);
        let mut hits = [0usize; 16];
        for t in 0..20_000u64 {
            hits[ring.route(t) as usize] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            assert!(h > 0, "shard {s} starved");
            // 64 vnodes keep the load within a loose factor of fair
            // share (1250); this guards against gross imbalance, not
            // perfect uniformity.
            assert!(h < 4 * 20_000 / 16, "shard {s} overloaded: {h}");
        }
    }

    #[test]
    fn adding_a_shard_remaps_a_bounded_fraction() {
        let before = HashRing::new(8, 64, 11);
        let mut after = before.clone();
        after.add_shard(8);
        let total = 10_000u64;
        let mut moved = 0usize;
        for t in 0..total {
            let (b, a) = (before.route(t), after.route(t));
            if b != a {
                // Consistent hashing only ever moves tenants *to* the
                // new shard, never between old shards.
                assert_eq!(a, 8, "tenant {t} moved {b}→{a}, not to the new shard");
                moved += 1;
            }
        }
        // Expected share is 1/9 ≈ 11%; allow slack for vnode variance.
        let frac = moved as f64 / total as f64;
        assert!(frac > 0.02, "new shard got almost nothing: {frac}");
        assert!(frac < 0.25, "add remapped too much: {frac}");
    }

    #[test]
    fn remove_then_readd_restores_the_mapping() {
        let original = HashRing::new(8, 32, 3);
        let mut ring = original.clone();
        ring.remove_shard(3);
        assert!(!ring.contains(3));
        assert_eq!(ring.num_shards(), 7);
        for t in 0..2_000u64 {
            assert_ne!(ring.route(t), 3, "removed shard still routed to");
            if original.route(t) != 3 {
                assert_eq!(
                    ring.route(t),
                    original.route(t),
                    "tenant {t} moved although its home shard survived"
                );
            }
        }
        ring.add_shard(3);
        for t in 0..2_000u64 {
            assert_eq!(ring.route(t), original.route(t), "re-add must restore");
        }
    }

    #[test]
    fn readding_a_present_shard_is_a_noop() {
        let mut ring = HashRing::new(4, 16, 9);
        let points_before = ring.points.len();
        ring.add_shard(2);
        assert_eq!(ring.points.len(), points_before);
    }

    #[test]
    #[should_panic(expected = "last shard")]
    fn removing_the_last_shard_panics() {
        let mut ring = HashRing::new(1, 8, 0);
        ring.remove_shard(0);
    }
}
