//! A simulated shard group: N serving runtimes, each standing in for a
//! device pool on its own node, joined by an interconnect.
//!
//! Two serving modes, matching the two ways a request can relate to the
//! partition:
//!
//! * [`ShardGroup::serve_split`] — every request's matrix is split
//!   across *all* shards by a [`ShardPlan`]; each shard computes its
//!   row block and the group pays a bulk-synchronous halo-exchange +
//!   merge charge per request. Results are bitwise identical to the
//!   single-shard path (see [`runtime::split`]).
//! * [`ShardGroup::serve_routed`] — whole requests are routed to their
//!   tenant's home shard by the consistent-hash [`HashRing`]; each
//!   shard's runtime serves its slice of the stream with its own plan
//!   cache, batcher, and autotuner. No communication charge — tenants
//!   are independent — at the cost of per-shard load imbalance.
//!
//! The split path is a *global* data-parallel execution (strong
//! scaling, communication-bound); the routed path is *tenant*
//! parallelism (throughput scaling, balance-bound). `shard_bench`
//! sweeps both against shard count.

use std::collections::HashMap;
use std::sync::Arc;

use kernels::graph::Graph;
use kernels::pagerank::{normalized_transpose, DAMPING};
use loops::schedule::ScheduleKind;
use runtime::split::{pinned_schedule, split_spmv};
use runtime::{
    Completion, DeviceReport, DropReason, DroppedRequest, QueuePolicy, Request, Runtime,
    RuntimeConfig, RuntimeReport, ServeResult, ShardCounters,
};
use simt::exchange::halo_exchange;
use simt::{GpuSpec, MultiGpuSpec};
use sparse::{Csr, ShardPlan, ShardStrategy};
use trace::{ShardPhase, TenantOutcome, TraceEvent, TraceSink};

use crate::ring::HashRing;

/// Sizing and policy knobs of one shard group.
#[derive(Debug, Clone)]
pub struct ShardGroupConfig {
    /// Shards (nodes) in the group.
    pub shards: usize,
    /// How split-mode matrices are partitioned across shards.
    pub strategy: ShardStrategy,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
    /// Seed of the routing ring's hash points.
    pub seed: u64,
    /// Per-shard runtime configuration (device pool, caches, batching).
    pub runtime: RuntimeConfig,
    /// Global admission window of the split path: split requests in
    /// flight (admitted, not yet completed) before backpressure.
    pub queue_depth: usize,
    /// What the global admission layer does when the window is full.
    pub policy: QueuePolicy,
    /// Inter-shard link bandwidth per direction, GB/s.
    pub link_bw_gbs: f64,
    /// Per-transfer link latency, microseconds.
    pub link_latency_us: f64,
}

impl ShardGroupConfig {
    /// A group of `shards` NVLink-class nodes with default policies.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            strategy: ShardStrategy::RowNnz2D,
            vnodes: 64,
            seed: 0x5eed,
            runtime: RuntimeConfig::default(),
            queue_depth: 64,
            policy: QueuePolicy::Block,
            link_bw_gbs: 150.0,
            link_latency_us: 2.0,
        }
    }
}

/// A split-mode partition of one matrix, cached per matrix identity so
/// repeat tenants pay the partitioning cost once (the group-level
/// analogue of the runtime's plan cache).
#[derive(Debug)]
struct SplitEntry {
    subs: Vec<Arc<Csr<f32>>>,
    kind: ScheduleKind,
    halo_bytes: Vec<u64>,
    total_halo: u64,
    merge_bytes: u64,
    /// Shard whose halo bounds the exchange (owns the critical
    /// transfer).
    bounding_shard: u32,
}

/// Result of a sharded PageRank run (see [`ShardGroup::pagerank`]).
#[derive(Debug, Clone)]
pub struct ShardPageRank {
    /// Per-vertex rank, summing to 1 — bitwise identical to
    /// `kernels::pagerank` under the same pinned schedule.
    pub rank: Vec<f32>,
    /// Power iterations executed.
    pub iterations: usize,
    /// The pinned flat-span schedule every shard ran.
    pub schedule: ScheduleKind,
    /// Summed critical-shard compute time over all iterations (ms).
    pub compute_ms: f64,
    /// Summed halo-exchange + merge charge over all iterations (ms).
    pub comm_ms: f64,
}

/// N shard runtimes plus the ring, link model, and split-partition
/// cache that tie them into one serving surface.
#[derive(Debug)]
pub struct ShardGroup {
    cfg: ShardGroupConfig,
    ring: HashRing,
    shards: Vec<Runtime>,
    link: MultiGpuSpec,
    splits: HashMap<usize, SplitEntry>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl ShardGroup {
    /// Build a group of `cfg.shards` identical runtimes over `spec`
    /// devices.
    ///
    /// # Panics
    /// If `cfg.shards` is zero.
    pub fn new(spec: GpuSpec, cfg: ShardGroupConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        let shards = (0..cfg.shards)
            .map(|_| Runtime::new(spec.clone(), cfg.runtime))
            .collect();
        let link = MultiGpuSpec {
            device: spec,
            num_devices: cfg.shards as u32,
            link_bw_gbs: cfg.link_bw_gbs,
            link_latency_us: cfg.link_latency_us,
        };
        let ring = HashRing::new(cfg.shards, cfg.vnodes, cfg.seed);
        Self {
            cfg,
            ring,
            shards,
            link,
            splits: HashMap::new(),
            sink: None,
        }
    }

    /// Shards in the group.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing ring (read-only; membership is fixed at
    /// construction).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Attach a trace sink; shard milestones
    /// ([`TraceEvent::Shard`]) are emitted through it.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    fn emit(&self, shard: u32, phase: ShardPhase, ts_ms: f64, value: f64) {
        if let Some(s) = &self.sink {
            s.event(&TraceEvent::Shard {
                shard,
                phase,
                ts_ms,
                value,
            });
        }
    }

    fn emit_tenant(&self, tenant: u32, ts_ms: f64, latency_ms: f64, outcome: TenantOutcome) {
        if let Some(s) = &self.sink {
            s.event(&TraceEvent::TenantSample {
                tenant,
                ts_ms,
                latency_ms,
                outcome,
            });
        }
    }

    /// Partition (or recall) the split-mode plan for `a`.
    fn split_entry(&mut self, a: &Arc<Csr<f32>>) -> &SplitEntry {
        let key = Arc::as_ptr(a) as usize;
        if !self.splits.contains_key(&key) {
            let plan = ShardPlan::partition(a.as_ref(), self.shards.len(), self.cfg.strategy);
            let subs = (0..plan.num_shards())
                .map(|s| Arc::new(plan.submatrix(a.as_ref(), s)))
                .collect();
            let halo_bytes: Vec<u64> = plan.shards.iter().map(|s| s.halo_bytes()).collect();
            let bounding_shard = halo_bytes
                .iter()
                .enumerate()
                .max_by_key(|&(_, &b)| b)
                .map_or(0, |(i, _)| i as u32);
            self.splits.insert(
                key,
                SplitEntry {
                    subs,
                    kind: pinned_schedule(a),
                    total_halo: plan.total_halo_bytes(),
                    merge_bytes: plan.max_output_bytes(),
                    halo_bytes,
                    bounding_shard,
                },
            );
        }
        &self.splits[&key]
    }

    /// Serve a request stream in **split mode**: each request runs
    /// data-parallel across every shard, bulk-synchronously — compute
    /// the critical shard's row block, pay the halo-exchange and merge
    /// charge, concatenate. The merged outputs are bitwise identical to
    /// serving on one shard (the root `shard_oracle` tests assert it).
    ///
    /// Global admission applies the group's `queue_depth`/`policy`
    /// *before* routing; per-request deadlines
    /// ([`RuntimeConfig::deadline_ms`]) are honored against the
    /// admitted start time.
    pub fn serve_split(&mut self, requests: &[Request]) -> simt::Result<ServeResult> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&i, &j| {
            requests[i]
                .arrival_ms
                .partial_cmp(&requests[j].arrival_ms)
                .expect("finite arrivals")
        });

        let cache_before: Vec<_> = self.shards.iter().map(Runtime::cache_stats).collect();
        let mut completions: Vec<Completion> = Vec::new();
        let mut dropped: Vec<DroppedRequest> = Vec::new();
        let mut counters = ShardCounters::default();
        let mut deadline_missed = 0usize;
        // The split path is bulk-synchronous: one request occupies the
        // whole group at a time, so admitted-but-unfinished requests
        // form a FIFO whose completion times are non-decreasing.
        let mut ends: Vec<f64> = Vec::new();
        let mut busy_until = 0.0f64;

        for &i in &order {
            let r = &requests[i];
            let in_flight = ends.len() - ends.partition_point(|&e| e <= r.arrival_ms);
            if in_flight >= self.cfg.queue_depth && self.cfg.policy == QueuePolicy::Reject {
                counters.shard_rejects += 1;
                self.emit(
                    self.ring.route(r.id),
                    ShardPhase::Reject,
                    r.arrival_ms,
                    r.id as f64,
                );
                self.emit_tenant(r.tenant, r.arrival_ms, 0.0, TenantOutcome::Rejected);
                dropped.push(DroppedRequest {
                    id: r.id,
                    ts_ms: r.arrival_ms,
                    reason: DropReason::Rejected,
                });
                continue;
            }
            let home = self.ring.route(r.id);
            counters.routed += 1;
            self.emit(home, ShardPhase::Route, r.arrival_ms, r.id as f64);

            let start = r.arrival_ms.max(busy_until);
            if start - r.arrival_ms > self.cfg.runtime.deadline_ms {
                deadline_missed += 1;
                self.emit_tenant(
                    r.tenant,
                    start,
                    start - r.arrival_ms,
                    TenantOutcome::DeadlineMiss,
                );
                dropped.push(DroppedRequest {
                    id: r.id,
                    ts_ms: start,
                    reason: DropReason::DeadlineMissed,
                });
                continue;
            }

            let entry = self.split_entry(&r.matrix);
            let (subs, kind) = (entry.subs.clone(), entry.kind);
            let (halo, total_halo, merge_bytes, bounding) = (
                entry.halo_bytes.clone(),
                entry.total_halo,
                entry.merge_bytes,
                entry.bounding_shard,
            );
            let run = split_spmv(&mut self.shards, &subs, &r.x, kind)?;
            let cost = halo_exchange(&self.link, &halo, merge_bytes);
            let end = start + run.critical_shard_ms() + cost.total_ms();

            if self.shards.len() > 1 {
                counters.halo_bytes += total_halo;
                self.emit(bounding, ShardPhase::HaloExchange, start, total_halo as f64);
            }
            counters.merges += 1;
            self.emit(home, ShardPhase::Merge, end, 4.0 * run.y.len() as f64);

            self.emit_tenant(r.tenant, end, end - r.arrival_ms, TenantOutcome::Served);
            let active = subs.iter().filter(|s| s.rows() > 0).count();
            completions.push(Completion {
                id: r.id,
                arrival_ms: r.arrival_ms,
                start_ms: start,
                end_ms: end,
                device: home as usize,
                batched: false,
                cache_hit: Some(run.cache_hits == active),
                schedule: kind,
                format: sparse::FormatKind::Csr,
                attempts: 1,
                y: self.cfg.runtime.keep_results.then_some(run.y),
            });
            ends.push(end);
            busy_until = end;
        }

        let mut report = self.assemble_report(requests.len(), &completions, &cache_before);
        report.rejected = counters.shard_rejects;
        report.deadline_missed = deadline_missed;
        report.shard = counters;
        debug_assert!(report.reconciles(), "split accounting must balance");
        Ok(ServeResult {
            completions,
            dropped,
            report,
        })
    }

    /// Serve a request stream in **routed mode**: the ring assigns each
    /// request's tenant (its id) a home shard, and each shard's runtime
    /// serves its slice independently — shard-local plan caches,
    /// batchers, and autotuners all engage. Completions carry
    /// group-global device indices (`shard · devices_per_shard +
    /// local`).
    pub fn serve_routed(&mut self, requests: &[Request]) -> simt::Result<ServeResult> {
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.shards.len()];
        for r in requests {
            let home = self.ring.route(r.id);
            self.emit(home, ShardPhase::Route, r.arrival_ms, r.id as f64);
            per_shard[home as usize].push(r.clone());
        }

        let devices_per_shard = self.cfg.runtime.devices;
        let mut completions: Vec<Completion> = Vec::new();
        let mut dropped: Vec<DroppedRequest> = Vec::new();
        let mut merged: Option<RuntimeReport> = None;
        for (s, stream) in per_shard.iter().enumerate() {
            if stream.is_empty() {
                continue;
            }
            let mut out = self.shards[s].serve(stream)?;
            for c in &mut out.completions {
                c.device += s * devices_per_shard;
            }
            completions.extend(out.completions);
            dropped.extend(out.dropped);
            let mut rep = out.report;
            for d in &mut rep.devices {
                d.device += s * devices_per_shard;
            }
            merged = Some(match merged {
                None => rep,
                Some(acc) => merge_reports(acc, rep),
            });
        }

        // Shard-local runtimes have no sink wired, so per-tenant
        // outcome samples are emitted here at the group boundary from
        // the merged completion/drop record.
        if self.sink.is_some() {
            let tenants: HashMap<u64, (u32, f64)> = requests
                .iter()
                .map(|r| (r.id, (r.tenant, r.arrival_ms)))
                .collect();
            for c in &completions {
                if let Some(&(tenant, _)) = tenants.get(&c.id) {
                    self.emit_tenant(
                        tenant,
                        c.end_ms,
                        c.end_ms - c.arrival_ms,
                        TenantOutcome::Served,
                    );
                }
            }
            for d in &dropped {
                if let Some(&(tenant, arrival_ms)) = tenants.get(&d.id) {
                    let outcome = match d.reason {
                        DropReason::Rejected => TenantOutcome::Rejected,
                        DropReason::DeadlineMissed => TenantOutcome::DeadlineMiss,
                        DropReason::Failed => TenantOutcome::Failed,
                    };
                    self.emit_tenant(tenant, d.ts_ms, (d.ts_ms - arrival_ms).max(0.0), outcome);
                }
            }
        }

        let mut report = merged.unwrap_or_else(|| {
            self.assemble_report(0, &[], &vec![Default::default(); self.shards.len()])
        });
        report.submitted = requests.len();
        // Re-derive stream-wide latency stats: per-shard percentiles do
        // not compose, the merged sample does.
        let (p50, p99, mean) = latency_stats(&completions);
        report.latency_p50_ms = p50;
        report.latency_p99_ms = p99;
        report.latency_mean_ms = mean;
        report.shard = ShardCounters {
            routed: requests.len(),
            ..ShardCounters::default()
        };
        debug_assert!(report.reconciles(), "routed accounting must balance");
        Ok(ServeResult {
            completions,
            dropped,
            report,
        })
    }

    /// Sharded PageRank: the normalized transpose is partitioned once,
    /// every power iteration is one split execution plus the
    /// bulk-synchronous communication charge, and the scalar update
    /// (dangling mass, teleport, delta) runs on the *merged* vector in
    /// exactly `kernels::pagerank`'s order — which is why the ranks are
    /// bitwise identical to the single-shard run at any shard count.
    pub fn pagerank(
        &mut self,
        g: &Graph,
        tol: f32,
        max_iters: usize,
    ) -> simt::Result<ShardPageRank> {
        let n = g.num_vertices();
        assert!(n > 0, "graph must have vertices");
        let mt = normalized_transpose(g);
        let kind = pinned_schedule(&mt);
        let plan = ShardPlan::partition(&mt, self.shards.len(), self.cfg.strategy);
        let subs: Vec<Arc<Csr<f32>>> = (0..plan.num_shards())
            .map(|s| Arc::new(plan.submatrix(&mt, s)))
            .collect();
        let halo: Vec<u64> = plan.shards.iter().map(|s| s.halo_bytes()).collect();
        let dangling: Vec<usize> = (0..n).filter(|&u| g.degree(u) == 0).collect();

        let mut rank = vec![1.0f32 / n as f32; n];
        let mut iterations = 0usize;
        let mut compute_ms = 0.0f64;
        let mut comm_ms = 0.0f64;
        while iterations < max_iters {
            let run = split_spmv(&mut self.shards, &subs, &rank, kind)?;
            compute_ms += run.critical_shard_ms();
            comm_ms += halo_exchange(&self.link, &halo, plan.max_output_bytes()).total_ms();
            let dangling_mass: f32 = dangling.iter().map(|&u| rank[u]).sum();
            let teleport = (1.0 - DAMPING) / n as f32 + DAMPING * dangling_mass / n as f32;
            let next: Vec<f32> = run.y.iter().map(|&s| teleport + DAMPING * s).collect();
            let delta: f32 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            iterations += 1;
            if delta < tol {
                break;
            }
        }
        Ok(ShardPageRank {
            rank,
            iterations,
            schedule: kind,
            compute_ms,
            comm_ms,
        })
    }

    /// Assemble a report skeleton for the split path from completions
    /// plus per-shard cache deltas; the caller fills in the drop and
    /// shard counters.
    fn assemble_report(
        &self,
        submitted: usize,
        completions: &[Completion],
        cache_before: &[runtime::CacheStats],
    ) -> RuntimeReport {
        let (p50, p99, mean) = latency_stats(completions);
        let mut cache = runtime::CacheStats::default();
        let mut devices = Vec::with_capacity(self.shards.len());
        for (s, rt) in self.shards.iter().enumerate() {
            let after = rt.cache_stats();
            let before = cache_before.get(s).copied().unwrap_or_default();
            cache.hits += after.hits - before.hits;
            cache.misses += after.misses - before.misses;
            cache.evictions += after.evictions - before.evictions;
            devices.push(DeviceReport {
                device: s,
                jobs: completions.len(),
                sm_occupancy: 0.0,
                makespan_ms: completions.iter().fold(0.0f64, |m, c| m.max(c.end_ms)),
                faults: Default::default(),
            });
        }
        RuntimeReport {
            submitted,
            served: completions.len(),
            rejected: 0,
            deadline_missed: 0,
            failed: 0,
            retries: 0,
            failovers: 0,
            plan_fallbacks: 0,
            device_evictions: 0,
            batches: 0,
            batched_requests: 0,
            cache,
            tune_explores: 0,
            tune_promotes: 0,
            latency_p50_ms: p50,
            latency_p99_ms: p99,
            latency_mean_ms: mean,
            makespan_ms: completions.iter().fold(0.0f64, |m, c| m.max(c.end_ms)),
            shard: ShardCounters::default(),
            devices,
        }
    }
}

/// Stream-wide latency percentiles and mean, with the same picking rule
/// as `Runtime::serve` (nearest-rank on the sorted sample).
fn latency_stats(completions: &[Completion]) -> (f64, f64, f64) {
    if completions.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut lat: Vec<f64> = completions.iter().map(Completion::latency_ms).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |p: f64| -> f64 {
        let idx = ((p * lat.len() as f64).ceil() as usize).max(1) - 1;
        lat[idx.min(lat.len() - 1)]
    };
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    (pick(0.50), pick(0.99), mean)
}

/// Fold two per-shard reports into one: counters add, latency stats are
/// re-derived by the caller, makespan is the slowest shard's.
fn merge_reports(mut acc: RuntimeReport, rep: RuntimeReport) -> RuntimeReport {
    acc.submitted += rep.submitted;
    acc.served += rep.served;
    acc.rejected += rep.rejected;
    acc.deadline_missed += rep.deadline_missed;
    acc.failed += rep.failed;
    acc.retries += rep.retries;
    acc.failovers += rep.failovers;
    acc.plan_fallbacks += rep.plan_fallbacks;
    acc.device_evictions += rep.device_evictions;
    acc.batches += rep.batches;
    acc.batched_requests += rep.batched_requests;
    acc.cache.hits += rep.cache.hits;
    acc.cache.misses += rep.cache.misses;
    acc.cache.evictions += rep.cache.evictions;
    acc.tune_explores += rep.tune_explores;
    acc.tune_promotes += rep.tune_promotes;
    acc.makespan_ms = acc.makespan_ms.max(rep.makespan_ms);
    acc.devices.extend(rep.devices);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::{zipf_workload, WorkloadSpec};

    fn corpus() -> Vec<Arc<Csr<f32>>> {
        vec![
            Arc::new(sparse::gen::powerlaw(1_200, 1_200, 15_000, 1.8, 31)),
            Arc::new(sparse::gen::banded(1_000, 9, 32)),
            Arc::new(sparse::gen::uniform(900, 900, 8_000, 33)),
        ]
    }

    fn workload(n: usize) -> Vec<Request> {
        zipf_workload(
            &corpus(),
            &WorkloadSpec {
                requests: n,
                zipf_s: 1.1,
                mean_interarrival_ms: 0.05,
                seed: 99,
            },
        )
    }

    fn group(n: usize) -> ShardGroup {
        let mut cfg = ShardGroupConfig::new(n);
        cfg.runtime.keep_results = true;
        ShardGroup::new(GpuSpec::test_tiny(), cfg)
    }

    #[test]
    fn split_serving_is_bitwise_identical_across_shard_counts() {
        let reqs = workload(60);
        let base = group(1).serve_split(&reqs).unwrap();
        assert!(base.report.reconciles());
        for n in [2usize, 4] {
            let out = group(n).serve_split(&reqs).unwrap();
            assert!(out.report.reconciles(), "{n} shards must reconcile");
            assert_eq!(out.completions.len(), base.completions.len());
            for (a, b) in out.completions.iter().zip(&base.completions) {
                assert_eq!(a.id, b.id);
                let (ya, yb) = (a.y.as_ref().unwrap(), b.y.as_ref().unwrap());
                let bits = |y: &[f32]| y.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(ya), bits(yb), "request {} diverged at {n} shards", a.id);
            }
        }
    }

    #[test]
    fn split_mode_fills_shard_counters_and_reconciles() {
        let reqs = workload(40);
        let out = group(4).serve_split(&reqs).unwrap();
        let shard = out.report.shard;
        assert!(shard.is_active());
        assert_eq!(shard.routed, 40);
        assert_eq!(shard.merges, out.report.served);
        assert!(shard.halo_bytes > 0, "4-way powerlaw splits must have ghosts");
        assert!(out.report.reconciles());
        assert!(out.report.cache.hits > 0, "repeat tenants must hit shard caches");
    }

    #[test]
    fn split_admission_rejects_when_the_window_fills() {
        let mut cfg = ShardGroupConfig::new(2);
        cfg.queue_depth = 1;
        cfg.policy = QueuePolicy::Reject;
        let mut g = ShardGroup::new(GpuSpec::test_tiny(), cfg);
        // Everything arrives at once: one admitted, the rest shed.
        let reqs: Vec<Request> = workload(20)
            .into_iter()
            .map(|mut r| {
                r.arrival_ms = 0.0;
                r
            })
            .collect();
        let out = g.serve_split(&reqs).unwrap();
        assert!(out.report.shard.shard_rejects > 0);
        assert_eq!(out.report.rejected, out.report.shard.shard_rejects);
        assert!(out.report.reconciles());
        assert_eq!(
            out.completions.len() + out.dropped.len(),
            reqs.len(),
            "every submission accounted"
        );
    }

    #[test]
    fn routed_serving_reconciles_and_spreads_load() {
        let reqs = workload(120);
        let out = group(4).serve_routed(&reqs).unwrap();
        assert!(out.report.reconciles());
        assert_eq!(out.report.shard.routed, 120);
        assert_eq!(out.report.submitted, 120);
        assert_eq!(out.report.served + out.report.rejected, 120);
        // Group-global device ids must span more than one shard.
        let mut shards_hit: Vec<usize> = out
            .completions
            .iter()
            .map(|c| c.device / RuntimeConfig::default().devices.max(1))
            .collect();
        shards_hit.sort_unstable();
        shards_hit.dedup();
        assert!(shards_hit.len() > 1, "routing never left one shard");
    }

    #[test]
    fn sharded_pagerank_matches_the_single_shard_run_bitwise() {
        let g = Graph::from_generator(sparse::gen::rmat(9, 8, (0.57, 0.19, 0.19), 41));
        let base = group(1).pagerank(&g, 1e-6, 60).unwrap();
        let total: f32 = base.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
        for n in [2usize, 4] {
            let run = group(n).pagerank(&g, 1e-6, 60).unwrap();
            assert_eq!(run.iterations, base.iterations);
            let bits = |y: &[f32]| y.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&run.rank), bits(&base.rank), "{n}-shard ranks diverged");
            assert!(run.comm_ms > 0.0, "multi-shard runs must pay communication");
        }
        assert_eq!(base.comm_ms, 0.0, "one shard exchanges nothing");
    }

    #[test]
    fn trace_sink_sees_shard_milestones() {
        let rec = Arc::new(trace::Recorder::with_capacity(4_096));
        let mut g = group(2);
        g.set_trace_sink(rec.clone());
        g.serve_split(&workload(10)).unwrap();
        let data = rec.snapshot();
        let mut phases: Vec<&'static str> = data
            .events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Shard { phase, .. } => Some(phase.name()),
                _ => None,
            })
            .collect();
        phases.sort_unstable();
        phases.dedup();
        assert!(phases.contains(&"shard_route"));
        assert!(phases.contains(&"halo_exchange"));
        assert!(phases.contains(&"shard_merge"));
    }
}
