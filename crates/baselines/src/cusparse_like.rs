//! cuSparse-style SpMV: CSR-vector (warp-per-row) with a CSR-scalar
//! fallback.
//!
//! NVIDIA's cuSparse is closed source; what is well documented is its
//! response curve — warp-per-row style execution that is excellent on
//! regular matrices and degrades badly when row lengths are skewed
//! (hub rows serialize a warp) or when rows are so short that most of a
//! warp idles. This module implements that algorithm family faithfully so
//! Figures 3–4 compare against the right *shape* of baseline. See
//! DESIGN.md's substitution table.

use crate::BaselineRun;
use simt::{CostModel, GlobalMem, GpuSpec, LaunchConfig};
use sparse::Csr;

/// Threads per block.
pub const BLOCK: u32 = 256;

/// Mean-row-length threshold below which the scalar kernel is used
/// (with very short rows, warp-per-row wastes 31/32 lanes).
pub const SCALAR_THRESHOLD: f64 = 1.5;

/// Extra per-call dispatch cost of the library path, in microseconds.
///
/// cuSparse's generic API performs handle/descriptor bookkeeping and an
/// algorithm-selection pass on every `cusparseSpMV` call; measured
/// library-call overheads on V100-class systems sit in the tens of
/// microseconds, visibly above a bare custom kernel launch. This constant
/// is what makes the baseline lose on the corpus's many tiny matrices —
/// the uniform offset on the left side of the paper's Figures 3–4.
pub const LIBRARY_OVERHEAD_US: f64 = 20.0;

/// cuSparse-like SpMV: picks scalar vs vector by mean row length, paying
/// the library's per-call dispatch overhead on top of the kernel.
pub fn cusparse_spmv(spec: &GpuSpec, a: &Csr<f32>, x: &[f32]) -> simt::Result<BaselineRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let model = CostModel::fused();
    let mean = if a.rows() == 0 {
        0.0
    } else {
        a.nnz() as f64 / a.rows() as f64
    };
    let max_len = (0..a.rows()).map(|r| a.row_len(r)).max().unwrap_or(0);
    let extreme_skew = mean > 0.0 && (max_len as f64 / mean) > 16_384.0;
    let mut run = if mean < SCALAR_THRESHOLD && !extreme_skew {
        csr_scalar(spec, &model, a, x)?
    } else {
        // CUSP/cuSparse-style adaptation: threads-per-row is the power of
        // two nearest the *mean* row length (2..=warp). Great on regular
        // matrices; chosen from the mean, it is exactly what collapses on
        // skewed row-length distributions. The library's analysis pass
        // does catch *astronomical* skew (a near-dense row among
        // singletons) and falls back to full-warp rows — without that it
        // would lose by another order of magnitude on star matrices,
        // which modern cuSparse measurably does not.
        let tpr = if extreme_skew {
            spec.warp_size
        } else {
            (mean.round() as u32)
                .next_power_of_two()
                .clamp(2, spec.warp_size)
        };
        csr_vector_tpr(spec, &model, a, x, tpr)?
    };
    run.report.timing.overhead_ms += LIBRARY_OVERHEAD_US * 1e-3;
    run.report.timing.elapsed_ms += LIBRARY_OVERHEAD_US * 1e-3;
    Ok(run)
}

/// CSR-scalar: one row per thread (identical mapping to thread-mapped,
/// hand-fused).
pub fn csr_scalar(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
) -> simt::Result<BaselineRun> {
    let rows = a.rows();
    let offsets = a.row_offsets();
    let (values, col_indices) = (a.values(), a.col_indices());
    let mut y = vec![0.0f32; rows];
    let cfg = LaunchConfig::over_threads(rows.max(1) as u64, BLOCK);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, model, cfg, |t| {
            let mut row = t.global_thread_id() as usize;
            while row < rows {
                let mut sum = 0.0f32;
                for nz in offsets[row]..offsets[row + 1] {
                    t.charge_atom();
                    sum += values[nz] * x[col_indices[nz] as usize];
                }
                t.charge_tile();
                gy.store(row, sum);
                t.write_bytes(4);
                row += t.grid_size() as usize;
            }
        })?
    };
    Ok(BaselineRun {
        y,
        report,
        path: "cusparse-csr-scalar",
    })
}

/// CSR-vector: one warp per row; lanes stride the row's nonzeros and
/// combine with a warp reduction.
pub fn csr_vector(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
) -> simt::Result<BaselineRun> {
    csr_vector_tpr(spec, model, a, x, spec.warp_size)
}

/// CSR-vector with an explicit threads-per-row group width (a power of
/// two up to the warp size).
pub fn csr_vector_tpr(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    tpr: u32,
) -> simt::Result<BaselineRun> {
    let rows = a.rows();
    let offsets = a.row_offsets();
    let (values, col_indices) = (a.values(), a.col_indices());
    let tpr = tpr.clamp(1, spec.warp_size).next_power_of_two();
    let mut y = vec![0.0f32; rows];
    // One sub-warp group per row, oversubscribed: cap the grid and stride.
    let groups_per_block = (BLOCK / tpr).max(1);
    let grid = rows
        .div_ceil(groups_per_block as usize)
        .clamp(1, (spec.num_sms * spec.max_blocks_per_sm) as usize) as u32;
    let cfg = LaunchConfig::new(grid, BLOCK.min(spec.max_threads_per_block));
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_groups_with_model(spec, model, cfg, tpr, |g| {
            let num_warps = g.num_groups_in_grid() as usize;
            let mut row = g.global_group_id() as usize;
            while row < rows {
                let (start, end) = (offsets[row], offsets[row + 1]);
                // Lanes stride the row's atoms.
                let partials = g.phase(|lane| {
                    let mut sum = 0.0f64;
                    let mut nz = start + lane.group_rank() as usize;
                    while nz < end {
                        lane.charge_atom();
                        sum += f64::from(values[nz]) * f64::from(x[col_indices[nz] as usize]);
                        nz += lane.group_size() as usize;
                    }
                    sum
                });
                // Warp tree reduction, then lane 0 writes.
                let total = g.reduce_sum_f64(&partials);
                g.phase_for_each(|lane| {
                    if lane.group_rank() == 0 {
                        lane.charge_tile();
                        gy.store(row, total as f32);
                        lane.write_bytes(4);
                    }
                });
                row += num_warps;
            }
        })?
    };
    Ok(BaselineRun {
        y,
        report,
        path: "cusparse-csr-vector",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &Csr<f32>) -> BaselineRun {
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        let run = cusparse_spmv(&GpuSpec::v100(), a, &x).unwrap();
        for (i, (g, w)) in run.y.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 2e-3 * w.abs().max(1.0),
                "y[{i}] = {g}, want {w} ({})",
                run.path
            );
        }
        run
    }

    #[test]
    fn matches_reference_and_picks_paths() {
        // Dense-ish rows → vector path.
        let run = check(&sparse::gen::uniform(400, 400, 8_000, 71));
        assert_eq!(run.path, "cusparse-csr-vector");
        // Very sparse rows → scalar path.
        let run = check(&sparse::gen::uniform(4_000, 4_000, 4_000, 72));
        assert_eq!(run.path, "cusparse-csr-scalar");
    }

    #[test]
    fn handles_structured_and_adversarial_matrices() {
        check(&sparse::gen::banded(300, 4, 73));
        check(&sparse::gen::powerlaw(600, 600, 12_000, 1.8, 74));
        check(&sparse::gen::hub_rows(2_000, 2_000, 1, 1_500, 2, 75));
        check(&Csr::<f32>::empty(4, 4));
    }

    #[test]
    fn hub_rows_hurt_csr_vector_more_than_merge_path_style_balance() {
        // The response-curve property the substitution relies on: a hub
        // matrix costs csr_vector far more than a balanced matrix of the
        // same nnz.
        let spec = GpuSpec::v100();
        let model = CostModel::fused();
        let hub = sparse::gen::hub_rows(20_000, 20_000, 1, 20_000, 1, 76);
        let x = sparse::dense::test_vector(20_000);
        // Warp-per-row serializes the hub across one warp...
        let t_vector = csr_vector(&spec, &model, &hub, &x)
            .unwrap()
            .report
            .timing
            .compute_ms;
        // ...while a merge-path-style even split spreads it device-wide.
        let t_merge = kernels::spmv(&spec, &hub, &x, loops::schedule::ScheduleKind::MergePath)
            .unwrap()
            .report
            .timing
            .compute_ms;
        assert!(
            t_vector > 2.0 * t_merge,
            "csr-vector {t_vector} ms vs merge-path {t_merge} ms"
        );
    }

    #[test]
    fn wide_warp_devices_work() {
        let a = sparse::gen::uniform(200, 200, 4_000, 78);
        let x = sparse::dense::test_vector(200);
        let run = cusparse_spmv(&GpuSpec::mi100(), &a, &x).unwrap();
        let want = a.spmv_ref(&x);
        for (g, w) in run.y.iter().zip(&want) {
            assert!((g - w).abs() < 2e-3 * w.abs().max(1.0));
        }
    }
}
