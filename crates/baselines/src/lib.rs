//! # baselines — the comparators the paper evaluates against
//!
//! Two hand-fused SpMV implementations running on the same simulator as
//! the framework, so Figures 2–4 compare scheduling strategies rather than
//! simulation artifacts:
//!
//! * [`cub_like`] — a hardwired merge-path SpMV in the style of NVIDIA
//!   CUB (Merrill & Garland), including the separate segmented-fixup
//!   kernel and the single-column thread-mapped fast path the paper calls
//!   out in §6.1. Fused: schedule and computation are interleaved in one
//!   kernel body, so it pays **no** abstraction range overhead — this is
//!   the 503-LoC monolith of Sidebar 1.
//! * [`cusparse_like`] — a CSR-vector (warp-per-row) SpMV with a
//!   CSR-scalar fallback, modelling the response curve of NVIDIA's closed
//!   cuSparse: strong on regular matrices, collapsing on power-law rows.
//!
//! Both use [`simt::CostModel::fused`] (no per-iteration range charge).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cub_like;
pub mod cusparse_like;

pub use cub_like::cub_spmv;
pub use cusparse_like::cusparse_spmv;

use simt::LaunchReport;

/// Result of a baseline SpMV run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// The output vector.
    pub y: Vec<f32>,
    /// Simulated report (accumulated over all kernels of the algorithm).
    pub report: LaunchReport,
    /// Which internal kernel path ran (for diagnostics/CSVs).
    pub path: &'static str,
}
