//! CUB-style hardwired merge-path SpMV (Sidebar 1 / §6.1's comparator).
//!
//! This is deliberately *not* built on the `loops` abstraction: the
//! diagonal search, the merge consumption loop, and the SpMV computation
//! are fused into one kernel body — structurally the CUB implementation
//! the paper measures against (1,100 LoC across 4 files in the original;
//! the kernel-contributing region here is delimited with LOC markers for
//! the Table 1 harness).
//!
//! Two modelling notes, per DESIGN.md:
//!
//! * CUB resolves rows that straddle thread boundaries with a per-thread
//!   carry-out plus a separate segmented-fixup kernel; the paper's Figure 2
//!   shows that pipeline matching the framework's single kernel almost
//!   exactly, i.e. the extra kernel's cost is in the measurement noise. We
//!   therefore model the fixup as an in-kernel atomic combine of the
//!   carry-out (same traffic, same atomic cost, no second launch) so the
//!   comparison isolates what Figure 2 is about: the abstraction's
//!   per-iteration range overhead, which this fused kernel never pays
//!   ([`CostModel::fused`]).
//! * CUB's single-column heuristic is reproduced exactly: a sparse-vector
//!   matrix skips merge-path for a plain thread-mapped kernel with zero
//!   scheduling overhead — the one regime where CUB beats the framework.

use crate::BaselineRun;
use simt::{CostModel, GlobalMem, GpuSpec, LaunchConfig, LaunchReport};
use sparse::Csr;

/// Merge items per thread (CUB's V100 tuning; matches the framework's
/// merge-path so Figure 2 isolates abstraction overhead).
pub const ITEMS_PER_THREAD: usize = 7;

/// Threads per block.
pub const BLOCK: u32 = 256;

/// CUB-like SpMV: merge-path + carry-out fixup, or the thread-mapped fast
/// path for single-column matrices.
pub fn cub_spmv(spec: &GpuSpec, a: &Csr<f32>, x: &[f32]) -> simt::Result<BaselineRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let model = CostModel::fused();
    if a.cols() == 1 {
        return thread_mapped_spvv(spec, &model, a, x);
    }
    merge_path_fused(spec, &model, a, x)
}

// LOC-BEGIN(cub_merge_path)
/// The fused merge-path kernel with inline carry-out fixup.
fn merge_path_fused(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
) -> simt::Result<BaselineRun> {
    let rows = a.rows();
    let nnz = a.nnz();
    let total = rows + nnz;
    let num_threads = total.div_ceil(ITEMS_PER_THREAD).max(1);
    let offsets = a.row_offsets();
    let (values, col_indices) = (a.values(), a.col_indices());

    let mut y = vec![0.0f32; rows];
    let cfg = LaunchConfig::over_threads(num_threads as u64, BLOCK);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, model, cfg, |t| {
            let tid = t.global_thread_id() as usize;
            let d0 = (tid * ITEMS_PER_THREAD).min(total);
            let d1 = (d0 + ITEMS_PER_THREAD).min(total);
            if d0 >= d1 {
                return;
            }
            // Diagonal binary searches for the start and end coordinates.
            let (mut row, mut nz) = diagonal_search(offsets, rows, nnz, d0);
            let (row_end, nz_end) = diagonal_search(offsets, rows, nnz, d1);
            // CUB's two-level partition: a tiny global search per block
            // plus per-thread searches of the block tile in shared memory.
            t.charge(t.model().merge_setup(BLOCK as u64 * ITEMS_PER_THREAD as u64));
            // Fused merge consumption: alternate atoms and row boundaries.
            let started_at_row_start = nz == offsets[row];
            let mut first_row = true;
            let mut sum = 0.0f32;
            while row < row_end {
                let end = offsets[row + 1];
                while nz < end {
                    t.charge_atom();
                    sum += values[nz] * x[col_indices[nz] as usize];
                    nz += 1;
                }
                t.charge_tile();
                if first_row && !started_at_row_start {
                    // Head fragment of a row another thread started.
                    gy.fetch_add(row, sum);
                    t.charge_atomic();
                } else {
                    gy.store(row, sum);
                    t.write_bytes(4);
                }
                first_row = false;
                sum = 0.0;
                row += 1;
            }
            // Trailing partial row: the carry-out, combined atomically
            // (CUB's segmented-fixup pass, folded in; see module docs).
            while nz < nz_end {
                t.charge_atom();
                sum += values[nz] * x[col_indices[nz] as usize];
                nz += 1;
            }
            if sum != 0.0 && row < rows {
                gy.fetch_add(row, sum);
                t.charge_atomic();
            }
        })?
    };
    Ok(BaselineRun {
        y,
        report,
        path: "cub-merge-path",
    })
}

/// CUB's 2-D diagonal search over (row boundaries, atoms).
fn diagonal_search(offsets: &[usize], rows: usize, nnz: usize, d: usize) -> (usize, usize) {
    let mut lo = d.saturating_sub(nnz);
    let mut hi = d.min(rows);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if offsets[mid + 1] <= d - 1 - mid {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, d - lo)
}
// LOC-END(cub_merge_path)

// LOC-BEGIN(cub_thread_mapped)
/// CUB's specialized single-column (sparse-vector) kernel: one row per
/// thread, no scheduling machinery at all.
fn thread_mapped_spvv(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
) -> simt::Result<BaselineRun> {
    let rows = a.rows();
    let offsets = a.row_offsets();
    let values = a.values();
    let mut y = vec![0.0f32; rows];
    let cfg = LaunchConfig::over_threads(rows.max(1) as u64, BLOCK);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, model, cfg, |t| {
            let mut row = t.global_thread_id() as usize;
            while row < rows {
                let mut sum = 0.0f32;
                for &v in &values[offsets[row]..offsets[row + 1]] {
                    t.charge_atom();
                    sum += v * x[0];
                }
                t.charge_tile();
                gy.store(row, sum);
                t.write_bytes(4);
                row += t.grid_size() as usize;
            }
        })?
    };
    Ok(BaselineRun {
        y,
        report,
        path: "cub-thread-mapped-spvv",
    })
}
// LOC-END(cub_thread_mapped)

/// Expose the merge-path kernel directly (no single-column heuristic), for
/// the Figure 2 overhead comparison on sparse vectors.
pub fn cub_merge_path_only(spec: &GpuSpec, a: &Csr<f32>, x: &[f32]) -> simt::Result<BaselineRun> {
    merge_path_fused(spec, &CostModel::fused(), a, x)
}

/// Accumulated-report helper used by tests.
pub fn total_elapsed(r: &LaunchReport) -> f64 {
    r.elapsed_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &Csr<f32>) {
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        let run = cub_spmv(&GpuSpec::v100(), a, &x).unwrap();
        for (i, (g, w)) in run.y.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 2e-3 * w.abs().max(1.0),
                "y[{i}] = {g}, want {w} ({})",
                run.path
            );
        }
    }

    #[test]
    fn matches_reference_on_varied_matrices() {
        check(&sparse::gen::uniform(300, 250, 3_000, 61));
        check(&sparse::gen::powerlaw(500, 500, 8_000, 1.8, 62));
        check(&sparse::gen::hub_rows(1_000, 1_000, 1, 900, 2, 63));
        check(&sparse::gen::banded(200, 3, 64));
        check(&Csr::<f32>::empty(5, 5));
    }

    #[test]
    fn single_column_takes_the_fast_path() {
        let a = sparse::gen::single_column(200_000, 120_000, 65);
        let x = vec![2.0f32];
        let run = cub_spmv(&GpuSpec::v100(), &a, &x).unwrap();
        assert_eq!(run.path, "cub-thread-mapped-spvv");
        check(&a);
        // And the fast path beats merge-path on this shape.
        let mp = cub_merge_path_only(&GpuSpec::v100(), &a, &x).unwrap();
        assert!(
            run.report.timing.compute_ms < mp.report.timing.compute_ms,
            "fast path {} vs merge-path {}",
            run.report.timing.compute_ms,
            mp.report.timing.compute_ms
        );
    }

    #[test]
    fn rows_spanning_many_threads_are_fixed_up_correctly() {
        // One row of 10k atoms: hundreds of carry-ins into one row.
        let a = sparse::gen::hub_rows(64, 20_000, 1, 10_000, 1, 67);
        check(&a);
    }

    #[test]
    fn fused_kernel_is_cheaper_than_framework_merge_path_on_compute() {
        // The whole point of Figure 2: the framework pays a small range
        // overhead the fused kernel does not.
        let spec = GpuSpec::v100();
        let a = sparse::gen::uniform(50_000, 50_000, 800_000, 68);
        let x = sparse::dense::test_vector(a.cols());
        let cub = cub_spmv(&spec, &a, &x).unwrap();
        let ours = kernels::spmv(&spec, &a, &x, loops::schedule::ScheduleKind::MergePath).unwrap();
        assert!(
            cub.report.timing.total_units <= ours.report.timing.total_units,
            "cub {} units vs framework {} units",
            cub.report.timing.total_units,
            ours.report.timing.total_units
        );
    }
}
