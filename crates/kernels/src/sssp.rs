//! Single-Source Shortest Path (paper §5.3, Listing 5).
//!
//! Frontier-based relaxation: each iteration expands the frontier's
//! incident edges under any load-balancing schedule, relaxes distances
//! with `atomicMin`, and collects improved vertices into the next
//! frontier — Listing 5's kernel with the schedule completely hidden
//! behind the abstraction, restructured to relax against a per-wave
//! snapshot so the launch is bitwise deterministic on the parallel host
//! backend (see the comment in [`sssp_with_model`]).

use crate::graph::{Frontier, Graph};
use crate::traversal::expand;
use loops::schedule::ScheduleKind;
use simt::{CostModel, GlobalMem, GpuSpec, LaunchReport};

/// Result of a simulated SSSP run.
#[derive(Debug, Clone)]
pub struct SsspRun {
    /// Distance from the source per vertex (`f32::INFINITY` if
    /// unreachable).
    pub dist: Vec<f32>,
    /// Traversal iterations until the frontier emptied.
    pub iterations: usize,
    /// Accumulated launch report over all iterations.
    pub report: LaunchReport,
}

/// Run SSSP from `src` with the given schedule.
pub fn sssp(
    spec: &GpuSpec,
    g: &Graph,
    src: usize,
    kind: ScheduleKind,
) -> simt::Result<SsspRun> {
    sssp_with_model(spec, &CostModel::standard(), g, src, kind)
}

/// [`sssp`] with an explicit cost model.
pub fn sssp_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    g: &Graph,
    src: usize,
    kind: ScheduleKind,
) -> simt::Result<SsspRun> {
    let n = g.num_vertices();
    assert!(src < n, "source out of range");
    let mut dist = vec![f32::INFINITY; n];
    dist[src] = 0.0;
    let mut frontier = Frontier::source(src);
    let mut iterations = 0usize;
    let mut total: Option<LaunchReport> = None;
    // Bellman-Ford bound: at most |V| rounds with non-negative weights.
    while !frontier.is_empty() && iterations <= n {
        let mut out_flags = vec![0u32; n];
        // Wave snapshot (Jacobi-style): each wave relaxes against the
        // distances at wave start. Listing 5 reads `gdist` mid-wave and
        // branches on `fetch_min`'s return, both of which depend on
        // which block relaxes a shared vertex first — harmless on one
        // host thread, order-sensitive on many. The snapshot makes every
        // candidate, frontier flag, and write charge a pure function of
        // wave-start state; the atomic's *final* value is an exact f32
        // min, so the launch is bitwise identical on any host backend. A
        // vertex is flagged iff some candidate beats its wave-start
        // distance, i.e. iff its distance dropped this wave — the same
        // frontier Listing 5 builds, reached in at most |V| waves by the
        // usual Bellman-Ford argument.
        let dist_before = dist.clone();
        let report = {
            let gdist = GlobalMem::new(&mut dist);
            let gout = GlobalMem::new(&mut out_flags);
            expand(spec, model, g, &frontier, kind, |lane, edge, source| {
                let neighbor = g.neighbor(edge);
                let weight = g.edge_weight(edge);
                let neighbor_dist = dist_before[source] + weight;
                // Claim the destination as a child if we improve it.
                gdist.fetch_min(neighbor, neighbor_dist);
                lane.charge_atomic();
                if neighbor_dist < dist_before[neighbor] {
                    gout.store(neighbor, 1);
                    lane.write_bytes(4);
                }
            })?
        };
        match &mut total {
            Some(t) => t.accumulate(&report),
            None => total = Some(report),
        }
        frontier = Frontier::from_flags(&out_flags);
        iterations += 1;
    }
    Ok(SsspRun {
        dist,
        iterations,
        report: total.expect("at least one iteration runs"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sssp_ref;

    fn check(g: &Graph, src: usize, kind: ScheduleKind) {
        let spec = GpuSpec::test_tiny();
        let run = sssp(&spec, g, src, kind).unwrap();
        let want = sssp_ref(g.adjacency(), src);
        for (v, (got, want)) in run.dist.iter().zip(&want).enumerate() {
            if want.is_infinite() {
                assert!(got.is_infinite(), "{kind}: vertex {v} should be unreachable");
            } else {
                assert!(
                    (got - want).abs() < 1e-4 * want.max(1.0),
                    "{kind}: dist[{v}] = {got}, want {want}"
                );
            }
        }
        assert!(run.iterations >= 1);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs_under_every_schedule() {
        let g = Graph::from_generator(sparse::gen::uniform(200, 200, 1_600, 21));
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::WorkQueue(8),
        ] {
            check(&g, 0, kind);
        }
    }

    #[test]
    fn matches_dijkstra_on_power_law_graph() {
        let g = Graph::from_generator(sparse::gen::powerlaw(400, 400, 4_000, 1.8, 22));
        check(&g, 3, ScheduleKind::MergePath);
        check(&g, 3, ScheduleKind::WarpMapped);
    }

    #[test]
    fn disconnected_vertices_stay_infinite() {
        // Two components: 0→1, 2→3.
        let adj = sparse::Csr::from_triplets(
            4,
            4,
            vec![(0u32, 1u32, 2.0f32), (2, 3, 1.0)],
        )
        .unwrap();
        let g = Graph::new(adj);
        let run = sssp(&GpuSpec::test_tiny(), &g, 0, ScheduleKind::ThreadMapped).unwrap();
        assert_eq!(run.dist[0], 0.0);
        assert_eq!(run.dist[1], 2.0);
        assert!(run.dist[2].is_infinite());
        assert!(run.dist[3].is_infinite());
    }

    #[test]
    fn report_accumulates_across_iterations() {
        let g = Graph::from_generator(sparse::gen::banded(64, 1, 23));
        let run = sssp(&GpuSpec::test_tiny(), &g, 0, ScheduleKind::ThreadMapped).unwrap();
        // A band graph from vertex 0 needs many frontier waves.
        assert!(run.iterations > 10, "iterations = {}", run.iterations);
        assert!(run.report.elapsed_ms() > run.iterations as f64 * 0.0005);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_bounds_checked() {
        let g = Graph::from_generator(sparse::gen::uniform(10, 10, 30, 2));
        let _ = sssp(&GpuSpec::test_tiny(), &g, 10, ScheduleKind::ThreadMapped);
    }
}
