//! Breadth-First Search on the load-balanced traversal kernel (§5.3).
//!
//! Identical engine to SSSP — only the relaxation differs: hop depths
//! instead of weighted distances, `atomicMin` on `u32`. Built, like the
//! paper's BFS, on the neighborhood-traversal kernel rather than its own
//! bespoke scheduler.

use crate::graph::{Frontier, Graph};
use crate::traversal::expand;
use loops::schedule::ScheduleKind;
use simt::{CostModel, GlobalMem, GpuSpec, LaunchReport};

/// Result of a simulated BFS run.
#[derive(Debug, Clone)]
pub struct BfsRun {
    /// Hop distance from the source per vertex (`u32::MAX` if
    /// unreachable).
    pub depth: Vec<u32>,
    /// Traversal iterations (levels) until the frontier emptied.
    pub iterations: usize,
    /// Accumulated launch report over all levels.
    pub report: LaunchReport,
}

/// Run BFS from `src` with the given schedule.
pub fn bfs(spec: &GpuSpec, g: &Graph, src: usize, kind: ScheduleKind) -> simt::Result<BfsRun> {
    bfs_with_model(spec, &CostModel::standard(), g, src, kind)
}

/// [`bfs`] with an explicit cost model.
pub fn bfs_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    g: &Graph,
    src: usize,
    kind: ScheduleKind,
) -> simt::Result<BfsRun> {
    let n = g.num_vertices();
    assert!(src < n, "source out of range");
    let mut depth = vec![u32::MAX; n];
    depth[src] = 0;
    let mut frontier = Frontier::source(src);
    let mut level = 0u32;
    let mut total: Option<LaunchReport> = None;
    while !frontier.is_empty() && (level as usize) <= n {
        let next = level + 1;
        let mut out_flags = vec![0u32; n];
        // Wave snapshot: the frontier decision compares against the
        // depths at wave start, not `fetch_min`'s return. The return
        // value depends on which block relaxes a shared neighbor first —
        // the one cross-block ordering in the kernel — while the
        // snapshot (and the atomic's *final* value, an exact integer
        // min) is order-free, keeping results and charges bitwise
        // identical on the parallel host backend.
        let depth_before = depth.clone();
        let report = {
            let gdepth = GlobalMem::new(&mut depth);
            let gout = GlobalMem::new(&mut out_flags);
            expand(spec, model, g, &frontier, kind, |lane, edge, _src| {
                let neighbor = g.neighbor(edge);
                gdepth.fetch_min(neighbor, next);
                lane.charge_atomic();
                if depth_before[neighbor] > next {
                    gout.store(neighbor, 1);
                    lane.write_bytes(4);
                }
            })?
        };
        match &mut total {
            Some(t) => t.accumulate(&report),
            None => total = Some(report),
        }
        frontier = Frontier::from_flags(&out_flags);
        level = next;
    }
    Ok(BfsRun {
        depth,
        iterations: level as usize,
        report: total.expect("at least one level runs"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bfs_ref;

    fn check(g: &Graph, src: usize, kind: ScheduleKind) {
        let run = bfs(&GpuSpec::test_tiny(), g, src, kind).unwrap();
        let want = bfs_ref(g.adjacency(), src);
        assert_eq!(run.depth, want, "{kind}");
    }

    #[test]
    fn matches_reference_under_every_schedule() {
        let g = Graph::from_generator(sparse::gen::rmat(8, 6, (0.57, 0.19, 0.19), 31));
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::WorkQueue(8),
            ScheduleKind::Lrb,
        ] {
            check(&g, 0, kind);
        }
    }

    #[test]
    fn long_chain_needs_one_level_per_hop() {
        // Directed chain 0→1→2→…: band(bw=1) includes both directions;
        // depth[i] == i / 1 steps outward.
        let g = Graph::from_generator(sparse::gen::banded(50, 1, 32));
        let run = bfs(&GpuSpec::test_tiny(), &g, 0, ScheduleKind::ThreadMapped).unwrap();
        assert_eq!(run.depth[49], 49);
        assert_eq!(run.iterations, 50);
    }

    #[test]
    fn unreachable_vertices_stay_max() {
        let adj =
            sparse::Csr::from_triplets(3, 3, vec![(0u32, 1u32, 1.0f32)]).unwrap();
        let g = Graph::new(adj);
        let run = bfs(&GpuSpec::test_tiny(), &g, 0, ScheduleKind::MergePath).unwrap();
        assert_eq!(run.depth, vec![0, 1, u32::MAX]);
    }

    #[test]
    fn bfs_depth_lower_bounds_weighted_sssp_hops() {
        // Sanity relation: on a graph with all weights ≥ 0.1 the weighted
        // distance is ≥ 0.1 × hop count.
        let g = Graph::from_generator(sparse::gen::uniform(150, 150, 1_200, 33));
        let b = bfs(&GpuSpec::test_tiny(), &g, 5, ScheduleKind::WarpMapped).unwrap();
        let s = crate::sssp::sssp(&GpuSpec::test_tiny(), &g, 5, ScheduleKind::WarpMapped).unwrap();
        for v in 0..150 {
            if b.depth[v] != u32::MAX {
                assert!(s.dist[v] >= 0.1 * b.depth[v] as f32 - 1e-4);
            }
        }
    }
}
