//! Load-balanced SpMV — the paper's benchmark application (Listing 3).
//!
//! `y = A·x` with the computation written **once**, as a
//! [`TileExec`], and every schedule provided by the engine
//! ([`loops::dispatch::BalancedLaunch`]) — the "single enum identifier"
//! switch of §6.2 with zero per-kernel schedule code. Every variant runs
//! on the simulator, charges the framework's range overheads, and
//! returns both the result vector and the launch's timing report.

use loops::adapters::CsrTiles;
use loops::dispatch::{span_atoms, BalancedLaunch, TileExec};
pub use loops::dispatch::{DEFAULT_BLOCK, MERGE_ITEMS_PER_THREAD};
use loops::schedule::{ScheduleKind, TileSpan};
use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx, LaunchConfig, LaunchReport};
use sparse::Csr;

/// Result of one simulated SpMV.
#[derive(Debug, Clone)]
pub struct SpmvRun {
    /// The output vector `y`.
    pub y: Vec<f32>,
    /// Simulated launch report (use `report.elapsed_ms()`).
    pub report: LaunchReport,
    /// Which schedule actually ran (after any clamping).
    pub schedule: ScheduleKind,
}

/// The SpMV computation, written once for all schedules: a flat span
/// accumulates locally and either stores (complete tile) or combines
/// through `atomicAdd` (partial merge-path tile — the framework-level
/// equivalent of CUB's carry-out/fixup pass); cooperative schedules
/// compute one product per atom and store each tile's segment-reduced
/// sum exactly once.
struct SpmvExec<'a> {
    values: &'a [f32],
    col_indices: &'a [u32],
    x: &'a [f32],
    y: GlobalMem<'a, f32>,
}

impl TileExec for SpmvExec<'_> {
    const COOPERATIVE_REDUCE: bool = true;

    fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
        let mut sum = 0.0f32;
        for nz in span_atoms(span, lane) {
            sum += self.values[nz] * self.x[self.col_indices[nz] as usize];
        }
        if span.complete {
            self.y.store(span.tile, sum);
            lane.write_bytes(4);
        } else if !span.atoms.is_empty() {
            self.y.fetch_add(span.tile, sum);
            lane.charge_atomic();
        }
    }

    fn atom_value(&self, _lane: &LaneCtx<'_>, _tile: usize, nz: usize) -> f32 {
        self.values[nz] * self.x[self.col_indices[nz] as usize]
    }

    fn tile_done(&self, lane: &LaneCtx<'_>, tile: usize, sum: f32) {
        self.y.store(tile, sum);
        lane.write_bytes(4);
    }
}

/// Run SpMV with the given schedule and the standard cost model.
pub fn spmv(
    spec: &GpuSpec,
    a: &Csr<f32>,
    x: &[f32],
    kind: ScheduleKind,
) -> simt::Result<SpmvRun> {
    spmv_with_model(spec, &CostModel::standard(), a, x, kind, DEFAULT_BLOCK)
}

/// Run SpMV with full control over cost model and block size.
pub fn spmv_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    kind: ScheduleKind,
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let work = CsrTiles::new(a);
    let mut y = vec![0.0f32; a.rows()];
    let d = {
        let exec = SpmvExec {
            values: a.values(),
            col_indices: a.col_indices(),
            x,
            y: GlobalMem::new(&mut y),
        };
        BalancedLaunch::new(spec, model, &work)
            .block_dim(block_dim)
            .run(kind, &exec)?
    };
    Ok(SpmvRun {
        y,
        report: d.report,
        schedule: d.schedule,
    })
}

/// Run SpMV with a prepared [`plan`](crate::plan::SpmvPlan): the schedule
/// choice and any setup artifacts (merge-path partition table, LRB bins)
/// come from the plan, so a cached plan skips the setup work a cold launch
/// pays. Results are bitwise identical to the cold path for the same
/// schedule — the plan changes *when* work is found, never *what order*
/// each row's products accumulate in.
pub fn spmv_with_plan(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    plan: &crate::plan::SpmvPlan,
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let work = CsrTiles::new(a);
    let mut y = vec![0.0f32; a.rows()];
    let d = {
        let exec = SpmvExec {
            values: a.values(),
            col_indices: a.col_indices(),
            x,
            y: GlobalMem::new(&mut y),
        };
        BalancedLaunch::new(spec, model, &work)
            .block_dim(plan.block_dim)
            .run_planned(plan, &exec)?
    };
    Ok(SpmvRun {
        y,
        report: d.report,
        schedule: d.schedule,
    })
}

/// SpMV restricted to a contiguous row span, without materializing a
/// sub-matrix: the engine runs on a rebased
/// [`RowSpanTiles`](loops::work::RowSpanTiles) view of the original row
/// offsets, and the value/column arrays are sliced by the span's atom
/// base. `y` has `rows.len()` entries — the shard's contiguous slice of
/// the global result.
///
/// Bitwise contract: for any schedule, the result is identical to
/// running the same schedule on `a.row_slice(rows)` (the geometries are
/// equal, so the engine makes identical decisions). For *flat-span*
/// schedules (thread-mapped, work-queue) it is furthermore identical to
/// the matching slice of a full-matrix run, because each row is one
/// complete span whose products fold left-to-right in atom order
/// regardless of which lane owns the row. Merge-path (partition-relative
/// partial spans combined by `atomicAdd`) and the cooperative-reduce
/// schedules (lane partials interleaved in batch-relative order) do not
/// decompose bitwise, so sharded execution coerces them to a flat-span
/// schedule (see `runtime::split::decomposable`).
pub fn spmv_rows(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    rows: std::ops::Range<usize>,
    x: &[f32],
    kind: ScheduleKind,
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    assert!(rows.end <= a.rows(), "row span out of bounds");
    let work = loops::work::RowSpanTiles::new(a.row_offsets(), rows.clone());
    let base = work.atom_base();
    let end = base + loops::work::TileSet::num_atoms(&work);
    let mut y = vec![0.0f32; rows.len()];
    let d = {
        let exec = SpmvExec {
            values: &a.values()[base..end],
            col_indices: &a.col_indices()[base..end],
            x,
            y: GlobalMem::new(&mut y),
        };
        BalancedLaunch::new(spec, model, &work)
            .block_dim(block_dim)
            .run(kind, &exec)?
    };
    Ok(SpmvRun {
        y,
        report: d.report,
        schedule: d.schedule,
    })
}

/// SpMV over the ELL format: thread-mapped on a *perfectly regular* tile
/// set (the format itself is the load balancer — §7's "already-load-
/// balanced formats"). Padded slots are skipped at consumption time but
/// still cost their slot's work: the price of padding, measurable against
/// the scheduling-based answers.
pub fn spmv_ell(
    spec: &GpuSpec,
    e: &sparse::Ell<f32>,
    x: &[f32],
) -> simt::Result<SpmvRun> {
    use loops::adapters::EllTiles;

    /// Flat-span ELL body: like CSR's but PAD-aware.
    struct EllExec<'a> {
        values: &'a [f32],
        col_indices: &'a [u32],
        x: &'a [f32],
        y: GlobalMem<'a, f32>,
    }
    impl TileExec for EllExec<'_> {
        const COOPERATIVE_REDUCE: bool = false;
        fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
            let mut sum = 0.0f32;
            for slot in span_atoms(span, lane) {
                let c = self.col_indices[slot];
                if c != sparse::ell::PAD {
                    sum += self.values[slot] * self.x[c as usize];
                }
            }
            self.y.store(span.tile, sum);
            lane.write_bytes(4);
        }
    }

    assert_eq!(x.len(), e.cols(), "x must have one entry per column");
    let model = CostModel::standard();
    let work = EllTiles::new(e);
    let mut y = vec![0.0f32; e.rows()];
    let d = {
        let exec = EllExec {
            values: e.values(),
            col_indices: e.col_indices(),
            x,
            y: GlobalMem::new(&mut y),
        };
        BalancedLaunch::new(spec, &model, &work).run(ScheduleKind::ThreadMapped, &exec)?
    };
    Ok(SpmvRun {
        y,
        report: d.report,
        schedule: d.schedule,
    })
}

/// SpMV over COO: one thread per stored entry, scattering into `y` with
/// `atomicAdd`. Perfectly balanced by construction — every atom is its own
/// tile — but every atom pays the atomic: the opposite end of the
/// balance/overhead trade from tile-based schedules, and the reason
/// formats like F-COO exist (§7). This is the one SpMV that bypasses the
/// engine: its per-entry scatter has no tile structure for a schedule to
/// balance.
pub fn spmv_coo(
    spec: &GpuSpec,
    a: &sparse::Coo<f32>,
    x: &[f32],
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let model = CostModel::standard();
    let mut y = vec![0.0f32; a.rows()];
    let (rows, cols, vals) = (a.row_indices(), a.col_indices(), a.values());
    let n = a.nnz();
    let block = DEFAULT_BLOCK.min(spec.max_threads_per_block);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(
            spec,
            &model,
            LaunchConfig::over_threads(n.max(1) as u64, block),
            |t| {
                let mut i = t.global_thread_id() as usize;
                while i < n {
                    t.charge_atom();
                    gy.fetch_add(rows[i] as usize, vals[i] * x[cols[i] as usize]);
                    t.charge_atomic();
                    i += t.grid_size() as usize;
                }
            },
        )?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::ThreadMapped,
    })
}

/// Maximum relative error between a simulated result and the reference.
pub fn max_rel_error(got: &[f32], want: &[f32]) -> f32 {
    assert_eq!(got.len(), want.len());
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_schedules(a: &Csr<f32>, spec: &GpuSpec) {
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::GroupMapped(3), // awkward size → clamped to a divisor
            ScheduleKind::WorkQueue(1),
            ScheduleKind::WorkQueue(16),
            ScheduleKind::Lrb,
        ] {
            let run = spmv(spec, a, &x, kind).unwrap();
            let err = max_rel_error(&run.y, &want);
            assert!(
                err < 2e-3,
                "{kind}: max rel error {err} on {}x{}",
                a.rows(),
                a.cols()
            );
            assert!(run.report.elapsed_ms() > 0.0);
        }
    }

    #[test]
    fn all_schedules_agree_with_reference_on_random_matrix() {
        let a = sparse::gen::uniform(500, 400, 6_000, 11);
        check_all_schedules(&a, &GpuSpec::v100());
    }

    #[test]
    fn all_schedules_handle_power_law_imbalance() {
        let a = sparse::gen::powerlaw(800, 800, 16_000, 1.8, 12);
        check_all_schedules(&a, &GpuSpec::v100());
    }

    #[test]
    fn all_schedules_handle_empty_rows_and_tiny_matrices() {
        let a = Csr::from_triplets(5, 5, vec![(0u32, 0u32, 1.0f32), (4, 4, 2.0)]).unwrap();
        check_all_schedules(&a, &GpuSpec::v100());
        let empty = Csr::<f32>::empty(3, 3);
        check_all_schedules(&empty, &GpuSpec::v100());
    }

    #[test]
    fn all_schedules_work_on_tiny_device_and_wide_warps() {
        let a = sparse::gen::uniform(100, 100, 1_000, 13);
        check_all_schedules(&a, &GpuSpec::test_tiny());
        check_all_schedules(&a, &GpuSpec::mi100());
    }

    #[test]
    fn merge_path_beats_thread_mapped_on_hub_matrix() {
        let spec = GpuSpec::v100();
        let a = sparse::gen::hub_rows(20_000, 20_000, 2, 20_000, 2, 14);
        let x = sparse::dense::test_vector(a.cols());
        let tm = spmv(&spec, &a, &x, ScheduleKind::ThreadMapped).unwrap();
        let mp = spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        assert!(
            mp.report.elapsed_ms() < tm.report.elapsed_ms() / 2.0,
            "merge-path {} ms vs thread-mapped {} ms",
            mp.report.elapsed_ms(),
            tm.report.elapsed_ms()
        );
    }

    #[test]
    fn thread_mapped_wins_on_tiny_regular_matrix() {
        // Tiny, perfectly regular: merge-path's setup cannot pay off.
        let spec = GpuSpec::v100();
        let a = sparse::gen::diagonal(64, 15);
        let x = sparse::dense::test_vector(64);
        let tm = spmv(&spec, &a, &x, ScheduleKind::ThreadMapped).unwrap();
        let mp = spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        assert!(tm.report.elapsed_ms() <= mp.report.elapsed_ms());
    }

    #[test]
    fn ell_spmv_matches_csr_reference() {
        let spec = GpuSpec::v100();
        let a = sparse::gen::banded(5_000, 4, 16);
        let e = sparse::Ell::from_csr(&a, 2.0).unwrap();
        let x = sparse::dense::test_vector(a.cols());
        let run = spmv_ell(&spec, &e, &x).unwrap();
        let err = max_rel_error(&run.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "err {err}");
    }

    #[test]
    fn ell_thread_mapped_is_regular_but_pays_for_padding() {
        let spec = GpuSpec::v100();
        // Skewed matrix: ELL pads every row to the max (512 vs 8).
        // (Row count divides the block size: a ragged tail block would
        // trip the latency-exposure term — see DESIGN.md's model notes.)
        let a = sparse::gen::hub_rows(20_480, 20_480, 64, 512, 8, 17);
        let e = sparse::Ell::from_csr(&a, 80.0).unwrap();
        let x = sparse::dense::test_vector(a.cols());
        let ell = spmv_ell(&spec, &e, &x).unwrap();
        let err = max_rel_error(&ell.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "err {err}");
        let csr_tm = spmv(&spec, &a, &x, ScheduleKind::ThreadMapped).unwrap();
        // The format pre-balances every row to the same slot count, so the
        // workload is regular by construction...
        assert!(ell.report.timing.sm_utilization > 0.5);
        // ...but the padding is real work: `slots` touched, not `nnz` —
        // the §7 trade between pre-balanced formats and active schedules.
        assert!(
            ell.report.timing.total_units > 5.0 * csr_tm.report.timing.total_units,
            "53x fill should dominate: ell {} vs csr {}",
            ell.report.timing.total_units,
            csr_tm.report.timing.total_units
        );
    }

    #[test]
    fn coo_scatter_matches_reference_and_pays_for_atomics() {
        let spec = GpuSpec::v100();
        let a = sparse::gen::powerlaw(5_000, 5_000, 80_000, 1.8, 18);
        let coo = sparse::convert::csr_to_coo(&a);
        let x = sparse::dense::test_vector(a.cols());
        let run = spmv_coo(&spec, &coo, &x).unwrap();
        let err = max_rel_error(&run.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "err {err}");
        // Balanced but atomic-bound: more issue work than merge-path.
        let mp = spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        assert!(run.report.timing.total_units > mp.report.timing.total_units);
        assert!(run.report.mem.atomic_ops as usize >= a.nnz());
    }

    #[test]
    fn row_span_spmv_is_bitwise_equal_to_the_row_slice_path() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(1_200, 1_200, 20_000, 1.7, 19);
        let x = sparse::dense::test_vector(a.cols());
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::GroupMapped(8),
            ScheduleKind::WorkQueue(4),
            ScheduleKind::Lrb,
        ] {
            for range in [0..400usize, 400..1_200, 777..777, 0..1_200] {
                let span =
                    spmv_rows(&spec, &model, &a, range.clone(), &x, kind, DEFAULT_BLOCK).unwrap();
                let sliced = a.row_slice(range.clone());
                let slice =
                    spmv_with_model(&spec, &model, &sliced, &x, kind, DEFAULT_BLOCK).unwrap();
                assert_eq!(span.y.len(), range.len());
                assert!(
                    span.y
                        .iter()
                        .zip(&slice.y)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kind} {range:?}: span vs row_slice bits differ"
                );
            }
        }
    }

    #[test]
    fn flat_span_row_spans_are_bitwise_decomposable() {
        // Flat-span schedules process every row as one complete span,
        // folding its products left-to-right in atom order — so a row
        // span's result equals the matching slice of the full-matrix
        // run bitwise. This is the invariant sharded serving merges on.
        // Cooperative-reduce schedules (warp/block/group-mapped)
        // interleave lane partials in batch-relative order and
        // merge-path splits rows across partial spans, so neither is
        // decomposable; `runtime::split` coerces them away.
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::rmat(10, 16, (0.55, 0.2, 0.2), 20);
        let x = sparse::dense::test_vector(a.cols());
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::WorkQueue(1),
            ScheduleKind::WorkQueue(8),
        ] {
            let full = spmv_with_model(&spec, &model, &a, &x, kind, DEFAULT_BLOCK).unwrap();
            for range in [0..300usize, 300..1_024] {
                let span =
                    spmv_rows(&spec, &model, &a, range.clone(), &x, kind, DEFAULT_BLOCK).unwrap();
                assert!(
                    span.y
                        .iter()
                        .zip(&full.y[range.clone()])
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kind} {range:?}: span bits differ from full-run slice"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one entry per column")]
    fn x_length_checked() {
        let a = sparse::gen::uniform(10, 10, 20, 1);
        let _ = spmv(&GpuSpec::v100(), &a, &[1.0; 3], ScheduleKind::MergePath);
    }
}
