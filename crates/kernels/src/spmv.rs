//! Load-balanced SpMV — the paper's benchmark application (Listing 3).
//!
//! `y = A·x` with the computation written once per schedule *shape*
//! (per-thread ranges vs cooperative batches) and the schedule chosen by a
//! [`ScheduleKind`] — the "single enum identifier" switch of §6.2. Every
//! variant runs on the simulator, charges the framework's range overheads,
//! and returns both the result vector and the launch's timing report.

use loops::adapters::CsrTiles;
use loops::schedule::{
    GroupMappedSchedule, MergePathSchedule, ScheduleKind, ThreadMappedSchedule,
};
use simt::{CostModel, GlobalMem, GpuSpec, LaunchConfig, LaunchReport};
use sparse::Csr;

/// Items per thread for merge-path, following CUB's V100 tuning.
pub const MERGE_ITEMS_PER_THREAD: usize = 7;

/// Default threads per block (the paper's Listing 3 uses 256).
pub const DEFAULT_BLOCK: u32 = 256;

/// Result of one simulated SpMV.
#[derive(Debug, Clone)]
pub struct SpmvRun {
    /// The output vector `y`.
    pub y: Vec<f32>,
    /// Simulated launch report (use `report.elapsed_ms()`).
    pub report: LaunchReport,
    /// Which schedule actually ran (after any clamping).
    pub schedule: ScheduleKind,
}

/// Run SpMV with the given schedule and the standard cost model.
pub fn spmv(
    spec: &GpuSpec,
    a: &Csr<f32>,
    x: &[f32],
    kind: ScheduleKind,
) -> simt::Result<SpmvRun> {
    spmv_with_model(spec, &CostModel::standard(), a, x, kind, DEFAULT_BLOCK)
}

/// Run SpMV with full control over cost model and block size.
pub fn spmv_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    kind: ScheduleKind,
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let block_dim = block_dim.min(spec.max_threads_per_block);
    match kind {
        ScheduleKind::ThreadMapped => thread_mapped(spec, model, a, x, block_dim),
        ScheduleKind::MergePath => merge_path(spec, model, a, x, block_dim, None),
        ScheduleKind::WarpMapped => group_mapped(spec, model, a, x, spec.warp_size, block_dim),
        ScheduleKind::BlockMapped => group_mapped(spec, model, a, x, block_dim, block_dim),
        ScheduleKind::GroupMapped(g) => group_mapped(spec, model, a, x, g, block_dim),
        ScheduleKind::WorkQueue(chunk) => work_queue(spec, model, a, x, chunk.max(1), block_dim),
        ScheduleKind::Lrb => lrb(spec, model, a, x, block_dim, None),
    }
}

/// Run SpMV with a prepared [`plan`](crate::plan::SpmvPlan): the schedule
/// choice and any setup artifacts (merge-path partition table, LRB bins)
/// come from the plan, so a cached plan skips the setup work a cold launch
/// pays. Results are bitwise identical to the cold path for the same
/// schedule — the plan changes *when* work is found, never *what order*
/// each row's products accumulate in.
pub fn spmv_with_plan(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    plan: &crate::plan::SpmvPlan,
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let block_dim = plan.block_dim.min(spec.max_threads_per_block);
    match plan.schedule {
        ScheduleKind::MergePath => {
            merge_path(spec, model, a, x, block_dim, plan.merge_starts.as_deref())
        }
        ScheduleKind::Lrb => lrb(spec, model, a, x, block_dim, plan.lrb.as_ref()),
        kind => spmv_with_model(spec, model, a, x, kind, block_dim),
    }
}

/// Logarithmic-Radix-Binning SpMV (§7 related work): a binning pass
/// groups rows by log2(length); tiny rows go thread-per-row, medium rows
/// warp-per-batch, huge rows block-per-batch — each class an ordinary
/// launch over a [`loops::work::SubsetTiles`] view.
fn lrb(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    block_dim: u32,
    cached: Option<&loops::schedule::LrbPlan>,
) -> simt::Result<SpmvRun> {
    use loops::schedule::{bin_of, GroupMappedSchedule, LrbSchedule};
    use loops::work::SubsetTiles;
    let work = CsrTiles::new(a);
    let cfg_sched = LrbSchedule {
        block_dim,
        ..LrbSchedule::default()
    };
    // A cached plan skips the binning launches entirely (the bins only
    // depend on the sparsity pattern, not on `x`); its cost was paid once
    // at prepare time.
    let owned;
    let (plan, mut report) = match cached {
        Some(p) => (p, None),
        None => {
            owned = cfg_sched.bin_tiles(spec, model, &work)?;
            let r = owned.binning_report.clone();
            (&owned, Some(r))
        }
    };
    let mut y = vec![0.0f32; a.rows()];
    let (values, col_indices) = (a.values(), a.col_indices());

    let small_hi = bin_of(cfg_sched.small_limit) + 1;
    let medium_hi = bin_of(cfg_sched.medium_limit) + 1;
    let class = |lo: usize, hi: usize| &plan.order[plan.bin_offsets[lo]..plan.bin_offsets[hi]];
    // Small rows: one per thread, plain local accumulation.
    let small = class(0, small_hi);
    if !small.is_empty() {
        let view = SubsetTiles::new(&work, small);
        let sched = ThreadMappedSchedule::new(&view);
        let gy = GlobalMem::new(&mut y);
        let r = simt::launch_threads_with_model(
            spec,
            model,
            LaunchConfig::over_threads(small.len() as u64, block_dim),
            |t| {
                for local in sched.tiles(t) {
                    let mut sum = 0.0f32;
                    for nz in sched.atoms(local, t) {
                        sum += values[nz] * x[col_indices[nz] as usize];
                    }
                    gy.store(view.global_tile(local), sum);
                    t.write_bytes(4);
                }
            },
        )?;
        match report {
            Some(ref mut rep) => rep.accumulate(&r),
            None => report = Some(r),
        }
    }
    // Medium/large rows: group-mapped batches with per-tile reduction.
    for (lo, hi, group) in [
        (small_hi, medium_hi, spec.warp_size),
        (medium_hi, loops::schedule::LRB_NUM_BINS, block_dim),
    ] {
        let tiles = class(lo, hi.max(lo));
        if tiles.is_empty() {
            continue;
        }
        let view = SubsetTiles::new(&work, tiles);
        let sched = GroupMappedSchedule::new(&view, group);
        let cfg = sched.launch_config(block_dim, spec.num_sms * 8);
        let gy = GlobalMem::new(&mut y);
        let r = simt::launch_groups_with_model(spec, model, cfg, group, |g| {
            sched.process_batches(
                g,
                |_lane, _local, nz| values[nz] * x[col_indices[nz] as usize],
                |lane, local, sum| {
                    gy.store(view.global_tile(local), sum);
                    lane.write_bytes(4);
                },
            );
        })?;
        match report {
            Some(ref mut rep) => rep.accumulate(&r),
            None => report = Some(r),
        }
    }
    let report = match report {
        Some(r) => r,
        // Fully empty matrix on the cached path: synthesize a minimal
        // launch so the run still carries a valid report.
        None => simt::launch_threads_with_model(
            spec,
            model,
            LaunchConfig::over_threads(1, block_dim),
            |_t| {},
        )?,
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::Lrb,
    })
}

/// Dynamic SpMV: persistent threads claim row chunks from a global atomic
/// queue (the dynamic half of the abstraction's schedule space).
fn work_queue(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    chunk: u32,
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    use loops::schedule::WorkQueueSchedule;
    let work = CsrTiles::new(a);
    let sched = WorkQueueSchedule::new(&work, chunk as usize);
    let mut y = vec![0.0f32; a.rows()];
    let (values, col_indices) = (a.values(), a.col_indices());
    let cfg = sched.launch_config(spec, block_dim);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, model, cfg, |t| {
            sched.process_tiles(t, |lane, row| {
                let mut sum = 0.0f32;
                for nz in sched.atoms(row, lane) {
                    sum += values[nz] * x[col_indices[nz] as usize];
                }
                gy.store(row, sum);
                lane.write_bytes(4);
            });
        })?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::WorkQueue(chunk),
    })
}

/// Listing 3: tile-per-thread SpMV.
fn thread_mapped(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    let work = CsrTiles::new(a);
    let sched = ThreadMappedSchedule::new(&work);
    let mut y = vec![0.0f32; a.rows()];
    let (values, col_indices) = (a.values(), a.col_indices());
    let cfg = LaunchConfig::over_threads(a.rows().max(1) as u64, block_dim);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, model, cfg, |t| {
            // Consume rows, then atoms, exactly as the paper's kernel.
            for row in sched.tiles(t) {
                let mut sum = 0.0f32;
                for nz in sched.atoms(row, t) {
                    sum += values[nz] * x[col_indices[nz] as usize];
                }
                gy.store(row, sum);
                t.write_bytes(4);
            }
        })?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::ThreadMapped,
    })
}

/// §5.2.1: merge-path SpMV. Complete tiles store directly; partial tiles
/// combine through `atomicAdd` (the framework-level equivalent of CUB's
/// carry-out/fixup pass).
fn merge_path(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    block_dim: u32,
    starts: Option<&[u32]>,
) -> simt::Result<SpmvRun> {
    let work = CsrTiles::new(a);
    let sched = MergePathSchedule::new(&work, MERGE_ITEMS_PER_THREAD);
    if let Some(s) = starts {
        assert_eq!(
            s.len(),
            sched.num_threads() + 1,
            "merge-path partition table does not match this matrix"
        );
    }
    let mut y = vec![0.0f32; a.rows()];
    let (values, col_indices) = (a.values(), a.col_indices());
    let cfg = sched.launch_config(block_dim);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, model, cfg, |t| {
            // With a precomputed partition table each thread loads its
            // span bounds instead of running two diagonal searches.
            let spans = match starts {
                Some(s) => sched.spans_prepartitioned(t, s),
                None => sched.spans(t),
            };
            for span in spans {
                let mut sum = 0.0f32;
                for nz in sched.atoms(&span, t) {
                    sum += values[nz] * x[col_indices[nz] as usize];
                }
                if span.complete {
                    gy.store(span.tile, sum);
                    t.write_bytes(4);
                } else if !span.atoms.is_empty() {
                    gy.fetch_add(span.tile, sum);
                    t.charge_atomic();
                }
            }
        })?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::MergePath,
    })
}

/// §5.2.2/§5.2.3: group-mapped SpMV (warp- and block-mapped are the same
/// code at fixed group sizes — the "free" rows of Table 1).
fn group_mapped(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    group_size: u32,
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    // A group cannot exceed its block and must tile it evenly.
    let group_size = group_size.clamp(1, block_dim);
    let group_size = largest_divisor_leq(block_dim, group_size);
    let work = CsrTiles::new(a);
    let sched = GroupMappedSchedule::new(&work, group_size);
    let mut y = vec![0.0f32; a.rows()];
    let (values, col_indices) = (a.values(), a.col_indices());
    // Oversubscribe ~8 blocks per SM; rounds absorb the remainder.
    let cfg = sched.launch_config(block_dim, spec.num_sms * 8);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_groups_with_model(spec, model, cfg, group_size, |g| {
            sched.process_batches(
                g,
                |_lane, _tile, nz| values[nz] * x[col_indices[nz] as usize],
                |lane, tile, sum| {
                    gy.store(tile, sum);
                    lane.write_bytes(4);
                },
            );
        })?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::GroupMapped(group_size),
    })
}

/// SpMV over the ELL format: thread-mapped on a *perfectly regular* tile
/// set (the format itself is the load balancer — §7's "already-load-
/// balanced formats"). Padded slots are skipped at consumption time but
/// still cost their slot's work: the price of padding, measurable against
/// the scheduling-based answers.
pub fn spmv_ell(
    spec: &GpuSpec,
    e: &sparse::Ell<f32>,
    x: &[f32],
) -> simt::Result<SpmvRun> {
    use loops::adapters::EllTiles;
    assert_eq!(x.len(), e.cols(), "x must have one entry per column");
    let model = CostModel::standard();
    let work = EllTiles::new(e);
    let sched = ThreadMappedSchedule::new(&work);
    let mut y = vec![0.0f32; e.rows()];
    let (values, col_indices) = (e.values(), e.col_indices());
    let block = DEFAULT_BLOCK.min(spec.max_threads_per_block);
    let cfg = LaunchConfig::over_threads(e.rows().max(1) as u64, block);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(spec, &model, cfg, |t| {
            for row in sched.tiles(t) {
                let mut sum = 0.0f32;
                for slot in sched.atoms(row, t) {
                    let c = col_indices[slot];
                    if c != sparse::ell::PAD {
                        sum += values[slot] * x[c as usize];
                    }
                }
                gy.store(row, sum);
                t.write_bytes(4);
            }
        })?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::ThreadMapped,
    })
}

/// Largest divisor of `n` that is ≤ `k` (≥ 1). Keeps arbitrary group sizes
/// legal for any block size.
pub(crate) fn largest_divisor_leq(n: u32, k: u32) -> u32 {
    (1..=k.min(n)).rev().find(|&d| n.is_multiple_of(d)).unwrap_or(1)
}

/// SpMV over COO: one thread per stored entry, scattering into `y` with
/// `atomicAdd`. Perfectly balanced by construction — every atom is its own
/// tile — but every atom pays the atomic: the opposite end of the
/// balance/overhead trade from tile-based schedules, and the reason
/// formats like F-COO exist (§7).
pub fn spmv_coo(
    spec: &GpuSpec,
    a: &sparse::Coo<f32>,
    x: &[f32],
) -> simt::Result<SpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let model = CostModel::standard();
    let mut y = vec![0.0f32; a.rows()];
    let (rows, cols, vals) = (a.row_indices(), a.col_indices(), a.values());
    let n = a.nnz();
    let block = DEFAULT_BLOCK.min(spec.max_threads_per_block);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(
            spec,
            &model,
            LaunchConfig::over_threads(n.max(1) as u64, block),
            |t| {
                let mut i = t.global_thread_id() as usize;
                while i < n {
                    t.charge_atom();
                    gy.fetch_add(rows[i] as usize, vals[i] * x[cols[i] as usize]);
                    t.charge_atomic();
                    i += t.grid_size() as usize;
                }
            },
        )?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::ThreadMapped,
    })
}

/// Maximum relative error between a simulated result and the reference.
pub fn max_rel_error(got: &[f32], want: &[f32]) -> f32 {
    assert_eq!(got.len(), want.len());
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_schedules(a: &Csr<f32>, spec: &GpuSpec) {
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::GroupMapped(3), // awkward size → clamped to a divisor
            ScheduleKind::WorkQueue(1),
            ScheduleKind::WorkQueue(16),
            ScheduleKind::Lrb,
        ] {
            let run = spmv(spec, a, &x, kind).unwrap();
            let err = max_rel_error(&run.y, &want);
            assert!(
                err < 2e-3,
                "{kind}: max rel error {err} on {}x{}",
                a.rows(),
                a.cols()
            );
            assert!(run.report.elapsed_ms() > 0.0);
        }
    }

    #[test]
    fn all_schedules_agree_with_reference_on_random_matrix() {
        let a = sparse::gen::uniform(500, 400, 6_000, 11);
        check_all_schedules(&a, &GpuSpec::v100());
    }

    #[test]
    fn all_schedules_handle_power_law_imbalance() {
        let a = sparse::gen::powerlaw(800, 800, 16_000, 1.8, 12);
        check_all_schedules(&a, &GpuSpec::v100());
    }

    #[test]
    fn all_schedules_handle_empty_rows_and_tiny_matrices() {
        let a = Csr::from_triplets(5, 5, vec![(0u32, 0u32, 1.0f32), (4, 4, 2.0)]).unwrap();
        check_all_schedules(&a, &GpuSpec::v100());
        let empty = Csr::<f32>::empty(3, 3);
        check_all_schedules(&empty, &GpuSpec::v100());
    }

    #[test]
    fn all_schedules_work_on_tiny_device_and_wide_warps() {
        let a = sparse::gen::uniform(100, 100, 1_000, 13);
        check_all_schedules(&a, &GpuSpec::test_tiny());
        check_all_schedules(&a, &GpuSpec::mi100());
    }

    #[test]
    fn merge_path_beats_thread_mapped_on_hub_matrix() {
        let spec = GpuSpec::v100();
        let a = sparse::gen::hub_rows(20_000, 20_000, 2, 20_000, 2, 14);
        let x = sparse::dense::test_vector(a.cols());
        let tm = spmv(&spec, &a, &x, ScheduleKind::ThreadMapped).unwrap();
        let mp = spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        assert!(
            mp.report.elapsed_ms() < tm.report.elapsed_ms() / 2.0,
            "merge-path {} ms vs thread-mapped {} ms",
            mp.report.elapsed_ms(),
            tm.report.elapsed_ms()
        );
    }

    #[test]
    fn thread_mapped_wins_on_tiny_regular_matrix() {
        // Tiny, perfectly regular: merge-path's setup cannot pay off.
        let spec = GpuSpec::v100();
        let a = sparse::gen::diagonal(64, 15);
        let x = sparse::dense::test_vector(64);
        let tm = spmv(&spec, &a, &x, ScheduleKind::ThreadMapped).unwrap();
        let mp = spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        assert!(tm.report.elapsed_ms() <= mp.report.elapsed_ms());
    }

    #[test]
    fn ell_spmv_matches_csr_reference() {
        let spec = GpuSpec::v100();
        let a = sparse::gen::banded(5_000, 4, 16);
        let e = sparse::Ell::from_csr(&a, 2.0).unwrap();
        let x = sparse::dense::test_vector(a.cols());
        let run = spmv_ell(&spec, &e, &x).unwrap();
        let err = max_rel_error(&run.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "err {err}");
    }

    #[test]
    fn ell_thread_mapped_is_regular_but_pays_for_padding() {
        let spec = GpuSpec::v100();
        // Skewed matrix: ELL pads every row to the max (512 vs 8).
        // (Row count divides the block size: a ragged tail block would
        // trip the latency-exposure term — see DESIGN.md's model notes.)
        let a = sparse::gen::hub_rows(20_480, 20_480, 64, 512, 8, 17);
        let e = sparse::Ell::from_csr(&a, 80.0).unwrap();
        let x = sparse::dense::test_vector(a.cols());
        let ell = spmv_ell(&spec, &e, &x).unwrap();
        let err = max_rel_error(&ell.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "err {err}");
        let csr_tm = spmv(&spec, &a, &x, ScheduleKind::ThreadMapped).unwrap();
        // The format pre-balances every row to the same slot count, so the
        // workload is regular by construction...
        assert!(ell.report.timing.sm_utilization > 0.5);
        // ...but the padding is real work: `slots` touched, not `nnz` —
        // the §7 trade between pre-balanced formats and active schedules.
        assert!(
            ell.report.timing.total_units > 5.0 * csr_tm.report.timing.total_units,
            "53x fill should dominate: ell {} vs csr {}",
            ell.report.timing.total_units,
            csr_tm.report.timing.total_units
        );
    }

    #[test]
    fn coo_scatter_matches_reference_and_pays_for_atomics() {
        let spec = GpuSpec::v100();
        let a = sparse::gen::powerlaw(5_000, 5_000, 80_000, 1.8, 18);
        let coo = sparse::convert::csr_to_coo(&a);
        let x = sparse::dense::test_vector(a.cols());
        let run = spmv_coo(&spec, &coo, &x).unwrap();
        let err = max_rel_error(&run.y, &a.spmv_ref(&x));
        assert!(err < 2e-3, "err {err}");
        // Balanced but atomic-bound: more issue work than merge-path.
        let mp = spmv(&spec, &a, &x, ScheduleKind::MergePath).unwrap();
        assert!(run.report.timing.total_units > mp.report.timing.total_units);
        assert!(run.report.mem.atomic_ops as usize >= a.nnz());
    }

    #[test]
    fn largest_divisor_behaves() {
        assert_eq!(largest_divisor_leq(256, 32), 32);
        assert_eq!(largest_divisor_leq(256, 3), 2);
        assert_eq!(largest_divisor_leq(256, 1), 1);
        assert_eq!(largest_divisor_leq(96, 64), 48);
        assert_eq!(largest_divisor_leq(7, 7), 7);
    }

    #[test]
    #[should_panic(expected = "one entry per column")]
    fn x_length_checked() {
        let a = sparse::gen::uniform(10, 10, 20, 1);
        let _ = spmv(&GpuSpec::v100(), &a, &[1.0; 3], ScheduleKind::MergePath);
    }
}
