//! Prepared execution plans — the unit a serving runtime caches per
//! matrix.
//!
//! The plan type itself is the engine's kernel-agnostic
//! [`loops::dispatch::KernelPlan`] (re-exported here as [`SpmvPlan`] for
//! the benchmark code that grew up against SpMV): schedule choice, block
//! size, and the pattern-only setup artifacts (merge-path partition
//! table, LRB bins). This module keeps the CSR-flavoured conveniences —
//! [`prepare`] from a matrix, [`prepare_auto`] via the paper's §6.2
//! heuristic, and [`run`] to replay a plan against a vector.
//!
//! [`spmv::spmv_with_plan`] replays a plan against any `x`. Results are
//! **bitwise identical** to the cold path for the same schedule: artifacts
//! only change where work is *found*, never the order in which a row's
//! products are accumulated.

use loops::adapters::CsrTiles;
use loops::dispatch::BalancedLaunch;
use loops::heuristic::Heuristic;
use loops::schedule::ScheduleKind;
use simt::{CostModel, GpuSpec};
use sparse::Csr;

use crate::spmv::{self, SpmvRun, DEFAULT_BLOCK};

/// A prepared, pattern-specific execution plan (see
/// [`loops::dispatch::KernelPlan`]). The alias survives from when plans
/// were SpMV-only; the same type now serves every engine kernel.
pub type SpmvPlan = loops::dispatch::KernelPlan;

/// Prepare a plan for a fixed schedule.
pub fn prepare(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    kind: ScheduleKind,
    block_dim: u32,
) -> simt::Result<SpmvPlan> {
    let work = CsrTiles::new(a);
    BalancedLaunch::new(spec, model, &work)
        .block_dim(block_dim)
        .prepare(kind)
}

/// Prepare a plan with the schedule chosen by the paper's heuristic.
pub fn prepare_auto(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    heuristic: &Heuristic,
) -> simt::Result<SpmvPlan> {
    let kind = heuristic.select(a.rows(), a.cols(), a.nnz());
    prepare(spec, model, a, kind, DEFAULT_BLOCK)
}

/// Convenience: run a prepared plan (see [`spmv::spmv_with_plan`]).
pub fn run(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    x: &[f32],
    plan: &SpmvPlan,
) -> simt::Result<SpmvRun> {
    spmv::spmv_with_plan(spec, model, a, x, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_with_model;

    fn bits(y: &[f32]) -> Vec<u32> {
        y.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn planned_results_are_bitwise_identical_across_all_schedules() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        for a in [
            sparse::gen::uniform(300, 250, 4_000, 21),
            sparse::gen::powerlaw(600, 600, 12_000, 1.8, 22),
            Csr::<f32>::empty(4, 4),
        ] {
            let x = sparse::dense::test_vector(a.cols());
            for kind in [
                ScheduleKind::ThreadMapped,
                ScheduleKind::MergePath,
                ScheduleKind::WarpMapped,
                ScheduleKind::BlockMapped,
                ScheduleKind::GroupMapped(16),
                ScheduleKind::WorkQueue(8),
                ScheduleKind::Lrb,
            ] {
                let cold = spmv_with_model(&spec, &model, &a, &x, kind, DEFAULT_BLOCK).unwrap();
                let plan = prepare(&spec, &model, &a, kind, DEFAULT_BLOCK).unwrap();
                let warm = run(&spec, &model, &a, &x, &plan).unwrap();
                assert_eq!(
                    bits(&cold.y),
                    bits(&warm.y),
                    "{kind}: planned result differs from cold path"
                );
            }
        }
    }

    #[test]
    fn cached_merge_path_plan_skips_search_cost() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(5_000, 5_000, 120_000, 1.9, 23);
        let x = sparse::dense::test_vector(a.cols());
        let cold =
            spmv_with_model(&spec, &model, &a, &x, ScheduleKind::MergePath, DEFAULT_BLOCK).unwrap();
        let plan = prepare(&spec, &model, &a, ScheduleKind::MergePath, DEFAULT_BLOCK).unwrap();
        let warm = run(&spec, &model, &a, &x, &plan).unwrap();
        assert!(
            warm.report.timing.total_units < cold.report.timing.total_units,
            "prepartitioned launch should issue less work: warm {} vs cold {}",
            warm.report.timing.total_units,
            cold.report.timing.total_units
        );
        assert!(warm.report.elapsed_ms() <= cold.report.elapsed_ms());
    }

    #[test]
    fn cached_lrb_plan_skips_binning_launches() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(3_000, 3_000, 60_000, 1.8, 24);
        let x = sparse::dense::test_vector(a.cols());
        let cold = spmv_with_model(&spec, &model, &a, &x, ScheduleKind::Lrb, DEFAULT_BLOCK).unwrap();
        let plan = prepare(&spec, &model, &a, ScheduleKind::Lrb, DEFAULT_BLOCK).unwrap();
        assert!(plan.setup_ms > 0.0);
        let warm = run(&spec, &model, &a, &x, &plan).unwrap();
        assert_eq!(bits(&cold.y), bits(&warm.y));
        // Cold pays the binning inside its report; warm paid it once at
        // prepare time.
        assert!(
            warm.report.elapsed_ms() < cold.report.elapsed_ms(),
            "warm {} vs cold {}",
            warm.report.elapsed_ms(),
            cold.report.elapsed_ms()
        );
        assert!(cold.report.elapsed_ms() >= warm.report.elapsed_ms() + 0.5 * plan.setup_ms);
    }

    #[test]
    fn auto_prepare_follows_heuristic() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let h = Heuristic::paper();
        let small = sparse::gen::uniform(100, 100, 800, 25);
        let plan = prepare_auto(&spec, &model, &small, &h).unwrap();
        assert_eq!(plan.schedule, ScheduleKind::GroupMapped(32));
        assert!(plan.merge_starts.is_none() && plan.lrb.is_none());
        let big = sparse::gen::uniform(2_000, 2_000, 40_000, 26);
        let plan = prepare_auto(&spec, &model, &big, &h).unwrap();
        assert_eq!(plan.schedule, ScheduleKind::MergePath);
        assert!(plan.merge_starts.is_some());
        assert!(plan.artifact_bytes() > 0);
    }
}
