//! Sparse-Matrix × Dense-Matrix multiplication (paper §5.3, Listing 4).
//!
//! "A simple loop wrapped around SpMV": the kernel body is Listing 3 plus
//! one loop over the columns of `B` — and because the schedule is
//! decoupled, the *same* merge-path/thread-mapped machinery balances it
//! (the rewrite Yang et al. had to do by hand, for free).

use loops::adapters::CsrTiles;
use loops::ranges::step_range;
use loops::schedule::{MergePathSchedule, ScheduleKind, ThreadMappedSchedule};
use simt::{CostModel, GlobalMem, GpuSpec, LaunchConfig, LaunchReport};
use sparse::{Csr, DenseMatrix};

/// Result of one simulated SpMM.
#[derive(Debug, Clone)]
pub struct SpmmRun {
    /// The dense output `C = A·B`.
    pub c: DenseMatrix<f32>,
    /// Simulated launch report.
    pub report: LaunchReport,
}

/// Run SpMM with the given schedule (thread-mapped or merge-path; the
/// cooperative schedules reduce by tile and are exposed through SpMV).
pub fn spmm(
    spec: &GpuSpec,
    a: &Csr<f32>,
    b: &DenseMatrix<f32>,
    kind: ScheduleKind,
) -> simt::Result<SpmmRun> {
    spmm_with_model(spec, &CostModel::standard(), a, b, kind)
}

/// [`spmm`] with an explicit cost model.
pub fn spmm_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    b: &DenseMatrix<f32>,
    kind: ScheduleKind,
) -> simt::Result<SpmmRun> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let block = crate::spmv::DEFAULT_BLOCK.min(spec.max_threads_per_block);
    let work = CsrTiles::new(a);
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let (values, col_indices) = (a.values(), a.col_indices());
    let n_cols = b.cols();
    let report = {
        let gc = GlobalMem::new(c.as_mut_slice());
        match kind {
            ScheduleKind::MergePath => {
                let sched = MergePathSchedule::new(&work, crate::spmv::MERGE_ITEMS_PER_THREAD);
                let cfg = sched.launch_config(block);
                simt::launch_threads_with_model(spec, model, cfg, |t| {
                    for span in sched.spans(t) {
                        // Listing 4: the new loop over B's columns.
                        for col in step_range(0, n_cols, 1) {
                            let mut sum = 0.0f32;
                            for nz in sched.atoms(&span, t) {
                                sum += values[nz]
                                    * b.get(col_indices[nz] as usize, col);
                            }
                            let out = span.tile * n_cols + col;
                            if span.complete {
                                gc.store(out, sum);
                                t.write_bytes(4);
                            } else if !span.atoms.is_empty() {
                                gc.fetch_add(out, sum);
                                t.charge_atomic();
                            }
                        }
                    }
                })?
            }
            _ => {
                // Thread-mapped is the default for everything else; the
                // paper's Listing 4 is written against it.
                let sched = ThreadMappedSchedule::new(&work);
                let cfg = LaunchConfig::over_threads(a.rows().max(1) as u64, block);
                simt::launch_threads_with_model(spec, model, cfg, |t| {
                    for row in sched.tiles(t) {
                        for col in step_range(0, n_cols, 1) {
                            let mut sum = 0.0f32;
                            for nz in sched.atoms(row, t) {
                                sum += values[nz]
                                    * b.get(col_indices[nz] as usize, col);
                            }
                            gc.store(row * n_cols + col, sum);
                            t.write_bytes(4);
                        }
                    }
                })?
            }
        }
    };
    Ok(SpmmRun { c, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spmm_ref;

    fn check(a: &Csr<f32>, b: &DenseMatrix<f32>, kind: ScheduleKind) {
        let run = spmm(&GpuSpec::test_tiny(), a, b, kind).unwrap();
        let want = spmm_ref(a, b);
        for r in 0..a.rows() {
            for j in 0..b.cols() {
                let (g, w) = (run.c.get(r, j), want.get(r, j));
                assert!(
                    (g - w).abs() < 1e-3 * w.abs().max(1.0),
                    "{kind}: C[{r},{j}] = {g}, want {w}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_with_both_schedules() {
        let a = sparse::gen::uniform(60, 50, 500, 41);
        let b = DenseMatrix::from_fn(50, 7, |r, c| ((r + 2 * c) as f32).sin());
        check(&a, &b, ScheduleKind::ThreadMapped);
        check(&a, &b, ScheduleKind::MergePath);
    }

    #[test]
    fn power_law_rows_still_correct_under_merge_path() {
        let a = sparse::gen::powerlaw(120, 100, 2_000, 1.8, 42);
        let b = DenseMatrix::from_fn(100, 3, |r, c| 0.01 * (r as f32) - 0.5 * (c as f32));
        check(&a, &b, ScheduleKind::MergePath);
    }

    #[test]
    fn single_column_b_degenerates_to_spmv() {
        let a = sparse::gen::uniform(80, 70, 600, 43);
        let x = sparse::dense::test_vector(70);
        let b = DenseMatrix::from_vec(70, 1, x.clone());
        let run = spmm(&GpuSpec::test_tiny(), &a, &b, ScheduleKind::MergePath).unwrap();
        let want = a.spmv_ref(&x);
        for (r, &wr) in want.iter().enumerate() {
            assert!((run.c.get(r, 0) - wr).abs() < 1e-3);
        }
    }

    #[test]
    fn spmm_costs_scale_with_b_columns() {
        let a = sparse::gen::uniform(200, 200, 3_000, 44);
        let b1 = DenseMatrix::<f32>::zeros(200, 1);
        let b8 = DenseMatrix::<f32>::zeros(200, 8);
        let r1 = spmm(&GpuSpec::v100(), &a, &b1, ScheduleKind::ThreadMapped).unwrap();
        let r8 = spmm(&GpuSpec::v100(), &a, &b8, ScheduleKind::ThreadMapped).unwrap();
        assert!(r8.report.timing.total_units > 4.0 * r1.report.timing.total_units);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = sparse::gen::uniform(10, 10, 20, 1);
        let b = DenseMatrix::<f32>::zeros(11, 2);
        let _ = spmm(&GpuSpec::test_tiny(), &a, &b, ScheduleKind::ThreadMapped);
    }
}
