//! Sparse-Matrix × Dense-Matrix multiplication (paper §5.3, Listing 4).
//!
//! "A simple loop wrapped around SpMV": the kernel body is Listing 3 plus
//! one loop over the columns of `B` — and because the schedule is
//! decoupled, the *same* merge-path/thread-mapped machinery balances it
//! (the rewrite Yang et al. had to do by hand, for free). The body is a
//! flat-span [`TileExec`] dispatched through the engine, so SpMM also
//! inherits plan-cached warm launches ([`spmm_with_plan`]).

use loops::adapters::CsrTiles;
use loops::dispatch::{span_atoms, BalancedLaunch, KernelPlan, TileExec};
use loops::ranges::step_range;
use loops::schedule::{ScheduleKind, TileSpan};
use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx, LaunchReport};
use sparse::{Csr, DenseMatrix};

/// Result of one simulated SpMM.
#[derive(Debug, Clone)]
pub struct SpmmRun {
    /// The dense output `C = A·B`.
    pub c: DenseMatrix<f32>,
    /// Simulated launch report.
    pub report: LaunchReport,
    /// The schedule the engine actually ran (after the flat-span
    /// coercion).
    pub schedule: ScheduleKind,
}

/// Listing 4's body: per span, loop over `B`'s columns; per column,
/// accumulate the span's products. Complete tiles store directly;
/// partial merge-path tiles combine through `atomicAdd`.
struct SpmmExec<'a> {
    values: &'a [f32],
    col_indices: &'a [u32],
    b: &'a DenseMatrix<f32>,
    c: GlobalMem<'a, f32>,
    n_cols: usize,
}

impl TileExec for SpmmExec<'_> {
    const COOPERATIVE_REDUCE: bool = false;

    fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
        // Listing 4: the new loop over B's columns.
        for col in step_range(0, self.n_cols, 1) {
            let mut sum = 0.0f32;
            for nz in span_atoms(span, lane) {
                sum += self.values[nz] * self.b.get(self.col_indices[nz] as usize, col);
            }
            let out = span.tile * self.n_cols + col;
            if span.complete {
                self.c.store(out, sum);
                lane.write_bytes(4);
            } else if !span.atoms.is_empty() {
                self.c.fetch_add(out, sum);
                lane.charge_atomic();
            }
        }
    }
}

/// SpMM supports the flat-span schedules; the cooperative schedules
/// reduce a single scalar per tile and are exposed through SpMV, so
/// anything else falls back to thread-mapped (Listing 4's default).
fn coerce(kind: ScheduleKind) -> ScheduleKind {
    if kind == ScheduleKind::MergePath {
        kind
    } else {
        ScheduleKind::ThreadMapped
    }
}

/// Run SpMM with the given schedule (thread-mapped or merge-path; any
/// other kind falls back to thread-mapped).
pub fn spmm(
    spec: &GpuSpec,
    a: &Csr<f32>,
    b: &DenseMatrix<f32>,
    kind: ScheduleKind,
) -> simt::Result<SpmmRun> {
    spmm_with_model(spec, &CostModel::standard(), a, b, kind)
}

/// [`spmm`] with an explicit cost model.
pub fn spmm_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    b: &DenseMatrix<f32>,
    kind: ScheduleKind,
) -> simt::Result<SpmmRun> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let work = CsrTiles::new(a);
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let d = {
        let exec = SpmmExec {
            values: a.values(),
            col_indices: a.col_indices(),
            b,
            c: GlobalMem::new(c.as_mut_slice()),
            n_cols: b.cols(),
        };
        BalancedLaunch::new(spec, model, &work).run(coerce(kind), &exec)?
    };
    Ok(SpmmRun {
        c,
        report: d.report,
        schedule: d.schedule,
    })
}

/// Prepare a reusable SpMM plan for `a` (schedule choice + merge-path
/// partition table). The artifacts depend only on `a`'s sparsity
/// pattern, so one plan serves *any* dense `B` — the warm path a serving
/// runtime caches per matrix.
pub fn prepare(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    kind: ScheduleKind,
) -> simt::Result<KernelPlan> {
    let work = CsrTiles::new(a);
    BalancedLaunch::new(spec, model, &work).prepare(coerce(kind))
}

/// Run SpMM under a prepared plan. Bitwise identical to [`spmm`] with
/// the plan's schedule; a cached merge-path plan skips the in-kernel
/// diagonal searches.
pub fn spmm_with_plan(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    b: &DenseMatrix<f32>,
    plan: &KernelPlan,
) -> simt::Result<SpmmRun> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let work = CsrTiles::new(a);
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let d = {
        let exec = SpmmExec {
            values: a.values(),
            col_indices: a.col_indices(),
            b,
            c: GlobalMem::new(c.as_mut_slice()),
            n_cols: b.cols(),
        };
        BalancedLaunch::new(spec, model, &work)
            .block_dim(plan.block_dim)
            .run_planned(plan, &exec)?
    };
    Ok(SpmmRun {
        c,
        report: d.report,
        schedule: d.schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spmm_ref;

    fn check(a: &Csr<f32>, b: &DenseMatrix<f32>, kind: ScheduleKind) {
        let run = spmm(&GpuSpec::test_tiny(), a, b, kind).unwrap();
        let want = spmm_ref(a, b);
        for r in 0..a.rows() {
            for j in 0..b.cols() {
                let (g, w) = (run.c.get(r, j), want.get(r, j));
                assert!(
                    (g - w).abs() < 1e-3 * w.abs().max(1.0),
                    "{kind}: C[{r},{j}] = {g}, want {w}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_with_both_schedules() {
        let a = sparse::gen::uniform(60, 50, 500, 41);
        let b = DenseMatrix::from_fn(50, 7, |r, c| ((r + 2 * c) as f32).sin());
        check(&a, &b, ScheduleKind::ThreadMapped);
        check(&a, &b, ScheduleKind::MergePath);
    }

    #[test]
    fn power_law_rows_still_correct_under_merge_path() {
        let a = sparse::gen::powerlaw(120, 100, 2_000, 1.8, 42);
        let b = DenseMatrix::from_fn(100, 3, |r, c| 0.01 * (r as f32) - 0.5 * (c as f32));
        check(&a, &b, ScheduleKind::MergePath);
    }

    #[test]
    fn single_column_b_degenerates_to_spmv() {
        let a = sparse::gen::uniform(80, 70, 600, 43);
        let x = sparse::dense::test_vector(70);
        let b = DenseMatrix::from_vec(70, 1, x.clone());
        let run = spmm(&GpuSpec::test_tiny(), &a, &b, ScheduleKind::MergePath).unwrap();
        let want = a.spmv_ref(&x);
        for (r, &wr) in want.iter().enumerate() {
            assert!((run.c.get(r, 0) - wr).abs() < 1e-3);
        }
    }

    #[test]
    fn spmm_costs_scale_with_b_columns() {
        let a = sparse::gen::uniform(200, 200, 3_000, 44);
        let b1 = DenseMatrix::<f32>::zeros(200, 1);
        let b8 = DenseMatrix::<f32>::zeros(200, 8);
        let r1 = spmm(&GpuSpec::v100(), &a, &b1, ScheduleKind::ThreadMapped).unwrap();
        let r8 = spmm(&GpuSpec::v100(), &a, &b8, ScheduleKind::ThreadMapped).unwrap();
        assert!(r8.report.timing.total_units > 4.0 * r1.report.timing.total_units);
    }

    #[test]
    fn planned_spmm_is_bitwise_identical_and_reusable_across_b() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(400, 400, 8_000, 1.8, 45);
        let plan = prepare(&spec, &model, &a, ScheduleKind::MergePath).unwrap();
        assert!(plan.merge_starts.is_some());
        // One plan, two different Bs.
        for seed in [0u32, 1] {
            let b = DenseMatrix::from_fn(400, 4, |r, c| ((r * 31 + c * 7 + seed as usize) as f32).cos());
            let cold = spmm_with_model(&spec, &model, &a, &b, ScheduleKind::MergePath).unwrap();
            let warm = spmm_with_plan(&spec, &model, &a, &b, &plan).unwrap();
            let bits = |m: &DenseMatrix<f32>| {
                m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(&cold.c), bits(&warm.c), "seed {seed}");
            assert!(
                warm.report.timing.total_units < cold.report.timing.total_units,
                "prepartitioned SpMM should issue less work"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = sparse::gen::uniform(10, 10, 20, 1);
        let b = DenseMatrix::<f32>::zeros(11, 2);
        let _ = spmm(&GpuSpec::test_tiny(), &a, &b, ScheduleKind::ThreadMapped);
    }
}
