//! General sparse × sparse multiplication (SpGEMM), Gustavson style —
//! the "two kernels and an allocation stage" extension the paper sketches
//! in §5.3: the first kernel computes each output row's size, the host
//! allocates, and the second kernel performs the multiply-accumulate.
//!
//! Both kernels are flat-span [`TileExec`]s dispatched through the engine
//! over the tile set of `A`'s rows with the thread-mapped schedule (each
//! output row needs an exclusive accumulator, so
//! tile-per-processing-element is the natural mapping; the imbalance
//! story is identical to SpMV's and is measured there).

use loops::adapters::CsrTiles;
use loops::dispatch::{span_atoms, BalancedLaunch, TileExec};
use loops::schedule::{ScheduleKind, TileSpan};
use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx, LaunchReport};
use sparse::Csr;
use std::cell::RefCell;

/// Result of one simulated SpGEMM.
#[derive(Debug, Clone)]
pub struct SpgemmRun {
    /// The sparse product `C = A·B` in canonical CSR.
    pub c: Csr<f32>,
    /// Accumulated report over the count and fill kernels.
    pub report: LaunchReport,
}

/// Per-host-worker dense row accumulator with epoch-based reset (the
/// device-side equivalent is a hash or dense scratch row per thread).
#[derive(Default)]
struct RowAcc {
    dense: Vec<f32>,
    mark: Vec<u64>,
    touched: Vec<u32>,
    epoch: u64,
}

impl RowAcc {
    fn begin_row(&mut self, width: usize) {
        if self.dense.len() < width {
            self.dense.resize(width, 0.0);
            self.mark.resize(width, 0);
        }
        self.epoch += 1;
        self.touched.clear();
    }

    #[inline]
    fn add(&mut self, j: u32, v: f32) {
        let idx = j as usize;
        if self.mark[idx] != self.epoch {
            self.mark[idx] = self.epoch;
            self.dense[idx] = 0.0;
            self.touched.push(j);
        }
        self.dense[idx] += v;
    }
}

thread_local! {
    static ACC: RefCell<RowAcc> = RefCell::new(RowAcc::default());
}

/// Kernel 1: count each output row's distinct column count.
struct CountExec<'a> {
    a: &'a Csr<f32>,
    b: &'a Csr<f32>,
    n_out_cols: usize,
    sizes: GlobalMem<'a, u64>,
}

impl TileExec for CountExec<'_> {
    const COOPERATIVE_REDUCE: bool = false;

    fn span(&self, t: &LaneCtx<'_>, span: &TileSpan) {
        let row = span.tile;
        let distinct = ACC.with(|acc| {
            let acc = &mut *acc.borrow_mut();
            acc.begin_row(self.n_out_cols);
            for nz in span_atoms(span, t) {
                let k = self.a.col_indices()[nz] as usize;
                let (bcols, _) = self.b.row(k);
                for &j in bcols {
                    // Each B-row entry is a secondary atom.
                    t.charge_atom();
                    acc.add(j, 1.0);
                }
            }
            acc.touched.len()
        });
        self.sizes.store(row, distinct as u64);
        t.write_bytes(8);
    }
}

/// Kernel 2: multiply-accumulate into the allocated rows.
struct FillExec<'a> {
    a: &'a Csr<f32>,
    b: &'a Csr<f32>,
    n_out_cols: usize,
    offsets: &'a [usize],
    cols: GlobalMem<'a, u32>,
    vals: GlobalMem<'a, f32>,
}

impl TileExec for FillExec<'_> {
    const COOPERATIVE_REDUCE: bool = false;

    fn span(&self, t: &LaneCtx<'_>, span: &TileSpan) {
        let row = span.tile;
        ACC.with(|acc| {
            let acc = &mut *acc.borrow_mut();
            acc.begin_row(self.n_out_cols);
            for nz in span_atoms(span, t) {
                let k = self.a.col_indices()[nz] as usize;
                let av = self.a.values()[nz];
                let (bcols, bvals) = self.b.row(k);
                for (&j, &bv) in bcols.iter().zip(bvals) {
                    t.charge_atom();
                    acc.add(j, av * bv);
                }
            }
            acc.touched.sort_unstable();
            let base = self.offsets[row];
            for (slot, &j) in acc.touched.iter().enumerate() {
                self.cols.store(base + slot, j);
                self.vals.store(base + slot, acc.dense[j as usize]);
                t.write_bytes(8);
            }
        });
    }
}

/// Run SpGEMM: `C = A · B`.
pub fn spgemm(spec: &GpuSpec, a: &Csr<f32>, b: &Csr<f32>) -> simt::Result<SpgemmRun> {
    spgemm_with_model(spec, &CostModel::standard(), a, b)
}

/// [`spgemm`] with an explicit cost model.
pub fn spgemm_with_model(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    b: &Csr<f32>,
) -> simt::Result<SpgemmRun> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let work = CsrTiles::new(a);
    let engine = BalancedLaunch::new(spec, model, &work);
    let n_out_cols = b.cols();

    // ---- Kernel 1: count output row sizes --------------------------------
    let mut row_sizes = vec![0u64; a.rows()];
    let count_report = {
        let exec = CountExec {
            a,
            b,
            n_out_cols,
            sizes: GlobalMem::new(&mut row_sizes),
        };
        engine.run(ScheduleKind::ThreadMapped, &exec)?.report
    };

    // ---- Allocation stage (host) ------------------------------------------
    let mut offsets = vec![0usize; a.rows() + 1];
    for (i, &s) in row_sizes.iter().enumerate() {
        offsets[i + 1] = offsets[i] + s as usize;
    }
    let nnz = offsets[a.rows()];
    let mut out_cols = vec![0u32; nnz];
    let mut out_vals = vec![0.0f32; nnz];

    // ---- Kernel 2: multiply-accumulate into the allocated rows ------------
    let fill_report = {
        let exec = FillExec {
            a,
            b,
            n_out_cols,
            offsets: &offsets,
            cols: GlobalMem::new(&mut out_cols),
            vals: GlobalMem::new(&mut out_vals),
        };
        engine.run(ScheduleKind::ThreadMapped, &exec)?.report
    };

    let mut report = count_report;
    report.accumulate(&fill_report);
    let c = Csr::from_parts(a.rows(), b.cols(), offsets, out_cols, out_vals)
        .expect("fill kernel writes a valid CSR");
    Ok(SpgemmRun { c, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spgemm_ref;

    fn check(a: &Csr<f32>, b: &Csr<f32>) {
        let run = spgemm(&GpuSpec::test_tiny(), a, b).unwrap();
        let want = spgemm_ref(a, b);
        assert_eq!(run.c.rows(), want.rows());
        assert_eq!(run.c.row_offsets(), want.row_offsets(), "structure");
        assert_eq!(run.c.col_indices(), want.col_indices());
        for (g, w) in run.c.values().iter().zip(want.values()) {
            assert!((g - w).abs() < 1e-3 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn matches_reference_on_random_pairs() {
        let a = sparse::gen::uniform(40, 30, 250, 51);
        let b = sparse::gen::uniform(30, 35, 260, 52);
        check(&a, &b);
    }

    #[test]
    fn matches_reference_on_power_law_inputs() {
        let a = sparse::gen::powerlaw(60, 50, 700, 1.9, 53);
        let b = sparse::gen::powerlaw(50, 40, 600, 2.1, 54);
        check(&a, &b);
    }

    #[test]
    fn matches_reference_on_chain_of_structured_matrices() {
        let a = sparse::gen::banded(30, 2, 58);
        let b = sparse::gen::banded(30, 3, 59);
        check(&a, &b);
    }

    #[test]
    fn product_with_empty_matrix_is_empty() {
        let a = sparse::gen::uniform(10, 8, 30, 55);
        let b = Csr::<f32>::empty(8, 6);
        let run = spgemm(&GpuSpec::test_tiny(), &a, &b).unwrap();
        assert_eq!(run.c.nnz(), 0);
        assert_eq!(run.c.rows(), 10);
        assert_eq!(run.c.cols(), 6);
    }

    #[test]
    fn report_covers_two_kernels() {
        let a = sparse::gen::uniform(20, 20, 80, 56);
        let b = sparse::gen::uniform(20, 20, 80, 57);
        let spec = GpuSpec::test_tiny();
        let run = spgemm(&spec, &a, &b).unwrap();
        // Two launches → at least 2× the launch overhead.
        assert!(run.report.timing.overhead_ms >= 2.0 * spec.launch_overhead_us * 1e-3 - 1e-9);
    }
}
