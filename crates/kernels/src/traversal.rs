//! Load-balanced frontier expansion — the shared engine of BFS and SSSP.
//!
//! One traversal iteration visits every edge incident to the frontier.
//! Under the abstraction that is just another tile set (tiles = frontier
//! vertices, atoms = incident edges), so *the same five schedules that
//! balance SpMV balance graph traversal* — the paper's §5.2.1 reuse claim,
//! demonstrated. The caller supplies the per-edge computation (Listing 5's
//! body); this module supplies nothing but scheduling.

use crate::graph::{Frontier, Graph};
use loops::schedule::{
    GroupMappedSchedule, MergePathSchedule, ScheduleKind, ThreadMappedSchedule,
};
use loops::work::TileSet;
use simt::{CostModel, GpuSpec, LaneCtx, LaunchConfig, LaunchReport};

/// Default threads per block for traversal kernels.
pub const TRAVERSAL_BLOCK: u32 = 256;

/// Expand `frontier`: run `relax(lane, edge, source_vertex)` for every
/// edge leaving a frontier vertex, load-balanced by `kind`.
pub fn expand<F>(
    spec: &GpuSpec,
    model: &CostModel,
    g: &Graph,
    frontier: &Frontier,
    kind: ScheduleKind,
    relax: F,
) -> simt::Result<LaunchReport>
where
    F: Fn(&LaneCtx<'_>, usize, usize) + Sync,
{
    let tiles = frontier.tile_set(g);
    let block = TRAVERSAL_BLOCK.min(spec.max_threads_per_block);
    let verts = frontier.vertices();
    let edge_of = |tile: usize, atom: usize| {
        let within = atom - tiles.tile_offset(tile);
        g.edge_range(verts[tile] as usize).start + within
    };
    match kind {
        ScheduleKind::ThreadMapped => {
            let sched = ThreadMappedSchedule::new(&tiles);
            let cfg = LaunchConfig::over_threads(tiles.num_tiles().max(1) as u64, block);
            simt::launch_threads_with_model(spec, model, cfg, |t| {
                for tile in sched.tiles(t) {
                    let src = verts[tile] as usize;
                    for atom in sched.atoms(tile, t) {
                        relax(t, edge_of(tile, atom), src);
                    }
                }
            })
        }
        ScheduleKind::MergePath => {
            let sched = MergePathSchedule::new(&tiles, crate::spmv::MERGE_ITEMS_PER_THREAD);
            let cfg = sched.launch_config(block);
            simt::launch_threads_with_model(spec, model, cfg, |t| {
                for span in sched.spans(t) {
                    let src = if span.tile < verts.len() {
                        verts[span.tile] as usize
                    } else {
                        continue;
                    };
                    for atom in sched.atoms(&span, t) {
                        relax(t, edge_of(span.tile, atom), src);
                    }
                }
            })
        }
        ScheduleKind::WarpMapped => expand_grouped(spec, model, spec.warp_size, block, &tiles, verts, &edge_of, &relax),
        ScheduleKind::BlockMapped => expand_grouped(spec, model, block, block, &tiles, verts, &edge_of, &relax),
        ScheduleKind::GroupMapped(gs) => expand_grouped(spec, model, gs, block, &tiles, verts, &edge_of, &relax),
        ScheduleKind::WorkQueue(chunk) => {
            use loops::schedule::WorkQueueSchedule;
            let sched = WorkQueueSchedule::new(&tiles, chunk.max(1) as usize);
            let cfg = sched.launch_config(spec, block);
            simt::launch_threads_with_model(spec, model, cfg, |t| {
                sched.process_tiles(t, |lane, tile| {
                    let src = verts[tile] as usize;
                    for atom in sched.atoms(tile, lane) {
                        relax(lane, edge_of(tile, atom), src);
                    }
                });
            })
        }
        ScheduleKind::Lrb => {
            use loops::schedule::LrbSchedule;
            let lrb = LrbSchedule {
                block_dim: block,
                ..LrbSchedule::default()
            };
            let plan = lrb.bin_tiles(spec, model, &tiles)?;
            lrb.process(spec, model, &tiles, &plan, |lane, tile, atom| {
                let src = verts[tile] as usize;
                relax(lane, edge_of(tile, atom), src);
            })
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn expand_grouped<W, E, F>(
    spec: &GpuSpec,
    model: &CostModel,
    group_size: u32,
    block: u32,
    tiles: &W,
    verts: &[u32],
    edge_of: &E,
    relax: &F,
) -> simt::Result<LaunchReport>
where
    W: TileSet,
    E: Fn(usize, usize) -> usize + Sync,
    F: Fn(&LaneCtx<'_>, usize, usize) + Sync,
{
    let group_size = crate::spmv::largest_divisor_leq(block, group_size.clamp(1, block));
    let sched = GroupMappedSchedule::new(tiles, group_size);
    let cfg = sched.launch_config(block, spec.num_sms * 8);
    simt::launch_groups_with_model(spec, model, cfg, group_size, |grp| {
        // Listing 5's shape: loop over assigned edges, get_tile per atom.
        sched.process(grp, |lane, tile, atom| {
            let src = verts[tile] as usize;
            relax(lane, edge_of(tile, atom), src);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_incident_edge_visited_once_under_every_schedule() {
        let adj = sparse::gen::powerlaw(300, 300, 3_000, 1.9, 3);
        let g = Graph::from_generator(adj);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        // Frontier: every third vertex.
        let flags: Vec<u32> = (0..g.num_vertices()).map(|v| u32::from(v % 3 == 0)).collect();
        let frontier = Frontier::from_flags(&flags);
        let expected: u64 = frontier
            .vertices()
            .iter()
            .map(|&v| g.degree(v as usize) as u64)
            .sum();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::WorkQueue(4),
            ScheduleKind::Lrb,
        ] {
            let visited = AtomicU64::new(0);
            let sum_check = AtomicU64::new(0);
            expand(&spec, &model, &g, &frontier, kind, |_, edge, src| {
                visited.fetch_add(1, Ordering::Relaxed);
                // Edge must actually belong to src.
                let r = g.edge_range(src);
                assert!(r.contains(&edge), "{kind}: edge {edge} not in {r:?}");
                sum_check.fetch_add(edge as u64, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(visited.load(Ordering::Relaxed), expected, "{kind}");
        }
    }

    #[test]
    fn empty_frontier_is_a_cheap_noop() {
        let g = Graph::from_generator(sparse::gen::uniform(50, 50, 200, 9));
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let frontier = Frontier::from_flags(&[0u32; 50]);
        let r = expand(
            &spec,
            &model,
            &g,
            &frontier,
            ScheduleKind::MergePath,
            |_, _, _| panic!("no edges to relax"),
        )
        .unwrap();
        assert!(r.elapsed_ms() < 1.0);
    }
}
