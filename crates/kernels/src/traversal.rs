//! Load-balanced frontier expansion — the shared engine of BFS and SSSP.
//!
//! One traversal iteration visits every edge incident to the frontier.
//! Under the abstraction that is just another tile set (tiles = frontier
//! vertices, atoms = incident edges), so *the same schedules that balance
//! SpMV balance graph traversal* — the paper's §5.2.1 reuse claim,
//! demonstrated. The caller supplies the per-edge computation (Listing
//! 5's body) as a `relax` closure; the dispatch engine supplies every
//! schedule through one visit-shaped [`TileExec`].

use crate::graph::{Frontier, Graph};
use loops::dispatch::{span_atoms, BalancedLaunch, TileExec};
use loops::schedule::{ScheduleKind, TileSpan};
use loops::work::{CountedTiles, TileSet};
use simt::{CostModel, GpuSpec, LaneCtx, LaunchReport};

/// Default threads per block for traversal kernels.
pub const TRAVERSAL_BLOCK: u32 = 256;

/// The frontier-expansion computation: every atom is one incident edge,
/// translated from (frontier tile, atom offset) to a global edge id and
/// handed to the caller's `relax`.
struct ExpandExec<'a, F> {
    tiles: &'a CountedTiles,
    verts: &'a [u32],
    g: &'a Graph,
    relax: F,
}

impl<F> ExpandExec<'_, F> {
    fn edge_of(&self, tile: usize, atom: usize) -> usize {
        let within = atom - self.tiles.tile_offset(tile);
        self.g.edge_range(self.verts[tile] as usize).start + within
    }
}

impl<F: Fn(&LaneCtx<'_>, usize, usize) + Sync> TileExec for ExpandExec<'_, F> {
    const COOPERATIVE_REDUCE: bool = false;

    fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
        // Merge-path pads its decision grid past the last tile; such
        // spans carry no atoms for us.
        let src = if span.tile < self.verts.len() {
            self.verts[span.tile] as usize
        } else {
            return;
        };
        for atom in span_atoms(span, lane) {
            (self.relax)(lane, self.edge_of(span.tile, atom), src);
        }
    }

    fn visit(&self, lane: &LaneCtx<'_>, tile: usize, atom: usize) {
        let src = self.verts[tile] as usize;
        (self.relax)(lane, self.edge_of(tile, atom), src);
    }
}

/// Expand `frontier`: run `relax(lane, edge, source_vertex)` for every
/// edge leaving a frontier vertex, load-balanced by `kind`.
pub fn expand<F>(
    spec: &GpuSpec,
    model: &CostModel,
    g: &Graph,
    frontier: &Frontier,
    kind: ScheduleKind,
    relax: F,
) -> simt::Result<LaunchReport>
where
    F: Fn(&LaneCtx<'_>, usize, usize) + Sync,
{
    let tiles = frontier.tile_set(g);
    let exec = ExpandExec {
        tiles: &tiles,
        verts: frontier.vertices(),
        g,
        relax,
    };
    let d = BalancedLaunch::new(spec, model, &tiles)
        .block_dim(TRAVERSAL_BLOCK)
        .run(kind, &exec)?;
    Ok(d.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_incident_edge_visited_once_under_every_schedule() {
        let adj = sparse::gen::powerlaw(300, 300, 3_000, 1.9, 3);
        let g = Graph::from_generator(adj);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        // Frontier: every third vertex.
        let flags: Vec<u32> = (0..g.num_vertices()).map(|v| u32::from(v % 3 == 0)).collect();
        let frontier = Frontier::from_flags(&flags);
        let expected: u64 = frontier
            .vertices()
            .iter()
            .map(|&v| g.degree(v as usize) as u64)
            .sum();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::WorkQueue(4),
            ScheduleKind::Lrb,
        ] {
            let visited = AtomicU64::new(0);
            let sum_check = AtomicU64::new(0);
            expand(&spec, &model, &g, &frontier, kind, |_, edge, src| {
                visited.fetch_add(1, Ordering::Relaxed);
                // Edge must actually belong to src.
                let r = g.edge_range(src);
                assert!(r.contains(&edge), "{kind}: edge {edge} not in {r:?}");
                sum_check.fetch_add(edge as u64, Ordering::Relaxed);
            })
            .unwrap();
            assert_eq!(visited.load(Ordering::Relaxed), expected, "{kind}");
        }
    }

    #[test]
    fn empty_frontier_is_a_cheap_noop() {
        let g = Graph::from_generator(sparse::gen::uniform(50, 50, 200, 9));
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let frontier = Frontier::from_flags(&[0u32; 50]);
        let r = expand(
            &spec,
            &model,
            &g,
            &frontier,
            ScheduleKind::MergePath,
            |_, _, _| panic!("no edges to relax"),
        )
        .unwrap();
        assert!(r.elapsed_ms() < 1.0);
    }
}
