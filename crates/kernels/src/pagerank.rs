//! PageRank via power iteration — every iteration is one load-balanced
//! SpMV, so the whole algorithm inherits whatever schedule you pick
//! (§5.3's "the same schedules are easily reusable in this different
//! application domain", pushed one application further: Gunrock and
//! GraphBLAST both list PageRank among the primitives built on these
//! load-balancing techniques, §7).
//!
//! `rank_{k+1} = (1-d)/n + d · (Mᵀ rank_k + dangling_mass/n)` where `M`
//! is the column-normalized adjacency. We materialize `Mᵀ` once (a CSR
//! whose rows are *in*-edges with values `1/outdeg(source)`), then
//! iterate simulated SpMVs until the L1 delta crosses the tolerance.

use crate::graph::Graph;
use loops::schedule::ScheduleKind;
use simt::{CostModel, GpuSpec, LaunchReport};
use sparse::{convert, Csr};

/// Result of a simulated PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankRun {
    /// Per-vertex rank, summing to 1.
    pub rank: Vec<f32>,
    /// Power iterations executed.
    pub iterations: usize,
    /// Accumulated report over all iterations.
    pub report: LaunchReport,
}

/// Standard damping factor.
pub const DAMPING: f32 = 0.85;

/// Build the column-normalized transposed adjacency `Mᵀ` (row `v` holds
/// `1/outdeg(u)` for every in-neighbor `u` of `v`).
pub fn normalized_transpose(g: &Graph) -> Csr<f32> {
    let n = g.num_vertices();
    let mut m = g.adjacency().clone();
    {
        let degrees: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
        let offsets = m.row_offsets().to_vec();
        let vals = m.values_mut();
        for u in 0..n {
            let d = degrees[u].max(1) as f32;
            for v in vals[offsets[u]..offsets[u + 1]].iter_mut() {
                *v = 1.0 / d;
            }
        }
    }
    convert::transpose(&m)
}

/// Run PageRank with the given schedule until the L1 delta falls below
/// `tol` (or `max_iters`).
pub fn pagerank(
    spec: &GpuSpec,
    g: &Graph,
    kind: ScheduleKind,
    tol: f32,
    max_iters: usize,
) -> simt::Result<PageRankRun> {
    let n = g.num_vertices();
    assert!(n > 0, "graph must have vertices");
    let mt = normalized_transpose(g);
    let dangling: Vec<usize> = (0..n).filter(|&u| g.degree(u) == 0).collect();
    let model = CostModel::standard();

    let mut rank = vec![1.0f32 / n as f32; n];
    let mut iterations = 0usize;
    let mut total: Option<LaunchReport> = None;
    while iterations < max_iters {
        let run = crate::spmv::spmv_with_model(
            spec,
            &model,
            &mt,
            &rank,
            kind,
            crate::spmv::DEFAULT_BLOCK,
        )?;
        let dangling_mass: f32 = dangling.iter().map(|&u| rank[u]).sum();
        let teleport = (1.0 - DAMPING) / n as f32 + DAMPING * dangling_mass / n as f32;
        let next: Vec<f32> = run.y.iter().map(|&s| teleport + DAMPING * s).collect();
        let delta: f32 = next
            .iter()
            .zip(&rank)
            .map(|(a, b)| (a - b).abs())
            .sum();
        rank = next;
        match &mut total {
            Some(t) => t.accumulate(&run.report),
            None => total = Some(run.report),
        }
        iterations += 1;
        if delta < tol {
            break;
        }
    }
    Ok(PageRankRun {
        rank,
        iterations,
        report: total.expect("at least one iteration"),
    })
}

/// CPU reference implementation (identical math, f64 accumulation).
pub fn pagerank_ref(g: &Graph, tol: f64, max_iters: usize) -> Vec<f32> {
    let n = g.num_vertices();
    let d = f64::from(DAMPING);
    let mut rank = vec![1.0f64 / n as f64; n];
    for _ in 0..max_iters {
        let mut next = vec![0.0f64; n];
        let mut dangling_mass = 0.0f64;
        for (u, &ru) in rank.iter().enumerate() {
            let deg = g.degree(u);
            if deg == 0 {
                dangling_mass += ru;
                continue;
            }
            let share = ru / deg as f64;
            let (nbrs, _) = g.adjacency().row(u);
            for &v in nbrs {
                next[v as usize] += share;
            }
        }
        let teleport = (1.0 - d) / n as f64 + d * dangling_mass / n as f64;
        let mut delta = 0.0f64;
        for (v, slot) in next.iter_mut().enumerate() {
            *slot = teleport + d * *slot;
            delta += (*slot - rank[v]).abs();
        }
        rank = next;
        if delta < tol {
            break;
        }
    }
    rank.into_iter().map(|r| r as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmat_graph() -> Graph {
        Graph::from_generator(sparse::gen::rmat(9, 8, (0.57, 0.19, 0.19), 41))
    }

    #[test]
    fn ranks_sum_to_one_and_match_reference() {
        let g = rmat_graph();
        let spec = GpuSpec::v100();
        for kind in [ScheduleKind::MergePath, ScheduleKind::WarpMapped] {
            let run = pagerank(&spec, &g, kind, 1e-6, 100).unwrap();
            let total: f32 = run.rank.iter().sum();
            assert!((total - 1.0).abs() < 1e-3, "{kind}: ranks sum to {total}");
            let want = pagerank_ref(&g, 1e-8, 200);
            for (v, (got, expect)) in run.rank.iter().zip(&want).enumerate() {
                assert!(
                    (got - expect).abs() < 1e-4,
                    "{kind}: rank[{v}] = {got}, want {expect}"
                );
            }
            assert!(run.iterations > 3, "{kind}: converged suspiciously fast");
        }
    }

    #[test]
    fn hubs_outrank_leaves() {
        // Star: everyone links to vertex 0.
        let n = 100u32;
        let triplets: Vec<(u32, u32, f32)> =
            (1..n).map(|u| (u, 0u32, 1.0f32)).collect();
        let g = Graph::new(Csr::from_triplets(n as usize, n as usize, triplets).unwrap());
        let run = pagerank(&GpuSpec::test_tiny(), &g, ScheduleKind::MergePath, 1e-7, 200).unwrap();
        let hub = run.rank[0];
        assert!(run.rank[1..].iter().all(|&r| r < hub / 5.0), "hub dominates");
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // A chain ending in a dangling vertex: 0→1→2, 2 has no out-edges.
        let g = Graph::new(
            Csr::from_triplets(3, 3, vec![(0u32, 1u32, 1.0f32), (1, 2, 1.0)]).unwrap(),
        );
        let run = pagerank(&GpuSpec::test_tiny(), &g, ScheduleKind::ThreadMapped, 1e-8, 500).unwrap();
        let total: f32 = run.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "mass conserved: {total}");
        let want = pagerank_ref(&g, 1e-10, 1000);
        for (got, expect) in run.rank.iter().zip(&want) {
            assert!((got - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn normalized_transpose_columns_sum_to_outdeg_shares() {
        let g = rmat_graph();
        let mt = normalized_transpose(&g);
        assert_eq!(mt.rows(), g.num_vertices());
        // Each original out-row contributed deg × (1/deg) = 1 total mass.
        let total: f32 = mt.values().iter().sum();
        let non_dangling = (0..g.num_vertices()).filter(|&u| g.degree(u) > 0).count();
        assert!(
            (total - non_dangling as f32).abs() < 1e-2 * non_dangling as f32,
            "mass {total} vs {non_dangling}"
        );
    }
}
