//! Sequential reference implementations — ground truth for every
//! simulated kernel.

use sparse::{Csr, DenseMatrix};
use std::collections::VecDeque;

/// Dense SpMM reference: `C = A · B` with dense row-major `B`.
pub fn spmm_ref(a: &Csr<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        for j in 0..b.cols() {
            let mut sum = 0.0f64;
            for (&k, &v) in cols.iter().zip(vals) {
                sum += f64::from(v) * f64::from(b.get(k as usize, j));
            }
            c.set(r, j, sum as f32);
        }
    }
    c
}

/// Gustavson SpGEMM reference: `C = A · B`, canonical CSR output.
pub fn spgemm_ref(a: &Csr<f32>, b: &Csr<f32>) -> Csr<f32> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut triplets: Vec<(u32, u32, f32)> = Vec::new();
    let mut acc: Vec<f64> = vec![0.0; b.cols()];
    let mut touched: Vec<u32> = Vec::new();
    for r in 0..a.rows() {
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k as usize);
            for (&j, &bv) in bcols.iter().zip(bvals) {
                if acc[j as usize] == 0.0 {
                    touched.push(j);
                }
                acc[j as usize] += f64::from(av) * f64::from(bv);
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            // Exact zeros from cancellation are kept (standard SpGEMM
            // keeps the structural pattern).
            triplets.push((r as u32, j, acc[j as usize] as f32));
            acc[j as usize] = 0.0;
        }
        touched.clear();
    }
    Csr::from_triplets(a.rows(), b.cols(), triplets).expect("reference output is valid")
}

/// BFS reference: hop distances from `src` (`u32::MAX` = unreachable).
pub fn bfs_ref(adj: &Csr<f32>, src: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adj.rows()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let (nbrs, _) = adj.row(u);
        for &v in nbrs {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u] + 1;
                q.push_back(v as usize);
            }
        }
    }
    dist
}

/// SSSP reference (Dijkstra with non-negative weights); `f32::INFINITY` =
/// unreachable.
pub fn sssp_ref(adj: &Csr<f32>, src: usize) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct P(f32, usize);
    impl Eq for P {}
    impl PartialOrd for P {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for P {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let mut dist = vec![f32::INFINITY; adj.rows()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Reverse(P(0.0, src)));
    while let Some(Reverse(P(d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        let (nbrs, wts) = adj.row(u);
        for (&v, &w) in nbrs.iter().zip(wts) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse(P(nd, v as usize)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small path graph 0→1→2→3 plus a shortcut 0→2.
    fn path_graph() -> Csr<f32> {
        Csr::from_triplets(
            4,
            4,
            vec![
                (0u32, 1u32, 1.0f32),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bfs_counts_hops() {
        let d = bfs_ref(&path_graph(), 0);
        assert_eq!(d, vec![0, 1, 1, 2]); // 0→2 shortcut is one hop
        let d3 = bfs_ref(&path_graph(), 3);
        assert_eq!(d3, vec![u32::MAX, u32::MAX, u32::MAX, 0]);
    }

    #[test]
    fn sssp_prefers_light_paths() {
        let d = sssp_ref(&path_graph(), 0);
        // 0→1→2 (2.0) beats 0→2 (5.0).
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn spmm_matches_column_by_column_spmv() {
        let a = sparse::gen::uniform(40, 30, 300, 3);
        let b = DenseMatrix::from_fn(30, 5, |r, c| ((r * 5 + c) as f32).cos());
        let c = spmm_ref(&a, &b);
        for j in 0..5 {
            let xj: Vec<f32> = (0..30).map(|r| b.get(r, j)).collect();
            let yj = a.spmv_ref(&xj);
            for (r, &yr) in yj.iter().enumerate() {
                assert!((c.get(r, j) - yr).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn spgemm_identity_is_identity() {
        let a = sparse::gen::uniform(20, 20, 80, 4);
        let i = sparse::gen::diagonal(20, 5);
        // I has random diagonal values; build a true identity instead.
        let eye = Csr::from_triplets(
            20,
            20,
            (0..20u32).map(|k| (k, k, 1.0f32)).collect(),
        )
        .unwrap();
        let c = spgemm_ref(&a, &eye);
        assert_eq!(c.row_offsets(), a.row_offsets());
        assert_eq!(c.col_indices(), a.col_indices());
        for (x, y) in c.values().iter().zip(a.values()) {
            assert!((x - y).abs() < 1e-6);
        }
        drop(i);
    }

    #[test]
    fn spgemm_matches_dense_multiplication() {
        let a = sparse::gen::uniform(15, 12, 60, 6);
        let b = sparse::gen::uniform(12, 18, 70, 7);
        let c = spgemm_ref(&a, &b);
        // Dense check.
        for r in 0..15 {
            for j in 0..18 {
                let mut want = 0.0f64;
                for (&k, &av) in a.row(r).0.iter().zip(a.row(r).1) {
                    let (bc, bv) = b.row(k as usize);
                    if let Ok(pos) = bc.binary_search(&(j as u32)) {
                        want += f64::from(av) * f64::from(bv[pos]);
                    }
                }
                let got = {
                    let (cc, cv) = c.row(r);
                    cc.binary_search(&(j as u32))
                        .map(|p| cv[p])
                        .unwrap_or(0.0)
                };
                assert!(
                    (f64::from(got) - want).abs() < 1e-4,
                    "C[{r},{j}] = {got}, want {want}"
                );
            }
        }
    }
}
