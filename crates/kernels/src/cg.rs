//! Conjugate Gradient — an end-to-end iterative solver whose inner loop
//! is nothing but the framework's load-balanced primitives: one SpMV (any
//! schedule) and three reductions per iteration. This is the "downstream
//! user" workload the paper's §2 composability goal describes: the solver
//! owns its control flow and composes library pieces inside it.

use crate::reduce::dot;
use loops::schedule::ScheduleKind;
use simt::{CostModel, GpuSpec, LaunchReport};
use sparse::Csr;

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgRun {
    /// The solution estimate.
    pub x: Vec<f32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖₂`.
    pub residual: f64,
    /// Accumulated report over every SpMV and reduction.
    pub report: LaunchReport,
}

/// Solve `A x = b` for symmetric positive-definite `A` with plain CG.
pub fn cg(
    spec: &GpuSpec,
    a: &Csr<f32>,
    b: &[f32],
    kind: ScheduleKind,
    tol: f64,
    max_iters: usize,
) -> simt::Result<CgRun> {
    assert_eq!(a.rows(), a.cols(), "CG needs a square (SPD) matrix");
    assert_eq!(b.len(), a.rows(), "rhs must match the matrix");
    let n = a.rows();
    let model = CostModel::standard();
    let mut x = vec![0.0f32; n];
    let mut r: Vec<f32> = b.to_vec(); // r = b − A·0
    let mut p = r.clone();
    let mut total: Option<LaunchReport> = None;
    let track = |rep: &LaunchReport, total: &mut Option<LaunchReport>| match total {
        Some(t) => t.accumulate(rep),
        None => *total = Some(rep.clone()),
    };

    let rr0 = dot(spec, &model, &r, &r)?;
    track(&rr0.report, &mut total);
    let mut rr = rr0.value;
    let b_norm = rr.sqrt().max(1e-30);
    let mut iterations = 0usize;
    while iterations < max_iters && rr.sqrt() / b_norm > tol {
        // q = A p  (the load-balanced kernel under test).
        let spmv = crate::spmv::spmv_with_model(spec, &model, a, &p, kind, crate::spmv::DEFAULT_BLOCK)?;
        track(&spmv.report, &mut total);
        let q = spmv.y;
        let pq = dot(spec, &model, &p, &q)?;
        track(&pq.report, &mut total);
        if pq.value <= 0.0 {
            break; // not SPD (or numerically exhausted)
        }
        let alpha = (rr / pq.value) as f32;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rr_new = dot(spec, &model, &r, &r)?;
        track(&rr_new.report, &mut total);
        let beta = (rr_new.value / rr) as f32;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new.value;
        iterations += 1;
    }
    // True residual (guards against accumulated drift).
    let final_spmv = crate::spmv::spmv_with_model(spec, &model, a, &x, kind, crate::spmv::DEFAULT_BLOCK)?;
    track(&final_spmv.report, &mut total);
    let residual = b
        .iter()
        .zip(&final_spmv.y)
        .map(|(bi, axi)| {
            let d = f64::from(*bi) - f64::from(*axi);
            d * d
        })
        .sum::<f64>()
        .sqrt();
    Ok(CgRun {
        x,
        iterations,
        residual,
        report: total.expect("at least the initial reduction ran"),
    })
}

/// A symmetric positive-definite test matrix: the 5-point grid Laplacian
/// plus a diagonal shift (strictly diagonally dominant ⇒ SPD).
pub fn spd_laplacian(nx: usize, ny: usize) -> Csr<f32> {
    let n = nx * ny;
    let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(5 * n);
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let c = idx(x, y);
            triplets.push((c, c, 4.5)); // 4 neighbors + 0.5 shift
            if x > 0 {
                triplets.push((c, idx(x - 1, y), -1.0));
            }
            if x + 1 < nx {
                triplets.push((c, idx(x + 1, y), -1.0));
            }
            if y > 0 {
                triplets.push((c, idx(x, y - 1), -1.0));
            }
            if y + 1 < ny {
                triplets.push((c, idx(x, y + 1), -1.0));
            }
        }
    }
    Csr::from_triplets(n, n, triplets).expect("laplacian is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_the_laplacian_under_several_schedules() {
        let spec = GpuSpec::v100();
        let a = spd_laplacian(24, 24);
        let x_true = sparse::dense::test_vector(a.cols());
        let b = a.spmv_ref(&x_true);
        for kind in [
            ScheduleKind::MergePath,
            ScheduleKind::ThreadMapped,
            ScheduleKind::WarpMapped,
        ] {
            let run = cg(&spec, &a, &b, kind, 1e-7, 2_000).unwrap();
            assert!(
                run.residual < 1e-3,
                "{kind}: residual {} after {} iterations",
                run.residual,
                run.iterations
            );
            let max_err = run
                .x
                .iter()
                .zip(&x_true)
                .map(|(g, w)| (g - w).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 1e-2, "{kind}: max err {max_err}");
        }
    }

    #[test]
    fn converges_in_bounded_iterations_on_well_conditioned_systems() {
        let spec = GpuSpec::v100();
        let a = spd_laplacian(16, 16);
        let b = vec![1.0f32; a.rows()];
        let run = cg(&spec, &a, &b, ScheduleKind::MergePath, 1e-8, 1_000).unwrap();
        assert!(run.iterations < 200, "took {} iterations", run.iterations);
        assert!(run.residual < 1e-4);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let spec = GpuSpec::test_tiny();
        let a = spd_laplacian(8, 8);
        let run = cg(&spec, &a, &vec![0.0; a.rows()], ScheduleKind::ThreadMapped, 1e-8, 100)
            .unwrap();
        assert_eq!(run.iterations, 0);
        assert!(run.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn report_grows_with_iterations() {
        let spec = GpuSpec::v100();
        let a = spd_laplacian(12, 12);
        let b = vec![1.0f32; a.rows()];
        let loose = cg(&spec, &a, &b, ScheduleKind::MergePath, 1e-2, 1_000).unwrap();
        let tight = cg(&spec, &a, &b, ScheduleKind::MergePath, 1e-8, 1_000).unwrap();
        assert!(tight.iterations > loose.iterations);
        assert!(tight.report.elapsed_ms() > loose.report.elapsed_ms());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular_systems() {
        let a = sparse::gen::uniform(4, 5, 10, 1);
        let _ = cg(&GpuSpec::test_tiny(), &a, &[0.0; 4], ScheduleKind::MergePath, 1e-6, 10);
    }
}
