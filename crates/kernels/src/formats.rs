//! Format-generic kernel execution (paper §5.2.1): the same fold, any
//! storage format.
//!
//! The engine already runs over any [`TileSet`](loops::work::TileSet);
//! this module adds the kernel half of format polymorphism — a single
//! [`TileExec`] body written against [`MatrixView`] that serves CSR,
//! canonical COO, ELL, and the hybrid ELL+COO split, plus the
//! [`PreparedOperand`] conversion wrapper a serving runtime caches and
//! amortizes.
//!
//! **Bitwise contract.** For every supported (schedule × format) cell the
//! result vector is bit-for-bit equal to the CSR path under the same
//! schedule, because the per-row fold order never changes:
//!
//! * **COO** (canonical): the derived tile offsets equal CSR's row
//!   offsets and the value/column arrays are byte-identical, so *every*
//!   schedule — including merge-path and the cooperative reducers —
//!   makes identical decisions and identical charges.
//! * **ELL**: rows are front-packed in CSR order with padding only at
//!   the end; the flat-span schedules (thread-mapped, work-queue) hand
//!   each row out as one complete span, and the fold skips padded slots,
//!   reproducing CSR's left-to-right fold exactly. Schedules that split
//!   or interleave rows (merge-path, cooperative) see the *padded*
//!   geometry and are coerced to thread-mapped.
//! * **Hybrid**: one *fused* launch of `rows + tail_nnz` threads. The
//!   low threads fold their row's constant-width slab lane (the first
//!   `width` CSR entries) and store the partial; the high threads
//!   scatter the COO tail, one entry each, in ascending entry index
//!   order. Slab stores occupy strictly lower block indices than tail
//!   adds, so the sequential backend runs every store before any add,
//!   and the parallel backend replays the deferred float adds after
//!   the workers join — both orders equal `store(p); fetch_add(v₁);
//!   fetch_add(v₂)…`, the same fold as CSR's `((p + v₁) + v₂)…`. The
//!   fused geometry is one-thread-per-tile by construction, so hybrid
//!   serves coerce to thread-mapped.
//!
//! CSC stays convertible (round-trip tests, column workloads) but is not
//! servable here: its tiles are columns, so a row fold would need a
//! scatter with a different accumulation order.

use crate::spmm::SpmmRun;
use crate::spmv::{SpmvRun, DEFAULT_BLOCK};
use loops::adapters::{CooTiles, EllTiles, HybridSlabTiles};
use loops::dispatch::{span_atoms, BalancedLaunch, KernelPlan, TileExec};
use loops::schedule::{ScheduleKind, TileSpan};
use loops::view::MatrixView;
use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx, LaunchConfig};
use sparse::{convert, Coo, Csc, Csr, DenseMatrix, Ell, FormatKind, Hybrid};

/// Modeled conversion cost per element touched, deterministic (no wall
/// clock) so replayed traces and CI byte-diffs stay stable. A format
/// conversion is a streaming permutation: each element moves ~24 bytes
/// (read the triplet, write the new layout) at device bandwidth
/// (~900 GB/s on the V100 profile) ≈ 2.5 × 10⁻⁸ ms.
pub const CONVERT_MS_PER_ELEMENT: f64 = 2.5e-8;

/// Hard safety bound on ELL fill for [`PreparedOperand::prepare`]: a
/// conversion that would inflate storage beyond this many slots per
/// nonzero fails instead of allocating a slab orders of magnitude larger
/// than the matrix. (The candidate filter is far stricter —
/// [`loops::dispatch::ELL_MAX_FILL`] — this bound only protects direct
/// callers.)
pub const ELL_SERVE_MAX_FILL: f64 = 64.0;

/// A matrix converted to a serving format, with the modeled one-time
/// conversion cost attached — the unit a runtime caches per
/// `(fingerprint, format)` and amortizes across warm hits.
#[derive(Debug, Clone)]
pub struct PreparedOperand {
    format: FormatKind,
    convert_ms: f64,
    data: OperandData,
}

#[derive(Debug, Clone)]
enum OperandData {
    /// CSR serves from the caller's matrix; nothing is materialized.
    Csr,
    Coo(Coo<f32>),
    Csc(Csc<f32>),
    Ell(Ell<f32>),
    Hybrid(Hybrid<f32>),
}

impl PreparedOperand {
    /// Convert `a` to `format`, charging the modeled one-time cost.
    ///
    /// Errors with [`simt::LaunchError::InvalidWork`] when the format
    /// cannot represent the matrix within bounds (ELL fill beyond
    /// [`ELL_SERVE_MAX_FILL`]).
    pub fn prepare(a: &Csr<f32>, format: FormatKind) -> simt::Result<Self> {
        let (data, elements) = match format {
            FormatKind::Csr => (OperandData::Csr, 0usize),
            FormatKind::Coo => (OperandData::Coo(convert::csr_to_coo(a)), a.nnz()),
            FormatKind::Csc => (OperandData::Csc(convert::csr_to_csc(a)), 2 * a.nnz()),
            FormatKind::Ell => {
                let e = Ell::from_csr(a, ELL_SERVE_MAX_FILL).map_err(|e| {
                    simt::LaunchError::InvalidWork {
                        reason: format!("ELL conversion refused: {e}"),
                    }
                })?;
                let slots = e.slots();
                (OperandData::Ell(e), slots)
            }
            FormatKind::Hybrid => {
                let h = Hybrid::from_csr_auto(a);
                let elements = h.slab_slots() + 2 * h.tail_nnz();
                (OperandData::Hybrid(h), elements)
            }
        };
        Ok(Self {
            format,
            convert_ms: elements as f64 * CONVERT_MS_PER_ELEMENT,
            data,
        })
    }

    /// The format this operand serves.
    pub fn format(&self) -> FormatKind {
        self.format
    }

    /// Modeled one-time conversion cost, charged once on the cold path
    /// and excluded from warm-hit measurements.
    pub fn convert_ms(&self) -> f64 {
        self.convert_ms
    }

    /// The schedule that will actually run for this operand (non-CSR
    /// formats coerce, see [`coerce_for_format`]).
    pub fn effective_schedule(&self, kind: ScheduleKind) -> ScheduleKind {
        coerce_for_format(self.format, kind)
    }

    /// The materialized CSC matrix when this operand was prepared as
    /// CSC — kept for conversion/column workloads; the row-fold kernels
    /// refuse to serve it.
    pub fn csc(&self) -> Option<&Csc<f32>> {
        match &self.data {
            OperandData::Csc(m) => Some(m),
            _ => None,
        }
    }
}

/// The schedules a format actually runs. CSR and canonical COO share
/// CSR's geometry, so every schedule is legal; ELL only keeps its
/// bitwise contract under the complete-tile flat-span schedules and
/// coerces everything else to thread-mapped (mirroring SpMM's
/// merge-path coercion); hybrid always runs the fused
/// one-thread-per-tile launch, i.e. thread-mapped.
pub fn coerce_for_format(format: FormatKind, kind: ScheduleKind) -> ScheduleKind {
    match format {
        FormatKind::Csr | FormatKind::Coo | FormatKind::Csc => kind,
        FormatKind::Ell => match kind {
            ScheduleKind::ThreadMapped | ScheduleKind::WorkQueue(_) => kind,
            _ => ScheduleKind::ThreadMapped,
        },
        FormatKind::Hybrid => ScheduleKind::ThreadMapped,
    }
}

/// SpMV written once against [`MatrixView`]: identical fold (and
/// identical charges) to the CSR-specific body, with padded slots
/// skipped.
struct ViewSpmvExec<'a, M: MatrixView> {
    m: &'a M,
    x: &'a [f32],
    y: GlobalMem<'a, f32>,
}

impl<M: MatrixView> TileExec for ViewSpmvExec<'_, M> {
    const COOPERATIVE_REDUCE: bool = true;

    fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
        let mut sum = 0.0f32;
        for nz in span_atoms(span, lane) {
            if let Some((c, v)) = self.m.entry(nz) {
                sum += v * self.x[c as usize];
            }
        }
        if span.complete {
            self.y.store(span.tile, sum);
            lane.write_bytes(4);
        } else if !span.atoms.is_empty() {
            self.y.fetch_add(span.tile, sum);
            lane.charge_atomic();
        }
    }

    fn atom_value(&self, _lane: &LaneCtx<'_>, _tile: usize, nz: usize) -> f32 {
        self.m
            .entry(nz)
            .map_or(0.0, |(c, v)| v * self.x[c as usize])
    }

    fn tile_done(&self, lane: &LaneCtx<'_>, tile: usize, sum: f32) {
        self.y.store(tile, sum);
        lane.write_bytes(4);
    }
}

/// SpMM written once against [`MatrixView`]: Listing 4's column loop
/// around the same PAD-aware fold.
struct ViewSpmmExec<'a, M: MatrixView> {
    m: &'a M,
    b: &'a DenseMatrix<f32>,
    c: GlobalMem<'a, f32>,
    n_cols: usize,
}

impl<M: MatrixView> TileExec for ViewSpmmExec<'_, M> {
    const COOPERATIVE_REDUCE: bool = false;

    fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
        for col in loops::ranges::step_range(0, self.n_cols, 1) {
            let mut sum = 0.0f32;
            for nz in span_atoms(span, lane) {
                if let Some((ci, v)) = self.m.entry(nz) {
                    sum += v * self.b.get(ci as usize, col);
                }
            }
            let out = span.tile * self.n_cols + col;
            if span.complete {
                self.c.store(out, sum);
                lane.write_bytes(4);
            } else if !span.atoms.is_empty() {
                self.c.fetch_add(out, sum);
                lane.charge_atomic();
            }
        }
    }
}

/// The fused hybrid SpMV: one launch of `rows + tail_nnz` threads.
/// Threads below `rows` fold their row's constant-width slab lane and
/// store the partial; the threads above scatter the COO tail, one entry
/// each, in ascending entry order (charged like the standalone COO
/// scatter kernel). Fusing the passes drops the second launch's
/// overhead, and the slab width is a launch constant, so — unlike a
/// CSR row — a slab row needs no row-extent read: its only bookkeeping
/// traffic is the y store.
///
/// **Bitwise contract.** The grid covers all `rows + tail_nnz` threads
/// in one pass, so slab stores occupy strictly lower block indices than
/// tail adds. The sequential backend therefore runs every store before
/// any add, and the parallel backend applies stores live and replays
/// the deferred float adds after the workers join, in (block, program)
/// order — both execute `store(p); fetch_add(v₁); fetch_add(v₂)…` per
/// row, the CSR fold.
fn hybrid_spmv_fused(
    spec: &GpuSpec,
    model: &CostModel,
    h: &Hybrid<f32>,
    x: &[f32],
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    let rows = h.rows();
    let width = h.width();
    let spill = h.tail_nnz();
    let n = rows + spill;
    let mut y = vec![0.0f32; rows];
    let (scols, svals) = (h.slab_col_indices(), h.slab_values());
    let (trows, tcols, tvals) = (
        h.tail().row_indices(),
        h.tail().col_indices(),
        h.tail().values(),
    );
    let block = block_dim.min(spec.max_threads_per_block);
    let report = {
        let gy = GlobalMem::new(&mut y);
        simt::launch_threads_with_model(
            spec,
            model,
            LaunchConfig::over_threads(n.max(1) as u64, block),
            |t| {
                let i = t.global_thread_id() as usize;
                if i < rows {
                    // Tile bookkeeping cycles without the row-offset
                    // read: the slab extent is `width`, a constant.
                    t.charge(t.model().tile_cost);
                    let mut sum = 0.0f32;
                    for s in i * width..(i + 1) * width {
                        t.charge(t.model().atom_cost);
                        t.charge_range_iter();
                        // Every slot reads its column index; only stored
                        // entries load the value and gather from x —
                        // padded slots skip both, so they cost 4 of the
                        // model's `bytes_per_atom` (col + val + x).
                        t.read_bytes(4);
                        let c = scols[s];
                        if c != sparse::ell::PAD {
                            t.read_bytes((t.model().bytes_per_atom as u64).saturating_sub(4));
                            sum += svals[s] * x[c as usize];
                        }
                    }
                    gy.store(i, sum);
                    t.write_bytes(4);
                } else if i < n {
                    let k = i - rows;
                    t.charge_atom();
                    gy.fetch_add(trows[k] as usize, tvals[k] * x[tcols[k] as usize]);
                    t.charge_atomic();
                }
            },
        )?
    };
    Ok(SpmvRun {
        y,
        report,
        schedule: ScheduleKind::ThreadMapped,
    })
}

/// Like [`scatter_tail`] but for SpMM: each tail entry contributes to
/// every column of its output row, in column order.
fn scatter_tail_spmm(
    spec: &GpuSpec,
    model: &CostModel,
    tail: &Coo<f32>,
    b: &DenseMatrix<f32>,
    c: &mut [f32],
    block_dim: u32,
) -> simt::Result<Option<simt::LaunchReport>> {
    let n = tail.nnz();
    if n == 0 {
        return Ok(None);
    }
    let n_cols = b.cols();
    let (rows, cols, vals) = (tail.row_indices(), tail.col_indices(), tail.values());
    let block = block_dim.min(spec.max_threads_per_block);
    let report = {
        let gc = GlobalMem::new(c);
        simt::launch_threads_with_model(
            spec,
            model,
            LaunchConfig::over_threads(n as u64, block),
            |t| {
                let i = t.global_thread_id() as usize;
                if i < n {
                    t.charge_atom();
                    for col in 0..n_cols {
                        gc.fetch_add(
                            rows[i] as usize * n_cols + col,
                            vals[i] * b.get(cols[i] as usize, col),
                        );
                        t.charge_atomic();
                    }
                }
            },
        )?
    };
    Ok(Some(report))
}

/// Run SpMV over a prepared operand with the given schedule. `a` is the
/// CSR source the operand was prepared from (the CSR cell serves from it
/// directly). Unsupported (format × schedule) combinations coerce per
/// [`coerce_for_format`]; CSC is not servable and errors.
pub fn spmv_format(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    op: &PreparedOperand,
    x: &[f32],
    kind: ScheduleKind,
    block_dim: u32,
) -> simt::Result<SpmvRun> {
    let kind = coerce_for_format(op.format, kind);
    match &op.data {
        OperandData::Csr => crate::spmv::spmv_with_model(spec, model, a, x, kind, block_dim),
        OperandData::Coo(coo) => {
            assert_eq!(x.len(), coo.cols(), "x must have one entry per column");
            let work = CooTiles::try_new(coo)?;
            let mut y = vec![0.0f32; coo.rows()];
            let d = {
                let exec = ViewSpmvExec {
                    m: coo,
                    x,
                    y: GlobalMem::new(&mut y),
                };
                BalancedLaunch::new(spec, model, &work)
                    .block_dim(block_dim)
                    .run(kind, &exec)?
            };
            Ok(SpmvRun {
                y,
                report: d.report,
                schedule: d.schedule,
            })
        }
        OperandData::Csc(_) => Err(simt::LaunchError::InvalidWork {
            reason: "CSC serves column-major traversals, not row folds".to_owned(),
        }),
        OperandData::Ell(e) => {
            assert_eq!(x.len(), e.cols(), "x must have one entry per column");
            let work = EllTiles::new(e);
            let mut y = vec![0.0f32; e.rows()];
            let d = {
                let exec = ViewSpmvExec {
                    m: e,
                    x,
                    y: GlobalMem::new(&mut y),
                };
                BalancedLaunch::new(spec, model, &work)
                    .block_dim(block_dim)
                    .run(kind, &exec)?
            };
            Ok(SpmvRun {
                y,
                report: d.report,
                schedule: d.schedule,
            })
        }
        OperandData::Hybrid(h) => {
            assert_eq!(x.len(), h.cols(), "x must have one entry per column");
            hybrid_spmv_fused(spec, model, h, x, block_dim)
        }
    }
}

/// Prepare a reusable plan for [`spmv_format_with_plan`]. CSR and COO
/// keep every schedule's artifacts (their geometries are identical);
/// the padded formats coerce first, so their plans are always flat-span
/// (no merge table, no LRB bins).
pub fn prepare_format_plan(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    op: &PreparedOperand,
    kind: ScheduleKind,
    block_dim: u32,
) -> simt::Result<KernelPlan> {
    let kind = coerce_for_format(op.format, kind);
    match &op.data {
        OperandData::Csr => {
            let work = loops::adapters::CsrTiles::new(a);
            BalancedLaunch::new(spec, model, &work)
                .block_dim(block_dim)
                .prepare(kind)
        }
        OperandData::Coo(coo) => {
            let work = CooTiles::try_new(coo)?;
            BalancedLaunch::new(spec, model, &work)
                .block_dim(block_dim)
                .prepare(kind)
        }
        OperandData::Csc(_) => Err(simt::LaunchError::InvalidWork {
            reason: "CSC serves column-major traversals, not row folds".to_owned(),
        }),
        OperandData::Ell(e) => {
            let work = EllTiles::new(e);
            BalancedLaunch::new(spec, model, &work)
                .block_dim(block_dim)
                .prepare(kind)
        }
        OperandData::Hybrid(h) => {
            let work = HybridSlabTiles::new(h);
            BalancedLaunch::new(spec, model, &work)
                .block_dim(block_dim)
                .prepare(kind)
        }
    }
}

/// Run SpMV over a prepared operand under a prepared plan — bitwise
/// identical to [`spmv_format`] with the plan's schedule.
pub fn spmv_format_with_plan(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    op: &PreparedOperand,
    x: &[f32],
    plan: &KernelPlan,
) -> simt::Result<SpmvRun> {
    match &op.data {
        OperandData::Csr => crate::spmv::spmv_with_plan(spec, model, a, x, plan),
        OperandData::Coo(coo) => {
            assert_eq!(x.len(), coo.cols(), "x must have one entry per column");
            let work = CooTiles::try_new(coo)?;
            let mut y = vec![0.0f32; coo.rows()];
            let d = {
                let exec = ViewSpmvExec {
                    m: coo,
                    x,
                    y: GlobalMem::new(&mut y),
                };
                BalancedLaunch::new(spec, model, &work)
                    .block_dim(plan.block_dim)
                    .run_planned(plan, &exec)?
            };
            Ok(SpmvRun {
                y,
                report: d.report,
                schedule: d.schedule,
            })
        }
        OperandData::Csc(_) => Err(simt::LaunchError::InvalidWork {
            reason: "CSC serves column-major traversals, not row folds".to_owned(),
        }),
        OperandData::Ell(e) => {
            assert_eq!(x.len(), e.cols(), "x must have one entry per column");
            let work = EllTiles::new(e);
            let mut y = vec![0.0f32; e.rows()];
            let d = {
                let exec = ViewSpmvExec {
                    m: e,
                    x,
                    y: GlobalMem::new(&mut y),
                };
                BalancedLaunch::new(spec, model, &work)
                    .block_dim(plan.block_dim)
                    .run_planned(plan, &exec)?
            };
            Ok(SpmvRun {
                y,
                report: d.report,
                schedule: d.schedule,
            })
        }
        OperandData::Hybrid(h) => {
            assert_eq!(x.len(), h.cols(), "x must have one entry per column");
            hybrid_spmv_fused(spec, model, h, x, plan.block_dim)
        }
    }
}

/// Run SpMM over a prepared operand. CSR keeps its merge-path/thread-
/// mapped pair; COO shares it (identical geometry); the padded formats
/// run thread-mapped with the hybrid tail scattered per entry per
/// column.
pub fn spmm_format(
    spec: &GpuSpec,
    model: &CostModel,
    a: &Csr<f32>,
    op: &PreparedOperand,
    b: &DenseMatrix<f32>,
    kind: ScheduleKind,
) -> simt::Result<SpmmRun> {
    // SpMM's own coercion (merge-path or thread-mapped), then the
    // format's (padded formats drop merge-path too).
    let kind = coerce_for_format(
        op.format,
        if kind == ScheduleKind::MergePath {
            kind
        } else {
            ScheduleKind::ThreadMapped
        },
    );
    match &op.data {
        OperandData::Csr => crate::spmm::spmm_with_model(spec, model, a, b, kind),
        OperandData::Coo(coo) => {
            assert_eq!(coo.cols(), b.rows(), "inner dimensions must agree");
            let work = CooTiles::try_new(coo)?;
            let mut c = DenseMatrix::zeros(coo.rows(), b.cols());
            let d = {
                let exec = ViewSpmmExec {
                    m: coo,
                    b,
                    c: GlobalMem::new(c.as_mut_slice()),
                    n_cols: b.cols(),
                };
                BalancedLaunch::new(spec, model, &work).run(kind, &exec)?
            };
            Ok(SpmmRun {
                c,
                report: d.report,
                schedule: d.schedule,
            })
        }
        OperandData::Csc(_) => Err(simt::LaunchError::InvalidWork {
            reason: "CSC serves column-major traversals, not row folds".to_owned(),
        }),
        OperandData::Ell(e) => {
            assert_eq!(e.cols(), b.rows(), "inner dimensions must agree");
            let work = EllTiles::new(e);
            let mut c = DenseMatrix::zeros(e.rows(), b.cols());
            let d = {
                let exec = ViewSpmmExec {
                    m: e,
                    b,
                    c: GlobalMem::new(c.as_mut_slice()),
                    n_cols: b.cols(),
                };
                BalancedLaunch::new(spec, model, &work).run(kind, &exec)?
            };
            Ok(SpmmRun {
                c,
                report: d.report,
                schedule: d.schedule,
            })
        }
        OperandData::Hybrid(h) => {
            assert_eq!(h.cols(), b.rows(), "inner dimensions must agree");
            let work = HybridSlabTiles::new(h);
            let mut c = DenseMatrix::zeros(h.rows(), b.cols());
            let mut d = {
                let exec = ViewSpmmExec {
                    m: h,
                    b,
                    c: GlobalMem::new(c.as_mut_slice()),
                    n_cols: b.cols(),
                };
                BalancedLaunch::new(spec, model, &work).run(kind, &exec)?
            };
            if let Some(r) =
                scatter_tail_spmm(spec, model, h.tail(), b, c.as_mut_slice(), DEFAULT_BLOCK)?
            {
                d.report.accumulate(&r);
            }
            Ok(SpmmRun {
                c,
                report: d.report,
                schedule: d.schedule,
            })
        }
    }
}

/// PageRank with a format-generic inner SpMV: the power iteration runs
/// over `Mᵀ` prepared in `format`. Bitwise-identical ranks to
/// [`crate::pagerank::pagerank`] whenever the format's SpMV is bitwise-
/// identical to CSR's under the (coerced) schedule — every iteration
/// sees identical inputs, so the fold never diverges.
pub fn pagerank_format(
    spec: &GpuSpec,
    g: &crate::graph::Graph,
    kind: ScheduleKind,
    format: FormatKind,
    tol: f32,
    max_iters: usize,
) -> simt::Result<crate::pagerank::PageRankRun> {
    let n = g.num_vertices();
    assert!(n > 0, "graph must have vertices");
    let mt = crate::pagerank::normalized_transpose(g);
    let op = PreparedOperand::prepare(&mt, format)?;
    let dangling: Vec<usize> = (0..n).filter(|&u| g.degree(u) == 0).collect();
    let model = CostModel::standard();

    let mut rank = vec![1.0f32 / n as f32; n];
    let mut iterations = 0usize;
    let mut total: Option<simt::LaunchReport> = None;
    while iterations < max_iters {
        let run = spmv_format(spec, &model, &mt, &op, &rank, kind, DEFAULT_BLOCK)?;
        let dangling_mass: f32 = dangling.iter().map(|&u| rank[u]).sum();
        let teleport = (1.0 - crate::pagerank::DAMPING) / n as f32
            + crate::pagerank::DAMPING * dangling_mass / n as f32;
        let next: Vec<f32> = run
            .y
            .iter()
            .map(|&s| teleport + crate::pagerank::DAMPING * s)
            .collect();
        let delta: f32 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        match &mut total {
            Some(t) => t.accumulate(&run.report),
            None => total = Some(run.report),
        }
        iterations += 1;
        if delta < tol {
            break;
        }
    }
    Ok(crate::pagerank::PageRankRun {
        rank,
        iterations,
        report: total.expect("at least one iteration"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn csr_cell_is_the_plain_spmv_path() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(300, 300, 4_000, 1.8, 5);
        let x = sparse::dense::test_vector(300);
        let op = PreparedOperand::prepare(&a, FormatKind::Csr).unwrap();
        assert_eq!(op.convert_ms(), 0.0);
        for kind in [ScheduleKind::MergePath, ScheduleKind::Lrb] {
            let f = spmv_format(&spec, &model, &a, &op, &x, kind, DEFAULT_BLOCK).unwrap();
            let c = crate::spmv::spmv_with_model(&spec, &model, &a, &x, kind, DEFAULT_BLOCK)
                .unwrap();
            assert_eq!(bits(&f.y), bits(&c.y), "{kind}");
        }
    }

    #[test]
    fn coo_cell_is_bitwise_equal_under_every_schedule() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(400, 400, 6_000, 1.7, 6);
        let x = sparse::dense::test_vector(400);
        let op = PreparedOperand::prepare(&a, FormatKind::Coo).unwrap();
        assert!(op.convert_ms() > 0.0);
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::GroupMapped(16),
            ScheduleKind::WorkQueue(8),
            ScheduleKind::Lrb,
        ] {
            let f = spmv_format(&spec, &model, &a, &op, &x, kind, DEFAULT_BLOCK).unwrap();
            let c = crate::spmv::spmv_with_model(&spec, &model, &a, &x, kind, DEFAULT_BLOCK)
                .unwrap();
            assert_eq!(bits(&f.y), bits(&c.y), "{kind}");
            assert_eq!(f.schedule, c.schedule, "{kind}");
        }
    }

    #[test]
    fn ell_and_hybrid_cells_match_csr_bitwise_under_flat_span_schedules() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        // Skewed enough that the hybrid tail is non-empty.
        let a = sparse::gen::powerlaw(500, 500, 7_000, 1.8, 7);
        let x = sparse::dense::test_vector(500);
        let op = PreparedOperand::prepare(&a, FormatKind::Ell).unwrap();
        for kind in [ScheduleKind::ThreadMapped, ScheduleKind::WorkQueue(16)] {
            let f = spmv_format(&spec, &model, &a, &op, &x, kind, DEFAULT_BLOCK).unwrap();
            let c =
                crate::spmv::spmv_with_model(&spec, &model, &a, &x, kind, DEFAULT_BLOCK).unwrap();
            assert_eq!(bits(&f.y), bits(&c.y), "ell {kind}");
        }
        // Unsupported ELL schedules coerce to thread-mapped; hybrid
        // *always* runs the fused thread-mapped launch. Both stay
        // bitwise equal to CSR's thread-mapped fold.
        let csr_tm = crate::spmv::spmv_with_model(
            &spec,
            &model,
            &a,
            &x,
            ScheduleKind::ThreadMapped,
            DEFAULT_BLOCK,
        )
        .unwrap();
        let f = spmv_format(&spec, &model, &a, &op, &x, ScheduleKind::MergePath, DEFAULT_BLOCK)
            .unwrap();
        assert_eq!(f.schedule, ScheduleKind::ThreadMapped, "ell coerced");
        assert_eq!(bits(&f.y), bits(&csr_tm.y), "ell coerced");
        let op = PreparedOperand::prepare(&a, FormatKind::Hybrid).unwrap();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::WorkQueue(16),
            ScheduleKind::MergePath,
        ] {
            let f = spmv_format(&spec, &model, &a, &op, &x, kind, DEFAULT_BLOCK).unwrap();
            assert_eq!(f.schedule, ScheduleKind::ThreadMapped, "hybrid {kind}");
            assert_eq!(bits(&f.y), bits(&csr_tm.y), "hybrid {kind}");
        }
        // The hybrid really split: tail entries exist for this corpus.
        if let OperandData::Hybrid(h) = &op.data {
            assert!(h.tail_nnz() > 0, "test corpus should spill");
        } else {
            unreachable!()
        }
    }

    #[test]
    fn planned_format_runs_are_bitwise_identical() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(400, 400, 5_000, 1.8, 9);
        let x = sparse::dense::test_vector(400);
        for (format, kind) in [
            (FormatKind::Coo, ScheduleKind::MergePath),
            (FormatKind::Ell, ScheduleKind::ThreadMapped),
            (FormatKind::Hybrid, ScheduleKind::WorkQueue(16)),
        ] {
            let op = PreparedOperand::prepare(&a, format).unwrap();
            let plan = prepare_format_plan(&spec, &model, &a, &op, kind, DEFAULT_BLOCK).unwrap();
            let cold = spmv_format(&spec, &model, &a, &op, &x, kind, DEFAULT_BLOCK).unwrap();
            let warm = spmv_format_with_plan(&spec, &model, &a, &op, &x, &plan).unwrap();
            assert_eq!(bits(&cold.y), bits(&warm.y), "{format} {kind}");
            assert_eq!(cold.schedule, warm.schedule, "{format} {kind}");
        }
    }

    #[test]
    fn spmm_format_cells_match_csr_bitwise() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let a = sparse::gen::powerlaw(200, 200, 3_000, 1.8, 10);
        let b = DenseMatrix::from_fn(200, 3, |r, c| ((r * 7 + c) as f32).sin());
        let csr_tm = crate::spmm::spmm_with_model(&spec, &model, &a, &b, ScheduleKind::ThreadMapped)
            .unwrap();
        for format in [FormatKind::Coo, FormatKind::Ell, FormatKind::Hybrid] {
            let op = PreparedOperand::prepare(&a, format).unwrap();
            let f = spmm_format(&spec, &model, &a, &op, &b, ScheduleKind::ThreadMapped).unwrap();
            assert_eq!(
                bits(csr_tm.c.as_slice()),
                bits(f.c.as_slice()),
                "{format}"
            );
        }
        // COO also shares merge-path (identical geometry).
        let csr_mp =
            crate::spmm::spmm_with_model(&spec, &model, &a, &b, ScheduleKind::MergePath).unwrap();
        let op = PreparedOperand::prepare(&a, FormatKind::Coo).unwrap();
        let f = spmm_format(&spec, &model, &a, &op, &b, ScheduleKind::MergePath).unwrap();
        assert_eq!(bits(csr_mp.c.as_slice()), bits(f.c.as_slice()));
    }

    #[test]
    fn pagerank_format_matches_the_csr_path_bitwise() {
        let g = crate::graph::Graph::from_generator(sparse::gen::rmat(
            8,
            8,
            (0.57, 0.19, 0.19),
            21,
        ));
        let spec = GpuSpec::v100();
        let want = crate::pagerank::pagerank(&spec, &g, ScheduleKind::ThreadMapped, 1e-6, 50)
            .unwrap();
        for format in [FormatKind::Coo, FormatKind::Hybrid] {
            let run =
                pagerank_format(&spec, &g, ScheduleKind::ThreadMapped, format, 1e-6, 50).unwrap();
            assert_eq!(bits(&want.rank), bits(&run.rank), "{format}");
            assert_eq!(want.iterations, run.iterations, "{format}");
        }
    }

    #[test]
    fn csc_is_not_servable_and_says_why() {
        let a = sparse::gen::uniform(50, 50, 300, 3);
        let x = sparse::dense::test_vector(50);
        let op = PreparedOperand::prepare(&a, FormatKind::Csc).unwrap();
        let err = spmv_format(
            &GpuSpec::test_tiny(),
            &CostModel::standard(),
            &a,
            &op,
            &x,
            ScheduleKind::ThreadMapped,
            DEFAULT_BLOCK,
        )
        .unwrap_err();
        assert!(matches!(err, simt::LaunchError::InvalidWork { .. }));
    }

    #[test]
    fn ell_conversion_refuses_pathological_fill() {
        // One hub row of 5000 over 5000 rows of ~1: fill ≈ 2500.
        let a = sparse::gen::hub_rows(5_000, 5_000, 1, 5_000, 1, 30);
        let err = PreparedOperand::prepare(&a, FormatKind::Ell).unwrap_err();
        assert!(matches!(err, simt::LaunchError::InvalidWork { .. }));
    }
}
