//! # kernels — applications written against the load-balancing abstraction
//!
//! Stage three of the paper's pipeline (§3.3, §4.3): user-owned kernels
//! that consume load-balanced ranges. Everything here is expressed the way
//! the paper's listings are — a computation wrapped around schedule-
//! provided tiles/atoms — so switching schedules never touches the math:
//!
//! * [`mod@spmv`] — sparse matrix × dense vector under *every* schedule
//!   (Listing 3), the paper's benchmark application;
//! * [`spmm`] — sparse matrix × dense matrix: Listing 4's "one extra loop"
//!   around the same SpMV body;
//! * [`formats`] — the same kernels written once against
//!   [`loops::view::MatrixView`] and served from CSR/COO/ELL/hybrid, with
//!   the conversion wrapper the runtime caches (§5.2.1's format
//!   polymorphism);
//! * [`spgemm`] — Gustavson sparse × sparse with the two-kernel
//!   count-then-fill structure §5.3 sketches;
//! * [`graph`], [`traversal`], [`bfs`], [`sssp`], [`pagerank`] —
//!   data-centric graph algorithms (Listing 5): the *same* schedules
//!   load-balance frontier expansion and power iteration, which is the
//!   paper's reuse claim in action;
//! * [`spmv_multi`] — SpMV partitioned across a simulated multi-GPU node
//!   (the paper's §8 future work): the cross-device partition is itself a
//!   load-balancing schedule;
//! * [`triangle`] — triangle counting, the Logarithmic-Radix-Binning
//!   workload of §7, on the same traversal engine;
//! * [`reduce`], [`cg`] — device-wide reductions and a Conjugate Gradient
//!   solver composed from the framework's primitives (§3.3's cooperative
//!   algorithms, §2's composability goal);
//! * [`mod@reference`] — sequential ground-truth implementations every
//!   simulated kernel is validated against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod cg;
pub mod formats;
pub mod graph;
pub mod pagerank;
pub mod plan;
pub mod reduce;
pub mod reference;
pub mod spgemm;
pub mod spmm;
pub mod spmv;
pub mod spmv_multi;
pub mod sssp;
pub mod triangle;
pub mod traversal;

pub use formats::PreparedOperand;
pub use graph::{Frontier, Graph};
pub use plan::SpmvPlan;
pub use spmv::{spmv, SpmvRun};
