//! Graph substrate for the data-centric traversal kernels (§5.3).
//!
//! A [`Graph`] is a CSR adjacency structure with edge weights plus the
//! accessors Listing 5 uses (`get_neighbor`, `get_edge_weight`). A
//! [`Frontier`] is the set of active vertices of one traversal iteration;
//! under the abstraction it *is* a tile set — tiles are frontier vertices,
//! atoms are their incident edges — which is exactly how "sparse-linear-
//! algebra load balancing" transfers to graphs.

use loops::work::{CountedTiles, TileSet};
use sparse::Csr;

/// A directed, weighted graph in CSR adjacency form.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Csr<f32>,
}

impl Graph {
    /// Build from a CSR adjacency matrix (entry `(u,v,w)` = edge `u→v`
    /// with weight `w`; weights must be non-negative for SSSP).
    pub fn new(adj: Csr<f32>) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        Self { adj }
    }

    /// Build a random graph with non-negative weights from any generator
    /// output (weights are folded to `|w|`).
    pub fn from_generator(mut adj: Csr<f32>) -> Self {
        for v in adj.values_mut() {
            *v = v.abs();
        }
        Self::new(adj)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.rows()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj.row_len(u)
    }

    /// The flat edge-id range of `u`'s out-edges.
    pub fn edge_range(&self, u: usize) -> std::ops::Range<usize> {
        self.adj.row_range(u)
    }

    /// Listing 5's `get_neighbor`: destination of edge `e`.
    #[inline]
    pub fn neighbor(&self, e: usize) -> usize {
        self.adj.col_indices()[e] as usize
    }

    /// Listing 5's `get_edge_weight`.
    #[inline]
    pub fn edge_weight(&self, e: usize) -> f32 {
        self.adj.values()[e]
    }

    /// The underlying adjacency matrix.
    pub fn adjacency(&self) -> &Csr<f32> {
        &self.adj
    }
}

/// One iteration's active-vertex set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    vertices: Vec<u32>,
}

impl Frontier {
    /// A frontier holding exactly `src`.
    pub fn source(src: usize) -> Self {
        Self {
            vertices: vec![src as u32],
        }
    }

    /// Build from a dense activation bitmap.
    pub fn from_flags(flags: &[u32]) -> Self {
        Self {
            vertices: flags
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f != 0)
                .map(|(v, _)| v as u32)
                .collect(),
        }
    }

    /// Active vertices, ascending.
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when traversal has converged.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Total edges incident to the frontier (the iteration's atom count).
    pub fn work_size(&self, g: &Graph) -> usize {
        self.vertices
            .iter()
            .map(|&v| g.degree(v as usize))
            .sum()
    }

    /// Express this frontier as a tile set: tiles = frontier vertices,
    /// atoms = their incident edges. This is the bridge that lets *any*
    /// schedule in the framework balance a traversal iteration.
    pub fn tile_set(&self, g: &Graph) -> CountedTiles {
        CountedTiles::from_counts(self.vertices.iter().map(|&v| g.degree(v as usize)))
    }

    /// Map a (frontier tile, within-tile atom) pair back to a concrete
    /// edge id: `tile`'s vertex is `vertices[tile]`, and the tile's atoms
    /// are that vertex's edges in order.
    pub fn edge_of(&self, g: &Graph, tiles: &CountedTiles, tile: usize, atom: usize) -> usize {
        let within = atom - tiles.tile_offset(tile);
        g.edge_range(self.vertices[tile] as usize).start + within
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Graph {
        Graph::new(
            Csr::from_triplets(
                4,
                4,
                vec![
                    (0u32, 1u32, 1.0f32),
                    (0, 2, 2.0),
                    (1, 3, 3.0),
                    (2, 3, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn graph_accessors() {
        let g = g();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        let e = g.edge_range(0);
        assert_eq!(g.neighbor(e.start), 1);
        assert_eq!(g.edge_weight(e.start + 1), 2.0);
    }

    #[test]
    fn from_generator_makes_weights_nonnegative() {
        let adj = sparse::gen::uniform(30, 30, 200, 1);
        let g = Graph::from_generator(adj);
        for e in 0..g.num_edges() {
            assert!(g.edge_weight(e) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular_adjacency() {
        let _ = Graph::new(sparse::gen::uniform(3, 4, 5, 1));
    }

    #[test]
    fn frontier_tile_set_maps_edges_faithfully() {
        let g = g();
        let f = Frontier::from_flags(&[1, 0, 1, 0]); // vertices 0 and 2
        assert_eq!(f.len(), 2);
        assert_eq!(f.work_size(&g), 3); // deg(0)=2, deg(2)=1
        let tiles = f.tile_set(&g);
        assert_eq!(tiles.num_tiles(), 2);
        assert_eq!(tiles.num_atoms(), 3);
        // Tile 0 = vertex 0: atoms 0,1 → edges 0,1. Tile 1 = vertex 2:
        // atom 2 → vertex 2's only edge.
        assert_eq!(f.edge_of(&g, &tiles, 0, 0), 0);
        assert_eq!(f.edge_of(&g, &tiles, 0, 1), 1);
        let v2_edge = g.edge_range(2).start;
        assert_eq!(f.edge_of(&g, &tiles, 1, 2), v2_edge);
    }

    #[test]
    fn frontier_source_and_empty() {
        let f = Frontier::source(3);
        assert_eq!(f.vertices(), &[3]);
        let e = Frontier::from_flags(&[0, 0]);
        assert!(e.is_empty());
    }
}
