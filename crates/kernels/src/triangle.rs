//! Triangle counting — the application Logarithmic Radix Binning was
//! built for (paper §7: "used for the Triangle Counting graph algorithm
//! and more"), expressed in the load-balancing abstraction.
//!
//! Standard forward-orientation algorithm: orient each undirected edge
//! from the lower- to the higher-ranked endpoint (rank = degree, ties by
//! id), giving a DAG whose out-degrees are bounded by ~√(2m); every
//! triangle then appears exactly once as a wedge `u→v, u→w, v→w`, found
//! by intersecting the forward lists of an edge's endpoints. The work per
//! edge (`|N⁺(u)| + |N⁺(v)|` merge steps) varies wildly — the
//! load-imbalance profile LRB targets — so the tile set is: tiles =
//! vertices, atoms = forward edges, with the intersection cost charged
//! per merge step.

use crate::graph::Graph;
use loops::schedule::ScheduleKind;
use simt::{CostModel, GlobalMem, GpuSpec, LaunchReport};
use sparse::Csr;

/// Result of a simulated triangle count.
#[derive(Debug, Clone)]
pub struct TriangleRun {
    /// Number of triangles in the undirected graph.
    pub triangles: u64,
    /// Simulated launch report.
    pub report: LaunchReport,
}

/// Build the degree-ordered forward orientation of an undirected graph
/// (input adjacency must be symmetric; self-loops are dropped).
pub fn forward_orientation(g: &Graph) -> Csr<f32> {
    let n = g.num_vertices();
    let rank = |v: usize| (g.degree(v), v);
    let mut triplets = Vec::new();
    for u in 0..n {
        let (nbrs, _) = g.adjacency().row(u);
        for &v in nbrs {
            let v = v as usize;
            if v != u && rank(u) < rank(v) {
                triplets.push((u as u32, v as u32, 1.0f32));
            }
        }
    }
    Csr::from_triplets(n, n, triplets).expect("orientation is in-bounds")
}

/// Count triangles with the given schedule.
pub fn triangle_count(
    spec: &GpuSpec,
    g: &Graph,
    kind: ScheduleKind,
) -> simt::Result<TriangleRun> {
    let model = CostModel::standard();
    let dag = forward_orientation(g);
    let fwd = Graph::new(dag);
    // The whole forward DAG is one frontier: tiles = vertices, atoms =
    // forward edges — the same traversal engine BFS/SSSP use.
    let all: Vec<u32> = (0..fwd.num_vertices())
        .map(|v| u32::from(fwd.degree(v) > 0))
        .collect();
    let frontier = crate::graph::Frontier::from_flags(&all);
    let mut count = vec![0u64; 1];
    let report = {
        let gc = GlobalMem::new(&mut count);
        crate::traversal::expand(spec, &model, &fwd, &frontier, kind, |lane, edge, u| {
            let v = fwd.neighbor(edge);
            let found = intersect_forward(lane, &fwd, u, v);
            if found > 0 {
                gc.fetch_add(0, found);
                lane.charge_atomic();
            }
        })?
    };
    Ok(TriangleRun {
        triangles: count[0],
        report,
    })
}

/// Sorted-list intersection of `N⁺(u)` and `N⁺(v)`, charging one unit and
/// the corresponding traffic per merge step.
fn intersect_forward(lane: &simt::LaneCtx<'_>, fwd: &Graph, u: usize, v: usize) -> u64 {
    let (nu, _) = fwd.adjacency().row(u);
    let (nv, _) = fwd.adjacency().row(v);
    let (mut i, mut j, mut found) = (0usize, 0usize, 0u64);
    while i < nu.len() && j < nv.len() {
        lane.charge(1.0);
        lane.read_bytes(8);
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                found += 1;
                i += 1;
                j += 1;
            }
        }
    }
    found
}

/// CPU reference: same orientation + intersection, sequentially.
pub fn triangle_count_ref(g: &Graph) -> u64 {
    let dag = forward_orientation(g);
    let mut count = 0u64;
    for u in 0..dag.rows() {
        let (nu, _) = dag.row(u);
        for &v in nu {
            let (nv, _) = dag.row(v as usize);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Complete undirected graph on `n` vertices (symmetric adjacency).
    fn complete(n: u32) -> Graph {
        let mut triplets = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    triplets.push((u, v, 1.0f32));
                }
            }
        }
        Graph::new(Csr::from_triplets(n as usize, n as usize, triplets).unwrap())
    }

    /// Symmetrize a generator output into an undirected graph.
    fn undirected(adj: Csr<f32>) -> Graph {
        let t = sparse::convert::transpose(&adj);
        let mut triplets: Vec<(u32, u32, f32)> = Vec::new();
        for (r, c, _) in adj.iter().chain(t.iter()) {
            if r != c {
                triplets.push((r, c, 1.0));
            }
        }
        let mut coo = sparse::Coo::empty(adj.rows(), adj.cols());
        for (r, c, v) in triplets {
            coo.push(r, c, v).unwrap();
        }
        coo.canonicalize();
        Graph::new(sparse::convert::coo_to_csr(&coo))
    }

    #[test]
    fn complete_graphs_have_n_choose_3_triangles() {
        let spec = GpuSpec::test_tiny();
        for (n, want) in [(3u32, 1u64), (4, 4), (5, 10), (8, 56)] {
            let g = complete(n);
            assert_eq!(triangle_count_ref(&g), want, "reference K{n}");
            let run = triangle_count(&spec, &g, ScheduleKind::MergePath).unwrap();
            assert_eq!(run.triangles, want, "simulated K{n}");
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        // A band graph of width 1 (a path, symmetrized) has no triangles.
        let g = undirected(sparse::gen::banded(50, 1, 1));
        // (banded includes the diagonal; undirected() strips self-loops,
        // leaving the pure path structure plus distance-1 links.)
        let run = triangle_count(&GpuSpec::test_tiny(), &g, ScheduleKind::WarpMapped).unwrap();
        assert_eq!(run.triangles, triangle_count_ref(&g));
    }

    #[test]
    fn all_schedules_agree_on_rmat() {
        let g = undirected(sparse::gen::rmat(8, 6, (0.57, 0.19, 0.19), 71));
        let want = triangle_count_ref(&g);
        assert!(want > 0, "rmat should contain triangles");
        let spec = GpuSpec::test_tiny();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::WorkQueue(8),
            ScheduleKind::Lrb,
        ] {
            let run = triangle_count(&spec, &g, kind).unwrap();
            assert_eq!(run.triangles, want, "{kind}");
        }
    }

    #[test]
    fn orientation_halves_edges_and_bounds_outdegree() {
        let g = undirected(sparse::gen::powerlaw(300, 300, 4_000, 1.8, 72));
        let dag = forward_orientation(&g);
        assert_eq!(dag.nnz() * 2, g.num_edges(), "each edge oriented once");
        // Degree ordering keeps forward degrees in check: max forward
        // degree must not exceed the max total degree.
        let max_fwd = (0..dag.rows()).map(|v| dag.row_len(v)).max().unwrap();
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_fwd <= max_deg);
    }
}
