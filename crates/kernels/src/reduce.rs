//! Device-wide reduction and dot product — the parallel primitive §3.3
//! names when it says the consumed ranges can "combine the results with
//! neighboring threads to implement more complex algorithms such as
//! parallel reduce or scan".
//!
//! Two-level scheme: a grid-stride pass accumulates per-block partials
//! through a block-wide tree reduction (group collectives), then a single
//! block folds the partials. The iterative solvers ([`crate::cg`]) are
//! built on these.

use simt::{CostModel, GlobalMem, GpuSpec, LaunchConfig, LaunchReport};

/// Result of a device reduction.
#[derive(Debug, Clone)]
pub struct ReduceRun {
    /// The reduced value.
    pub value: f64,
    /// Accumulated report (two launches).
    pub report: LaunchReport,
}

/// Device-wide sum of `f(i)` for `i ∈ [0, n)`.
pub fn reduce_sum<F>(spec: &GpuSpec, model: &CostModel, n: usize, f: F) -> simt::Result<ReduceRun>
where
    F: Fn(usize) -> f64 + Sync,
{
    const BLOCK: u32 = 256;
    let grid = n
        .div_ceil(BLOCK as usize)
        .clamp(1, (spec.num_sms * 8) as usize) as u32;
    let mut partials = vec![0.0f64; grid as usize];
    // Pass 1: block partials (each block reduces its grid-stride share).
    let pass1 = {
        let gp = GlobalMem::new(&mut partials);
        simt::launch_groups_with_model(
            spec,
            model,
            LaunchConfig::new(grid, BLOCK),
            BLOCK,
            |g| {
                let vals = g.phase(|lane| {
                    let mut acc = 0.0f64;
                    let mut i = lane.global_thread_id() as usize;
                    while i < n {
                        lane.charge_atom();
                        acc += f(i);
                        i += lane.grid_size() as usize;
                    }
                    acc
                });
                let total = g.reduce_sum_f64(&vals);
                g.phase_for_each(|lane| {
                    if lane.group_rank() == 0 {
                        gp.store(lane.block_idx() as usize, total);
                        lane.write_bytes(8);
                    }
                });
            },
        )?
    };
    // Pass 2: one block folds the partials.
    let mut out = vec![0.0f64; 1];
    let pass2 = {
        let gp = GlobalMem::new(&mut partials);
        let go = GlobalMem::new(&mut out);
        simt::launch_groups_with_model(spec, model, LaunchConfig::new(1, BLOCK), BLOCK, |g| {
            let vals = g.phase(|lane| {
                let mut acc = 0.0f64;
                let mut i = lane.group_rank() as usize;
                while i < gp.len() {
                    lane.read_bytes(8);
                    acc += gp.load(i);
                    i += lane.group_size() as usize;
                }
                acc
            });
            let total = g.reduce_sum_f64(&vals);
            g.phase_for_each(|lane| {
                if lane.group_rank() == 0 {
                    go.store(0, total);
                    lane.write_bytes(8);
                }
            });
        })?
    };
    let mut report = pass1;
    report.accumulate(&pass2);
    Ok(ReduceRun {
        value: out[0],
        report,
    })
}

/// Device dot product `xᵀy`.
pub fn dot(
    spec: &GpuSpec,
    model: &CostModel,
    x: &[f32],
    y: &[f32],
) -> simt::Result<ReduceRun> {
    assert_eq!(x.len(), y.len(), "dot operands must match");
    reduce_sum(spec, model, x.len(), |i| f64::from(x[i]) * f64::from(y[i]))
}

/// Device L2 norm `‖x‖₂`.
pub fn norm2(spec: &GpuSpec, model: &CostModel, x: &[f32]) -> simt::Result<ReduceRun> {
    let mut r = reduce_sum(spec, model, x.len(), |i| {
        let v = f64::from(x[i]);
        v * v
    })?;
    r.value = r.value.sqrt();
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_sequential_for_varied_sizes() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        for n in [0usize, 1, 7, 256, 1000, 100_000] {
            let run = reduce_sum(&spec, &model, n, |i| i as f64).unwrap();
            let want = (n as f64 - 1.0) * n as f64 / 2.0;
            let want = if n == 0 { 0.0 } else { want };
            assert!(
                (run.value - want).abs() < 1e-6 * want.abs().max(1.0),
                "n={n}: {} vs {want}",
                run.value
            );
        }
    }

    #[test]
    fn dot_and_norm_agree_with_reference() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let x = sparse::dense::test_vector(10_000);
        let y: Vec<f32> = x.iter().map(|v| v * 0.5 - 0.1).collect();
        let want: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum();
        let got = dot(&spec, &model, &x, &y).unwrap().value;
        assert!((got - want).abs() < 1e-6 * want.abs());
        let n2 = norm2(&spec, &model, &x).unwrap().value;
        let want_n: f64 = x.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt();
        assert!((n2 - want_n).abs() < 1e-9 * want_n.max(1.0));
    }

    #[test]
    fn reduction_is_deterministic() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let x = sparse::dense::test_vector(50_000);
        let a = dot(&spec, &model, &x, &x).unwrap().value;
        let b = dot(&spec, &model, &x, &x).unwrap().value;
        assert_eq!(a, b);
    }

    #[test]
    fn report_covers_two_kernels() {
        let spec = GpuSpec::v100();
        let model = CostModel::standard();
        let run = reduce_sum(&spec, &model, 1000, |_| 1.0).unwrap();
        assert_eq!(run.value, 1000.0);
        assert!(run.report.timing.overhead_ms >= 2.0 * spec.launch_overhead_us * 1e-3 - 1e-12);
    }
}
