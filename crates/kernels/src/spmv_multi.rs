//! Multi-GPU SpMV — the paper's §8 future work, built on the same
//! abstraction: *the partition across devices is itself a load-balancing
//! schedule*, one level above the intra-device one.
//!
//! The matrix is split into contiguous row blocks, one per device. Two
//! partitioners are provided, mirroring the intra-device story exactly:
//!
//! * [`Partition::RowBlocks`] — equal *rows* per device: the
//!   thread-mapped schedule writ large, and just as vulnerable to skew
//!   (a device that draws the hub rows becomes the node's long pole);
//! * [`Partition::NnzBalanced`] — equal *atoms* per device via a binary
//!   search over the row offsets: merge-path's insight applied across
//!   the GPU boundary.
//!
//! Each device runs the ordinary single-GPU kernel (any
//! [`ScheduleKind`]) on its block; the node report adds the interconnect
//! cost of broadcasting `x` and gathering `y`.

use crate::spmv::{spmv_with_model, SpmvRun, DEFAULT_BLOCK};
use loops::schedule::ScheduleKind;
use simt::multi::{combine, MultiGpuSpec, MultiLaunchReport};
use simt::CostModel;
use sparse::Csr;

/// How rows are divided among devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Equal row counts per device.
    RowBlocks,
    /// Equal nonzero counts per device (binary search on row offsets).
    NnzBalanced,
}

/// Result of a multi-device SpMV.
#[derive(Debug, Clone)]
pub struct MultiSpmvRun {
    /// The full output vector.
    pub y: Vec<f32>,
    /// Node-level report (per-device reports inside).
    pub report: MultiLaunchReport,
    /// The row boundaries used (`num_devices + 1` entries).
    pub boundaries: Vec<usize>,
}

/// Compute the row boundaries for a partition.
pub fn partition_rows(a: &Csr<f32>, devices: u32, p: Partition) -> Vec<usize> {
    let d = devices.max(1) as usize;
    let mut bounds = Vec::with_capacity(d + 1);
    bounds.push(0);
    match p {
        Partition::RowBlocks => {
            for i in 1..d {
                bounds.push(a.rows() * i / d);
            }
        }
        Partition::NnzBalanced => {
            let offsets = a.row_offsets();
            for i in 1..d {
                let target = a.nnz() * i / d;
                // First row whose starting offset reaches the target.
                let row = offsets.partition_point(|&o| o < target);
                bounds.push(row.min(a.rows()).max(*bounds.last().expect("non-empty")));
            }
        }
    }
    bounds.push(a.rows());
    bounds
}

/// Run SpMV across a multi-GPU node.
pub fn spmv_multi(
    mspec: &MultiGpuSpec,
    a: &Csr<f32>,
    x: &[f32],
    kind: ScheduleKind,
    partition: Partition,
) -> simt::Result<MultiSpmvRun> {
    assert_eq!(x.len(), a.cols(), "x must have one entry per column");
    let model = CostModel::standard();
    let boundaries = partition_rows(a, mspec.num_devices, partition);
    let mut y = vec![0.0f32; a.rows()];
    let mut per_device = Vec::with_capacity(mspec.num_devices as usize);
    for w in boundaries.windows(2) {
        let block = a.row_slice(w[0]..w[1]);
        let run: SpmvRun = spmv_with_model(&mspec.device, &model, &block, x, kind, DEFAULT_BLOCK)?;
        y[w[0]..w[1]].copy_from_slice(&run.y);
        per_device.push(run.report);
    }
    // Interconnect: broadcast x (switched links deliver to all devices in
    // parallel — one x-transfer of wall time) and gather the y slices
    // (each device returns its block concurrently; the longest slice
    // bounds the wall time).
    let comm_bytes = if mspec.num_devices > 1 {
        let max_slice_rows = boundaries
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0) as u64;
        x.len() as u64 * 4 + max_slice_rows * 4
    } else {
        0
    };
    let report = combine(per_device, comm_bytes, mspec);
    Ok(MultiSpmvRun {
        y,
        report,
        boundaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_rows_monotonically() {
        let a = sparse::gen::powerlaw(10_000, 10_000, 160_000, 1.8, 81);
        for p in [Partition::RowBlocks, Partition::NnzBalanced] {
            for d in [1u32, 2, 3, 8] {
                let b = partition_rows(&a, d, p);
                assert_eq!(b.len(), d as usize + 1);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), a.rows());
                assert!(b.windows(2).all(|w| w[0] <= w[1]), "{p:?} d={d}: {b:?}");
            }
        }
    }

    #[test]
    fn nnz_balanced_evens_out_skewed_work() {
        let a = sparse::gen::powerlaw(20_000, 20_000, 400_000, 1.7, 82);
        let by_rows = partition_rows(&a, 4, Partition::RowBlocks);
        let by_nnz = partition_rows(&a, 4, Partition::NnzBalanced);
        let spread = |b: &[usize]| {
            let shares: Vec<usize> = b
                .windows(2)
                .map(|w| a.row_offsets()[w[1]] - a.row_offsets()[w[0]])
                .collect();
            let max = *shares.iter().max().unwrap() as f64;
            let mean = a.nnz() as f64 / shares.len() as f64;
            max / mean
        };
        assert!(spread(&by_nnz) < 1.1, "nnz-balanced spread {}", spread(&by_nnz));
        assert!(spread(&by_nnz) <= spread(&by_rows));
    }

    #[test]
    fn multi_gpu_result_matches_reference_for_all_configs() {
        let a = sparse::gen::uniform(3_000, 2_500, 40_000, 83);
        let x = sparse::dense::test_vector(a.cols());
        let want = a.spmv_ref(&x);
        for d in [1u32, 2, 4] {
            for p in [Partition::RowBlocks, Partition::NnzBalanced] {
                let mspec = MultiGpuSpec::test_tiny(d);
                let run = spmv_multi(&mspec, &a, &x, ScheduleKind::MergePath, p).unwrap();
                let err = crate::spmv::max_rel_error(&run.y, &want);
                assert!(err < 2e-3, "d={d} {p:?}: err {err}");
                assert_eq!(run.report.per_device.len(), d as usize);
            }
        }
    }

    #[test]
    fn nnz_balancing_beats_row_blocks_on_hub_matrices() {
        // All the work in the first rows: equal-rows gives device 0
        // everything; nnz-balancing splits it.
        let mut counts = vec![0usize; 40_000];
        for c in counts.iter_mut().take(4_000) {
            *c = 100;
        }
        let a = {
            let mut triplets = Vec::new();
            for (r, &len) in counts.iter().enumerate() {
                for k in 0..len {
                    let col = (r * 31 + k * 97) % 40_000;
                    triplets.push((r as u32, col as u32, 0.5f32));
                }
            }
            Csr::from_triplets(40_000, 40_000, triplets).unwrap()
        };
        let x = sparse::dense::test_vector(a.cols());
        let mspec = MultiGpuSpec::dgx_v100(4);
        let rows = spmv_multi(&mspec, &a, &x, ScheduleKind::MergePath, Partition::RowBlocks).unwrap();
        let nnz = spmv_multi(&mspec, &a, &x, ScheduleKind::MergePath, Partition::NnzBalanced).unwrap();
        assert!(
            nnz.report.critical_device_ms() < rows.report.critical_device_ms(),
            "nnz {} vs rows {}",
            nnz.report.critical_device_ms(),
            rows.report.critical_device_ms()
        );
        assert!(rows.report.device_imbalance() > nnz.report.device_imbalance());
    }

    #[test]
    fn scaling_reduces_critical_device_time() {
        let a = sparse::gen::uniform(200_000, 200_000, 3_200_000, 85);
        let x = sparse::dense::test_vector(a.cols());
        let t1 = spmv_multi(&MultiGpuSpec::dgx_v100(1), &a, &x, ScheduleKind::MergePath, Partition::NnzBalanced)
            .unwrap()
            .report
            .critical_device_ms();
        let t4 = spmv_multi(&MultiGpuSpec::dgx_v100(4), &a, &x, ScheduleKind::MergePath, Partition::NnzBalanced)
            .unwrap()
            .report
            .critical_device_ms();
        assert!(t4 < t1, "4-device {t4} should beat 1-device {t1}");
    }
}
