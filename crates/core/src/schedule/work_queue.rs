//! A *dynamic* load-balancing schedule: a global work queue.
//!
//! The paper's abstraction "aims to support both static and dynamic
//! schedules" (§Abstract); the static family (thread/warp/block/group/
//! merge-path) fixes the work→processor map before launch, while a
//! dynamic schedule discovers it at run time. This is the classic
//! persistent-kernel pattern the related work builds entire systems
//! around (Tzeng et al., CUIRRE, Atos — §7): a fixed, device-filling
//! launch in which every thread loops, claiming a chunk of tiles from a
//! device-global atomic counter until the queue runs dry.
//!
//! ## Simulation note
//!
//! On hardware the queue's claims interleave adaptively: whichever warp
//! finishes first grabs the next chunk. The simulator executes lanes to
//! completion, so a literal atomic counter would let the first simulated
//! lane drain the entire queue — a simulation artifact, not a schedule
//! property. We therefore model the *fair-progress* approximation of a
//! dynamic queue: claims are served round-robin across the persistent
//! threads, and every claim is charged the global-atomic cost the real
//! counter would incur. This captures the two things that distinguish
//! the dynamic schedule analytically — problem-size-independent launch
//! shape and per-chunk claiming overhead — while its adaptive advantage
//! on heterogeneous chunks is (conservatively) not credited.

use crate::ranges::{step_range, Charged, StepRange};
use crate::work::TileSet;
use simt::{LaneCtx, LaunchConfig};

/// Dynamic work-queue schedule over a tile set.
#[derive(Debug, Clone, Copy)]
pub struct WorkQueueSchedule<'w, W> {
    work: &'w W,
    chunk: usize,
}

impl<'w, W: TileSet> WorkQueueSchedule<'w, W> {
    /// Create a schedule claiming `chunk` consecutive tiles per grab
    /// (larger chunks amortize the atomic; smaller chunks balance
    /// better). A zero chunk is clamped to 1 here — the guard every call
    /// site used to carry — so `WorkQueue(0)` can never panic or spin.
    pub fn new(work: &'w W, chunk: usize) -> Self {
        Self {
            work,
            chunk: chunk.max(1),
        }
    }

    /// A launch sized like a persistent kernel: enough blocks to fill
    /// every SM at full occupancy, independent of the problem size.
    pub fn launch_config(&self, spec: &simt::GpuSpec, block_dim: u32) -> LaunchConfig {
        let occ = simt::Occupancy::compute(spec, block_dim, 0)
            .map(|o| o.blocks_per_sm)
            .unwrap_or(1);
        LaunchConfig::new(spec.num_sms * occ, block_dim)
    }

    // LOC-BEGIN(work_queue)
    /// Run `f(lane, tile)` for every tile this persistent thread claims.
    /// Each claim costs one global atomic (the queue counter). Claims are
    /// served *block-cyclically* — chunk `c` goes to block `c mod grid`,
    /// lane `(c / grid) mod block` — because on hardware the first claims
    /// land on warps spread across every SM, not on the lowest thread ids.
    pub fn process_tiles(&self, lane: &LaneCtx<'_>, mut f: impl FnMut(&LaneCtx<'_>, usize)) {
        let num_tiles = self.work.num_tiles();
        let grid = lane.grid_dim() as usize;
        let block = lane.block_dim() as usize;
        let mut k = 0usize;
        loop {
            let claim = (k * block + lane.thread_idx() as usize) * grid + lane.block_idx() as usize;
            let start = claim * self.chunk;
            if start >= num_tiles {
                break;
            }
            lane.charge_atomic(); // queue.fetch_add(chunk)
            let end = (start + self.chunk).min(num_tiles);
            for tile in Charged::tiles(step_range(start, end, 1), lane) {
                f(lane, tile);
            }
            k += 1;
        }
    }

    /// Charged range over one claimed tile's atoms (same consumption shape
    /// as the static schedules).
    pub fn atoms<'l, 'm>(&self, tile: usize, lane: &'l LaneCtx<'m>) -> Charged<'l, 'm, StepRange> {
        let r = self.work.tile_atoms(tile);
        Charged::atoms(step_range(r.start, r.end, 1), lane)
    }
    // LOC-END(work_queue)

    /// The wrapped tile set.
    pub fn work(&self) -> &'w W {
        self.work
    }

    /// Tiles claimed per atomic grab.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::CountedTiles;
    use simt::{GlobalMem, GpuSpec};

    fn run_coverage(counts: Vec<usize>, chunk: usize) {
        let w = CountedTiles::from_counts(counts);
        let sched = WorkQueueSchedule::new(&w, chunk);
        let spec = GpuSpec::test_tiny();
        let mut tile_hits = vec![0u32; w.num_tiles().max(1)];
        let mut atom_hits = vec![0u32; w.num_atoms().max(1)];
        {
            let gt = GlobalMem::new(&mut tile_hits);
            let ga = GlobalMem::new(&mut atom_hits);
            simt::launch_threads(&spec, sched.launch_config(&spec, 16), |t| {
                sched.process_tiles(t, |lane, tile| {
                    gt.fetch_add(tile, 1);
                    for atom in sched.atoms(tile, lane) {
                        ga.fetch_add(atom, 1);
                    }
                });
            })
            .unwrap();
        }
        if w.num_tiles() > 0 {
            assert!(tile_hits.iter().all(|&h| h == 1), "tile coverage");
        }
        if w.num_atoms() > 0 {
            assert!(atom_hits.iter().all(|&h| h == 1), "atom coverage");
        }
    }

    #[test]
    fn claims_every_tile_exactly_once() {
        run_coverage(vec![2, 0, 3, 1, 4, 9, 0, 7], 1);
        run_coverage(vec![2, 0, 3, 1, 4, 9, 0, 7], 3);
        run_coverage((0..500).map(|i| i % 7).collect(), 4);
        run_coverage(vec![], 2);
        run_coverage(vec![0; 100], 8);
    }

    #[test]
    fn persistent_launch_is_problem_size_independent() {
        let w = CountedTiles::from_counts(vec![1; 1_000_000]);
        let sched = WorkQueueSchedule::new(&w, 32);
        let spec = GpuSpec::v100();
        let cfg = sched.launch_config(&spec, 256);
        // 80 SMs × 8 blocks of 256 threads — not a million threads.
        assert_eq!(cfg.grid_dim, 80 * 8);
    }

    #[test]
    fn claiming_atomics_are_charged_per_chunk() {
        let w = CountedTiles::from_counts(vec![1; 64]);
        let spec = GpuSpec::test_tiny();
        for &chunk in &[1usize, 4, 16] {
            let sched = WorkQueueSchedule::new(&w, chunk);
            let report = simt::launch_threads(&spec, LaunchConfig::new(1, 8), |t| {
                sched.process_tiles(t, |_, _| {});
            })
            .unwrap();
            let expected_claims = 64usize.div_ceil(chunk) as u64;
            assert_eq!(
                report.mem.atomic_ops, expected_claims,
                "chunk {chunk}: one atomic per claim"
            );
        }
    }

    #[test]
    fn dynamic_overhead_on_balanced_work_is_bounded() {
        // The documented trade: on perfectly balanced work the dynamic
        // schedule pays its claiming atomics but stays within a small
        // factor of the static mapping.
        let w = CountedTiles::from_counts(vec![8usize; 50_000]);
        let spec = GpuSpec::v100();
        let sched = WorkQueueSchedule::new(&w, 4);
        let dynamic = simt::launch_threads(&spec, sched.launch_config(&spec, 256), |t| {
            sched.process_tiles(t, |lane, tile| {
                for _ in sched.atoms(tile, lane) {}
            });
        })
        .unwrap();
        let tsched = crate::schedule::ThreadMappedSchedule::new(&w);
        let static_tm = simt::launch_threads(
            &spec,
            LaunchConfig::over_threads(w.num_tiles() as u64, 256),
            |t| {
                for tile in tsched.tiles(t) {
                    for _ in tsched.atoms(tile, t) {}
                }
            },
        )
        .unwrap();
        let (d, s) = (dynamic.timing.compute_ms, static_tm.timing.compute_ms);
        assert!(d < 4.0 * s, "dynamic {d} should stay near static {s}");
        // (chunk=4: ~4 tiles per claiming lane vs 1 for static; the gap is
        // parallelism granularity plus the claiming atomics.)
        assert!(d >= s * 0.5, "and not mysteriously beat it: {d} vs {s}");
    }

    #[test]
    fn zero_chunk_clamps_to_one() {
        let w = CountedTiles::from_counts([1]);
        assert_eq!(WorkQueueSchedule::new(&w, 0).chunk(), 1);
        assert_eq!(WorkQueueSchedule::new(&w, 5).chunk(), 5);
    }
}
