//! Load-balancing schedules (paper §4.2 and §5.2).
//!
//! Each schedule maps a [`crate::work::TileSet`] onto processing elements
//! and hands kernels ready-to-consume ranges. Selecting a schedule is a
//! one-identifier change ([`ScheduleKind`]), exactly the workflow §6.2
//! describes for exploring the optimization space.
//!
//! | schedule | granularity | strength | paper |
//! |---|---|---|---|
//! | [`ThreadMappedSchedule`] | tile per thread | regular short rows, zero setup | §4.2, Listing 2 |
//! | [`GroupMappedSchedule::warp_mapped`] | tile batch per warp | medium rows | §5.2.2 |
//! | [`GroupMappedSchedule::block_mapped`] | tile batch per block | long rows | §5.2.2 |
//! | [`GroupMappedSchedule`] | tile batch per arbitrary group | tunable, AMD-width portable | §5.2.3 (novel) |
//! | [`MergePathSchedule`] | even atoms+tiles split per thread | adversarial imbalance | §5.2.1 |

mod group_mapped;
mod lrb;
mod merge_path;
mod thread_mapped;
mod work_queue;

pub use group_mapped::GroupMappedSchedule;
pub use lrb::{bin_of, LrbPlan, LrbSchedule, NUM_BINS as LRB_NUM_BINS};
pub use merge_path::{MergePathSchedule, MergeSpans, TileSpan};
pub use thread_mapped::ThreadMappedSchedule;
pub use work_queue::WorkQueueSchedule;


/// Identifier for selecting a schedule at run time — the paper's "single
/// C++ enum" switch (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// One tile per thread, grid-strided.
    ThreadMapped,
    /// Tile batches per warp (group-mapped at warp width).
    WarpMapped,
    /// Tile batches per block (group-mapped at block width).
    BlockMapped,
    /// Tile batches per group of the given size.
    GroupMapped(u32),
    /// Merge-path: perfectly even `tiles + atoms` split.
    MergePath,
    /// Dynamic: persistent threads claiming tile chunks from a global
    /// atomic queue.
    WorkQueue(u32),
    /// Logarithmic Radix Binning: a binning pass groups tiles by
    /// log2(size), then each size class runs at matched granularity.
    Lrb,
}

impl ScheduleKind {
    /// The schedule *family* name, without parameters: `"group-mapped"`
    /// for any group size, `"work-queue"` for any chunk. This is the
    /// stable identifier trace span labels and plan-cache keys are built
    /// from (see [`crate::dispatch::trace_label`]); the `Display` form
    /// round-trips the parameterized form through [`std::str::FromStr`].
    pub fn base_name(&self) -> &'static str {
        match self {
            Self::ThreadMapped => "thread-mapped",
            Self::WarpMapped => "warp-mapped",
            Self::BlockMapped => "block-mapped",
            Self::GroupMapped(_) => "group-mapped",
            Self::MergePath => "merge-path",
            Self::WorkQueue(_) => "work-queue",
            Self::Lrb => "lrb",
        }
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GroupMapped(n) => write!(f, "{}({n})", self.base_name()),
            Self::WorkQueue(c) => write!(f, "{}({c})", self.base_name()),
            _ => f.write_str(self.base_name()),
        }
    }
}

/// Error returned when a string names no [`ScheduleKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl std::fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown schedule {:?} (expected thread-mapped, warp-mapped, block-mapped, \
             group-mapped(N), merge-path, work-queue(C), or lrb)",
            self.0
        )
    }
}

impl std::error::Error for ParseScheduleError {}

impl std::str::FromStr for ScheduleKind {
    type Err = ParseScheduleError;

    /// Parse the [`Display`](std::fmt::Display) form back into a kind —
    /// the CSV/CLI side of the "single identifier" switch. Parameterized
    /// families accept both the explicit form (`group-mapped(64)`,
    /// `work-queue(128)`) and the bare family name, which takes the
    /// conventional default (warp-width 32 groups; 256-tile chunks).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_param = |prefix: &str| -> Option<Result<u32, ParseScheduleError>> {
            let rest = s.strip_prefix(prefix)?;
            let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
            Some(
                inner
                    .parse::<u32>()
                    .map_err(|_| ParseScheduleError(s.to_owned())),
            )
        };
        match s {
            "thread-mapped" => Ok(Self::ThreadMapped),
            "warp-mapped" => Ok(Self::WarpMapped),
            "block-mapped" => Ok(Self::BlockMapped),
            "merge-path" => Ok(Self::MergePath),
            "lrb" => Ok(Self::Lrb),
            "group-mapped" => Ok(Self::GroupMapped(32)),
            "work-queue" => Ok(Self::WorkQueue(256)),
            _ => {
                if let Some(n) = parse_param("group-mapped") {
                    return Ok(Self::GroupMapped(n?));
                }
                if let Some(c) = parse_param("work-queue") {
                    return Ok(Self::WorkQueue(c?));
                }
                Err(ParseScheduleError(s.to_owned()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display_like_the_paper_csvs() {
        assert_eq!(ScheduleKind::MergePath.to_string(), "merge-path");
        assert_eq!(ScheduleKind::ThreadMapped.to_string(), "thread-mapped");
        assert_eq!(ScheduleKind::GroupMapped(64).to_string(), "group-mapped(64)");
        assert_eq!(ScheduleKind::WarpMapped.to_string(), "warp-mapped");
        assert_eq!(ScheduleKind::BlockMapped.to_string(), "block-mapped");
        assert_eq!(ScheduleKind::WorkQueue(16).to_string(), "work-queue(16)");
        assert_eq!(ScheduleKind::Lrb.to_string(), "lrb");
    }

    #[test]
    fn from_str_round_trips_display_for_every_kind() {
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(8),
            ScheduleKind::GroupMapped(64),
            ScheduleKind::MergePath,
            ScheduleKind::WorkQueue(1),
            ScheduleKind::WorkQueue(4096),
            ScheduleKind::Lrb,
        ] {
            let parsed: ScheduleKind = kind.to_string().parse().expect("round-trip");
            assert_eq!(parsed, kind, "{kind}");
        }
    }

    #[test]
    fn bare_parameterized_families_take_defaults() {
        assert_eq!("group-mapped".parse(), Ok(ScheduleKind::GroupMapped(32)));
        assert_eq!("work-queue".parse(), Ok(ScheduleKind::WorkQueue(256)));
    }

    #[test]
    fn junk_strings_are_rejected_with_context() {
        for bad in ["thread", "group-mapped(", "group-mapped(x)", "work-queue(-1)", ""] {
            let err = bad.parse::<ScheduleKind>().unwrap_err();
            assert!(err.to_string().contains("unknown schedule"), "{bad}");
        }
    }

    #[test]
    fn base_names_drop_parameters() {
        assert_eq!(ScheduleKind::GroupMapped(64).base_name(), "group-mapped");
        assert_eq!(ScheduleKind::WorkQueue(16).base_name(), "work-queue");
        assert_eq!(ScheduleKind::MergePath.base_name(), "merge-path");
    }
}
