//! Load-balancing schedules (paper §4.2 and §5.2).
//!
//! Each schedule maps a [`crate::work::TileSet`] onto processing elements
//! and hands kernels ready-to-consume ranges. Selecting a schedule is a
//! one-identifier change ([`ScheduleKind`]), exactly the workflow §6.2
//! describes for exploring the optimization space.
//!
//! | schedule | granularity | strength | paper |
//! |---|---|---|---|
//! | [`ThreadMappedSchedule`] | tile per thread | regular short rows, zero setup | §4.2, Listing 2 |
//! | [`GroupMappedSchedule::warp_mapped`] | tile batch per warp | medium rows | §5.2.2 |
//! | [`GroupMappedSchedule::block_mapped`] | tile batch per block | long rows | §5.2.2 |
//! | [`GroupMappedSchedule`] | tile batch per arbitrary group | tunable, AMD-width portable | §5.2.3 (novel) |
//! | [`MergePathSchedule`] | even atoms+tiles split per thread | adversarial imbalance | §5.2.1 |

mod group_mapped;
mod lrb;
mod merge_path;
mod thread_mapped;
mod work_queue;

pub use group_mapped::GroupMappedSchedule;
pub use lrb::{bin_of, LrbPlan, LrbSchedule, NUM_BINS as LRB_NUM_BINS};
pub use merge_path::{MergePathSchedule, MergeSpans, TileSpan};
pub use thread_mapped::ThreadMappedSchedule;
pub use work_queue::WorkQueueSchedule;


/// Identifier for selecting a schedule at run time — the paper's "single
/// C++ enum" switch (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// One tile per thread, grid-strided.
    ThreadMapped,
    /// Tile batches per warp (group-mapped at warp width).
    WarpMapped,
    /// Tile batches per block (group-mapped at block width).
    BlockMapped,
    /// Tile batches per group of the given size.
    GroupMapped(u32),
    /// Merge-path: perfectly even `tiles + atoms` split.
    MergePath,
    /// Dynamic: persistent threads claiming tile chunks from a global
    /// atomic queue.
    WorkQueue(u32),
    /// Logarithmic Radix Binning: a binning pass groups tiles by
    /// log2(size), then each size class runs at matched granularity.
    Lrb,
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ThreadMapped => write!(f, "thread-mapped"),
            Self::WarpMapped => write!(f, "warp-mapped"),
            Self::BlockMapped => write!(f, "block-mapped"),
            Self::GroupMapped(n) => write!(f, "group-mapped({n})"),
            Self::MergePath => write!(f, "merge-path"),
            Self::WorkQueue(c) => write!(f, "work-queue({c})"),
            Self::Lrb => write!(f, "lrb"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display_like_the_paper_csvs() {
        assert_eq!(ScheduleKind::MergePath.to_string(), "merge-path");
        assert_eq!(ScheduleKind::ThreadMapped.to_string(), "thread-mapped");
        assert_eq!(ScheduleKind::GroupMapped(64).to_string(), "group-mapped(64)");
        assert_eq!(ScheduleKind::WarpMapped.to_string(), "warp-mapped");
        assert_eq!(ScheduleKind::BlockMapped.to_string(), "block-mapped");
        assert_eq!(ScheduleKind::WorkQueue(16).to_string(), "work-queue(16)");
        assert_eq!(ScheduleKind::Lrb.to_string(), "lrb");
    }
}
