//! Logarithmic Radix Binning (LRB) — the binning schedule of the paper's
//! related work (§7: Fox et al. / Green et al., "a particularly effective
//! technique for binning work based on a logarithmic work estimate").
//!
//! A *binning kernel* classifies every tile by `⌈log₂(atoms)⌉` into 33
//! buckets (bin 0 = empty tiles) and scatters tile ids into a reordered
//! array, bucket by bucket. Processing then walks the buckets with a
//! granularity matched to their size class:
//!
//! * **small** tiles (fewer atoms than a warp) — one tile per thread;
//! * **medium** tiles (up to `medium_limit`) — group-mapped at warp width;
//! * **large** tiles — group-mapped at block width.
//!
//! Unlike the paper's own schedules, LRB is a *two-pass* technique: it
//! owns a preparatory kernel launch. That makes it exactly the kind of
//! "higher-level API built on the abstraction" §4.3 sanctions — the
//! binning pass and each per-class pass are ordinary launches over
//! [`SubsetTiles`] views, with no bespoke kernel machinery.

use crate::work::{SubsetTiles, TileSet};
use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx, LaunchConfig, LaunchReport};

/// Number of logarithmic bins (bin 0 = empty, bin `k` = 2^(k-1) < len ≤ 2^k).
pub const NUM_BINS: usize = 33;

/// The result of the binning pass: tile ids grouped by bin, plus the
/// class boundaries used for processing.
#[derive(Debug, Clone)]
pub struct LrbPlan {
    /// Tile ids reordered bucket-by-bucket (ascending bin).
    pub order: Vec<u32>,
    /// Start offset of each bin in `order` (`NUM_BINS + 1` entries).
    pub bin_offsets: Vec<usize>,
    /// The simulated cost of the binning kernel.
    pub binning_report: LaunchReport,
}

impl LrbPlan {
    /// Tile ids whose atom count is in `(2^(bin-1), 2^bin]`.
    pub fn bin(&self, bin: usize) -> &[u32] {
        &self.order[self.bin_offsets[bin]..self.bin_offsets[bin + 1]]
    }

    /// All tile ids with at most `limit` atoms (bins up to
    /// `ceil(log2(limit)) + 1`, exclusive of larger).
    fn class(&self, lo_bin: usize, hi_bin: usize) -> &[u32] {
        &self.order[self.bin_offsets[lo_bin]..self.bin_offsets[hi_bin]]
    }
}

/// The LRB composite schedule.
#[derive(Debug, Clone, Copy)]
pub struct LrbSchedule {
    /// Tiles with at most this many atoms are processed one-per-thread.
    pub small_limit: usize,
    /// Tiles with at most this many atoms (and more than `small_limit`)
    /// get a warp; larger tiles get a block.
    pub medium_limit: usize,
    /// Threads per block for every pass.
    pub block_dim: u32,
}

impl Default for LrbSchedule {
    fn default() -> Self {
        Self {
            small_limit: 32,
            medium_limit: 1024,
            block_dim: 256,
        }
    }
}

impl LrbSchedule {
    // LOC-BEGIN(lrb)
    /// The binning kernel: one thread per tile computes the tile's bin
    /// (`⌈log₂(atoms)⌉`), claims a slot with an atomic bin counter, and
    /// scatters its tile id. (Slot order within a bin is made
    /// deterministic afterwards; hardware LRB is unordered within bins.)
    pub fn bin_tiles<W: TileSet>(
        &self,
        spec: &GpuSpec,
        model: &CostModel,
        work: &W,
    ) -> simt::Result<LrbPlan> {
        let n = work.num_tiles();
        // Pass 1 (fused here): count bin sizes with atomics.
        let mut counts = vec![0u64; NUM_BINS];
        let count_report = {
            let gc = GlobalMem::new(&mut counts);
            simt::launch_threads_with_model(
                spec,
                model,
                LaunchConfig::over_threads(n.max(1) as u64, self.block_dim),
                |t| {
                    let mut tile = t.global_thread_id() as usize;
                    while tile < n {
                        t.charge_tile();
                        gc.fetch_add(bin_of(work.atoms_in_tile(tile)), 1);
                        t.charge_atomic();
                        tile += t.grid_size() as usize;
                    }
                },
            )?
        };
        // Host prefix sum over 33 counters (trivial; charged as part of
        // the scatter kernel's prologue on hardware).
        let mut bin_offsets = vec![0usize; NUM_BINS + 1];
        for b in 0..NUM_BINS {
            bin_offsets[b + 1] = bin_offsets[b] + counts[b] as usize;
        }
        // Pass 2: scatter tile ids to their bin segments.
        let mut order = vec![0u32; n];
        let mut cursors: Vec<u64> = bin_offsets[..NUM_BINS].iter().map(|&o| o as u64).collect();
        let scatter_report = {
            let go = GlobalMem::new(&mut order);
            let gcur = GlobalMem::new(&mut cursors);
            simt::launch_threads_with_model(
                spec,
                model,
                LaunchConfig::over_threads(n.max(1) as u64, self.block_dim),
                |t| {
                    let mut tile = t.global_thread_id() as usize;
                    while tile < n {
                        t.charge_tile();
                        let slot = gcur.fetch_add(bin_of(work.atoms_in_tile(tile)), 1);
                        t.charge_atomic();
                        go.store(slot as usize, tile as u32);
                        t.write_bytes(4);
                        tile += t.grid_size() as usize;
                    }
                },
            )?
        };
        // Deterministic order within bins (atomic claim order varies).
        for b in 0..NUM_BINS {
            order[bin_offsets[b]..bin_offsets[b + 1]].sort_unstable();
        }
        let mut binning_report = count_report;
        binning_report.accumulate(&scatter_report);
        Ok(LrbPlan {
            order,
            bin_offsets,
            binning_report,
        })
    }

    /// Process every atom: `f(lane, global_tile, atom)`, with each size
    /// class launched at its own granularity. Returns the accumulated
    /// report (binning + up to three processing passes).
    pub fn process<W: TileSet>(
        &self,
        spec: &GpuSpec,
        model: &CostModel,
        work: &W,
        plan: &LrbPlan,
        f: impl Fn(&LaneCtx<'_>, usize, usize) + Sync,
    ) -> simt::Result<LaunchReport> {
        let small_hi = bin_of(self.small_limit) + 1;
        let medium_hi = bin_of(self.medium_limit) + 1;
        let mut total = plan.binning_report.clone();
        // Small tiles: one per thread (includes empty tiles — no atoms).
        let small = plan.class(0, small_hi);
        if !small.is_empty() {
            let view = SubsetTiles::new(work, small);
            let sched = crate::schedule::ThreadMappedSchedule::new(&view);
            let cfg = LaunchConfig::over_threads(small.len() as u64, self.block_dim);
            let r = simt::launch_threads_with_model(spec, model, cfg, |t| {
                for local in sched.tiles(t) {
                    for atom in sched.atoms(local, t) {
                        f(t, view.global_tile(local), atom);
                    }
                }
            })?;
            total.accumulate(&r);
        }
        // Medium and large classes: group-mapped at warp / block width.
        for (lo, hi, group) in [
            (small_hi, medium_hi, spec.warp_size),
            (medium_hi, NUM_BINS, self.block_dim),
        ] {
            let tiles = plan.class(lo.min(NUM_BINS), hi.min(NUM_BINS).max(lo.min(NUM_BINS)));
            if tiles.is_empty() {
                continue;
            }
            let view = SubsetTiles::new(work, tiles);
            let sched = crate::schedule::GroupMappedSchedule::new(&view, group);
            let cfg = sched.launch_config(self.block_dim, spec.num_sms * 8);
            let r = simt::launch_groups_with_model(spec, model, cfg, group, |g| {
                sched.process(g, |lane, local, atom| f(lane, view.global_tile(local), atom));
            })?;
            total.accumulate(&r);
        }
        Ok(total)
    }
    // LOC-END(lrb)
}

/// Bin index of a tile with `len` atoms: 0 for empty, else `⌈log₂ len⌉ + 1`.
#[inline]
pub fn bin_of(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        (usize::BITS - (len - 1).leading_zeros()) as usize + usize::from(len == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::CountedTiles;

    #[test]
    fn bin_of_is_logarithmic() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(1), 1);
        assert_eq!(bin_of(2), 1);
        assert_eq!(bin_of(3), 2);
        assert_eq!(bin_of(4), 2);
        assert_eq!(bin_of(5), 3);
        assert_eq!(bin_of(1024), 10);
        assert_eq!(bin_of(1025), 11);
    }

    fn plan_for(counts: Vec<usize>) -> (CountedTiles, LrbPlan) {
        let w = CountedTiles::from_counts(counts);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let plan = LrbSchedule::default()
            .bin_tiles(&spec, &model, &w)
            .unwrap();
        (w, plan)
    }

    #[test]
    fn binning_partitions_all_tiles_by_log_size() {
        let counts = vec![0usize, 1, 2, 3, 31, 32, 33, 1000, 5000, 0, 7];
        let (w, plan) = plan_for(counts.clone());
        assert_eq!(plan.order.len(), counts.len());
        let mut seen: Vec<u32> = plan.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..counts.len() as u32).collect::<Vec<_>>());
        for b in 0..NUM_BINS {
            for &t in plan.bin(b) {
                assert_eq!(bin_of(w.atoms_in_tile(t as usize)), b, "tile {t}");
            }
        }
    }

    #[test]
    fn process_visits_every_atom_once_with_correct_tiles() {
        let counts: Vec<usize> = (0..300).map(|i| (i * 13) % 70).collect();
        let (w, plan) = plan_for(counts);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut hits = vec![0u32; w.num_atoms()];
        {
            let g = GlobalMem::new(&mut hits);
            LrbSchedule::default()
                .process(&spec, &model, &w, &plan, |_, tile, atom| {
                    assert!(w.tile_atoms(tile).contains(&atom));
                    g.fetch_add(atom, 1);
                })
                .unwrap();
        }
        assert!(hits.iter().all(|&h| h == 1), "every atom exactly once");
    }

    #[test]
    fn process_handles_single_class_corpora() {
        // All tiny.
        let (w, plan) = plan_for(vec![2; 64]);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut n = vec![0u64; 1];
        {
            let g = GlobalMem::new(&mut n);
            LrbSchedule::default()
                .process(&spec, &model, &w, &plan, |_, _, _| {
                    g.fetch_add(0, 1);
                })
                .unwrap();
        }
        assert_eq!(n[0], w.num_atoms() as u64);
        // All huge.
        let (w, plan) = plan_for(vec![3000; 4]);
        let mut n = vec![0u64; 1];
        {
            let g = GlobalMem::new(&mut n);
            LrbSchedule::default()
                .process(&spec, &model, &w, &plan, |_, _, _| {
                    g.fetch_add(0, 1);
                })
                .unwrap();
        }
        assert_eq!(n[0], w.num_atoms() as u64);
    }

    #[test]
    fn binning_cost_is_charged() {
        let (_w, plan) = plan_for(vec![5; 1000]);
        assert!(plan.binning_report.elapsed_ms() > 0.0);
        assert!(plan.binning_report.mem.atomic_ops >= 2000); // two passes
    }

    #[test]
    fn empty_work_produces_empty_plan() {
        let (_w, plan) = plan_for(vec![]);
        assert!(plan.order.is_empty());
        assert_eq!(*plan.bin_offsets.last().unwrap(), 0);
    }
}
