//! The thread-mapped schedule (paper §4.2, Listing 2).
//!
//! One work tile per thread, grid-strided: thread `t` processes tiles
//! `t, t + gridSize, t + 2·gridSize, …`, consuming each tile's atoms
//! sequentially. Zero setup cost; collapses when tiles have wildly
//! different sizes (a single hub row stalls its whole warp), which is
//! precisely the motivation for everything else in this crate.

use crate::ranges::{grid_stride_range, step_range, Charged, StepRange};
use crate::work::TileSet;
use simt::LaneCtx;

/// Tile-per-thread schedule over a tile set.
#[derive(Debug, Clone, Copy)]
pub struct ThreadMappedSchedule<'w, W> {
    work: &'w W,
}

// The paper reports kernel-contributing LoC for each schedule (Table 1);
// the markers below delimit the equivalent region counted by the Table 1
// harness.
impl<'w, W: TileSet> ThreadMappedSchedule<'w, W> {
    /// Wrap a tile set.
    pub fn new(work: &'w W) -> Self {
        Self { work }
    }

    // LOC-BEGIN(thread_mapped)
    /// Range of tiles processed by `lane`'s thread: start at the global
    /// thread id, stride by the grid size (Listing 2, `tiles()`).
    pub fn tiles<'l, 'm>(&self, lane: &'l LaneCtx<'m>) -> Charged<'l, 'm, StepRange> {
        Charged::tiles(grid_stride_range(lane, 0, self.work.num_tiles()), lane)
    }

    /// Range of atoms within `tile`, processed sequentially by this
    /// thread (Listing 2, `atoms()`).
    pub fn atoms<'l, 'm>(&self, tile: usize, lane: &'l LaneCtx<'m>) -> Charged<'l, 'm, StepRange> {
        let r = self.work.tile_atoms(tile);
        Charged::atoms(step_range(r.start, r.end, 1), lane)
    }
    // LOC-END(thread_mapped)

    /// The wrapped tile set.
    pub fn work(&self) -> &'w W {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::CountedTiles;
    use simt::{GpuSpec, LaunchConfig};

    fn work() -> CountedTiles {
        CountedTiles::from_counts([2, 0, 3, 1, 4])
    }

    #[test]
    fn every_tile_and_atom_visited_exactly_once() {
        let w = work();
        let sched = ThreadMappedSchedule::new(&w);
        let spec = GpuSpec::test_tiny();
        let mut tile_hits = vec![0u32; w.num_tiles()];
        let mut atom_hits = vec![0u32; w.num_atoms()];
        {
            let gt = simt::GlobalMem::new(&mut tile_hits);
            let ga = simt::GlobalMem::new(&mut atom_hits);
            simt::launch_threads(&spec, LaunchConfig::new(1, 8), |t| {
                for tile in sched.tiles(t) {
                    gt.fetch_add(tile, 1);
                    for atom in sched.atoms(tile, t) {
                        ga.fetch_add(atom, 1);
                    }
                }
            })
            .unwrap();
        }
        assert!(tile_hits.iter().all(|&h| h == 1));
        assert!(atom_hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn coverage_holds_when_threads_outnumber_tiles_and_vice_versa() {
        for &(grid, block) in &[(4u32, 8u32), (1, 8), (16, 64)] {
            let w = work();
            let sched = ThreadMappedSchedule::new(&w);
            let spec = GpuSpec::test_tiny();
            let mut atom_hits = vec![0u32; w.num_atoms()];
            {
                let ga = simt::GlobalMem::new(&mut atom_hits);
                simt::launch_threads(&spec, LaunchConfig::new(grid, block), |t| {
                    for tile in sched.tiles(t) {
                        for atom in sched.atoms(tile, t) {
                            ga.fetch_add(atom, 1);
                        }
                    }
                })
                .unwrap();
            }
            assert!(
                atom_hits.iter().all(|&h| h == 1),
                "grid={grid} block={block}"
            );
        }
    }

    #[test]
    fn imbalanced_tiles_produce_divergent_warp_costs() {
        // 8 tiles, one huge: thread-mapped should cost far more than the
        // balanced equivalent with the same atom total.
        let hub = CountedTiles::from_counts([1000, 1, 1, 1, 1, 1, 1, 1]);
        let flat = CountedTiles::from_counts([126; 8]);
        let spec = GpuSpec::test_tiny();
        let run = |w: &CountedTiles| {
            let sched = ThreadMappedSchedule::new(w);
            simt::launch_threads(&spec, LaunchConfig::new(1, 8), |t| {
                for tile in sched.tiles(t) {
                    for _ in sched.atoms(tile, t) {}
                }
            })
            .unwrap()
            .timing
            .compute_ms
        };
        let t_hub = run(&hub);
        let t_flat = run(&flat);
        assert!(
            t_hub > 3.0 * t_flat,
            "hub {t_hub} should dwarf flat {t_flat}"
        );
    }
}
