//! The merge-path schedule (paper §5.2.1; Merrill & Garland's SpMV).
//!
//! Treat the tile boundaries and the atoms as two sorted lists and give
//! every thread an *exactly equal* share of their merger: each thread owns
//! `items_per_thread` consecutive steps of the merge path through the
//! `(tiles, atoms)` grid, found with a 2-D diagonal binary search. A
//! thread's share decomposes into **complete** tiles (it covers all of the
//! tile's atoms — results can be written directly) and **partial** tiles
//! (the tile straddles a thread boundary — contributions must be combined,
//! e.g. with an atomic add or a carry-out fixup).
//!
//! Decoupled from any particular computation, the same schedule balances
//! SpMV, SpMM, or graph traversal over any [`TileSet`] (§5.2.1's central
//! claim); CSR's row offsets are consumed through the tile-offset
//! interface rather than hardwired.

use crate::ranges::{step_range, Charged, StepRange};
use crate::work::TileSet;
use simt::{LaneCtx, LaunchConfig};

/// One thread's span of a tile under merge-path: which atoms of `tile`
/// this thread processes and whether that is the whole tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSpan {
    /// Tile index.
    pub tile: usize,
    /// Flat atom range of this thread's share of the tile.
    pub atoms: std::ops::Range<usize>,
    /// `true` iff the span covers every atom of the tile *and* this thread
    /// consumes the tile's boundary — the result can be written without
    /// combining with other threads.
    pub complete: bool,
}

/// Merge-path schedule over a tile set.
#[derive(Debug, Clone, Copy)]
pub struct MergePathSchedule<'w, W> {
    work: &'w W,
    items_per_thread: usize,
}

impl<'w, W: TileSet> MergePathSchedule<'w, W> {
    /// Create a schedule assigning `items_per_thread` merge items (atoms +
    /// tile boundaries) to each thread. CUB uses ~7 on V100-class parts.
    pub fn new(work: &'w W, items_per_thread: usize) -> Self {
        assert!(items_per_thread >= 1, "items_per_thread must be ≥ 1");
        Self {
            work,
            items_per_thread,
        }
    }

    /// Total merge items: `tiles + atoms` (each tile boundary is one unit
    /// of scheduled work, like each atom).
    pub fn total_work(&self) -> usize {
        self.work.num_tiles() + self.work.num_atoms()
    }

    /// Threads needed to cover the merge path.
    pub fn num_threads(&self) -> usize {
        self.total_work().div_ceil(self.items_per_thread).max(1)
    }

    /// A launch configuration covering [`Self::num_threads`].
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        LaunchConfig::over_threads(self.num_threads() as u64, block_dim)
    }

    // LOC-BEGIN(merge_path)
    /// **Setup** (paper step 1): diagonal-search this thread's start and
    /// end coordinates, charging the two binary searches; then expose the
    /// share as an iterator of [`TileSpan`]s (paper step 2: "complete" and
    /// "partial" tiles).
    pub fn spans<'l, 'm>(&self, lane: &'l LaneCtx<'m>) -> MergeSpans<'w, 'l, 'm, W> {
        let total = self.total_work();
        let d0 = (lane.global_thread_id() as usize * self.items_per_thread).min(total);
        let d1 = (d0 + self.items_per_thread).min(total);
        // Two-level partition cost: one global diagonal search per block
        // (amortized) + per-thread search of the block's tile in shared
        // memory — see `CostModel::merge_setup`.
        let block_items = u64::from(lane.block_dim()) * self.items_per_thread as u64;
        lane.charge(lane.model().merge_setup(block_items));
        // The shared-memory search needs the block's window of tile
        // offsets staged from global memory first: one offset per tile
        // boundary in the window, amortized to this thread's share of
        // the merge path (at least one probe).
        let tile_frac = self.work.num_tiles() as f64 / total.max(1) as f64;
        let staged = (4.0 * self.items_per_thread as f64 * tile_frac).ceil() as u64;
        lane.read_bytes(staged.max(4));
        let (t0, a0) = self.diagonal_search(d0);
        let (t1, a1) = self.diagonal_search(d1);
        MergeSpans {
            work: self.work,
            lane,
            tile: t0,
            atom: a0,
            end_tile: t1,
            end_atom: a1,
            started_at_tile_start: a0 == self.work.tile_offset(t0),
        }
    }

    /// Charged range over one span's atoms.
    pub fn atoms<'l, 'm>(
        &self,
        span: &TileSpan,
        lane: &'l LaneCtx<'m>,
    ) -> Charged<'l, 'm, StepRange> {
        Charged::atoms(step_range(span.atoms.start, span.atoms.end, 1), lane)
    }

    /// 2-D diagonal binary search: find the merge-path coordinate
    /// `(tile, atom)` with `tile + atom = d`, such that all tile
    /// boundaries before `tile` merge before all atoms from `atom` on.
    /// (Cost is charged once per thread by `spans` via
    /// `CostModel::merge_setup`.)
    fn diagonal_search(&self, d: usize) -> (usize, usize) {
        let (tiles, atoms) = (self.work.num_tiles(), self.work.num_atoms());
        let mut lo = d.saturating_sub(atoms);
        let mut hi = d.min(tiles);
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Consume the boundary of tile `mid` iff its end offset merges
            // no later than the atom at the opposing diagonal position.
            if self.work.tile_offset(mid + 1) <= d - 1 - mid {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo, d - lo)
    }
    // LOC-END(merge_path)

    /// Precompute every thread's merge-path start coordinate host-side:
    /// `num_threads() + 1` tile indices, the last one `num_tiles`. Only
    /// the tile component needs storing — boundary `i` lies on diagonal
    /// `d = i · items_per_thread`, so `atom = d − tile`. Thread `i`'s
    /// share is `starts[i] .. starts[i + 1]` — exactly what
    /// [`Self::spans`] finds with its two in-kernel diagonal searches. A
    /// serving runtime caches this table per matrix so repeated launches
    /// skip the search.
    ///
    /// # Panics
    ///
    /// The table stores each boundary's tile coordinate as `u32`. A tile
    /// set with more than `u32::MAX` tiles cannot be represented —
    /// rather than silently truncating the coordinate (which would make
    /// threads replay the wrong rows), this panics with the offending
    /// value.
    pub fn partition(&self) -> Vec<u32> {
        let total = self.total_work();
        let n = self.num_threads();
        (0..=n)
            .map(|i| {
                let (t, _) = self.diagonal_search((i * self.items_per_thread).min(total));
                u32::try_from(t).unwrap_or_else(|_| {
                    panic!(
                        "merge-path partition: boundary tile coordinate {t} exceeds \
                         u32::MAX and cannot be stored in the u32 partition table"
                    )
                })
            })
            .collect()
    }

    /// [`Self::spans`] driven by a precomputed [`Self::partition`] table:
    /// identical span coordinates (hence bitwise-identical kernel
    /// results), but the per-thread diagonal searches are replaced by two
    /// cached-table reads — the "skip setup on a plan-cache hit" path.
    pub fn spans_prepartitioned<'l, 'm>(
        &self,
        lane: &'l LaneCtx<'m>,
        starts: &[u32],
    ) -> MergeSpans<'w, 'l, 'm, W> {
        let total = self.total_work();
        let last = starts.len() - 1;
        let i0 = (lane.global_thread_id() as usize).min(last);
        let i1 = (i0 + 1).min(last);
        // The block loads its contiguous slice of the table once,
        // coalesced — amortized one 4-byte entry per thread — instead of
        // staging an offset window and binary-searching it.
        lane.read_bytes(4);
        let (t0, t1) = (starts[i0] as usize, starts[i1] as usize);
        let a0 = (i0 * self.items_per_thread).min(total) - t0;
        let a1 = (i1 * self.items_per_thread).min(total) - t1;
        MergeSpans {
            work: self.work,
            lane,
            tile: t0,
            atom: a0,
            end_tile: t1,
            end_atom: a1,
            started_at_tile_start: a0 == self.work.tile_offset(t0),
        }
    }

    /// The wrapped tile set.
    pub fn work(&self) -> &'w W {
        self.work
    }

    /// Items per thread this schedule was built with.
    pub fn items_per_thread(&self) -> usize {
        self.items_per_thread
    }
}

/// Iterator over one thread's [`TileSpan`]s. Charges tile bookkeeping per
/// span through the lane.
#[derive(Debug)]
pub struct MergeSpans<'w, 'l, 'm, W> {
    work: &'w W,
    lane: &'l LaneCtx<'m>,
    tile: usize,
    atom: usize,
    end_tile: usize,
    end_atom: usize,
    started_at_tile_start: bool,
}

impl<W: TileSet> Iterator for MergeSpans<'_, '_, '_, W> {
    type Item = TileSpan;

    fn next(&mut self) -> Option<TileSpan> {
        let work = self.work;
        if self.tile < self.end_tile {
            // This thread consumes tile `self.tile`'s boundary: it owns the
            // tile's atoms from `self.atom` to the tile's end.
            let tile = self.tile;
            let tile_end = work.tile_offset(tile + 1);
            let span = TileSpan {
                tile,
                atoms: self.atom..tile_end,
                complete: self.started_at_tile_start,
            };
            self.tile += 1;
            self.atom = tile_end;
            self.started_at_tile_start = true;
            self.lane.charge_tile();
            self.lane.charge_range_iter();
            Some(span)
        } else if self.atom < self.end_atom {
            // Trailing partial tile: atoms up to the thread boundary, with
            // the tile's boundary left to a later thread.
            let span = TileSpan {
                tile: self.tile,
                atoms: self.atom..self.end_atom,
                complete: false,
            };
            self.atom = self.end_atom;
            self.lane.charge_tile();
            self.lane.charge_range_iter();
            Some(span)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{CountedTiles, TileSet};
    use simt::GpuSpec;

    /// Collect all spans of all threads for a given work + ipt.
    fn all_spans(work: &CountedTiles, ipt: usize) -> Vec<(u64, TileSpan)> {
        let sched = MergePathSchedule::new(work, ipt);
        let spec = GpuSpec::test_tiny();
        let cfg = sched.launch_config(8);
        let collected = std::sync::Mutex::new(Vec::new());
        simt::launch_threads(&spec, cfg, |t| {
            for span in sched.spans(t) {
                collected.lock().unwrap().push((t.global_thread_id(), span));
            }
        })
        .unwrap();
        let mut v = collected.into_inner().unwrap();
        v.sort_by_key(|(tid, s)| (s.tile, s.atoms.start, *tid));
        v
    }

    fn check_partition(work: &CountedTiles, ipt: usize) {
        let spans = all_spans(work, ipt);
        // Every atom covered exactly once, in order, per tile.
        let mut seen = vec![0u32; work.num_atoms()];
        for (_, s) in &spans {
            let tile_range = work.tile_atoms(s.tile);
            assert!(s.atoms.start >= tile_range.start && s.atoms.end <= tile_range.end);
            for a in s.atoms.clone() {
                seen[a] += 1;
            }
            if s.complete {
                assert_eq!(s.atoms, tile_range, "complete span must cover its tile");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "ipt={ipt}: atom coverage");
        // Every non-empty tile appears; each tile has exactly one span
        // whose end reaches the tile end from a boundary-consuming thread.
        for tile in 0..work.num_tiles() {
            let r = work.tile_atoms(tile);
            let covering: Vec<_> = spans.iter().filter(|(_, s)| s.tile == tile).collect();
            if r.is_empty() {
                // Empty tiles yield exactly one empty span (their boundary).
                assert_eq!(covering.len(), 1, "tile {tile} empty-span count");
                assert!(covering[0].1.complete);
            } else {
                assert!(!covering.is_empty(), "tile {tile} uncovered");
                let complete = covering.iter().filter(|(_, s)| s.complete).count();
                assert!(complete <= 1, "tile {tile}: multiple complete spans");
                if complete == 1 {
                    assert_eq!(covering.len(), 1, "tile {tile}: complete implies sole");
                }
            }
        }
    }

    #[test]
    fn partitions_are_exact_for_varied_shapes() {
        for counts in [
            vec![2usize, 0, 3, 1, 4],
            vec![0, 0, 0],
            vec![10],
            vec![1; 37],
            vec![100, 0, 0, 1, 1, 1, 50],
        ] {
            let w = CountedTiles::from_counts(counts);
            for ipt in [1usize, 2, 3, 7, 100] {
                check_partition(&w, ipt);
            }
        }
    }

    #[test]
    fn hub_row_is_split_across_many_threads() {
        let w = CountedTiles::from_counts([1000, 1, 1, 1]);
        let spans = all_spans(&w, 8);
        let hub_spans = spans.iter().filter(|(_, s)| s.tile == 0).count();
        assert!(hub_spans > 100, "hub split into {hub_spans} spans");
        // All but at most one of them are partial.
        let partial = spans
            .iter()
            .filter(|(_, s)| s.tile == 0 && !s.complete)
            .count();
        assert!(partial >= hub_spans - 1);
    }

    #[test]
    fn balanced_work_means_every_thread_gets_ipt_items() {
        let w = CountedTiles::from_counts([3; 64]); // total = 64 + 192 = 256
        let sched = MergePathSchedule::new(&w, 8);
        assert_eq!(sched.num_threads(), 32);
        assert_eq!(sched.total_work(), 256);
    }

    #[test]
    fn spans_charge_setup_searches() {
        let w = CountedTiles::from_counts([4; 16]);
        let sched = MergePathSchedule::new(&w, 4);
        let spec = GpuSpec::test_tiny();
        let mut overheads = vec![0.0f64; 1];
        {
            let g = simt::GlobalMem::new(&mut overheads);
            simt::launch_threads(&spec, LaunchConfig::new(1, 8), |t| {
                if t.global_thread_id() == 0 {
                    let before = t.units();
                    let _ = sched.spans(t);
                    g.store(0, t.units() - before);
                }
            })
            .unwrap();
        }
        let model = simt::CostModel::standard();
        assert!(overheads[0] >= 2.0 * model.search_step_cost);
    }

    #[test]
    fn prepartitioned_spans_match_in_kernel_search() {
        for counts in [
            vec![2usize, 0, 3, 1, 4],
            vec![0, 0, 0],
            vec![1; 37],
            vec![100, 0, 0, 1, 1, 1, 50],
        ] {
            let w = CountedTiles::from_counts(counts);
            for ipt in [1usize, 3, 7] {
                let sched = MergePathSchedule::new(&w, ipt);
                let starts = sched.partition();
                assert_eq!(starts.len(), sched.num_threads() + 1);
                assert_eq!(*starts.last().unwrap(), w.num_tiles() as u32);
                let spec = GpuSpec::test_tiny();
                let cfg = sched.launch_config(8);
                let collect = |pre: bool| {
                    let got = std::sync::Mutex::new(Vec::new());
                    simt::launch_threads(&spec, cfg, |t| {
                        let spans: Vec<_> = if pre {
                            sched.spans_prepartitioned(t, &starts).collect()
                        } else {
                            sched.spans(t).collect()
                        };
                        got.lock().unwrap().push((t.global_thread_id(), spans));
                    })
                    .unwrap();
                    let mut v = got.into_inner().unwrap();
                    v.sort_by_key(|(tid, _)| *tid);
                    v
                };
                assert_eq!(collect(true), collect(false), "ipt={ipt}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "≥ 1")]
    fn rejects_zero_items_per_thread() {
        let w = CountedTiles::from_counts([1]);
        let _ = MergePathSchedule::new(&w, 0);
    }

    #[test]
    fn empty_work_produces_no_spans() {
        let w = CountedTiles::from_counts(std::iter::empty());
        let spans = all_spans(&w, 4);
        assert!(spans.is_empty());
    }

    /// Synthetic contiguous tile set with an enormous tile count and no
    /// atoms — only the geometry the diagonal search probes is
    /// implemented, so tile counts near/above `u32::MAX` are exercised
    /// without allocating anything.
    #[cfg(target_pointer_width = "64")]
    struct HugeTiles {
        tiles: usize,
    }

    #[cfg(target_pointer_width = "64")]
    impl TileSet for HugeTiles {
        fn num_tiles(&self) -> usize {
            self.tiles
        }
        fn num_atoms(&self) -> usize {
            0
        }
        fn tile_atoms(&self, _t: usize) -> std::ops::Range<usize> {
            0..0
        }
        fn tile_offset(&self, _i: usize) -> usize {
            0
        }
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn partition_stores_boundary_at_exactly_u32_max() {
        let w = HugeTiles {
            tiles: u32::MAX as usize,
        };
        // Huge items-per-thread keeps the boundary table tiny (3 entries)
        // while the final boundary lands exactly on u32::MAX.
        let sched = MergePathSchedule::new(&w, 1 << 31);
        let starts = sched.partition();
        assert_eq!(*starts.last().unwrap(), u32::MAX);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "exceeds")]
    fn partition_panics_instead_of_truncating_past_u32() {
        let w = HugeTiles {
            tiles: u32::MAX as usize + 42,
        };
        let sched = MergePathSchedule::new(&w, 1 << 31);
        // Pre-fix this silently truncated (`t as u32`), wrapping boundary
        // coordinates and pointing threads at the wrong tiles.
        let _ = sched.partition();
    }
}
