//! The group-mapped schedule (paper §5.2.3) — the paper's novel
//! contribution, generalizing warp- and block-level load balancing
//! (§5.2.2) to cooperative groups of arbitrary size.
//!
//! Each group claims batches of `group_size` consecutive tiles. For a
//! batch, the group (1) loads every tile's atom count into scratchpad,
//! (2) runs a group-wide exclusive prefix sum over the counts, then
//! (3) processes the batch's *atoms* in parallel: lane `r` takes atoms
//! `r, r + group, r + 2·group, …` of the aggregated batch, recovering the
//! owning tile with a binary search in the prefix-sum array (the paper's
//! `get_tile(atom_id)`). Intra-batch imbalance is flattened completely;
//! inter-batch imbalance is left to the hardware's oversubscribed block
//! scheduler — exactly the division of labour §5.2.2 describes.
//!
//! With `group_size = warp` this *is* the classic warp-mapped schedule;
//! with `group_size = block` it is block-mapped; any other power of the
//! problem's shape (including AMD's 64-wide wavefronts) is one constant
//! away — the portability argument of §5.2.3.

use crate::work::TileSet;
use simt::{GpuSpec, GroupCtx, LaneCtx, LaunchConfig};

/// Group-mapped (cooperative-groups) schedule over a tile set.
#[derive(Debug, Clone, Copy)]
pub struct GroupMappedSchedule<'w, W> {
    work: &'w W,
    group_size: u32,
}

impl<'w, W: TileSet> GroupMappedSchedule<'w, W> {
    /// Create a schedule with an arbitrary group size (≥ 1).
    pub fn new(work: &'w W, group_size: u32) -> Self {
        assert!(group_size >= 1, "group size must be ≥ 1");
        Self { work, group_size }
    }

    /// The warp-mapped schedule of §5.2.2 — group-mapped at warp width,
    /// "for free" (Table 1).
    pub fn warp_mapped(work: &'w W, spec: &GpuSpec) -> Self {
        Self::new(work, spec.warp_size)
    }

    /// The block-mapped schedule of §5.2.2 — group-mapped at block width.
    pub fn block_mapped(work: &'w W, block_dim: u32) -> Self {
        Self::new(work, block_dim)
    }

    /// Group size in lanes.
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Shared memory a block of `block_dim` threads needs: one prefix-sum
    /// slot (`u64`) plus one reduction slot (`f32`) per lane.
    pub fn shared_bytes(&self, block_dim: u32) -> u32 {
        block_dim * (std::mem::size_of::<u64>() + std::mem::size_of::<f32>()) as u32
    }

    /// A launch where every group receives roughly one batch of tiles
    /// (rounds handle any remainder), capped at `max_blocks` for
    /// oversubscription control.
    pub fn launch_config(&self, block_dim: u32, max_blocks: u32) -> LaunchConfig {
        let groups_per_block = (block_dim / self.group_size).max(1);
        let tiles_per_block = groups_per_block as usize * self.group_size as usize;
        let grid = self
            .work
            .num_tiles()
            .div_ceil(tiles_per_block)
            .clamp(1, max_blocks as usize) as u32;
        LaunchConfig::new(grid, block_dim).with_shared(self.shared_bytes(block_dim))
    }

    // LOC-BEGIN(group_mapped)
    /// Execute `f(lane, tile, atom)` for every atom of every batch this
    /// group owns. This is the whole schedule: setup (counts + scan into
    /// scratchpad) and the balanced atom loop with `get_tile`.
    pub fn process(&self, g: &mut GroupCtx<'_>, mut f: impl FnMut(&LaneCtx<'_>, usize, usize)) {
        let gs = self.group_size as usize;
        debug_assert_eq!(g.size() as usize, gs, "launch group size mismatch");
        let num_tiles = self.work.num_tiles();
        let stride = (g.num_groups_in_grid() as usize) * gs;
        let mut scan = g.alloc_shared::<u64>(gs);
        let mut base = g.global_group_id() as usize * gs;
        while base < num_tiles {
            // Phase 1: each lane loads its tile's atom count to scratchpad.
            let counts = g.phase(|lane| {
                let tile = base + lane.group_rank() as usize;
                lane.charge_tile();
                lane.charge_shared();
                if tile < num_tiles {
                    self.work.atoms_in_tile(tile) as u64
                } else {
                    0
                }
            });
            scan.copy_from_slice(&counts);
            // Phase 2: group-wide exclusive prefix sum (collective).
            let total_atoms = g.exclusive_scan(&mut scan) as usize;
            // Phase 3: lanes stride the batch's atoms; get_tile() is a
            // binary search in the scratchpad prefix sums.
            g.phase_for_each(|lane| {
                let mut a = lane.group_rank() as usize;
                while a < total_atoms {
                    let local_tile = scan.partition_point(|&s| s <= a as u64) - 1;
                    // get_tile(): a binary search in the scratchpad prefix
                    // sums; consecutive strided atoms move monotonically
                    // through the batch, so real implementations resume the
                    // scan from the previous hit — charge the amortized
                    // two-probe cost rather than a full log2(group) search.
                    lane.charge(lane.model().shared_access_cost * 2.0);
                    let tile = base + local_tile;
                    let within = a - scan[local_tile] as usize;
                    let atom = self.work.tile_offset(tile) + within;
                    lane.charge_atom();
                    lane.charge_range_iter();
                    f(lane, tile, atom);
                    a += gs;
                }
            });
            base += stride;
        }
    }
    // LOC-END(group_mapped)

    /// Load-balanced *transform-reduce-by-tile*: compute `per_atom` for
    /// every atom, segment-reduce the partial results by owning tile (a
    /// group collective), and call `per_tile(lane, tile, sum)` exactly once
    /// per tile. Because every tile is wholly owned by one group batch, the
    /// per-tile result needs no global atomics — this is the cooperative
    /// composition §3.3 of the paper gestures at ("combine the results with
    /// neighboring threads").
    pub fn process_batches(
        &self,
        g: &mut GroupCtx<'_>,
        mut per_atom: impl FnMut(&LaneCtx<'_>, usize, usize) -> f32,
        mut per_tile: impl FnMut(&LaneCtx<'_>, usize, f32),
    ) {
        let gs = self.group_size as usize;
        debug_assert_eq!(g.size() as usize, gs, "launch group size mismatch");
        let num_tiles = self.work.num_tiles();
        let stride = (g.num_groups_in_grid() as usize) * gs;
        let mut scan = g.alloc_shared::<u64>(gs);
        let mut sums = g.alloc_shared::<f32>(gs);
        let mut base = g.global_group_id() as usize * gs;
        while base < num_tiles {
            let counts = g.phase(|lane| {
                let tile = base + lane.group_rank() as usize;
                lane.charge_tile();
                lane.charge_shared();
                if tile < num_tiles {
                    self.work.atoms_in_tile(tile) as u64
                } else {
                    0
                }
            });
            scan.copy_from_slice(&counts);
            let total_atoms = g.exclusive_scan(&mut scan) as usize;
            sums.iter_mut().for_each(|s| *s = 0.0);
            // Balanced atom loop accumulating per-tile partials in
            // scratchpad (lanes of a group execute phase-sequentially in
            // the simulator, so the shared accumulation is race-free; on
            // hardware this is the segmented-reduce tree charged below).
            g.phase_for_each(|lane| {
                let mut a = lane.group_rank() as usize;
                while a < total_atoms {
                    let local_tile = scan.partition_point(|&s| s <= a as u64) - 1;
                    // get_tile(): a binary search in the scratchpad prefix
                    // sums; consecutive strided atoms move monotonically
                    // through the batch, so real implementations resume the
                    // scan from the previous hit — charge the amortized
                    // two-probe cost rather than a full log2(group) search.
                    lane.charge(lane.model().shared_access_cost * 2.0);
                    let tile = base + local_tile;
                    let within = a - scan[local_tile] as usize;
                    let atom = self.work.tile_offset(tile) + within;
                    lane.charge_atom();
                    lane.charge_range_iter();
                    sums[local_tile] += per_atom(lane, tile, atom);
                    a += gs;
                }
            });
            // Segmented reduction across lanes (tree): one collective.
            g.charge_collective_step();
            // One write per tile of the batch.
            g.phase_for_each(|lane| {
                let r = lane.group_rank() as usize;
                let tile = base + r;
                if tile < num_tiles {
                    lane.charge_shared();
                    per_tile(lane, tile, sums[r]);
                }
            });
            base += stride;
        }
    }

    /// The wrapped tile set.
    pub fn work(&self) -> &'w W {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::CountedTiles;
    use simt::GpuSpec;

    fn check_coverage(counts: Vec<usize>, group_size: u32, grid: u32, block: u32) {
        let w = CountedTiles::from_counts(counts);
        let sched = GroupMappedSchedule::new(&w, group_size);
        let spec = GpuSpec::test_tiny();
        let mut tile_of_atom: Vec<i64> = (0..w.num_atoms()).map(|_| -1).collect();
        let expected: Vec<i64> = (0..w.num_tiles())
            .flat_map(|t| w.tile_atoms(t).map(move |_| t as i64))
            .collect();
        let mut hits = vec![0u32; w.num_atoms().max(1)];
        {
            let gh = simt::GlobalMem::new(&mut hits);
            let gt = simt::GlobalMem::new(&mut tile_of_atom);
            let cfg = LaunchConfig::new(grid, block).with_shared(sched.shared_bytes(block));
            simt::launch_groups(&spec, cfg, group_size, |g| {
                sched.process(g, |_lane, tile, atom| {
                    gh.fetch_add(atom, 1);
                    gt.store(atom, tile as i64);
                });
            })
            .unwrap();
        }
        if w.num_atoms() > 0 {
            assert!(hits.iter().all(|&h| h == 1), "atom coverage");
        }
        assert_eq!(tile_of_atom, expected, "get_tile correctness");
    }

    #[test]
    fn covers_every_atom_with_correct_tiles_across_shapes() {
        check_coverage(vec![2, 0, 3, 1, 4], 8, 1, 8);
        check_coverage(vec![2, 0, 3, 1, 4], 4, 2, 8);
        check_coverage(vec![1; 100], 8, 2, 16);
        check_coverage(vec![50, 0, 0, 0, 0, 0, 0, 7], 8, 1, 8);
        check_coverage(vec![0; 64], 8, 2, 16);
        check_coverage(vec![13], 16, 1, 16);
    }

    #[test]
    fn multiple_rounds_when_tiles_exceed_groups() {
        // 4 groups of 8 in flight, 100 tiles → several rounds each.
        check_coverage((0..100).map(|i| i % 5).collect(), 8, 2, 16);
    }

    #[test]
    fn warp_and_block_constructors_pick_hardware_sizes() {
        let w = CountedTiles::from_counts([1, 2, 3]);
        let spec = GpuSpec::test_tiny();
        assert_eq!(
            GroupMappedSchedule::warp_mapped(&w, &spec).group_size(),
            spec.warp_size
        );
        assert_eq!(GroupMappedSchedule::block_mapped(&w, 128).group_size(), 128);
    }

    #[test]
    fn launch_config_sizes_grid_to_one_batch_per_group() {
        let w = CountedTiles::from_counts(vec![1; 1000]);
        let sched = GroupMappedSchedule::new(&w, 8);
        let cfg = sched.launch_config(32, 10_000);
        // 4 groups per block × 8 tiles each = 32 tiles per block.
        assert_eq!(cfg.grid_dim, 1000usize.div_ceil(32) as u32);
        assert_eq!(cfg.shared_bytes, 32 * 12);
        let capped = sched.launch_config(32, 4);
        assert_eq!(capped.grid_dim, 4);
    }

    #[test]
    fn balances_a_hub_batch_across_lanes() {
        // One batch (8 tiles), one hub of 800 atoms: group-mapped splits
        // the hub across all 8 lanes, so the critical warp cost is ~1/8 of
        // thread-mapped's.
        let w = CountedTiles::from_counts([800, 1, 1, 1, 1, 1, 1, 1]);
        let spec = GpuSpec::test_tiny();
        let sched = GroupMappedSchedule::new(&w, 8);
        let cfg = sched.launch_config(8, 64);
        let group_report = simt::launch_groups(&spec, cfg, 8, |g| {
            sched.process(g, |_, _, _| {});
        })
        .unwrap();
        let tsched = crate::schedule::ThreadMappedSchedule::new(&w);
        let thread_report = simt::launch_threads(&spec, LaunchConfig::new(1, 8), |t| {
            for tile in tsched.tiles(t) {
                for _ in tsched.atoms(tile, t) {}
            }
        })
        .unwrap();
        assert!(
            group_report.timing.compute_ms < thread_report.timing.compute_ms / 2.0,
            "group {} vs thread {}",
            group_report.timing.compute_ms,
            thread_report.timing.compute_ms
        );
    }

    #[test]
    #[should_panic(expected = "≥ 1")]
    fn rejects_zero_group() {
        let w = CountedTiles::from_counts([1]);
        let _ = GroupMappedSchedule::new(&w, 0);
    }

    #[test]
    fn process_batches_reduces_exactly_once_per_tile() {
        // per_atom returns 1.0: per-tile sum must equal the tile's count.
        let counts = vec![2usize, 0, 3, 1, 4, 0, 0, 9, 5, 1, 1, 2];
        let w = CountedTiles::from_counts(counts.clone());
        let sched = GroupMappedSchedule::new(&w, 4);
        let spec = GpuSpec::test_tiny();
        let mut out = vec![-1.0f32; w.num_tiles()];
        {
            let go = simt::GlobalMem::new(&mut out);
            let cfg = LaunchConfig::new(2, 8).with_shared(2 * sched.shared_bytes(8));
            simt::launch_groups(&spec, cfg, 4, |g| {
                sched.process_batches(
                    g,
                    |_, _, _| 1.0,
                    |_, tile, sum| go.store(tile, sum),
                );
            })
            .unwrap();
        }
        let expect: Vec<f32> = counts.iter().map(|&c| c as f32).collect();
        assert_eq!(out, expect);
    }
}
