//! Counting and transform iterators — the paper's Listing 1 vocabulary.
//!
//! In the C++ original, sparse formats are described to the framework with
//! a `counting_iterator` (atom and tile id sequences) and a
//! `transform_iterator` (atoms-per-tile computed on the fly from, e.g.,
//! row offsets). These Rust equivalents exist so format adapters read like
//! the paper; they are ordinary `Iterator`s and compose with everything
//! in `std`.

/// An iterator over `begin..end` — the paper's `counting_iterator<int>`.
///
/// (Thin wrapper over `Range<usize>` kept for API parity; it also allows
/// random access via [`CountingIter::at`], which the C++ iterator offers
/// through `operator[]`.)
#[derive(Debug, Clone)]
pub struct CountingIter {
    next: usize,
    end: usize,
}

impl CountingIter {
    /// Count from `begin` (inclusive) to `end` (exclusive).
    pub fn new(begin: usize, end: usize) -> Self {
        Self {
            next: begin,
            end: end.max(begin),
        }
    }

    /// Random access: the `i`-th value of the original sequence.
    pub fn at(&self, i: usize) -> usize {
        self.next + i
    }
}

impl Iterator for CountingIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.next < self.end {
            let v = self.next;
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CountingIter {}

/// `make_transform_iterator`: applies `f` to each element of `inner`.
///
/// With `inner = CountingIter` and `f = |i| offsets[i+1] - offsets[i]`
/// this is exactly the paper's atoms-per-tile iterator for CSR.
#[derive(Debug, Clone)]
pub struct TransformIter<I, F> {
    inner: I,
    f: F,
}

impl<I, F> TransformIter<I, F> {
    /// Wrap `inner`, mapping through `f`.
    pub fn new(inner: I, f: F) -> Self {
        Self { inner, f }
    }
}

impl<I: Iterator, F: FnMut(I::Item) -> T, T> Iterator for TransformIter<I, F> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        self.inner.next().map(&mut self.f)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: ExactSizeIterator, F: FnMut(I::Item) -> T, T> ExactSizeIterator for TransformIter<I, F> {}

/// The paper's Listing-1 construction for CSR: an iterator yielding each
/// row's nonzero count from the row-offsets array.
pub fn atoms_per_tile_csr(row_offsets: &[usize]) -> impl Iterator<Item = usize> + '_ {
    TransformIter::new(CountingIter::new(0, row_offsets.len().saturating_sub(1)), |i| {
        row_offsets[i + 1] - row_offsets[i]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_iter_yields_range() {
        let v: Vec<usize> = CountingIter::new(3, 7).collect();
        assert_eq!(v, vec![3, 4, 5, 6]);
        assert_eq!(CountingIter::new(3, 7).len(), 4);
        assert_eq!(CountingIter::new(5, 5).count(), 0);
        assert_eq!(CountingIter::new(7, 3).count(), 0); // inverted is empty
    }

    #[test]
    fn counting_iter_random_access() {
        let it = CountingIter::new(10, 100);
        assert_eq!(it.at(0), 10);
        assert_eq!(it.at(5), 15);
    }

    #[test]
    fn transform_iter_maps() {
        let v: Vec<usize> = TransformIter::new(CountingIter::new(0, 4), |i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9]);
    }

    #[test]
    fn transform_preserves_exact_size() {
        let it = TransformIter::new(CountingIter::new(0, 4), |i| i + 1);
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn listing1_csr_atoms_per_tile() {
        // Row offsets of the 3-row sample used throughout: [0, 2, 2, 5].
        let offsets = [0usize, 2, 2, 5];
        let counts: Vec<usize> = atoms_per_tile_csr(&offsets).collect();
        assert_eq!(counts, vec![2, 0, 3]);
    }

    #[test]
    fn listing1_empty_offsets() {
        let offsets: [usize; 1] = [0];
        assert_eq!(atoms_per_tile_csr(&offsets).count(), 0);
    }
}
