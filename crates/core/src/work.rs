//! The work vocabulary: atoms, tiles, tile sets (paper §3.1).
//!
//! A [`TileSet`] is the common frame every sparse format is reduced to
//! before scheduling: it knows how many tiles and atoms exist and where
//! each tile's atoms live in the flat atom index space. Tiles must be
//! independent (parallelizable) and each tile's atoms must be contiguous —
//! the property CSR-like layouts give for free and which every schedule in
//! the paper relies on (row offsets *are* the tile-offset sequence).

use std::ops::Range;

/// A scheduled-work description: the paper's *tile set*.
///
/// The only required geometry is [`TileSet::tile_atoms`] — where each
/// tile's atoms live in a flat atom index space. Most tile sets are
/// **contiguous** (tile `t+1`'s atoms start where tile `t`'s end — CSR
/// row offsets are exactly this), and for those the provided
/// [`TileSet::tile_offset`] is a valid boundary sequence. The merge-path
/// schedule requires contiguity (it binary-searches the boundaries);
/// thread-, group- and queue-based schedules only need per-tile ranges
/// and therefore also accept non-contiguous views such as
/// [`SubsetTiles`].
pub trait TileSet: Sync {
    /// Number of work tiles (e.g. matrix rows).
    fn num_tiles(&self) -> usize;

    /// Number of work atoms (e.g. stored nonzeros).
    fn num_atoms(&self) -> usize;

    /// The half-open flat atom range of tile `t`.
    fn tile_atoms(&self, t: usize) -> Range<usize>;

    /// Flat atom offset at tile boundary `i`, for `i ∈ [0, num_tiles]` —
    /// meaningful for contiguous tile sets (see trait docs); schedules
    /// that rely on it (merge-path) state so.
    fn tile_offset(&self, i: usize) -> usize {
        if i >= self.num_tiles() {
            self.num_atoms()
        } else {
            self.tile_atoms(i).start
        }
    }

    /// Atom count of tile `t` — the paper's "atoms-per-tile" iterator
    /// element.
    fn atoms_in_tile(&self, t: usize) -> usize {
        self.tile_atoms(t).len()
    }

    /// `true` if this tile set is contiguous (tile boundaries form a
    /// monotone prefix of the atom space) — the precondition for
    /// merge-path.
    fn is_contiguous(&self) -> bool {
        self.tile_offset(0) == 0
            && (0..self.num_tiles()).all(|t| self.tile_atoms(t).end == self.tile_offset(t + 1))
    }

    /// Debug-check the tile-set invariants (monotone offsets, matching
    /// totals). Cheap enough to call in tests; not called on hot paths.
    fn validate(&self) -> bool {
        if self.tile_offset(0) != 0 || self.tile_offset(self.num_tiles()) != self.num_atoms() {
            return false;
        }
        (0..self.num_tiles()).all(|t| self.tile_offset(t) <= self.tile_offset(t + 1))
    }
}

/// A tile set defined directly by an offsets slice (`len = tiles + 1`),
/// e.g. CSR row offsets used verbatim.
#[derive(Debug, Clone, Copy)]
pub struct SliceTiles<'a> {
    offsets: &'a [usize],
}

impl<'a> SliceTiles<'a> {
    /// Wrap an offsets array (must be non-empty; `offsets[0] == 0`).
    pub fn new(offsets: &'a [usize]) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets }
    }
}

impl TileSet for SliceTiles<'_> {
    fn num_tiles(&self) -> usize {
        self.offsets.len() - 1
    }
    fn num_atoms(&self) -> usize {
        *self.offsets.last().expect("non-empty by construction")
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> Range<usize> {
        self.offsets[t]..self.offsets[t + 1]
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }
}

/// A tile set built from an atoms-per-tile *count* sequence — the general
/// form of the paper's Listing 1, where the user supplies a transform
/// iterator yielding each tile's atom count and the framework derives the
/// offsets (a one-time prefix sum, the analogue of materializing
/// `row_offsets` for formats that lack them).
#[derive(Debug, Clone)]
pub struct CountedTiles {
    offsets: Vec<usize>,
}

impl CountedTiles {
    /// Build from any iterator of per-tile atom counts.
    pub fn from_counts(counts: impl IntoIterator<Item = usize>) -> Self {
        let mut offsets = vec![0usize];
        for c in counts {
            offsets.push(offsets.last().expect("non-empty") + c);
        }
        Self { offsets }
    }

    /// The derived offsets (`tiles + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

impl TileSet for CountedTiles {
    fn num_tiles(&self) -> usize {
        self.offsets.len() - 1
    }
    fn num_atoms(&self) -> usize {
        *self.offsets.last().expect("non-empty by construction")
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> Range<usize> {
        self.offsets[t]..self.offsets[t + 1]
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }
}

/// A contiguous row-span *view* of an offsets array: tile `t` is global
/// tile `rows.start + t`, with atom coordinates rebased so the span's
/// first atom is 0.
///
/// This is the partition-aware tile set sharding runs on: a shard owns
/// `rows` of a matrix and executes against the *original* offsets with
/// values/column slices rebased by [`RowSpanTiles::atom_base`] — no
/// sub-matrix materialization. The rebased boundaries form a monotone
/// prefix starting at 0, so the view stays contiguous and every
/// schedule (merge-path included) accepts it unchanged.
#[derive(Debug, Clone)]
pub struct RowSpanTiles<'a> {
    offsets: &'a [usize],
    rows: Range<usize>,
    base: usize,
}

impl<'a> RowSpanTiles<'a> {
    /// View the tiles `rows` of an offsets array (`len = tiles + 1`).
    pub fn new(offsets: &'a [usize], rows: Range<usize>) -> Self {
        assert!(
            rows.start <= rows.end && rows.end < offsets.len(),
            "row span out of bounds"
        );
        let base = offsets[rows.start];
        Self {
            offsets,
            rows,
            base,
        }
    }

    /// The global tile id of local tile `t`.
    pub fn global_row(&self, t: usize) -> usize {
        self.rows.start + t
    }

    /// The flat atom offset the span starts at in the wrapped array —
    /// the amount executors must slice their atom-indexed arrays by.
    pub fn atom_base(&self) -> usize {
        self.base
    }
}

impl TileSet for RowSpanTiles<'_> {
    fn num_tiles(&self) -> usize {
        self.rows.len()
    }
    fn num_atoms(&self) -> usize {
        self.offsets[self.rows.end] - self.base
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> Range<usize> {
        (self.offsets[self.rows.start + t] - self.base)
            ..(self.offsets[self.rows.start + t + 1] - self.base)
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.offsets[self.rows.start + i] - self.base
    }
}

/// A non-contiguous *view* of another tile set: local tile `i` is the
/// wrapped set's tile `tiles[i]`.
///
/// This is how binning/reordering schedules (e.g. Logarithmic Radix
/// Binning) present "the tiles of bin `b`" to an ordinary schedule
/// without copying any data. Not contiguous in general — merge-path
/// rejects it by contract; thread-, group- and queue-based schedules work
/// unmodified.
#[derive(Debug, Clone, Copy)]
pub struct SubsetTiles<'w, 's, W> {
    work: &'w W,
    tiles: &'s [u32],
    total_atoms: usize,
}

impl<'w, 's, W: TileSet> SubsetTiles<'w, 's, W> {
    /// View `tiles` (global tile ids) of `work` as a tile set.
    pub fn new(work: &'w W, tiles: &'s [u32]) -> Self {
        let total_atoms = tiles
            .iter()
            .map(|&t| work.atoms_in_tile(t as usize))
            .sum();
        Self {
            work,
            tiles,
            total_atoms,
        }
    }

    /// The global tile id of local tile `i`.
    pub fn global_tile(&self, i: usize) -> usize {
        self.tiles[i] as usize
    }
}

impl<W: TileSet> TileSet for SubsetTiles<'_, '_, W> {
    fn num_tiles(&self) -> usize {
        self.tiles.len()
    }
    fn num_atoms(&self) -> usize {
        self.total_atoms
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> Range<usize> {
        self.work.tile_atoms(self.tiles[t] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_tiles_exposes_offsets() {
        let offs = [0usize, 2, 2, 5];
        let w = SliceTiles::new(&offs);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 5);
        assert_eq!(w.tile_atoms(0), 0..2);
        assert_eq!(w.tile_atoms(1), 2..2);
        assert_eq!(w.atoms_in_tile(2), 3);
        assert!(w.validate());
    }

    #[test]
    fn counted_tiles_prefix_sums_counts() {
        let w = CountedTiles::from_counts([2, 0, 3]);
        assert_eq!(w.offsets(), &[0, 2, 2, 5]);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 5);
        assert_eq!(w.tile_atoms(2), 2..5);
        assert!(w.validate());
    }

    #[test]
    fn empty_tile_set() {
        let w = CountedTiles::from_counts(std::iter::empty());
        assert_eq!(w.num_tiles(), 0);
        assert_eq!(w.num_atoms(), 0);
        assert!(w.validate());
    }

    #[test]
    #[should_panic(expected = "start at zero")]
    fn slice_tiles_rejects_nonzero_start() {
        let offs = [1usize, 2];
        let _ = SliceTiles::new(&offs);
    }

    #[test]
    fn subset_tiles_view_maps_locals_to_globals() {
        let w = CountedTiles::from_counts([2, 0, 3, 1, 4]);
        let picks = [4u32, 0, 2];
        let s = SubsetTiles::new(&w, &picks);
        assert_eq!(s.num_tiles(), 3);
        assert_eq!(s.num_atoms(), 4 + 2 + 3);
        assert_eq!(s.tile_atoms(0), w.tile_atoms(4));
        assert_eq!(s.tile_atoms(1), w.tile_atoms(0));
        assert_eq!(s.global_tile(2), 2);
        // Permuted views are not contiguous (and say so).
        assert!(!s.is_contiguous());
        // The identity subset of a contiguous set stays contiguous.
        let all = [0u32, 1, 2, 3, 4];
        assert!(SubsetTiles::new(&w, &all).is_contiguous());
    }

    #[test]
    fn row_span_tiles_rebase_a_window() {
        let offs = [0usize, 2, 2, 5, 9, 10];
        let w = RowSpanTiles::new(&offs, 2..4);
        assert_eq!(w.num_tiles(), 2);
        assert_eq!(w.num_atoms(), 9 - 2);
        assert_eq!(w.atom_base(), 2);
        assert_eq!(w.tile_atoms(0), 0..3);
        assert_eq!(w.tile_atoms(1), 3..7);
        assert_eq!(w.global_row(1), 3);
        assert!(w.is_contiguous(), "rebased span must stay merge-path-able");
        assert!(w.validate());
    }

    #[test]
    fn row_span_tiles_match_the_equivalent_slice() {
        let counts = [3usize, 0, 4, 1, 2, 0, 5];
        let full = CountedTiles::from_counts(counts);
        let span = RowSpanTiles::new(full.offsets(), 1..5);
        let rebased: Vec<usize> = full.offsets()[1..=5]
            .iter()
            .map(|&o| o - full.offsets()[1])
            .collect();
        let slice = SliceTiles::new(&rebased);
        assert_eq!(span.num_tiles(), slice.num_tiles());
        assert_eq!(span.num_atoms(), slice.num_atoms());
        for t in 0..span.num_tiles() {
            assert_eq!(span.tile_atoms(t), slice.tile_atoms(t));
        }
    }

    #[test]
    fn empty_and_full_row_spans() {
        let offs = [0usize, 2, 2, 5];
        let empty = RowSpanTiles::new(&offs, 1..1);
        assert_eq!(empty.num_tiles(), 0);
        assert_eq!(empty.num_atoms(), 0);
        assert!(empty.validate());
        let full = RowSpanTiles::new(&offs, 0..3);
        assert_eq!(full.num_atoms(), 5);
        assert_eq!(full.atom_base(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_span_rejects_overrun() {
        let offs = [0usize, 2, 2, 5];
        let _ = RowSpanTiles::new(&offs, 0..4);
    }

    #[test]
    fn counted_and_slice_agree() {
        let counts = [4usize, 1, 0, 0, 7, 2];
        let counted = CountedTiles::from_counts(counts);
        let slice = SliceTiles::new(counted.offsets());
        for t in 0..counts.len() {
            assert_eq!(counted.tile_atoms(t), slice.tile_atoms(t));
        }
    }
}
