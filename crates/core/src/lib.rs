//! # loops — a programming model for GPU load balancing
//!
//! Rust port of the PPoPP '23 paper's contribution: a fine-grained
//! load-balancing abstraction that **separates workload mapping from work
//! execution**. The pipeline has three stages (paper §3, Figure 1):
//!
//! 1. **Define the work** ([`work`], [`adapters`], [`iterators`]): a sparse
//!    data structure is described as *work atoms* (indivisible units, e.g.
//!    nonzeros), *work tiles* (logical groups, e.g. rows), and a *tile set*
//!    (the whole problem). Any format reduces to three sequences: the
//!    atoms, the tiles, and the atoms-per-tile counts — exactly the three
//!    iterators of the paper's Listing 1.
//!
//! 2. **Define the load balance** ([`schedule`]): a pluggable schedule maps
//!    tiles/atoms onto processing elements and hands each element
//!    ready-to-consume ranges. Five schedules are provided, mirroring
//!    §4.2/§5.2 —
//!    [`schedule::ThreadMappedSchedule`] (tile per thread),
//!    [`schedule::MergePathSchedule`] (perfectly even atoms+tiles split via
//!    2-D diagonal search), and the cooperative-groups generalization
//!    [`schedule::GroupMappedSchedule`], whose `warp_mapped` /
//!    `block_mapped` constructors recover the classic warp- and
//!    block-level schedules for free.
//!
//! 3. **Define the work execution** (your kernel): the user owns the
//!    kernel boundary (§4.3) — schedules are consumed *inside* kernels
//!    launched through [`simt`], typically as a nested range-based loop:
//!
//! ```
//! use loops::adapters::CsrTiles;
//! use loops::schedule::ThreadMappedSchedule;
//! use simt::{GpuSpec, LaunchConfig, GlobalMem};
//!
//! let a = sparse::gen::uniform(256, 256, 2048, 1);
//! let x = sparse::dense::test_vector(256);
//! let mut y = vec![0.0f32; 256];
//! let work = CsrTiles::new(&a);
//! let sched = ThreadMappedSchedule::new(&work);
//! {
//!     let gy = GlobalMem::new(&mut y);
//!     simt::launch_threads(
//!         &GpuSpec::v100(),
//!         LaunchConfig::over_threads(256, 128),
//!         |t| {
//!             // the paper's Listing 3, in Rust:
//!             for row in sched.tiles(t) {
//!                 let mut sum = 0.0f32;
//!                 for nz in sched.atoms(row, t) {
//!                     sum += a.values()[nz] * x[a.col_indices()[nz] as usize];
//!                 }
//!                 gy.store(row, sum);
//!             }
//!         },
//!     )
//!     .unwrap();
//! }
//! let want = a.spmv_ref(&x);
//! assert!(y.iter().zip(&want).all(|(a, b)| (a - b).abs() < 1e-3));
//! ```
//!
//! Switching the schedule — the whole point of the abstraction — is a
//! one-identifier change ([`schedule::ScheduleKind`], §6.2), or letting
//! the [`heuristic::Heuristic`] pick per dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapters;
pub mod heuristic;
pub mod iterators;
pub mod ranges;
pub mod schedule;
pub mod work;

pub use adapters::{CooTiles, CscTiles, CsrTiles, EllTiles};
pub use heuristic::Heuristic;
pub use ranges::{
    block_stride_range, grid_stride_range, infinite_range, step_range, warp_stride_range,
    ChargeKind, Charged, StepRange,
};
pub use schedule::{
    GroupMappedSchedule, LrbPlan, LrbSchedule, MergePathSchedule, ScheduleKind,
    ThreadMappedSchedule, TileSpan, WorkQueueSchedule,
};
pub use work::{CountedTiles, SliceTiles, SubsetTiles, TileSet};
