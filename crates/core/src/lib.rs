//! # loops — a programming model for GPU load balancing
//!
//! Rust port of the PPoPP '23 paper's contribution: a fine-grained
//! load-balancing abstraction that **separates workload mapping from work
//! execution**. The pipeline has three stages (paper §3, Figure 1):
//!
//! 1. **Define the work** ([`work`], [`adapters`], [`iterators`]): a sparse
//!    data structure is described as *work atoms* (indivisible units, e.g.
//!    nonzeros), *work tiles* (logical groups, e.g. rows), and a *tile set*
//!    (the whole problem). Any format reduces to three sequences: the
//!    atoms, the tiles, and the atoms-per-tile counts — exactly the three
//!    iterators of the paper's Listing 1.
//!
//! 2. **Define the load balance** ([`schedule`]): a pluggable schedule maps
//!    tiles/atoms onto processing elements and hands each element
//!    ready-to-consume ranges. Five schedules are provided, mirroring
//!    §4.2/§5.2 —
//!    [`schedule::ThreadMappedSchedule`] (tile per thread),
//!    [`schedule::MergePathSchedule`] (perfectly even atoms+tiles split via
//!    2-D diagonal search), and the cooperative-groups generalization
//!    [`schedule::GroupMappedSchedule`], whose `warp_mapped` /
//!    `block_mapped` constructors recover the classic warp- and
//!    block-level schedules for free.
//!
//! 3. **Define the work execution** (your kernel): the user owns the
//!    kernel boundary (§4.3). A computation is written once against the
//!    small [`dispatch::TileExec`] interface and dispatched through the
//!    schedule-polymorphic engine, [`dispatch::BalancedLaunch`] — the one
//!    place that constructs schedules, clamps block dims, derives launch
//!    configs, and caches plan artifacts:
//!
//! ```
//! use loops::adapters::CsrTiles;
//! use loops::dispatch::{span_atoms, BalancedLaunch, TileExec};
//! use loops::schedule::{ScheduleKind, TileSpan};
//! use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx};
//!
//! // The paper's Listing 3 (SpMV), written once:
//! struct Spmv<'a> {
//!     a: &'a sparse::Csr<f32>,
//!     x: &'a [f32],
//!     y: GlobalMem<'a, f32>,
//! }
//! impl TileExec for Spmv<'_> {
//!     const COOPERATIVE_REDUCE: bool = true;
//!     fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
//!         let mut sum = 0.0f32;
//!         for nz in span_atoms(span, lane) {
//!             sum += self.a.values()[nz] * self.x[self.a.col_indices()[nz] as usize];
//!         }
//!         if span.complete {
//!             self.y.store(span.tile, sum);
//!         } else if !span.atoms.is_empty() {
//!             self.y.fetch_add(span.tile, sum);
//!         }
//!     }
//!     fn atom_value(&self, _: &LaneCtx<'_>, _: usize, nz: usize) -> f32 {
//!         self.a.values()[nz] * self.x[self.a.col_indices()[nz] as usize]
//!     }
//!     fn tile_done(&self, _: &LaneCtx<'_>, tile: usize, sum: f32) {
//!         self.y.store(tile, sum);
//!     }
//! }
//!
//! let a = sparse::gen::uniform(256, 256, 2048, 1);
//! let x = sparse::dense::test_vector(256);
//! let mut y = vec![0.0f32; 256];
//! let work = CsrTiles::new(&a);
//! let exec = Spmv { a: &a, x: &x, y: GlobalMem::new(&mut y) };
//! // Switching the schedule — the whole point — is one identifier:
//! BalancedLaunch::new(&GpuSpec::v100(), &CostModel::standard(), &work)
//!     .run(ScheduleKind::MergePath, &exec)
//!     .unwrap();
//! let want = a.spmv_ref(&x);
//! assert!(y.iter().zip(&want).all(|(a, b)| (a - b).abs() < 1e-3));
//! ```
//!
//! Schedules remain directly consumable for custom kernels (nested
//! range-based loops, as in the paper's listings), but every built-in
//! kernel dispatches through the engine, and the
//! [`heuristic::Heuristic`] can pick the schedule per dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapters;
pub mod dispatch;
pub mod heuristic;
pub mod iterators;
pub mod ranges;
pub mod schedule;
pub mod view;
pub mod work;

pub use adapters::{CooTiles, CscTiles, CsrTiles, EllTiles, HybridSlabTiles};
pub use dispatch::{BalancedLaunch, Candidate, Dispatch, KernelKind, KernelPlan, TileExec};
pub use view::MatrixView;
pub use heuristic::Heuristic;
pub use ranges::{
    block_stride_range, grid_stride_range, infinite_range, step_range, warp_stride_range,
    ChargeKind, Charged, StepRange,
};
pub use schedule::{
    GroupMappedSchedule, LrbPlan, LrbSchedule, MergePathSchedule, ScheduleKind,
    ThreadMappedSchedule, TileSpan, WorkQueueSchedule,
};
pub use work::{CountedTiles, RowSpanTiles, SliceTiles, SubsetTiles, TileSet};
