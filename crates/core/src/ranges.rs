//! Flexible, composable device-side ranges (paper §5.1).
//!
//! The framework's schedules hand kernels C++-style ranges. Three are
//! provided, mirroring the paper exactly:
//!
//! * [`step_range`] — `begin..end` in steps of `step`;
//! * [`grid_stride_range`] — the specialized step range whose stride is
//!   the launch's grid size (with block- and warp-stride variants);
//! * [`infinite_range`] — `begin..∞`, for persistent-kernel-style loops.
//!
//! Ranges returned by schedules are [`Charged`]: every `next()` bills the
//! cost model's `range_overhead` to the owning lane. That per-iteration
//! charge *is* the abstraction overhead Figure 2 measures — hand-fused
//! baselines iterate raw ranges and never pay it.

use simt::LaneCtx;

/// A `begin..end` range advancing by `step` (paper's `step_range_t`).
#[derive(Debug, Clone)]
pub struct StepRange {
    next: usize,
    end: usize,
    step: usize,
}

impl Iterator for StepRange {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.next < self.end {
            let v = self.next;
            self.next += self.step;
            Some(v)
        } else {
            None
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.next < self.end {
            (self.end - self.next).div_ceil(self.step)
        } else {
            0
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for StepRange {}

/// Iterate `begin..end` in steps of `step` (`step ≥ 1`).
pub fn step_range(begin: usize, end: usize, step: usize) -> StepRange {
    assert!(step >= 1, "step must be at least 1");
    StepRange {
        next: begin,
        end,
        step,
    }
}

/// A grid-stride range for `lane`: starts at this thread's global id plus
/// `begin`, strides by the total number of launched threads, ends at
/// `end`. The canonical "process tile `i`, then `i + gridDim*blockDim`"
/// loop of Listing 2.
pub fn grid_stride_range(lane: &LaneCtx<'_>, begin: usize, end: usize) -> StepRange {
    step_range(
        begin + lane.global_thread_id() as usize,
        end,
        lane.grid_size() as usize,
    )
}

/// Block-stride variant: starts at this thread's index within its block,
/// strides by the block size (for block-cooperative loops).
pub fn block_stride_range(lane: &LaneCtx<'_>, begin: usize, end: usize) -> StepRange {
    step_range(
        begin + lane.thread_idx() as usize,
        end,
        lane.block_dim() as usize,
    )
}

/// Warp-stride variant: starts at this thread's lane id within its warp,
/// strides by the warp size.
pub fn warp_stride_range(lane: &LaneCtx<'_>, begin: usize, end: usize) -> StepRange {
    step_range(
        begin + lane.lane_id() as usize,
        end,
        lane.warp_size() as usize,
    )
}

/// An unbounded counting range (paper's `infinite_range_t`), used by
/// persistent-kernel schedules that poll until work is exhausted. Pair
/// with `take_while`/`break`.
pub fn infinite_range(begin: usize) -> impl Iterator<Item = usize> {
    begin..usize::MAX
}

/// What a charged range bills per yielded element, on top of the
/// abstraction's `range_overhead`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// Only the per-iteration range overhead.
    OverheadOnly,
    /// An atom's processing cost and traffic ([`LaneCtx::charge_atom`]).
    Atom,
    /// A tile's bookkeeping cost and traffic ([`LaneCtx::charge_tile`]).
    Tile,
}

/// A range adaptor that charges the abstraction's per-iteration overhead
/// (and optionally the atom/tile unit cost) to a lane. Produced by every
/// framework schedule; never used by the hand-fused baselines.
#[derive(Debug)]
pub struct Charged<'l, 'm, I> {
    inner: I,
    lane: &'l LaneCtx<'m>,
    kind: ChargeKind,
}

impl<'l, 'm, I: Iterator> Charged<'l, 'm, I> {
    /// Attach `inner` to `lane`, charging only range overhead.
    pub fn new(inner: I, lane: &'l LaneCtx<'m>) -> Self {
        Self {
            inner,
            lane,
            kind: ChargeKind::OverheadOnly,
        }
    }

    /// A range over atoms: each yield bills one atom's cost + overhead.
    pub fn atoms(inner: I, lane: &'l LaneCtx<'m>) -> Self {
        Self {
            inner,
            lane,
            kind: ChargeKind::Atom,
        }
    }

    /// A range over tiles: each yield bills one tile's bookkeeping +
    /// overhead.
    pub fn tiles(inner: I, lane: &'l LaneCtx<'m>) -> Self {
        Self {
            inner,
            lane,
            kind: ChargeKind::Tile,
        }
    }
}

impl<I: Iterator> Iterator for Charged<'_, '_, I> {
    type Item = I::Item;
    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        let v = self.inner.next();
        if v.is_some() {
            self.lane.charge_range_iter();
            match self.kind {
                ChargeKind::OverheadOnly => {}
                ChargeKind::Atom => self.lane.charge_atom(),
                ChargeKind::Tile => self.lane.charge_tile(),
            }
        }
        v
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::{CostModel, GpuSpec, LaunchConfig};

    #[test]
    fn step_range_basic() {
        let v: Vec<usize> = step_range(0, 10, 3).collect();
        assert_eq!(v, vec![0, 3, 6, 9]);
        assert_eq!(step_range(5, 5, 1).count(), 0);
        assert_eq!(step_range(2, 11, 4).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_step_rejected() {
        let _ = step_range(0, 10, 0);
    }

    #[test]
    fn infinite_range_is_lazy_and_unbounded() {
        let v: Vec<usize> = infinite_range(7).take(3).collect();
        assert_eq!(v, vec![7, 8, 9]);
    }

    #[test]
    fn grid_and_block_and_warp_strides_partition_their_domains() {
        let spec = GpuSpec::test_tiny(); // warp 8
        let n = 1000usize;
        let mut cover = vec![0u32; 3 * n];
        {
            let g = simt::GlobalMem::new(&mut cover);
            simt::launch_threads(&spec, LaunchConfig::new(4, 16), |t| {
                for i in grid_stride_range(t, 0, n) {
                    g.fetch_add(i, 1);
                }
                // block/warp strides cover their domain once *per block/warp*:
                if t.block_idx() == 0 {
                    for i in block_stride_range(t, 0, n) {
                        g.fetch_add(n + i, 1);
                    }
                    if t.warp_id() == 0 {
                        for i in warp_stride_range(t, 0, n) {
                            g.fetch_add(2 * n + i, 1);
                        }
                    }
                }
            })
            .unwrap();
        }
        assert!(cover[..n].iter().all(|&c| c == 1), "grid-stride covers once");
        assert!(cover[n..2 * n].iter().all(|&c| c == 1), "block-stride");
        assert!(cover[2 * n..].iter().all(|&c| c == 1), "warp-stride");
    }

    #[test]
    fn charged_range_bills_overhead_per_iteration() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut total = vec![0.0f64; 1];
        {
            let g = simt::GlobalMem::new(&mut total);
            simt::launch_threads_with_model(&spec, &model, LaunchConfig::new(1, 8), |t| {
                let before = t.units();
                let n = Charged::new(step_range(0, 10, 1), t).count();
                assert_eq!(n, 10);
                g.store(0, t.units() - before);
            })
            .unwrap();
        }
        assert!((total[0] - 10.0 * model.range_overhead).abs() < 1e-12);
    }

    #[test]
    fn charged_is_free_under_the_fused_model() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::fused();
        let mut total = vec![0.0f64; 1];
        {
            let g = simt::GlobalMem::new(&mut total);
            simt::launch_threads_with_model(&spec, &model, LaunchConfig::new(1, 8), |t| {
                let before = t.units();
                Charged::new(step_range(0, 10, 1), t).for_each(|_| {});
                g.store(0, t.units() - before);
            })
            .unwrap();
        }
        assert_eq!(total[0], 0.0);
    }
}
