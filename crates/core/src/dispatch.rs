//! The schedule-polymorphic dispatch engine: one executor for every
//! kernel and every [`ScheduleKind`].
//!
//! The paper's promise (§4–§6) is that the *schedule* is a one-identifier
//! swap while the *computation* is written once. This module is where the
//! repo keeps that promise structurally: a [`BalancedLaunch`] owns — in
//! exactly one place — schedule construction, block-dim clamping,
//! launch-config derivation, plan artifacts ([`KernelPlan`]), and trace
//! span labels ([`trace_label`]), while the kernel supplies only its
//! computation through the small [`TileExec`] interface.
//!
//! A computation is consumed in at most three shapes, and `TileExec` has
//! one hook per shape:
//!
//! * **flat spans** ([`TileExec::span`]) — one thread owns a contiguous
//!   run of one tile's atoms. Thread-mapped and work-queue hand out whole
//!   tiles (`complete == true`); merge-path also hands out *partial*
//!   spans whose results must be combined (`complete == false`). This is
//!   the paper's Listing 3 loop with the span boundary made explicit.
//! * **cooperative reduce** ([`TileExec::atom_value`] +
//!   [`TileExec::tile_done`]) — group/warp/block-mapped schedules compute
//!   a value per atom, segment-reduce by owning tile in scratchpad, and
//!   finalize each tile exactly once (SpMV-shaped kernels).
//! * **cooperative visit** ([`TileExec::visit`]) — the same schedules,
//!   but with an arbitrary per-atom side effect and no reduction
//!   (traversal-shaped kernels). [`TileExec::COOPERATIVE_REDUCE`] selects
//!   between the two cooperative shapes.
//!
//! LRB composes the flat and cooperative shapes over
//! [`SubsetTiles`] size classes; the engine
//! owns that composition too, so every kernel gets the binned schedule
//! (and its cached [`LrbPlan`] warm path) for free.

use crate::schedule::{
    bin_of, GroupMappedSchedule, LrbPlan, LrbSchedule, MergePathSchedule, ScheduleKind,
    ThreadMappedSchedule, TileSpan, WorkQueueSchedule, LRB_NUM_BINS,
};
use crate::ranges::{step_range, Charged, StepRange};
use crate::work::{SubsetTiles, TileSet};
use simt::{CostModel, GpuSpec, LaneCtx, LaunchConfig, LaunchReport};
use sparse::{FormatKind, FormatStats};

/// Default threads per block (the paper's Listing 3 uses 256).
pub const DEFAULT_BLOCK: u32 = 256;

/// Items per thread for merge-path, following CUB's V100 tuning.
pub const MERGE_ITEMS_PER_THREAD: usize = 7;

/// A computation expressed against the engine's consumption shapes.
///
/// Implementations own the kernel boundary (§4.3): what to do with a
/// span of atoms, and where results go. They never see a schedule — the
/// engine decides which hooks run, with which spans, on which simulated
/// processing elements.
pub trait TileExec: Sync {
    /// Whether cooperative schedules run the segment-reduced
    /// ([`Self::atom_value`]/[`Self::tile_done`]) shape (`true`) or the
    /// plain per-atom [`Self::visit`] shape (`false`).
    const COOPERATIVE_REDUCE: bool;

    /// Flat shape: process one thread's contiguous `span` of one tile.
    /// Iterate the atoms through [`span_atoms`] so the framework's range
    /// overheads are charged exactly as the schedules do.
    fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan);

    /// Cooperative reduce shape, per atom: the value to accumulate into
    /// `tile`'s segment sum. Only called when
    /// [`Self::COOPERATIVE_REDUCE`] is `true`.
    fn atom_value(&self, _lane: &LaneCtx<'_>, _tile: usize, _atom: usize) -> f32 {
        unreachable!("kernel does not use the cooperative reduce shape")
    }

    /// Cooperative reduce shape, per tile: finalize `tile`'s segment
    /// `sum` (called exactly once per tile). Only called when
    /// [`Self::COOPERATIVE_REDUCE`] is `true`.
    fn tile_done(&self, _lane: &LaneCtx<'_>, _tile: usize, _sum: f32) {
        unreachable!("kernel does not use the cooperative reduce shape")
    }

    /// Cooperative visit shape: arbitrary side effect per atom. Only
    /// called when [`Self::COOPERATIVE_REDUCE`] is `false`.
    fn visit(&self, _lane: &LaneCtx<'_>, _tile: usize, _atom: usize) {
        unreachable!("kernel does not use the cooperative visit shape")
    }
}

/// Charged iterator over a flat span's atoms — the same consumption the
/// schedules hand out, so [`TileExec::span`] implementations charge
/// identically to hand-written kernels.
pub fn span_atoms<'l, 'm>(span: &TileSpan, lane: &'l LaneCtx<'m>) -> Charged<'l, 'm, StepRange> {
    Charged::atoms(step_range(span.atoms.start, span.atoms.end, 1), lane)
}

/// Largest divisor of `n` that is ≤ `k` (≥ 1). Keeps arbitrary group
/// sizes legal for any block size.
///
/// Runs in O(√n) by walking divisor *pairs* `(d, n/d)` up to √n instead
/// of scanning every candidate below `k` — this executes on every
/// group-mapped dispatch, so the descending O(k) scan it replaces was
/// per-launch overhead.
pub fn largest_divisor_leq(n: u32, k: u32) -> u32 {
    if n == 0 || k == 0 {
        return 1;
    }
    let k = k.min(n);
    let mut best = 1u32;
    let mut d = 1u32;
    while d <= n / d {
        if n.is_multiple_of(d) {
            if d <= k && d > best {
                best = d;
            }
            let q = n / d;
            if q <= k && q > best {
                best = q;
            }
        }
        d += 1;
    }
    best
}

/// Identifier for a kernel the engine can dispatch — the typed
/// replacement for the `&str` names that used to thread through
/// [`candidates`], plan-cache keys, and trace labels. `Display` emits the
/// lowercase name and [`std::str::FromStr`] round-trips it, mirroring
/// [`ScheduleKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Sparse matrix × dense vector.
    Spmv,
    /// Sparse matrix × dense matrix.
    Spmm,
    /// Breadth-first search (frontier traversal).
    Bfs,
    /// Single-source shortest paths (frontier traversal).
    Sssp,
    /// PageRank power iteration (SpMV-shaped inner loop).
    Pagerank,
}

impl KernelKind {
    /// The stable lowercase identifier used in trace labels, CSV columns,
    /// and plan-cache keys.
    pub fn base_name(&self) -> &'static str {
        match self {
            Self::Spmv => "spmv",
            Self::Spmm => "spmm",
            Self::Bfs => "bfs",
            Self::Sssp => "sssp",
            Self::Pagerank => "pagerank",
        }
    }

    /// Every kernel kind, in declaration order.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Spmv,
        KernelKind::Spmm,
        KernelKind::Bfs,
        KernelKind::Sssp,
        KernelKind::Pagerank,
    ];

    /// Frontier kernels rebuild their tile set every level, so per-plan
    /// artifacts (LRB bins) and one-time format conversions never
    /// amortize.
    pub fn is_frontier(&self) -> bool {
        matches!(self, Self::Bfs | Self::Sssp)
    }

    /// Whether the kernel has a format-generic execution path worth
    /// exploring beyond CSR (SpMV-shaped folds over a fixed matrix).
    pub fn supports_formats(&self) -> bool {
        matches!(self, Self::Spmv | Self::Spmm | Self::Pagerank)
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.base_name())
    }
}

/// Error returned when a string names no [`KernelKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError(String);

impl std::fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel {:?} (expected spmv, spmm, bfs, sssp, or pagerank)",
            self.0
        )
    }
}

impl std::error::Error for ParseKernelError {}

impl std::str::FromStr for KernelKind {
    type Err = ParseKernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "spmv" => Ok(Self::Spmv),
            "spmm" => Ok(Self::Spmm),
            "bfs" => Ok(Self::Bfs),
            "sssp" => Ok(Self::Sssp),
            "pagerank" => Ok(Self::Pagerank),
            _ => Err(ParseKernelError(s.to_owned())),
        }
    }
}

/// One cell of the autotuner's two-axis search space: a schedule paired
/// with the storage format it runs over.
pub type Candidate = (ScheduleKind, FormatKind);

/// ELL candidates are only worth measuring when padding stays below this
/// many slots per stored nonzero ([`FormatStats::ell_fill`]).
pub const ELL_MAX_FILL: f64 = 1.5;

/// Hybrid candidates need visible row-length skew: coefficient of
/// variation at least this…
pub const HYBRID_MIN_CV: f64 = 0.5;

/// …or a longest row at least this multiple of the mean
/// ([`FormatStats::max_over_mean`]).
pub const HYBRID_MIN_MAX_OVER_MEAN: f64 = 4.0;

/// Enumerate the (schedule × format) candidate space worth exploring for
/// `kernel` over the CSR pattern `a` — the search space an online
/// autotuner walks (paper §6.2: the schedule is a one-identifier swap, so
/// the whole space is enumerable; §5.2.1: the format axis only changes
/// the tile iterator, so it composes into the same sweep).
///
/// The schedule axis spans every family plus the tunable group-size and
/// chunk-width variants (warp and block widths are covered by
/// `WarpMapped`/`BlockMapped`, so the explicit `GroupMapped` entries
/// probe the sizes between and beyond them). Work-queue chunk widths
/// that exceed the tile count collapse into one claim and are pruned to
/// keep the sweep short. Frontier kernels (`bfs`, `sssp`) exclude LRB:
/// they rebuild tile sets every level, so the binning pass is paid per
/// launch and never amortizes into a cached plan. `spmm` coerces every
/// family except merge-path to thread-mapped, so its schedule space
/// collapses to those two — exploring coerced aliases would just
/// re-measure the same launch.
///
/// The format axis is filtered by [`FormatStats`] so the tuner never
/// pays to convert a structurally hopeless candidate: ELL only when the
/// padding overhead is bounded ([`ELL_MAX_FILL`]); the hybrid ELL+COO
/// split only when the row lengths are skewed enough that the slab
/// actually truncates hub rows. Canonical COO enumerates identically to
/// CSR (same offsets, same fold order, same cost) and CSC serves
/// column-major traversals, not row folds — neither earns a cell.
/// Frontier kernels stay CSR-only: their per-level tile sets make any
/// conversion cost unamortizable.
///
/// The order is deterministic — exploration policies that want an
/// unbiased walk shuffle it with their own seeded generator.
pub fn candidates(kernel: KernelKind, a: &sparse::Csr<f32>) -> Vec<Candidate> {
    let rows = a.rows();
    if rows == 0 || a.nnz() == 0 {
        // Degenerate patterns: every schedule is a no-op; don't burn
        // exploration serves distinguishing identical costs.
        return vec![(ScheduleKind::ThreadMapped, FormatKind::Csr)];
    }
    let stats = FormatStats::of(a);
    if kernel == KernelKind::Spmm {
        let mut space = vec![
            (ScheduleKind::ThreadMapped, FormatKind::Csr),
            (ScheduleKind::MergePath, FormatKind::Csr),
        ];
        space.extend(format_cells(kernel, &stats));
        return space;
    }
    let mut space: Vec<Candidate> = [
        ScheduleKind::ThreadMapped,
        ScheduleKind::WarpMapped,
        ScheduleKind::BlockMapped,
        ScheduleKind::GroupMapped(8),
        ScheduleKind::GroupMapped(16),
        ScheduleKind::GroupMapped(64),
        ScheduleKind::MergePath,
    ]
    .into_iter()
    .map(|k| (k, FormatKind::Csr))
    .collect();
    for chunk in [64u32, 256, 1024] {
        if chunk == 64 || (chunk as usize) < rows {
            space.push((ScheduleKind::WorkQueue(chunk), FormatKind::Csr));
        }
    }
    if !kernel.is_frontier() {
        space.push((ScheduleKind::Lrb, FormatKind::Csr));
    }
    space.extend(format_cells(kernel, &stats));
    space
}

/// The non-CSR cells of the candidate space (see [`candidates`] for the
/// filtering rationale). Non-CSR formats run thread-mapped only: ELL's
/// padded geometry keeps its bitwise contract under the flat-span
/// schedules but work-queue merely re-chunks the same one-row spans,
/// and the hybrid serve is a fused one-thread-per-tile launch whose
/// schedule axis is fixed by construction — extra cells would burn
/// exploration serves on duplicates.
fn format_cells(kernel: KernelKind, stats: &FormatStats) -> Vec<Candidate> {
    let mut cells = Vec::new();
    if !kernel.supports_formats() || kernel.is_frontier() {
        return cells;
    }
    if stats.ell_fill > 0.0 && stats.ell_fill <= ELL_MAX_FILL {
        cells.push((ScheduleKind::ThreadMapped, FormatKind::Ell));
    }
    let skewed = stats.cv >= HYBRID_MIN_CV || stats.max_over_mean >= HYBRID_MIN_MAX_OVER_MEAN;
    if skewed && stats.hybrid_width < stats.max_row {
        cells.push((ScheduleKind::ThreadMapped, FormatKind::Hybrid));
    }
    cells
}

/// The interned trace span label for `kernel` under `kind`:
/// `"{kernel}/{family}"`, e.g. `"spmv/merge-path"` — parameterless, so a
/// timeline row groups all group sizes / chunk widths of one family.
/// This is also the kernel component serving-runtime plan-cache keys are
/// derived from.
pub fn trace_label(kernel: KernelKind, kind: ScheduleKind) -> &'static str {
    trace::label::intern(&format!("{kernel}/{}", kind.base_name()))
}

/// Result of one engine dispatch.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// Simulated launch report (accumulated over passes for LRB).
    pub report: LaunchReport,
    /// The schedule that actually ran, after clamping — e.g.
    /// `WarpMapped` resolves to `GroupMapped(warp_size)`.
    pub schedule: ScheduleKind,
}

/// A prepared, pattern-specific execution plan — the unit a serving
/// runtime caches per (kernel, matrix fingerprint).
///
/// A plan freezes everything about a launch that depends only on the
/// tile set's shape, not on the input values: the schedule choice, the
/// block size, and any precomputed setup artifacts —
///
/// * **merge-path**: the per-thread partition table the cold kernel
///   otherwise derives with two in-kernel diagonal searches per thread;
/// * **LRB**: the log₂ binning of tiles ([`LrbPlan`]), which the cold
///   path pays two extra launches to build.
///
/// [`BalancedLaunch::run_planned`] replays a plan against any input.
/// Results are **bitwise identical** to the cold path for the same
/// schedule: artifacts only change where work is *found*, never the
/// order in which results accumulate.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// Schedule the plan was prepared for.
    pub schedule: ScheduleKind,
    /// Threads per block.
    pub block_dim: u32,
    /// Merge-path partition table (`num_threads + 1` boundary tile
    /// indices; the atom coordinate is derivable from the diagonal),
    /// present iff `schedule == MergePath`.
    pub merge_starts: Option<Vec<u32>>,
    /// LRB binning artifacts, present iff `schedule == Lrb`.
    pub lrb: Option<LrbPlan>,
    /// Simulated one-time cost of building the *separable* artifacts
    /// (the LRB binning launches). Merge-path setup is charged inside
    /// the cold kernel itself, so on a cache hit its saving shows up as
    /// lower kernel elapsed rather than in this field.
    pub setup_ms: f64,
}

impl KernelPlan {
    /// Approximate device memory the cached artifacts would occupy.
    pub fn artifact_bytes(&self) -> usize {
        let merge = self.merge_starts.as_ref().map_or(0, |s| s.len() * 4);
        let lrb = self.lrb.as_ref().map_or(0, |p| {
            p.order.len() * 4 + p.bin_offsets.len() * std::mem::size_of::<usize>()
        });
        merge + lrb
    }
}

/// The schedule-polymorphic executor: a tile set plus launch policy,
/// ready to run any [`TileExec`] under any [`ScheduleKind`].
///
/// ```
/// use loops::adapters::CsrTiles;
/// use loops::dispatch::{span_atoms, BalancedLaunch, TileExec};
/// use loops::schedule::{ScheduleKind, TileSpan};
/// use simt::{CostModel, GlobalMem, GpuSpec, LaneCtx};
///
/// // The computation, written once (SpMV's Listing 3 body):
/// struct Spmv<'a> {
///     a: &'a sparse::Csr<f32>,
///     x: &'a [f32],
///     y: GlobalMem<'a, f32>,
/// }
/// impl TileExec for Spmv<'_> {
///     const COOPERATIVE_REDUCE: bool = true;
///     fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
///         let mut sum = 0.0;
///         for nz in span_atoms(span, lane) {
///             sum += self.a.values()[nz] * self.x[self.a.col_indices()[nz] as usize];
///         }
///         if span.complete {
///             self.y.store(span.tile, sum);
///             lane.write_bytes(4);
///         } else if !span.atoms.is_empty() {
///             self.y.fetch_add(span.tile, sum);
///             lane.charge_atomic();
///         }
///     }
///     fn atom_value(&self, _: &LaneCtx<'_>, _: usize, nz: usize) -> f32 {
///         self.a.values()[nz] * self.x[self.a.col_indices()[nz] as usize]
///     }
///     fn tile_done(&self, lane: &LaneCtx<'_>, tile: usize, sum: f32) {
///         self.y.store(tile, sum);
///         lane.write_bytes(4);
///     }
/// }
///
/// let (spec, model) = (GpuSpec::v100(), CostModel::standard());
/// let a = sparse::gen::uniform(256, 256, 2048, 1);
/// let x = sparse::dense::test_vector(256);
/// let work = CsrTiles::new(&a);
/// let mut y = vec![0.0f32; 256];
/// // The schedule swap is one identifier — same exec, any schedule:
/// for kind in [ScheduleKind::ThreadMapped, ScheduleKind::MergePath, ScheduleKind::WarpMapped] {
///     y.fill(0.0);
///     let exec = Spmv { a: &a, x: &x, y: GlobalMem::new(&mut y) };
///     BalancedLaunch::new(&spec, &model, &work).run(kind, &exec).unwrap();
///     let want = a.spmv_ref(&x);
///     assert!(y.iter().zip(&want).all(|(g, w)| (g - w).abs() < 1e-3));
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BalancedLaunch<'a, W> {
    spec: &'a GpuSpec,
    model: &'a CostModel,
    work: &'a W,
    block_dim: u32,
    merge_items: usize,
    host_backend: Option<simt::HostBackend>,
}

impl<'a, W: TileSet> BalancedLaunch<'a, W> {
    /// An executor over `work` with the default block size
    /// ([`DEFAULT_BLOCK`], clamped to the device) and merge-path tuning.
    pub fn new(spec: &'a GpuSpec, model: &'a CostModel, work: &'a W) -> Self {
        Self {
            spec,
            model,
            work,
            block_dim: DEFAULT_BLOCK.min(spec.max_threads_per_block),
            merge_items: MERGE_ITEMS_PER_THREAD,
            host_backend: None,
        }
    }

    /// Set threads per block. The engine owns the device clamp: a value
    /// above `spec.max_threads_per_block` is silently reduced, so no
    /// call site can launch an illegal block.
    pub fn block_dim(mut self, block_dim: u32) -> Self {
        self.block_dim = block_dim.min(self.spec.max_threads_per_block);
        self
    }

    /// Set merge-path items per thread (default
    /// [`MERGE_ITEMS_PER_THREAD`]).
    pub fn merge_items(mut self, items: usize) -> Self {
        self.merge_items = items;
        self
    }

    /// Pin the host execution backend for this executor's launches
    /// (including plan preparation, whose LRB binning launches a
    /// kernel). Results, reports, and simulated timing are bitwise
    /// identical for every backend; only host wall-clock changes. The
    /// default defers to the ambient `simt::host` resolution (scoped
    /// override, then `LOOPS_HOST_THREADS`).
    pub fn host_backend(mut self, backend: simt::HostBackend) -> Self {
        self.host_backend = Some(backend);
        self
    }

    /// Run `f` under this executor's backend, if one is pinned.
    fn with_backend<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.host_backend {
            Some(b) => simt::host::scoped(b, f),
            None => f(),
        }
    }

    /// The block size this launch will use (post-clamp).
    pub fn effective_block_dim(&self) -> u32 {
        self.block_dim
    }

    /// Run `exec` under `kind` — the single schedule switch every kernel
    /// dispatches through.
    pub fn run<E: TileExec>(&self, kind: ScheduleKind, exec: &E) -> simt::Result<Dispatch> {
        self.with_backend(|| match kind {
            ScheduleKind::ThreadMapped => self.thread_mapped(exec),
            ScheduleKind::MergePath => self.merge_path(exec, None),
            ScheduleKind::WarpMapped => self.group_mapped(self.spec.warp_size, exec),
            ScheduleKind::BlockMapped => self.group_mapped(self.block_dim, exec),
            ScheduleKind::GroupMapped(g) => self.group_mapped(g, exec),
            ScheduleKind::WorkQueue(chunk) => self.work_queue(chunk, exec),
            ScheduleKind::Lrb => self.lrb(exec, None),
        })
    }

    /// Prepare a [`KernelPlan`] for `kind`: compute the pattern-only
    /// setup artifacts once, host-side, so repeated launches skip them.
    pub fn prepare(&self, kind: ScheduleKind) -> simt::Result<KernelPlan> {
        let mut plan = KernelPlan {
            schedule: kind,
            block_dim: self.block_dim,
            merge_starts: None,
            lrb: None,
            setup_ms: 0.0,
        };
        self.with_backend(|| match kind {
            ScheduleKind::MergePath => {
                let sched = MergePathSchedule::new(self.work, self.merge_items);
                plan.merge_starts = Some(sched.partition());
                Ok(())
            }
            ScheduleKind::Lrb => {
                let sched = LrbSchedule {
                    block_dim: self.block_dim,
                    ..LrbSchedule::default()
                };
                let lrb = sched.bin_tiles(self.spec, self.model, self.work)?;
                plan.setup_ms = lrb.binning_report.elapsed_ms();
                plan.lrb = Some(lrb);
                Ok(())
            }
            // The remaining schedules have no pattern-dependent setup to
            // cache; the plan still pins the schedule + block size.
            _ => Ok(()),
        })?;
        Ok(plan)
    }

    /// Run `exec` under a prepared plan: the schedule choice and any
    /// setup artifacts come from the plan, so a cached plan skips the
    /// setup work a cold launch pays. Bitwise identical to
    /// [`Self::run`] with the plan's schedule. The plan's `block_dim` is
    /// *not* applied automatically — callers set it via
    /// [`Self::block_dim`] so the clamp stays in one place.
    pub fn run_planned<E: TileExec>(&self, plan: &KernelPlan, exec: &E) -> simt::Result<Dispatch> {
        self.with_backend(|| match plan.schedule {
            ScheduleKind::MergePath => self.merge_path(exec, plan.merge_starts.as_deref()),
            ScheduleKind::Lrb => self.lrb(exec, plan.lrb.as_ref()),
            kind => self.run(kind, exec),
        })
    }

    /// Listing 2/3: tile per thread, grid-strided; every span complete.
    fn thread_mapped<E: TileExec>(&self, exec: &E) -> simt::Result<Dispatch> {
        let sched = ThreadMappedSchedule::new(self.work);
        let cfg = LaunchConfig::over_threads(self.work.num_tiles().max(1) as u64, self.block_dim);
        let report = simt::launch_threads_with_model(self.spec, self.model, cfg, |t| {
            for tile in sched.tiles(t) {
                exec.span(
                    t,
                    &TileSpan {
                        tile,
                        atoms: self.work.tile_atoms(tile),
                        complete: true,
                    },
                );
            }
        })?;
        Ok(Dispatch {
            report,
            schedule: ScheduleKind::ThreadMapped,
        })
    }

    /// §5.2.1: merge-path, optionally driven by a cached partition table.
    fn merge_path<E: TileExec>(&self, exec: &E, starts: Option<&[u32]>) -> simt::Result<Dispatch> {
        let sched = MergePathSchedule::new(self.work, self.merge_items);
        if let Some(s) = starts {
            assert_eq!(
                s.len(),
                sched.num_threads() + 1,
                "merge-path partition table does not match this matrix"
            );
        }
        let cfg = sched.launch_config(self.block_dim);
        let report = simt::launch_threads_with_model(self.spec, self.model, cfg, |t| {
            // With a precomputed partition table each thread loads its
            // span bounds instead of running two diagonal searches.
            let spans = match starts {
                Some(s) => sched.spans_prepartitioned(t, s),
                None => sched.spans(t),
            };
            for span in spans {
                exec.span(t, &span);
            }
        })?;
        Ok(Dispatch {
            report,
            schedule: ScheduleKind::MergePath,
        })
    }

    /// §5.2.2/§5.2.3: group-mapped (warp- and block-mapped are the same
    /// code at fixed group sizes). The engine owns the legality clamp: a
    /// group cannot exceed its block and must tile it evenly.
    fn group_mapped<E: TileExec>(&self, group_size: u32, exec: &E) -> simt::Result<Dispatch> {
        let group_size = group_size.clamp(1, self.block_dim);
        let group_size = largest_divisor_leq(self.block_dim, group_size);
        let sched = GroupMappedSchedule::new(self.work, group_size);
        // Oversubscribe ~8 blocks per SM; rounds absorb the remainder.
        let cfg = sched.launch_config(self.block_dim, self.spec.num_sms * 8);
        let report = if E::COOPERATIVE_REDUCE {
            simt::launch_groups_with_model(self.spec, self.model, cfg, group_size, |g| {
                sched.process_batches(
                    g,
                    |lane, tile, atom| exec.atom_value(lane, tile, atom),
                    |lane, tile, sum| exec.tile_done(lane, tile, sum),
                );
            })?
        } else {
            simt::launch_groups_with_model(self.spec, self.model, cfg, group_size, |g| {
                sched.process(g, |lane, tile, atom| exec.visit(lane, tile, atom));
            })?
        };
        Ok(Dispatch {
            report,
            schedule: ScheduleKind::GroupMapped(group_size),
        })
    }

    /// Dynamic: persistent threads claiming tile chunks from a global
    /// atomic queue; every claimed tile is a complete flat span.
    fn work_queue<E: TileExec>(&self, chunk: u32, exec: &E) -> simt::Result<Dispatch> {
        let sched = WorkQueueSchedule::new(self.work, chunk as usize);
        let cfg = sched.launch_config(self.spec, self.block_dim);
        let report = simt::launch_threads_with_model(self.spec, self.model, cfg, |t| {
            sched.process_tiles(t, |lane, tile| {
                exec.span(
                    lane,
                    &TileSpan {
                        tile,
                        atoms: self.work.tile_atoms(tile),
                        complete: true,
                    },
                );
            });
        })?;
        Ok(Dispatch {
            report,
            schedule: ScheduleKind::WorkQueue(sched.chunk() as u32),
        })
    }

    /// §7's Logarithmic Radix Binning, composed from the other shapes: a
    /// binning pass (or a cached [`LrbPlan`]) groups tiles by log₂ size;
    /// small tiles run as flat spans one-per-thread, medium tiles
    /// cooperative at warp width, large tiles cooperative at block width.
    fn lrb<E: TileExec>(&self, exec: &E, cached: Option<&LrbPlan>) -> simt::Result<Dispatch> {
        let cfg_sched = LrbSchedule {
            block_dim: self.block_dim,
            ..LrbSchedule::default()
        };
        // A cached plan skips the binning launches entirely (the bins
        // only depend on the tile-set shape, not on input values); its
        // cost was paid once at prepare time.
        let owned;
        let (plan, mut report) = match cached {
            Some(p) => (p, None),
            None => {
                owned = cfg_sched.bin_tiles(self.spec, self.model, self.work)?;
                let r = owned.binning_report.clone();
                (&owned, Some(r))
            }
        };
        let small_hi = bin_of(cfg_sched.small_limit) + 1;
        let medium_hi = bin_of(cfg_sched.medium_limit) + 1;
        let class = |lo: usize, hi: usize| &plan.order[plan.bin_offsets[lo]..plan.bin_offsets[hi]];
        // Small tiles: flat spans, one tile per thread.
        let small = class(0, small_hi);
        if !small.is_empty() {
            let view = SubsetTiles::new(self.work, small);
            let sched = ThreadMappedSchedule::new(&view);
            let cfg = LaunchConfig::over_threads(small.len() as u64, self.block_dim);
            let r = simt::launch_threads_with_model(self.spec, self.model, cfg, |t| {
                for local in sched.tiles(t) {
                    exec.span(
                        t,
                        &TileSpan {
                            tile: view.global_tile(local),
                            atoms: view.tile_atoms(local),
                            complete: true,
                        },
                    );
                }
            })?;
            match report {
                Some(ref mut rep) => rep.accumulate(&r),
                None => report = Some(r),
            }
        }
        // Medium and large classes: cooperative at warp / block width.
        for (lo, hi, group) in [
            (small_hi, medium_hi, self.spec.warp_size),
            (medium_hi, LRB_NUM_BINS, self.block_dim),
        ] {
            let tiles = class(lo, hi.max(lo));
            if tiles.is_empty() {
                continue;
            }
            let view = SubsetTiles::new(self.work, tiles);
            let sched = GroupMappedSchedule::new(&view, group);
            let cfg = sched.launch_config(self.block_dim, self.spec.num_sms * 8);
            let r = if E::COOPERATIVE_REDUCE {
                simt::launch_groups_with_model(self.spec, self.model, cfg, group, |g| {
                    sched.process_batches(
                        g,
                        |lane, local, atom| exec.atom_value(lane, view.global_tile(local), atom),
                        |lane, local, sum| exec.tile_done(lane, view.global_tile(local), sum),
                    );
                })?
            } else {
                simt::launch_groups_with_model(self.spec, self.model, cfg, group, |g| {
                    sched.process(g, |lane, local, atom| {
                        exec.visit(lane, view.global_tile(local), atom)
                    });
                })?
            };
            match report {
                Some(ref mut rep) => rep.accumulate(&r),
                None => report = Some(r),
            }
        }
        let report = match report {
            Some(r) => r,
            // Fully empty tile set on the cached path: synthesize a
            // minimal launch so the run still carries a valid report.
            None => simt::launch_threads_with_model(
                self.spec,
                self.model,
                LaunchConfig::over_threads(1, self.block_dim),
                |_t| {},
            )?,
        };
        Ok(Dispatch {
            report,
            schedule: ScheduleKind::Lrb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::CountedTiles;
    use simt::GlobalMem;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A visit-shaped exec that counts (tile, atom) hits.
    struct CountExec<'a> {
        work: &'a CountedTiles,
        hits: &'a AtomicU64,
    }

    impl TileExec for CountExec<'_> {
        const COOPERATIVE_REDUCE: bool = false;
        fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
            for atom in span_atoms(span, lane) {
                assert!(self.work.tile_atoms(span.tile).contains(&atom));
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        fn visit(&self, _lane: &LaneCtx<'_>, tile: usize, atom: usize) {
            assert!(self.work.tile_atoms(tile).contains(&atom));
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn every_schedule_covers_every_atom_exactly_once() {
        let work = CountedTiles::from_counts((0..200).map(|i| (i * 7) % 60).collect::<Vec<_>>());
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::WarpMapped,
            ScheduleKind::BlockMapped,
            ScheduleKind::GroupMapped(4),
            ScheduleKind::WorkQueue(3),
            ScheduleKind::Lrb,
        ] {
            let hits = AtomicU64::new(0);
            let exec = CountExec {
                work: &work,
                hits: &hits,
            };
            let d = BalancedLaunch::new(&spec, &model, &work)
                .block_dim(16)
                .run(kind, &exec)
                .unwrap();
            assert_eq!(
                hits.load(Ordering::Relaxed),
                work.num_atoms() as u64,
                "{kind}"
            );
            assert!(d.report.elapsed_ms() > 0.0, "{kind}");
        }
    }

    /// A reduce-shaped exec summing atom ids per tile.
    struct SumExec<'a> {
        out: GlobalMem<'a, f32>,
    }

    impl TileExec for SumExec<'_> {
        const COOPERATIVE_REDUCE: bool = true;
        fn span(&self, lane: &LaneCtx<'_>, span: &TileSpan) {
            let mut sum = 0.0f32;
            for atom in span_atoms(span, lane) {
                sum += atom as f32;
            }
            if span.complete {
                self.out.store(span.tile, sum);
                lane.write_bytes(4);
            } else if !span.atoms.is_empty() {
                self.out.fetch_add(span.tile, sum);
                lane.charge_atomic();
            }
        }
        fn atom_value(&self, _lane: &LaneCtx<'_>, _tile: usize, atom: usize) -> f32 {
            atom as f32
        }
        fn tile_done(&self, lane: &LaneCtx<'_>, tile: usize, sum: f32) {
            self.out.store(tile, sum);
            lane.write_bytes(4);
        }
        fn visit(&self, _lane: &LaneCtx<'_>, _tile: usize, _atom: usize) {
            unreachable!("reduce-shaped exec never visits")
        }
    }

    #[test]
    fn reduce_shape_agrees_across_schedules_and_plans() {
        let work = CountedTiles::from_counts(vec![3usize, 0, 40, 1, 7, 120, 2, 2]);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let want: Vec<f32> = (0..work.num_tiles())
            .map(|t| work.tile_atoms(t).map(|a| a as f32).sum())
            .collect();
        for kind in [
            ScheduleKind::ThreadMapped,
            ScheduleKind::MergePath,
            ScheduleKind::GroupMapped(8),
            ScheduleKind::WorkQueue(2),
            ScheduleKind::Lrb,
        ] {
            let engine = BalancedLaunch::new(&spec, &model, &work).block_dim(16);
            let mut cold = vec![0.0f32; work.num_tiles()];
            {
                let exec = SumExec {
                    out: GlobalMem::new(&mut cold),
                };
                engine.run(kind, &exec).unwrap();
            }
            assert_eq!(cold, want, "{kind}");
            // Planned path must be bitwise identical.
            let plan = engine.prepare(kind).unwrap();
            let mut warm = vec![0.0f32; work.num_tiles()];
            {
                let exec = SumExec {
                    out: GlobalMem::new(&mut warm),
                };
                engine.run_planned(&plan, &exec).unwrap();
            }
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&cold), bits(&warm), "{kind}: plan changed results");
        }
    }

    #[test]
    fn engine_owns_the_clamps() {
        let work = CountedTiles::from_counts(vec![2usize; 10]);
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let engine = BalancedLaunch::new(&spec, &model, &work).block_dim(1 << 20);
        assert_eq!(engine.effective_block_dim(), spec.max_threads_per_block);
        // Zero work-queue chunk and absurd group sizes are legalized, not
        // panics.
        let hits = AtomicU64::new(0);
        let exec = CountExec {
            work: &work,
            hits: &hits,
        };
        let d = engine.run(ScheduleKind::WorkQueue(0), &exec).unwrap();
        assert_eq!(d.schedule, ScheduleKind::WorkQueue(1));
        let d = engine.run(ScheduleKind::GroupMapped(1 << 20), &exec).unwrap();
        assert_eq!(
            d.schedule,
            ScheduleKind::GroupMapped(spec.max_threads_per_block)
        );
    }

    #[test]
    fn trace_labels_are_parameterless_and_interned() {
        assert_eq!(
            trace_label(KernelKind::Spmv, ScheduleKind::WorkQueue(256)),
            "spmv/work-queue"
        );
        assert_eq!(
            trace_label(KernelKind::Bfs, ScheduleKind::GroupMapped(64)),
            "bfs/group-mapped"
        );
        let a = trace_label(KernelKind::Spmm, ScheduleKind::MergePath);
        let b = trace_label(KernelKind::Spmm, ScheduleKind::MergePath);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn kernel_kinds_round_trip_display_and_reject_junk() {
        for kind in KernelKind::ALL {
            let parsed: KernelKind = kind.to_string().parse().expect("round-trip");
            assert_eq!(parsed, kind, "{kind}");
        }
        assert_eq!(KernelKind::Pagerank.to_string(), "pagerank");
        for bad in ["SpMV", "spgemm", ""] {
            let err = bad.parse::<KernelKind>().unwrap_err();
            assert!(err.to_string().contains("unknown kernel"), "{bad}");
        }
    }

    #[test]
    fn largest_divisor_behaves() {
        assert_eq!(largest_divisor_leq(256, 32), 32);
        assert_eq!(largest_divisor_leq(256, 3), 2);
        assert_eq!(largest_divisor_leq(256, 1), 1);
        assert_eq!(largest_divisor_leq(96, 64), 48);
        assert_eq!(largest_divisor_leq(7, 7), 7);
    }

    #[test]
    fn largest_divisor_matches_naive_scan() {
        let naive =
            |n: u32, k: u32| -> u32 { (1..=k.min(n)).rev().find(|&d| n.is_multiple_of(d)).unwrap_or(1) };
        for n in 0..=300u32 {
            for k in 0..=(n + 2).min(300) {
                assert_eq!(largest_divisor_leq(n, k), naive(n, k), "n={n} k={k}");
            }
        }
        let mut rng = sparse::Prng::seed_from_u64(0xd1f);
        for _ in 0..2000 {
            let n = rng.index(0, 1 << 16) as u32;
            let k = rng.index(0, 1 << 16) as u32;
            assert_eq!(largest_divisor_leq(n, k), naive(n, k), "n={n} k={k}");
        }
    }

    #[test]
    fn candidate_space_is_deterministic_and_covers_variants() {
        let a = sparse::gen::uniform(2000, 2000, 20_000, 7);
        let space = candidates(KernelKind::Spmv, &a);
        assert_eq!(space, candidates(KernelKind::Spmv, &a), "order must be stable");
        assert!(space.contains(&(ScheduleKind::MergePath, FormatKind::Csr)));
        assert!(space.contains(&(ScheduleKind::GroupMapped(8), FormatKind::Csr)));
        assert!(space.contains(&(ScheduleKind::WorkQueue(1024), FormatKind::Csr)));
        assert!(space.contains(&(ScheduleKind::Lrb, FormatKind::Csr)));
        // Each candidate appears once.
        for k in &space {
            assert_eq!(space.iter().filter(|c| *c == k).count(), 1, "{k:?}");
        }
        // Frontier kernels rebuild tile sets per level: no LRB, no
        // non-CSR formats (conversions never amortize).
        let frontier = candidates(KernelKind::Bfs, &a);
        assert!(!frontier.contains(&(ScheduleKind::Lrb, FormatKind::Csr)));
        assert!(frontier.contains(&(ScheduleKind::MergePath, FormatKind::Csr)));
        assert!(frontier.iter().all(|&(_, f)| f == FormatKind::Csr));
        // Chunk widths that exceed the tile count are pruned.
        let tiny = candidates(KernelKind::Spmv, &sparse::gen::uniform(100, 100, 400, 1));
        assert!(tiny.contains(&(ScheduleKind::WorkQueue(64), FormatKind::Csr)));
        assert!(!tiny.contains(&(ScheduleKind::WorkQueue(1024), FormatKind::Csr)));
        // Degenerate patterns collapse to a single no-op candidate.
        let empty = candidates(KernelKind::Spmv, &sparse::gen::uniform(5, 5, 0, 1));
        assert_eq!(empty, vec![(ScheduleKind::ThreadMapped, FormatKind::Csr)]);
        // SpMM coerces all non-merge-path families to thread-mapped, so
        // its CSR schedule space is exactly those two (plus any
        // thread-mapped format cells).
        let spmm = candidates(KernelKind::Spmm, &a);
        assert_eq!(
            spmm.iter()
                .filter(|&&(_, f)| f == FormatKind::Csr)
                .map(|&(k, _)| k)
                .collect::<Vec<_>>(),
            vec![ScheduleKind::ThreadMapped, ScheduleKind::MergePath]
        );
        assert!(spmm
            .iter()
            .all(|&(k, f)| f == FormatKind::Csr || k == ScheduleKind::ThreadMapped));
    }

    #[test]
    fn format_cells_follow_the_structural_filters() {
        // A regular banded matrix: ELL fill ≈ 1, no skew → ELL yes,
        // hybrid no.
        let banded = sparse::gen::banded(400, 3, 13);
        let space = candidates(KernelKind::Spmv, &banded);
        assert!(space.contains(&(ScheduleKind::ThreadMapped, FormatKind::Ell)));
        assert!(!space.iter().any(|&(_, f)| f == FormatKind::Hybrid));
        // A power law: ELL fill explodes → no ELL; heavy skew → the
        // hybrid cell (thread-mapped only: the fused serve fixes its
        // own geometry, so other schedules would be duplicates).
        let pl = sparse::gen::powerlaw(2000, 2000, 30_000, 1.8, 7);
        let space = candidates(KernelKind::Spmv, &pl);
        assert!(!space.iter().any(|&(_, f)| f == FormatKind::Ell));
        assert!(space.contains(&(ScheduleKind::ThreadMapped, FormatKind::Hybrid)));
        assert!(
            space
                .iter()
                .all(|&(k, f)| f != FormatKind::Hybrid || k == ScheduleKind::ThreadMapped),
            "hybrid earns exactly the thread-mapped cell"
        );
        // COO and CSC never earn cells (identical cost / wrong traversal).
        for kernel in KernelKind::ALL {
            for &(_, f) in &candidates(kernel, &pl) {
                assert!(f != FormatKind::Coo && f != FormatKind::Csc, "{kernel}");
            }
        }
    }
}
