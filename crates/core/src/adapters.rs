//! Format adapters: sparse structures expressed as tile sets (paper §4.1).
//!
//! Each adapter is the Rust analogue of the paper's Listing 1 — it tells
//! the framework where a format's tiles and atoms live. CSR's row offsets
//! serve directly; COO derives offsets on construction (its entries must
//! be row-major sorted, i.e. canonical); CSC's *columns* are the tiles.

use crate::work::TileSet;
use sparse::{Coo, Csc, Csr, Ell, Hybrid};

/// A CSR matrix as a tile set: tiles = rows, atoms = nonzeros.
#[derive(Debug, Clone, Copy)]
pub struct CsrTiles<'a, V = f32> {
    csr: &'a Csr<V>,
}

impl<'a, V: Copy + Sync> CsrTiles<'a, V> {
    /// Wrap a CSR matrix.
    pub fn new(csr: &'a Csr<V>) -> Self {
        Self { csr }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Csr<V> {
        self.csr
    }
}

impl<V: Copy + Sync> TileSet for CsrTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.csr.rows()
    }
    fn num_atoms(&self) -> usize {
        self.csr.nnz()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.csr.row_range(t)
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.csr.row_offsets()[i]
    }
}

/// A canonical (row-major sorted) COO matrix as a tile set: tiles = rows,
/// atoms = entries. Offsets are derived once at construction — the
/// "slightly more complex iterator" the paper says other formats need
/// (§5.2.1).
#[derive(Debug, Clone)]
pub struct CooTiles {
    offsets: Vec<usize>,
}

impl CooTiles {
    /// Build from a canonical COO matrix.
    ///
    /// # Panics
    /// If the matrix is not sorted row-major ([`Coo::is_canonical`]).
    /// Use [`try_new`](Self::try_new) on untrusted input.
    pub fn new<V: Copy>(coo: &Coo<V>) -> Self {
        Self::try_new(coo).unwrap_or_else(|_| {
            panic!("COO tile set requires canonical (row-major sorted) entries")
        })
    }

    /// Fallible constructor: returns
    /// [`LaunchError::InvalidWork`](simt::LaunchError::InvalidWork) when
    /// the matrix is not in canonical row-major order, so serving paths
    /// surface a configuration error instead of a panic.
    pub fn try_new<V: Copy>(coo: &Coo<V>) -> Result<Self, simt::LaunchError> {
        if !coo.is_canonical() {
            return Err(simt::LaunchError::InvalidWork {
                reason: "COO tile set requires canonical (row-major sorted) entries".to_owned(),
            });
        }
        let mut offsets = vec![0usize; coo.rows() + 1];
        for &r in coo.row_indices() {
            offsets[r as usize + 1] += 1;
        }
        for i in 0..coo.rows() {
            offsets[i + 1] += offsets[i];
        }
        Ok(Self { offsets })
    }
}

impl TileSet for CooTiles {
    fn num_tiles(&self) -> usize {
        self.offsets.len() - 1
    }
    fn num_atoms(&self) -> usize {
        *self.offsets.last().expect("rows+1 entries")
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.offsets[t]..self.offsets[t + 1]
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }
}

/// A CSC matrix as a tile set: tiles = **columns**, atoms = nonzeros —
/// the same schedules load-balance a column-major traversal untouched.
#[derive(Debug, Clone, Copy)]
pub struct CscTiles<'a, V = f32> {
    csc: &'a Csc<V>,
}

impl<'a, V: Copy + Sync> CscTiles<'a, V> {
    /// Wrap a CSC matrix.
    pub fn new(csc: &'a Csc<V>) -> Self {
        Self { csc }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Csc<V> {
        self.csc
    }
}

impl<V: Copy + Sync> TileSet for CscTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.csc.cols()
    }
    fn num_atoms(&self) -> usize {
        self.csc.nnz()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.csc.col_offsets()[t]..self.csc.col_offsets()[t + 1]
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.csc.col_offsets()[i]
    }
}

/// An ELL matrix as a tile set: tiles = rows, atoms = **slots** (padding
/// included). Atoms-per-tile is the constant pad width, so every schedule
/// sees a perfectly regular workload — the format *is* the load balancer
/// (§7's "already-load-balanced formats"); kernels skip padded slots at
/// consumption time.
#[derive(Debug, Clone, Copy)]
pub struct EllTiles<'a, V = f32> {
    ell: &'a Ell<V>,
}

impl<'a, V: Copy + Default + Sync> EllTiles<'a, V> {
    /// Wrap an ELL matrix.
    pub fn new(ell: &'a Ell<V>) -> Self {
        Self { ell }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Ell<V> {
        self.ell
    }
}

impl<V: Copy + Default + Sync> TileSet for EllTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.ell.rows()
    }
    fn num_atoms(&self) -> usize {
        self.ell.slots()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        t * self.ell.width()..(t + 1) * self.ell.width()
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        i * self.ell.width()
    }
}

/// A hybrid matrix's **slab** as a tile set: tiles = rows, atoms = slab
/// slots (padding included) — the regular half of the split. The COO
/// spill tail is not part of this tile set; kernels serve it with a
/// per-entry scatter over [`sparse::Hybrid::tail`] (fused into the
/// slab launch for SpMV, a second launch for SpMM).
#[derive(Debug, Clone, Copy)]
pub struct HybridSlabTiles<'a, V = f32> {
    hybrid: &'a Hybrid<V>,
}

impl<'a, V: Copy + Default + Sync> HybridSlabTiles<'a, V> {
    /// Wrap a hybrid matrix's slab.
    pub fn new(hybrid: &'a Hybrid<V>) -> Self {
        Self { hybrid }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Hybrid<V> {
        self.hybrid
    }
}

impl<V: Copy + Default + Sync> TileSet for HybridSlabTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.hybrid.rows()
    }
    fn num_atoms(&self) -> usize {
        self.hybrid.slab_slots()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.hybrid.row_slots(t)
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        i * self.hybrid.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::convert;

    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_tiles_mirror_row_structure() {
        let a = sample();
        let w = CsrTiles::new(&a);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 5);
        assert_eq!(w.tile_atoms(0), 0..2);
        assert_eq!(w.atoms_in_tile(1), 0);
        assert!(w.validate());
    }

    #[test]
    fn coo_tiles_derive_the_same_offsets() {
        let a = sample();
        let coo = convert::csr_to_coo(&a);
        let w = CooTiles::new(&coo);
        let wc = CsrTiles::new(&a);
        for i in 0..=3 {
            assert_eq!(w.tile_offset(i), wc.tile_offset(i));
        }
        assert!(w.validate());
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn coo_tiles_reject_unsorted_input() {
        let coo = Coo::from_parts(2, 2, vec![1, 0], vec![0, 0], vec![1.0f32, 2.0]).unwrap();
        let _ = CooTiles::new(&coo);
    }

    #[test]
    fn ell_tiles_are_perfectly_regular() {
        let a = sample();
        let e = Ell::from_csr(&a, 10.0).unwrap();
        let w = EllTiles::new(&e);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 9); // 3 rows × width 3, padding included
        for t in 0..3 {
            assert_eq!(w.atoms_in_tile(t), 3);
        }
        assert!(w.validate());
    }

    #[test]
    fn coo_try_new_surfaces_a_config_error() {
        let bad = Coo::from_parts(2, 2, vec![1, 0], vec![0, 0], vec![1.0f32, 2.0]).unwrap();
        let err = CooTiles::try_new(&bad).unwrap_err();
        assert!(matches!(err, simt::LaunchError::InvalidWork { .. }));
        assert!(err.to_string().contains("canonical"));
        let good = convert::csr_to_coo(&sample());
        assert!(CooTiles::try_new(&good).is_ok());
    }

    #[test]
    fn hybrid_slab_tiles_cover_slots_not_tail() {
        let a = sample();
        let h = Hybrid::from_csr(&a, 2);
        let w = HybridSlabTiles::new(&h);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 6); // 3 rows × width 2, padding included
        for t in 0..3 {
            assert_eq!(w.atoms_in_tile(t), 2);
        }
        assert_eq!(h.tail_nnz(), 1); // spilled entry is outside the tile set
        assert!(w.validate());
    }

    #[test]
    fn csc_tiles_use_columns() {
        let a = sample();
        let csc = convert::csr_to_csc(&a);
        let w = CscTiles::new(&csc);
        assert_eq!(w.num_tiles(), 4);
        assert_eq!(w.num_atoms(), 5);
        // Column 0 holds entries from rows 0 and 2.
        assert_eq!(w.atoms_in_tile(0), 2);
        assert_eq!(w.atoms_in_tile(2), 1);
        assert!(w.validate());
    }
}
