//! Format adapters: sparse structures expressed as tile sets (paper §4.1).
//!
//! Each adapter is the Rust analogue of the paper's Listing 1 — it tells
//! the framework where a format's tiles and atoms live. CSR's row offsets
//! serve directly; COO derives offsets on construction (its entries must
//! be row-major sorted, i.e. canonical); CSC's *columns* are the tiles.

use crate::work::TileSet;
use sparse::{Coo, Csc, Csr, Ell};

/// A CSR matrix as a tile set: tiles = rows, atoms = nonzeros.
#[derive(Debug, Clone, Copy)]
pub struct CsrTiles<'a, V = f32> {
    csr: &'a Csr<V>,
}

impl<'a, V: Copy + Sync> CsrTiles<'a, V> {
    /// Wrap a CSR matrix.
    pub fn new(csr: &'a Csr<V>) -> Self {
        Self { csr }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Csr<V> {
        self.csr
    }
}

impl<V: Copy + Sync> TileSet for CsrTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.csr.rows()
    }
    fn num_atoms(&self) -> usize {
        self.csr.nnz()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.csr.row_range(t)
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.csr.row_offsets()[i]
    }
}

/// A canonical (row-major sorted) COO matrix as a tile set: tiles = rows,
/// atoms = entries. Offsets are derived once at construction — the
/// "slightly more complex iterator" the paper says other formats need
/// (§5.2.1).
#[derive(Debug, Clone)]
pub struct CooTiles {
    offsets: Vec<usize>,
}

impl CooTiles {
    /// Build from a canonical COO matrix.
    ///
    /// # Panics
    /// If the matrix is not sorted row-major ([`Coo::is_canonical`]).
    pub fn new<V: Copy>(coo: &Coo<V>) -> Self {
        assert!(
            coo.is_canonical(),
            "COO tile set requires canonical (row-major sorted) entries"
        );
        let mut offsets = vec![0usize; coo.rows() + 1];
        for &r in coo.row_indices() {
            offsets[r as usize + 1] += 1;
        }
        for i in 0..coo.rows() {
            offsets[i + 1] += offsets[i];
        }
        Self { offsets }
    }
}

impl TileSet for CooTiles {
    fn num_tiles(&self) -> usize {
        self.offsets.len() - 1
    }
    fn num_atoms(&self) -> usize {
        *self.offsets.last().expect("rows+1 entries")
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.offsets[t]..self.offsets[t + 1]
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }
}

/// A CSC matrix as a tile set: tiles = **columns**, atoms = nonzeros —
/// the same schedules load-balance a column-major traversal untouched.
#[derive(Debug, Clone, Copy)]
pub struct CscTiles<'a, V = f32> {
    csc: &'a Csc<V>,
}

impl<'a, V: Copy + Sync> CscTiles<'a, V> {
    /// Wrap a CSC matrix.
    pub fn new(csc: &'a Csc<V>) -> Self {
        Self { csc }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Csc<V> {
        self.csc
    }
}

impl<V: Copy + Sync> TileSet for CscTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.csc.cols()
    }
    fn num_atoms(&self) -> usize {
        self.csc.nnz()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        self.csc.col_offsets()[t]..self.csc.col_offsets()[t + 1]
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        self.csc.col_offsets()[i]
    }
}

/// An ELL matrix as a tile set: tiles = rows, atoms = **slots** (padding
/// included). Atoms-per-tile is the constant pad width, so every schedule
/// sees a perfectly regular workload — the format *is* the load balancer
/// (§7's "already-load-balanced formats"); kernels skip padded slots at
/// consumption time.
#[derive(Debug, Clone, Copy)]
pub struct EllTiles<'a, V = f32> {
    ell: &'a Ell<V>,
}

impl<'a, V: Copy + Default + Sync> EllTiles<'a, V> {
    /// Wrap an ELL matrix.
    pub fn new(ell: &'a Ell<V>) -> Self {
        Self { ell }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a Ell<V> {
        self.ell
    }
}

impl<V: Copy + Default + Sync> TileSet for EllTiles<'_, V> {
    fn num_tiles(&self) -> usize {
        self.ell.rows()
    }
    fn num_atoms(&self) -> usize {
        self.ell.slots()
    }
    #[inline]
    fn tile_atoms(&self, t: usize) -> std::ops::Range<usize> {
        t * self.ell.width()..(t + 1) * self.ell.width()
    }
    #[inline]
    fn tile_offset(&self, i: usize) -> usize {
        i * self.ell.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::convert;

    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_tiles_mirror_row_structure() {
        let a = sample();
        let w = CsrTiles::new(&a);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 5);
        assert_eq!(w.tile_atoms(0), 0..2);
        assert_eq!(w.atoms_in_tile(1), 0);
        assert!(w.validate());
    }

    #[test]
    fn coo_tiles_derive_the_same_offsets() {
        let a = sample();
        let coo = convert::csr_to_coo(&a);
        let w = CooTiles::new(&coo);
        let wc = CsrTiles::new(&a);
        for i in 0..=3 {
            assert_eq!(w.tile_offset(i), wc.tile_offset(i));
        }
        assert!(w.validate());
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn coo_tiles_reject_unsorted_input() {
        let coo = Coo::from_parts(2, 2, vec![1, 0], vec![0, 0], vec![1.0f32, 2.0]).unwrap();
        let _ = CooTiles::new(&coo);
    }

    #[test]
    fn ell_tiles_are_perfectly_regular() {
        let a = sample();
        let e = Ell::from_csr(&a, 10.0).unwrap();
        let w = EllTiles::new(&e);
        assert_eq!(w.num_tiles(), 3);
        assert_eq!(w.num_atoms(), 9); // 3 rows × width 3, padding included
        for t in 0..3 {
            assert_eq!(w.atoms_in_tile(t), 3);
        }
        assert!(w.validate());
    }

    #[test]
    fn csc_tiles_use_columns() {
        let a = sample();
        let csc = convert::csr_to_csc(&a);
        let w = CscTiles::new(&csc);
        assert_eq!(w.num_tiles(), 4);
        assert_eq!(w.num_atoms(), 5);
        // Column 0 holds entries from rows 0 and 2.
        assert_eq!(w.atoms_in_tile(0), 2);
        assert_eq!(w.atoms_in_tile(2), 1);
        assert!(w.validate());
    }
}
