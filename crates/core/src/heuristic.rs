//! Schedule-selection heuristic (paper §6.2, Figure 4).
//!
//! "We use merge-path unless either the number of rows or columns are less
//! than the threshold α and the nonzeros of a given matrix are less than
//! threshold β (we choose α = 500 and β = 10 000 for SuiteSparse). In this
//! case, we use thread-mapped or group-mapped load balancing instead."
//!
//! The split between thread- and group-mapped on the small side follows
//! the same observation CUB exploits (§6.1): single-column matrices
//! (sparse vectors) are perfectly balanced at one atom per tile, so the
//! zero-setup thread-mapped kernel wins; every other small matrix gets
//! group-mapped at warp width.

use crate::schedule::ScheduleKind;

/// Threshold-based schedule selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heuristic {
    /// Row/column threshold (paper: 500).
    pub alpha: usize,
    /// Nonzero threshold (paper: 10 000).
    pub beta: usize,
    /// Group size used when the small-matrix branch picks group-mapped.
    pub small_group: u32,
}

impl Heuristic {
    /// The paper's SuiteSparse calibration: α = 500, β = 10 000.
    pub fn paper() -> Self {
        Self {
            alpha: 500,
            beta: 10_000,
            small_group: 32,
        }
    }

    /// Custom thresholds (for the α/β ablation sweep).
    pub fn new(alpha: usize, beta: usize) -> Self {
        Self {
            alpha,
            beta,
            small_group: 32,
        }
    }

    /// Pick a schedule for a `rows × cols` matrix with `nnz` nonzeros.
    pub fn select(&self, rows: usize, cols: usize, nnz: usize) -> ScheduleKind {
        let small = (rows < self.alpha || cols < self.alpha) && nnz < self.beta;
        if small {
            if cols == 1 {
                ScheduleKind::ThreadMapped
            } else {
                ScheduleKind::GroupMapped(self.small_group)
            }
        } else {
            ScheduleKind::MergePath
        }
    }
}

impl Default for Heuristic {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_matrices_get_merge_path() {
        let h = Heuristic::paper();
        assert_eq!(h.select(100_000, 100_000, 1_000_000), ScheduleKind::MergePath);
        // Small dims but many nonzeros → still merge-path.
        assert_eq!(h.select(100, 100, 50_000), ScheduleKind::MergePath);
        // Large dims, few nonzeros → merge-path (neither dim small).
        assert_eq!(h.select(10_000, 10_000, 500), ScheduleKind::MergePath);
    }

    #[test]
    fn small_matrices_get_group_mapped() {
        let h = Heuristic::paper();
        assert_eq!(h.select(100, 100, 500), ScheduleKind::GroupMapped(32));
        // One small dimension suffices.
        assert_eq!(h.select(100, 100_000, 5_000), ScheduleKind::GroupMapped(32));
    }

    #[test]
    fn sparse_vectors_get_thread_mapped() {
        let h = Heuristic::paper();
        assert_eq!(h.select(400, 1, 300), ScheduleKind::ThreadMapped);
        // A big sparse vector is not "small": merge-path.
        assert_eq!(h.select(1_000_000, 1, 700_000), ScheduleKind::MergePath);
    }

    #[test]
    fn thresholds_are_configurable() {
        let h = Heuristic::new(10, 100);
        assert_eq!(h.select(100, 100, 50), ScheduleKind::MergePath);
        assert_eq!(h.select(5, 5, 50), ScheduleKind::GroupMapped(32));
    }

    #[test]
    fn boundaries_are_exclusive() {
        let h = Heuristic::paper();
        // rows == alpha is not "< alpha".
        assert_eq!(h.select(500, 500, 100), ScheduleKind::MergePath);
        assert_eq!(h.select(499, 500, 100), ScheduleKind::GroupMapped(32));
        // nnz == beta is not "< beta".
        assert_eq!(h.select(499, 499, 10_000), ScheduleKind::MergePath);
    }
}
