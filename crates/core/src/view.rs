//! Format-polymorphic matrix access for kernels (paper §5.2.1).
//!
//! A [`TileSet`](crate::work::TileSet) tells the engine where a format's
//! tiles and atoms *live*; [`MatrixView`] tells a kernel what a flat atom
//! index *means* — the stored `(column, value)` pair, or `None` for a
//! padded slot. Together they are the paper's "slightly more complex
//! iterator": a kernel written once against `MatrixView` runs over CSR,
//! canonical COO, ELL, or the hybrid slab without changing its fold.
//!
//! The contract that keeps format-generic kernels bitwise-equal to the
//! CSR path: within a tile, iterating the tile's atoms in ascending
//! order and folding the `Some` entries left-to-right must visit the
//! stored entries in the same order CSR stores them. CSR/COO satisfy it
//! trivially; ELL and the hybrid slab satisfy it because rows are packed
//! front-aligned in storage order with padding only at the end.

use sparse::{Coo, Csr, Ell, Hybrid};

/// Uniform read access to a sparse matrix's stored entries by flat atom
/// index, with padding made explicit.
pub trait MatrixView: Sync {
    /// Number of rows (tiles, for row-major formats).
    fn rows(&self) -> usize;

    /// Number of columns of the logical matrix.
    fn cols(&self) -> usize;

    /// The `(column, value)` stored at flat atom index `atom`, or `None`
    /// when the slot is padding (ELL / hybrid slab).
    fn entry(&self, atom: usize) -> Option<(u32, f32)>;
}

impl MatrixView for Csr<f32> {
    fn rows(&self) -> usize {
        Csr::rows(self)
    }
    fn cols(&self) -> usize {
        Csr::cols(self)
    }
    #[inline]
    fn entry(&self, atom: usize) -> Option<(u32, f32)> {
        Some((self.col_indices()[atom], self.values()[atom]))
    }
}

impl MatrixView for Coo<f32> {
    fn rows(&self) -> usize {
        Coo::rows(self)
    }
    fn cols(&self) -> usize {
        Coo::cols(self)
    }
    #[inline]
    fn entry(&self, atom: usize) -> Option<(u32, f32)> {
        Some((self.col_indices()[atom], self.values()[atom]))
    }
}

impl MatrixView for Ell<f32> {
    fn rows(&self) -> usize {
        Ell::rows(self)
    }
    fn cols(&self) -> usize {
        Ell::cols(self)
    }
    #[inline]
    fn entry(&self, atom: usize) -> Option<(u32, f32)> {
        let c = self.col_indices()[atom];
        (c != sparse::ell::PAD).then(|| (c, self.values()[atom]))
    }
}

/// The **slab** half of a hybrid matrix; the COO spill tail is served by
/// a separate scatter pass, not through this view.
impl MatrixView for Hybrid<f32> {
    fn rows(&self) -> usize {
        Hybrid::rows(self)
    }
    fn cols(&self) -> usize {
        Hybrid::cols(self)
    }
    #[inline]
    fn entry(&self, atom: usize) -> Option<(u32, f32)> {
        let c = self.slab_col_indices()[atom];
        (c != sparse::ell::PAD).then(|| (c, self.slab_values()[atom]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::convert;

    fn sample() -> Csr<f32> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 2, 5],
            vec![0, 2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    /// Fold every view's tile atoms in order; the stored-entry sequence
    /// must match CSR's storage order exactly (the bitwise contract).
    #[test]
    fn views_agree_on_stored_entry_order() {
        let a = sample();
        let per_row_csr: Vec<Vec<(u32, f32)>> = (0..3)
            .map(|r| a.row_range(r).filter_map(|nz| a.entry(nz)).collect())
            .collect();

        let coo = convert::csr_to_coo(&a);
        let coo_tiles = crate::adapters::CooTiles::new(&coo);
        use crate::work::TileSet;
        for (r, want) in per_row_csr.iter().enumerate() {
            let got: Vec<_> = coo_tiles.tile_atoms(r).filter_map(|i| coo.entry(i)).collect();
            assert_eq!(&got, want, "coo row {r}");
        }

        let ell = Ell::from_csr(&a, 10.0).unwrap();
        for (r, want) in per_row_csr.iter().enumerate() {
            let got: Vec<_> = (r * ell.width()..(r + 1) * ell.width())
                .filter_map(|s| ell.entry(s))
                .collect();
            assert_eq!(&got, want, "ell row {r}");
        }

        let h = Hybrid::from_csr(&a, 2);
        for (r, want) in per_row_csr.iter().enumerate() {
            let got: Vec<_> = h.row_slots(r).filter_map(|s| h.entry(s)).collect();
            let want_prefix: Vec<_> = want.iter().take(2).copied().collect();
            assert_eq!(got, want_prefix, "hybrid slab row {r} is the CSR prefix");
        }
    }

    #[test]
    fn padding_reads_as_none() {
        let a = sample();
        let ell = Ell::from_csr(&a, 10.0).unwrap();
        // Row 1 is empty: all its slots are padding.
        assert!((ell.width()..2 * ell.width()).all(|s| ell.entry(s).is_none()));
        assert_eq!(MatrixView::rows(&ell), 3);
        assert_eq!(MatrixView::cols(&ell), 4);
    }
}
