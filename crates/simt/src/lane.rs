//! Per-thread execution context.
//!
//! A [`LaneCtx`] is what a "CUDA thread" sees: its coordinates in the
//! launch hierarchy plus the charging interface of the cost model. Charging
//! is interior-mutable (`Cell`) so that several iterator adaptors — the
//! framework's composable ranges — can hold shared references to one lane
//! at a time, mirroring how device code freely mixes loop nests over the
//! same thread state.

use crate::cost::{CostModel, MemCounters};

/// Execution context for one simulated thread ("lane").
#[derive(Debug)]
pub struct LaneCtx<'a> {
    thread_idx: u32,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    warp_size: u32,
    group_rank: u32,
    group_size: u32,
    model: &'a CostModel,
    units: std::cell::Cell<f64>,
    counters: MemCounters,
}

impl<'a> LaneCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        thread_idx: u32,
        block_idx: u32,
        block_dim: u32,
        grid_dim: u32,
        warp_size: u32,
        group_rank: u32,
        group_size: u32,
        model: &'a CostModel,
    ) -> Self {
        Self {
            thread_idx,
            block_idx,
            block_dim,
            grid_dim,
            warp_size,
            group_rank,
            group_size,
            model,
            units: std::cell::Cell::new(0.0),
            counters: MemCounters::new(),
        }
    }

    // ---- coordinates -----------------------------------------------------

    /// `threadIdx.x`: index of this thread within its block.
    pub fn thread_idx(&self) -> u32 {
        self.thread_idx
    }

    /// `blockIdx.x`.
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// `blockDim.x`.
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// `gridDim.x`.
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn global_thread_id(&self) -> u64 {
        u64::from(self.block_idx) * u64::from(self.block_dim) + u64::from(self.thread_idx)
    }

    /// `gridDim.x * blockDim.x` — the stride of a grid-stride loop.
    pub fn grid_size(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.block_dim)
    }

    /// Lane index within the warp (`threadIdx.x % warpSize`).
    pub fn lane_id(&self) -> u32 {
        self.thread_idx % self.warp_size
    }

    /// Warp index within the block.
    pub fn warp_id(&self) -> u32 {
        self.thread_idx / self.warp_size
    }

    /// Width of a warp on this device.
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Rank of this lane within its cooperative group (equals
    /// [`Self::thread_idx`] for whole-block phases).
    pub fn group_rank(&self) -> u32 {
        self.group_rank
    }

    /// Size of the cooperative group this lane runs in (equals
    /// [`Self::block_dim`] for whole-block phases).
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    // ---- cost charging ---------------------------------------------------

    /// The cost model in effect for this launch.
    pub fn model(&self) -> &CostModel {
        self.model
    }

    /// Charge raw work units.
    #[inline]
    pub fn charge(&self, units: f64) {
        self.units.set(self.units.get() + units);
    }

    /// Charge the processing of one work atom, including its global
    /// traffic.
    #[inline]
    pub fn charge_atom(&self) {
        self.charge(self.model.atom_cost);
        self.counters.add_read(self.model.bytes_per_atom as u64);
    }

    /// Charge the bookkeeping for starting/finishing one work tile.
    #[inline]
    pub fn charge_tile(&self) {
        self.charge(self.model.tile_cost);
        self.counters.add_read(self.model.bytes_per_tile as u64);
    }

    /// Charge one iteration of a framework range (the abstraction
    /// overhead; fused baselines never call this).
    #[inline]
    pub fn charge_range_iter(&self) {
        self.charge(self.model.range_overhead);
    }

    /// Charge a binary search over `n` elements.
    #[inline]
    pub fn charge_search(&self, n: u64) {
        self.charge(self.model.binary_search(n));
    }

    /// Charge one global atomic operation (also counts its traffic).
    #[inline]
    pub fn charge_atomic(&self) {
        self.charge(self.model.atomic_cost);
        self.counters.add_atomic();
        self.counters.add_write(8);
    }

    /// Charge one shared-memory access.
    #[inline]
    pub fn charge_shared(&self) {
        self.charge(self.model.shared_access_cost);
        self.counters.add_shared();
    }

    /// Record `n` bytes of global reads (no issue-cycle charge; bandwidth
    /// is priced by the roofline term).
    #[inline]
    pub fn read_bytes(&self, n: u64) {
        self.counters.add_read(n);
    }

    /// Record `n` bytes of global writes.
    #[inline]
    pub fn write_bytes(&self, n: u64) {
        self.counters.add_write(n);
    }

    /// Total units charged so far by this lane.
    pub fn units(&self) -> f64 {
        self.units.get()
    }

    pub(crate) fn counters(&self) -> &MemCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(model: &CostModel) -> LaneCtx<'_> {
        LaneCtx::new(37, 5, 128, 100, 32, 37, 128, model)
    }

    #[test]
    fn coordinates_follow_cuda_conventions() {
        let m = CostModel::standard();
        let l = lane(&m);
        assert_eq!(l.global_thread_id(), 5 * 128 + 37);
        assert_eq!(l.grid_size(), 100 * 128);
        assert_eq!(l.lane_id(), 5);
        assert_eq!(l.warp_id(), 1);
        assert_eq!(l.warp_size(), 32);
        assert_eq!(l.group_rank(), 37);
        assert_eq!(l.group_size(), 128);
    }

    #[test]
    fn charges_accumulate_through_shared_reference() {
        let m = CostModel::standard();
        let l = lane(&m);
        let r1 = &l;
        let r2 = &l;
        r1.charge(2.0);
        r2.charge(3.0);
        assert_eq!(l.units(), 5.0);
    }

    #[test]
    fn semantic_charges_use_model_constants() {
        let m = CostModel::standard();
        let l = lane(&m);
        l.charge_atom();
        l.charge_tile();
        l.charge_range_iter();
        assert!(
            (l.units() - (m.atom_cost + m.tile_cost + m.range_overhead)).abs() < 1e-12,
            "got {}",
            l.units()
        );
        assert_eq!(
            l.counters().read_bytes(),
            m.bytes_per_atom as u64 + m.bytes_per_tile as u64
        );
    }

    #[test]
    fn atomic_charge_counts_traffic_and_op() {
        let m = CostModel::standard();
        let l = lane(&m);
        l.charge_atomic();
        assert_eq!(l.counters().atomic_ops(), 1);
        assert_eq!(l.units(), m.atomic_cost);
    }

    #[test]
    fn search_charge_matches_model() {
        let m = CostModel::standard();
        let l = lane(&m);
        l.charge_search(1 << 20);
        assert_eq!(l.units(), 20.0 * m.search_step_cost);
    }
}
