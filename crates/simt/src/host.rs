//! The host execution backend: how simulated blocks run on *host*
//! threads, decoupled from how they are timed on the simulated device.
//!
//! Every launch funnels through the launch module's `run_blocks`, which
//! asks this module for the active [`HostBackend`]:
//!
//! * [`HostBackend::Sequential`] (the default) executes blocks in
//!   ascending block-index order on the calling thread — the reference
//!   semantics every other backend must reproduce bitwise.
//! * [`HostBackend::Parallel`] runs a work-stealing executor
//!   (`HostExecutor`): worker threads claim chunks of block
//!   indices from a shared atomic counter, execute each block's
//!   lane-level compute into per-worker buffers, and the coordinator
//!   merges [`BlockCost`]s — and replays deferred floating-point
//!   atomics — back in ascending block order.
//!
//! # The bitwise contract
//!
//! Simulated time, every [`LaunchReport`](crate::report::LaunchReport)
//! field except `host_wall_ms`, and every kernel result are **bitwise
//! identical at any thread count**, including 1 (`tests/host_parallel.rs`
//! pins this across the full dispatch matrix). Three mechanisms make
//! that true:
//!
//! 1. **Deterministic merge.** Each block's [`BlockCost`] is a pure
//!    function of the block index and launch-start memory; the merge
//!    orders costs by block index, so `device_time`'s greedy dispatch
//!    (which ties-break on iteration order — see
//!    [`crate::scheduler::device_time_traced`]) consumes an identical
//!    sequence.
//! 2. **Deferred float accumulation.** IEEE-754 addition is commutative
//!    but not associative, so concurrent `atomicAdd` on `f32`/`f64`
//!    cells would make the final sum depend on interleaving. Under the
//!    parallel backend, float `fetch_add`s against *launch-level*
//!    buffers are *logged* per block instead of applied, then replayed
//!    in (block index, program order) — exactly the sequence the
//!    sequential backend applies live. The returned "previous value" is
//!    unspecified under the parallel backend (it reflects the
//!    launch-start cell); portable kernels must not branch on
//!    `atomicAdd`'s return value, and none in this workspace do.
//!    Integer atomics and float `fetch_min`/`fetch_max` apply live:
//!    their *final* cell value is exact and order-independent.
//!
//!    Deferral is **creation-scoped** so replay never touches dead
//!    memory: every [`GlobalMem`](crate::memory::GlobalMem) snapshots a
//!    global launch-epoch counter at construction, and an add is only
//!    deferred when the target `GlobalMem` predates the executor run
//!    that is executing the block (`defer_add_f32`). A `GlobalMem`
//!    created *during* the run — block-local scratch inside the kernel
//!    body, or one built on any thread the kernel spawns — applies its
//!    adds live on the worker, which is safe and still bitwise equal to
//!    the sequential path (only that block can reach block-local
//!    storage, so accumulation stays in program order).
//! 3. **TLS propagation.** A thread-scoped trace sink
//!    ([`crate::tracing::scoped`]) or fault plan
//!    ([`crate::fault::scoped`]) active at launch is re-installed inside
//!    every worker, so code that consults the ambient context mid-block
//!    sees the same answer on any backend.
//!
//! What the contract *requires of kernels* (true of all nine in-repo
//! kernels, asserted by the equivalence harness): a block must not read
//! a cell that another block of the same launch writes (disjoint stores
//! and idempotent flag-stores are fine), and a block must not `load`,
//! `store`, `fetch_min`/`fetch_max`, or `cas` a *launch-level* float
//! cell it has itself `fetch_add`ed during the same launch — the add is
//! deferred, so the cell still holds the launch-start value and the two
//! backends would silently diverge. Debug builds panic on such an
//! access (`debug_assert_no_pending_add`); block-local scratch is
//! exempt because its adds apply live. On `Err` from any launch, buffer
//! contents are **unspecified under every backend** (the two backends
//! stop at different points); callers must discard, not read, them.
//!
//! # Selection
//!
//! Resolution order: innermost [`scoped`] override → the process default
//! from the `LOOPS_HOST_THREADS` environment variable (read once; `0`,
//! `1`, unset, or unparsable mean sequential) → [`HostBackend::Sequential`].
//! [`DeviceSim::set_host_backend`](crate::stream::DeviceSim::set_host_backend)
//! and the dispatch engine's builder install scoped overrides around
//! their launches, so the runtime's warm plan path and sharded serving
//! inherit a backend without per-kernel changes.

use crate::block::BlockCost;
use crate::error::{LaunchError, Result};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// How a launch's simulated blocks execute on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostBackend {
    /// Blocks run on the calling thread in ascending block-index order.
    #[default]
    Sequential,
    /// Blocks run on `threads` worker threads claiming chunks from a
    /// shared counter; results merge back in block order, bitwise equal
    /// to [`Self::Sequential`]. `threads <= 1` degenerates to the
    /// sequential path.
    Parallel {
        /// Worker threads to spawn (independent of the machine's core
        /// count: the results are identical either way, only wall-clock
        /// changes).
        threads: usize,
    },
}

impl std::fmt::Display for HostBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sequential => write!(f, "sequential"),
            Self::Parallel { threads } => write!(f, "parallel({threads})"),
        }
    }
}

impl HostBackend {
    /// The backend requested by `LOOPS_HOST_THREADS`: `N >= 2` selects
    /// `Parallel { threads: N }`; unset, `0`, `1`, or unparsable select
    /// `Sequential`.
    pub fn from_env() -> Self {
        match std::env::var("LOOPS_HOST_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 2 => Self::Parallel { threads: n },
            _ => Self::Sequential,
        }
    }

    /// Worker threads this backend uses (1 for sequential).
    pub fn threads(self) -> usize {
        match self {
            Self::Sequential => 1,
            Self::Parallel { threads } => threads.max(1),
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<HostBackend>> = const { RefCell::new(Vec::new()) };
}

static PROCESS_DEFAULT: OnceLock<HostBackend> = OnceLock::new();

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Run `f` with `backend` installed as the current thread's host
/// backend. Scopes nest (innermost wins) and are panic-safe.
pub fn scoped<R>(backend: HostBackend, f: impl FnOnce() -> R) -> R {
    STACK.with(|s| s.borrow_mut().push(backend));
    let _guard = ScopeGuard;
    f()
}

/// The backend the next launch on this thread will use: the innermost
/// [`scoped`] override, else the process default from
/// [`HostBackend::from_env`] (environment read once per process).
pub fn current() -> HostBackend {
    STACK.with(|s| s.borrow().last().copied())
        .unwrap_or_else(|| *PROCESS_DEFAULT.get_or_init(HostBackend::from_env))
}

/// One logged floating-point `atomicAdd`, to be replayed at merge time.
///
/// The cell address is carried as `usize`, which is sound because
/// deferral is creation-scoped: `defer_add_f32` only logs a cell when
/// its [`GlobalMem`](crate::memory::GlobalMem) was created *before* the
/// executor run now executing the block (its [`creation_epoch`]
/// snapshot predates the run's generation). A `GlobalMem` that old can
/// only be reachable inside a block through the kernel closure's
/// environment — captures, or conduits (locks, channels) typed with the
/// `GlobalMem`'s borrow lifetime — so the borrow checker forces its
/// backing buffer to outlive the whole [`HostExecutor::run`] call, and
/// the replay happens inside that call, after every worker has joined.
/// Buffers created during the run (block-local scratch, or a `GlobalMem`
/// built on a thread the kernel spawned) snapshot an epoch `>=` the
/// run's generation, are never logged, and apply their adds live.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DeferredAdd {
    /// `f32` add against an `AtomicU32` cell.
    F32 { cell: usize, v: f32 },
    /// `f64` add against an `AtomicU64` cell.
    F64 { cell: usize, v: f64 },
}

/// Monotonic launch-epoch counter: bumped once per parallel executor
/// run, snapshotted by every `GlobalMem` at construction. The pair
/// orders "buffer created" against "run started" across threads.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// The epoch a `GlobalMem` constructed right now should record
/// (compared against the run generation by `defer_add_f32`).
#[inline]
pub(crate) fn creation_epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

thread_local! {
    /// The generation of the executor run this thread is executing a
    /// block for (`0` = not inside a parallel block). Checked on every
    /// float `fetch_add`.
    static ACTIVE_GEN: Cell<u64> = const { Cell::new(0) };
    /// The current block's deferred-add log (program order).
    static DEFER_LOG: RefCell<Vec<DeferredAdd>> = const { RefCell::new(Vec::new()) };
}

#[cfg(debug_assertions)]
thread_local! {
    /// Debug builds: cells with a pending deferred add from the current
    /// block, to catch same-block read-your-own-write divergence.
    static DEFER_CELLS: RefCell<std::collections::HashSet<usize>> =
        RefCell::new(std::collections::HashSet::new());
}

/// If the calling thread is inside a parallel block *and* the target
/// `GlobalMem` predates the run (`created_epoch` below the run's
/// generation), log an `f32` add and return `true`; otherwise return
/// `false` so the caller applies it live.
#[inline]
pub(crate) fn defer_add_f32(cell: &AtomicU32, v: f32, created_epoch: u64) -> bool {
    let gen = ACTIVE_GEN.with(Cell::get);
    if gen == 0 || created_epoch >= gen {
        return false;
    }
    let cell = cell as *const AtomicU32 as usize;
    DEFER_LOG.with(|l| l.borrow_mut().push(DeferredAdd::F32 { cell, v }));
    #[cfg(debug_assertions)]
    DEFER_CELLS.with(|s| {
        s.borrow_mut().insert(cell);
    });
    true
}

/// `defer_add_f32` for `f64`.
#[inline]
pub(crate) fn defer_add_f64(cell: &AtomicU64, v: f64, created_epoch: u64) -> bool {
    let gen = ACTIVE_GEN.with(Cell::get);
    if gen == 0 || created_epoch >= gen {
        return false;
    }
    let cell = cell as *const AtomicU64 as usize;
    DEFER_LOG.with(|l| l.borrow_mut().push(DeferredAdd::F64 { cell, v }));
    #[cfg(debug_assertions)]
    DEFER_CELLS.with(|s| {
        s.borrow_mut().insert(cell);
    });
    true
}

/// Debug-build contract check: panic if `cell` has a deferred add
/// pending from the current block. A kernel that `load`s / `store`s /
/// `min`s / `max`es / `cas`es a launch-level float cell after its own
/// `fetch_add` would silently read the stale launch-start value under
/// the parallel backend while the sequential backend sees the sum —
/// fail loudly instead of diverging. No-op in release builds and
/// outside a deferral window.
#[inline]
pub(crate) fn debug_assert_no_pending_add(cell: usize) {
    #[cfg(debug_assertions)]
    {
        // Outside a deferral window (sequential backend, coordinator
        // thread) nothing can be pending: skip the set lookup.
        if ACTIVE_GEN.with(Cell::get) == 0 {
            return;
        }
        DEFER_CELLS.with(|s| {
            assert!(
                !s.borrow().contains(&cell),
            "bitwise-contract violation: this block read or modified a float cell it \
             `fetch_add`ed earlier in the same launch; under the parallel host backend the \
             add is deferred to merge time, so the access would observe the launch-start \
             value and diverge from the sequential backend (see `simt::host` docs)"
            );
        });
    }
    #[cfg(not(debug_assertions))]
    let _ = cell;
}

/// RAII scope for one block's deferral window; panic-safe (a worker
/// panic clears the generation before the thread is reused or unwinds).
struct DeferScope;

impl DeferScope {
    fn begin(gen: u64) -> Self {
        debug_assert_ne!(gen, 0, "generation 0 means 'not in a run'");
        ACTIVE_GEN.with(|f| f.set(gen));
        DeferScope
    }

    /// End the window and take the block's log.
    fn take(self) -> Vec<DeferredAdd> {
        DEFER_LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
        // Drop clears the generation and the debug cell set.
    }
}

impl Drop for DeferScope {
    fn drop(&mut self) {
        ACTIVE_GEN.with(|f| f.set(0));
        DEFER_LOG.with(|l| l.borrow_mut().clear());
        #[cfg(debug_assertions)]
        DEFER_CELLS.with(|s| s.borrow_mut().clear());
    }
}

/// Replay one block's deferred adds in program order.
///
/// Runs on the coordinating thread after every worker has been joined,
/// so each load-add-store below is unobserved by any concurrent access
/// — the replay is the same read-modify-write sequence the sequential
/// backend performed live.
fn replay(adds: &[DeferredAdd]) {
    for a in adds {
        match *a {
            DeferredAdd::F32 { cell, v } => {
                // SAFETY: `cell` was logged by `defer_add_f32`, which
                // only accepts cells of a `GlobalMem` created before
                // this executor run began; such a view is reachable in
                // a block only through the kernel closure's environment,
                // so its borrow outlives the `run` call this replay is
                // part of (see `DeferredAdd` docs). Workers are joined,
                // so the coordinator is the only accessor.
                let c = unsafe { &*(cell as *const AtomicU32) };
                let old = f32::from_bits(c.load(Ordering::Relaxed));
                c.store((old + v).to_bits(), Ordering::Relaxed);
            }
            DeferredAdd::F64 { cell, v } => {
                // SAFETY: as above.
                let c = unsafe { &*(cell as *const AtomicU64) };
                let old = f64::from_bits(c.load(Ordering::Relaxed));
                c.store((old + v).to_bits(), Ordering::Relaxed);
            }
        }
    }
}

/// The work-stealing parallel block executor.
///
/// Mirrors the shape of a hybrid CPU/GPU load balancer: a shared atomic
/// cursor hands out chunks of the block range, workers execute into
/// per-worker buffers, and a deterministic merge reassembles the launch.
pub(crate) struct HostExecutor {
    threads: usize,
}

type BlockOutcome = (
    u32,
    std::result::Result<BlockCost, LaunchError>,
    Vec<DeferredAdd>,
);

impl HostExecutor {
    pub(crate) fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(2),
        }
    }

    /// Execute blocks `0..n` via `run_block`, returning costs in block
    /// order. Bitwise equal to the sequential loop for kernels honoring
    /// the module contract; on error, the error of the *lowest* block
    /// index is returned (the one the sequential loop would have hit),
    /// and buffer contents are unspecified — blocks after the failing
    /// index may or may not have run, so callers must not read them
    /// (true of the sequential path's partial state too).
    pub(crate) fn run<F>(&self, n: u32, run_block: F) -> Result<Vec<BlockCost>>
    where
        F: Fn(u32) -> std::result::Result<BlockCost, LaunchError> + Sync,
    {
        // Mint this run's generation: a GlobalMem is eligible for
        // deferred float adds only if it snapshotted an earlier epoch,
        // i.e. provably existed before the run (see `DeferredAdd`).
        let gen = EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
        // Capture the caller's ambient contexts for re-installation in
        // the workers: a worker is a fresh thread with empty TLS stacks.
        let trace = crate::tracing::current();
        let fault = crate::fault::current();
        // Chunked claiming: big enough to amortize the shared counter,
        // small enough to keep the tail balanced. Chunk size affects
        // wall-clock only — results are merged by block index.
        let chunk = (n as usize / (self.threads * 8)).clamp(1, 256);
        let next = AtomicUsize::new(0);
        let run_block = &run_block;
        let outcomes: Vec<BlockOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    let next = &next;
                    let trace = trace.clone();
                    s.spawn(move || {
                        let body = || {
                            let mut local: Vec<BlockOutcome> = Vec::new();
                            loop {
                                let base = next.fetch_add(chunk, Ordering::Relaxed);
                                if base >= n as usize {
                                    break;
                                }
                                let end = (base + chunk).min(n as usize);
                                for b in base as u32..end as u32 {
                                    let scope = DeferScope::begin(gen);
                                    let res = run_block(b);
                                    local.push((b, res, scope.take()));
                                }
                            }
                            local
                        };
                        let with_fault = || match fault {
                            Some(plan) => crate::fault::scoped(plan, body),
                            None => body(),
                        };
                        match &trace {
                            Some((sink, label)) => {
                                crate::tracing::scoped(sink.clone(), label, with_fault)
                            }
                            None => with_fault(),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("host executor worker panicked"))
                .collect()
        });

        // Deterministic merge: reassemble by block index, then replay
        // each block's deferred float adds in that order — the exact
        // accumulation sequence of the sequential backend.
        let mut slots: Vec<Option<BlockOutcome>> = (0..n).map(|_| None).collect();
        for o in outcomes {
            let idx = o.0 as usize;
            debug_assert!(slots[idx].is_none(), "block {idx} executed twice");
            slots[idx] = Some(o);
        }
        let mut out = Vec::with_capacity(n as usize);
        for slot in slots {
            let (b, res, adds) = slot.expect("every block index executed exactly once");
            match res {
                Ok(cost) => {
                    replay(&adds);
                    out.push(cost);
                }
                // Lowest-index error: the deterministic choice, and the
                // one the sequential loop reports. Later blocks' deferred
                // adds are dropped, like the sequential loop never
                // running them; callers discard buffers on error.
                Err(e) => {
                    let _ = b;
                    return Err(e);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockCost;
    use crate::cost::MemSummary;

    fn cost(units: f64) -> BlockCost {
        BlockCost {
            warp_costs: vec![units],
            warp_active: Vec::new(),
            mem: MemSummary::default(),
        }
    }

    #[test]
    fn env_parsing_maps_small_counts_to_sequential() {
        // from_env reads the real environment; only the parse mapping is
        // testable deterministically here.
        assert_eq!(HostBackend::Sequential.threads(), 1);
        assert_eq!(HostBackend::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(HostBackend::Parallel { threads: 8 }.threads(), 8);
    }

    #[test]
    fn scoped_overrides_nest_and_pop() {
        let outer = HostBackend::Parallel { threads: 2 };
        let inner = HostBackend::Parallel { threads: 7 };
        scoped(outer, || {
            assert_eq!(current(), outer);
            scoped(inner, || assert_eq!(current(), inner));
            assert_eq!(current(), outer);
        });
    }

    #[test]
    fn executor_merges_costs_in_block_order() {
        let ex = HostExecutor::new(4);
        let out = ex.run(100, |b| Ok(cost(f64::from(b)))).unwrap();
        assert_eq!(out.len(), 100);
        for (i, c) in out.iter().enumerate() {
            assert_eq!(c.warp_costs[0], i as f64);
        }
    }

    #[test]
    fn executor_reports_the_lowest_block_index_error() {
        let ex = HostExecutor::new(8);
        // Blocks 10 and 90 both fail; the deterministic answer is 10's.
        let r = ex.run(100, |b| {
            if b == 10 || b == 90 {
                Err(LaunchError::SharedMemOverflow {
                    block_idx: b,
                    used: 0,
                    declared: 0,
                })
            } else {
                Ok(cost(1.0))
            }
        });
        match r {
            Err(LaunchError::SharedMemOverflow { block_idx, .. }) => assert_eq!(block_idx, 10),
            other => panic!("expected overflow from block 10, got {other:?}"),
        }
    }

    #[test]
    fn deferred_adds_replay_in_block_then_program_order() {
        // Each block contributes (b+1) and then (b+1)/10 to one cell.
        // The replayed sequence must match a sequential fold exactly.
        let mut seq = vec![0.0f32; 1];
        {
            let g = crate::memory::GlobalMem::new(&mut seq);
            for b in 0..32u32 {
                g.fetch_add(0, (b + 1) as f32);
                g.fetch_add(0, (b + 1) as f32 / 10.0);
            }
        }
        let mut par = vec![0.0f32; 1];
        {
            let g = crate::memory::GlobalMem::new(&mut par);
            let ex = HostExecutor::new(4);
            ex.run(32, |b| {
                g.fetch_add(0, (b + 1) as f32);
                g.fetch_add(0, (b + 1) as f32 / 10.0);
                Ok(cost(1.0))
            })
            .unwrap();
        }
        assert_eq!(seq[0].to_bits(), par[0].to_bits());
    }

    #[test]
    fn block_local_global_mem_applies_live_and_reads_back() {
        // The once-unsound scenario: a GlobalMem over a scratch buffer
        // created *inside* the kernel body. Its epoch postdates the run,
        // so adds are never logged (no pointer survives the block) and
        // read-your-own-write behaves exactly like the sequential
        // backend.
        let ex = HostExecutor::new(4);
        ex.run(16, |b| {
            let mut scratch = vec![0.0f32; 1];
            let g = crate::memory::GlobalMem::new(&mut scratch);
            g.fetch_add(0, b as f32);
            g.fetch_add(0, 0.5);
            assert_eq!(
                g.load(0).to_bits(),
                (b as f32 + 0.5).to_bits(),
                "block-local adds must apply live, in program order"
            );
            Ok(cost(1.0))
        })
        .unwrap();
    }

    #[test]
    fn pre_run_global_mem_is_deferred_but_block_local_is_not() {
        let mut shared = vec![0.0f64; 1];
        let g = crate::memory::GlobalMem::new(&mut shared);
        let ex = HostExecutor::new(2);
        ex.run(8, |_| {
            // Launch-level view: the add is logged, the cell still holds
            // the launch-start value inside the block.
            g.fetch_add(0, 1.0);
            // Block-local view: applied immediately.
            let mut local = vec![10.0f64; 1];
            let l = crate::memory::GlobalMem::new(&mut local);
            l.fetch_add(0, 1.0);
            assert_eq!(l.load(0), 11.0);
            Ok(cost(1.0))
        })
        .unwrap();
        assert_eq!(g.load(0), 8.0, "deferred adds replay at merge time");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "host executor worker panicked")]
    fn debug_build_panics_on_read_after_deferred_add() {
        let mut shared = vec![0.0f32; 1];
        let g = crate::memory::GlobalMem::new(&mut shared);
        let ex = HostExecutor::new(2);
        let _ = ex.run(4, |_| {
            g.fetch_add(0, 1.0);
            // Same-block read of a deferred-add target: diverges from
            // the sequential backend, so debug builds must fail loudly.
            let _ = g.load(0);
            Ok(cost(1.0))
        });
    }

    #[test]
    fn defer_flag_is_cleared_outside_the_executor() {
        let ex = HostExecutor::new(2);
        ex.run(8, |_| Ok(cost(1.0))).unwrap();
        // Back on the coordinator: live application.
        let mut buf = vec![0.0f32; 1];
        let g = crate::memory::GlobalMem::new(&mut buf);
        g.fetch_add(0, 2.5);
        assert_eq!(g.load(0), 2.5);
    }
}
