//! Simulated shared memory (CUDA "scratchpad") buffers.
//!
//! A block allocates [`SharedBuf`]s through
//! [`crate::BlockCtx::alloc_shared`] (or the group-level equivalent).
//! Allocations are *static for the lifetime of the block*, like CUDA shared
//! memory: bytes are debited from the block's declared budget and never
//! returned. Exceeding the declared budget fails the launch
//! deterministically instead of faulting.
//!
//! Because a block executes on a single host thread (phases are sequential;
//! parallelism in the simulator is *across* blocks), the buffer is a plain
//! `Vec` with no synchronization. Cost accounting for shared accesses is
//! explicit: schedules charge
//! [`crate::LaneCtx::charge_shared`] when they touch scratchpad.

use std::ops::{Deref, DerefMut};

/// A typed shared-memory buffer, zero-initialized.
#[derive(Debug)]
pub struct SharedBuf<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> SharedBuf<T> {
    pub(crate) fn new(len: usize) -> Self {
        Self {
            data: vec![T::default(); len],
        }
    }
}

impl<T> SharedBuf<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<T> Deref for SharedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for SharedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// Tracks a block's shared-memory budget.
#[derive(Debug)]
pub(crate) struct SharedTracker {
    declared: u32,
    used: std::cell::Cell<u32>,
    overflowed: std::cell::Cell<bool>,
}

impl SharedTracker {
    pub(crate) fn new(declared: u32) -> Self {
        Self {
            declared,
            used: std::cell::Cell::new(0),
            overflowed: std::cell::Cell::new(false),
        }
    }

    /// Debit `bytes`; returns `false` (and latches the overflow flag) if the
    /// declared budget is exceeded.
    pub(crate) fn debit(&self, bytes: u32) -> bool {
        let next = self.used.get().saturating_add(bytes);
        self.used.set(next);
        if next > self.declared {
            self.overflowed.set(true);
            false
        } else {
            true
        }
    }

    pub(crate) fn used(&self) -> u32 {
        self.used.get()
    }

    pub(crate) fn declared(&self) -> u32 {
        self.declared
    }

    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buf_zero_initialized_and_indexable() {
        let mut b = SharedBuf::<u32>::new(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 0));
        b[3] = 7;
        assert_eq!(b[3], 7);
    }

    #[test]
    fn empty_buf() {
        let b = SharedBuf::<f64>::new(0);
        assert!(b.is_empty());
    }

    #[test]
    fn tracker_debits_and_latches_overflow() {
        let t = SharedTracker::new(100);
        assert!(t.debit(60));
        assert!(!t.overflowed());
        assert!(t.debit(40));
        assert_eq!(t.used(), 100);
        assert!(!t.debit(1));
        assert!(t.overflowed());
        assert_eq!(t.declared(), 100);
    }
}
