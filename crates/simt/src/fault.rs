//! Deterministic fault injection — degraded, flaky, and dying devices.
//!
//! The paper's dynamic schedules exist because real work arrives skewed
//! and unpredictable; real *hardware* is no kinder. A serving runtime
//! must survive SMs that clock down, drivers that transiently refuse a
//! launch, and devices that disappear mid-run. This module makes all of
//! that injectable **deterministically**: a [`FaultPlan`] is a seeded
//! description of what goes wrong, and identical seeds produce bitwise-
//! identical fault sequences — every chaos run is replayable.
//!
//! Three injection surfaces:
//!
//! * **Per-SM throughput degradation** — each SM's multiplier is derived
//!   statelessly from `(seed, sm)` ([`FaultPlan::sm_multiplier`]), so it
//!   is identical no matter how many dispatches preceded it. Degradation
//!   changes *timing only*: kernels execute functionally before timing
//!   resolution, so results are bitwise unchanged (the schedule-oracle
//!   tests assert this).
//! * **Stall and kill windows** — a device refuses new work during
//!   `[stall_at_ms, stall_at_ms + stall_ms)` (dispatches are pushed past
//!   the window) and dies permanently at `kill_at_ms` (dispatches fail
//!   with [`SimError::DeviceLost`](crate::error::SimError), and a replayed
//!   job whose execution would cross the kill tick is lost mid-run).
//! * **Transient launch failures** — each dispatch attempt draws from the
//!   device's sequential fault stream; a failure surfaces as
//!   [`SimError::TransientLaunch`](crate::error::SimError) and charges the
//!   stream the launch overhead it wasted.
//!
//! Attach a plan to a device with
//! [`DeviceSim::set_fault_plan`](crate::stream::DeviceSim::set_fault_plan)
//! (stall/kill/transient + degrade), or scope one over the one-shot
//! launch path with [`scoped`] (degrade only — the free launchers have no
//! retry loop above them, so they only take the timing faults).
//!
//! Every fired fault is emitted as a [`TraceEvent::Fault`](trace::TraceEvent)
//! through the device's attached sink, so chaos runs are observable on
//! the same timeline as everything else.

use std::cell::RefCell;

/// Seeded description of everything that goes wrong on one device.
///
/// The default plan is healthy (all faults off); set individual knobs or
/// use the builder-style helpers. All draws derive from `seed`, so two
/// devices given the same plan fail identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every derived draw (per-SM multipliers, the per-dispatch
    /// transient-failure stream).
    pub seed: u64,
    /// Probability that any given SM is degraded.
    pub sm_degrade_prob: f64,
    /// Throughput multiplier range `[lo, hi)` for degraded SMs; values
    /// in `(0, 1]` (0.5 = the SM runs at half speed).
    pub sm_degrade_range: (f64, f64),
    /// Probability that any dispatch attempt fails transiently at launch.
    pub launch_fail_prob: f64,
    /// Start of a window during which the device accepts no new work.
    pub stall_at_ms: Option<f64>,
    /// Length of the stall window (ignored without `stall_at_ms`).
    pub stall_ms: f64,
    /// Device-clock time at which the device dies permanently.
    pub kill_at_ms: Option<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::healthy(0)
    }
}

impl FaultPlan {
    /// A plan with every fault disabled.
    pub fn healthy(seed: u64) -> Self {
        Self {
            seed,
            sm_degrade_prob: 0.0,
            sm_degrade_range: (0.5, 1.0),
            launch_fail_prob: 0.0,
            stall_at_ms: None,
            stall_ms: 0.0,
            kill_at_ms: None,
        }
    }

    /// Degrade a fraction of SMs to multipliers drawn from `[lo, hi)`.
    pub fn with_degraded_sms(mut self, prob: f64, lo: f64, hi: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability in [0, 1]");
        assert!(0.0 < lo && lo < hi && hi <= 1.0, "multipliers in (0, 1]");
        self.sm_degrade_prob = prob;
        self.sm_degrade_range = (lo, hi);
        self
    }

    /// Fail each dispatch attempt transiently with probability `prob`.
    pub fn with_flaky_launches(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability in [0, 1]");
        self.launch_fail_prob = prob;
        self
    }

    /// Refuse new work during `[at_ms, at_ms + for_ms)`.
    pub fn with_stall(mut self, at_ms: f64, for_ms: f64) -> Self {
        assert!(at_ms >= 0.0 && for_ms >= 0.0, "stall window must be non-negative");
        self.stall_at_ms = Some(at_ms);
        self.stall_ms = for_ms;
        self
    }

    /// Kill the device permanently at `at_ms`.
    pub fn with_kill_at(mut self, at_ms: f64) -> Self {
        assert!(at_ms >= 0.0, "kill tick must be non-negative");
        self.kill_at_ms = Some(at_ms);
        self
    }

    /// True if the plan can permanently lose work (a kill tick is set).
    /// Non-fatal plans may change timing but never results — the
    /// invariant the schedule-oracle harness checks.
    pub fn is_fatal(&self) -> bool {
        self.kill_at_ms.is_some()
    }

    /// True if every fault is disabled.
    pub fn is_healthy(&self) -> bool {
        self.sm_degrade_prob <= 0.0
            && self.launch_fail_prob <= 0.0
            && self.stall_at_ms.is_none()
            && self.kill_at_ms.is_none()
    }

    /// The throughput multiplier of SM `sm` under this plan (1.0 =
    /// healthy). Derived statelessly from `(seed, sm)`, so the answer
    /// does not depend on how many dispatches came before — the property
    /// that keeps whole chaos runs replayable.
    pub fn sm_multiplier(&self, sm: u32) -> f64 {
        if self.sm_degrade_prob <= 0.0 {
            return 1.0;
        }
        let mut rng = FaultRng::seed_from_u64(
            self.seed ^ (u64::from(sm).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
        );
        if rng.f64() >= self.sm_degrade_prob {
            return 1.0;
        }
        let (lo, hi) = self.sm_degrade_range;
        rng.f64_range(lo, hi)
    }
}

/// Counters of faults a device has actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Dispatch attempts that failed transiently at launch.
    pub transient_launch_failures: u64,
    /// Dispatches delayed past a stall window.
    pub stalled_dispatches: u64,
    /// Dispatches refused (or jobs lost mid-run) because the device died.
    pub lost_dispatches: u64,
    /// SMs running degraded under the attached plan.
    pub degraded_sms: u32,
}

/// Self-contained xoshiro256++ stream (seeded via SplitMix64) — the same
/// generator as `sparse::Prng`, duplicated here because `simt` sits below
/// `sparse` in the dependency graph and the workspace is offline-only.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    pub(crate) fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub(crate) fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    pub(crate) fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

thread_local! {
    static SCOPE: RefCell<Vec<FaultPlan>> = const { RefCell::new(Vec::new()) };
}

struct Guard;

impl Drop for Guard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Run `f` with `plan` installed as the current thread's fault context
/// for the one-shot launch path ([`launch`](crate::launch::launch) and
/// friends): per-SM degradation applies to their timing resolution.
/// Stall/kill/transient faults need a dispatch clock and a retry policy
/// above them, so they only fire on the
/// [`DeviceSim`](crate::stream::DeviceSim) path. Scopes nest (innermost
/// wins) and are panic-safe. Results are never affected — kernels
/// execute functionally before timing, so a scoped plan changes the
/// reported milliseconds and nothing else.
pub fn scoped<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    SCOPE.with(|s| s.borrow_mut().push(plan));
    let _guard = Guard;
    f()
}

/// The innermost scoped fault plan, if any.
pub(crate) fn current() -> Option<FaultPlan> {
    SCOPE.with(|s| s.borrow().last().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_healthy_and_non_fatal() {
        let p = FaultPlan::default();
        assert!(p.is_healthy());
        assert!(!p.is_fatal());
        for sm in 0..128 {
            assert_eq!(p.sm_multiplier(sm), 1.0);
        }
    }

    #[test]
    fn sm_multipliers_are_deterministic_and_stateless() {
        let p = FaultPlan::healthy(42).with_degraded_sms(0.5, 0.3, 0.9);
        let a: Vec<f64> = (0..80).map(|i| p.sm_multiplier(i)).collect();
        let b: Vec<f64> = (0..80).map(|i| p.sm_multiplier(i)).collect();
        assert_eq!(a, b, "same (seed, sm) → same multiplier, bitwise");
        let degraded = a.iter().filter(|&&m| m < 1.0).count();
        assert!(degraded > 10 && degraded < 70, "~half degraded, got {degraded}");
        for &m in &a {
            assert!((0.3..=1.0).contains(&m), "multiplier {m} out of range");
        }
        // A different seed draws a different degradation pattern.
        let q = FaultPlan::healthy(43).with_degraded_sms(0.5, 0.3, 0.9);
        let c: Vec<f64> = (0..80).map(|i| q.sm_multiplier(i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn fatal_plans_are_flagged() {
        assert!(FaultPlan::healthy(1).with_kill_at(5.0).is_fatal());
        assert!(!FaultPlan::healthy(1).with_flaky_launches(0.5).is_fatal());
        assert!(!FaultPlan::healthy(1).with_stall(1.0, 2.0).is_fatal());
    }

    #[test]
    fn scoped_installs_nests_and_unwinds() {
        assert!(current().is_none());
        let outer = FaultPlan::healthy(1).with_degraded_sms(0.9, 0.4, 0.5);
        let inner = FaultPlan::healthy(2).with_degraded_sms(0.1, 0.4, 0.5);
        scoped(outer, || {
            assert_eq!(current().unwrap().seed, 1);
            scoped(inner, || assert_eq!(current().unwrap().seed, 2));
            assert_eq!(current().unwrap().seed, 1);
        });
        assert!(current().is_none());
        let r = std::panic::catch_unwind(|| scoped(outer, || panic!("boom")));
        assert!(r.is_err());
        assert!(current().is_none(), "guard must pop on unwind");
    }

    #[test]
    fn fault_rng_matches_xoshiro_reference_behaviour() {
        // Same determinism contract as sparse::Prng: one seed, one stream.
        let mut a = FaultRng::seed_from_u64(7);
        let mut b = FaultRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut r = FaultRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03, "hits = {hits}");
    }
}
