//! Launch results: simulated timing breakdown plus traffic statistics.

use crate::cost::MemSummary;
use crate::occupancy::Occupancy;

/// Whether the launch was limited by issue throughput or memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundedness {
    /// Compute (issue-slot) bound.
    Compute,
    /// Memory-bandwidth bound.
    Memory,
}

/// Simulated timing decomposition of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingBreakdown {
    /// SM makespan converted to milliseconds.
    pub compute_ms: f64,
    /// Roofline memory time in milliseconds.
    pub memory_ms: f64,
    /// Fixed launch overhead in milliseconds.
    pub overhead_ms: f64,
    /// `max(compute, memory) + overhead`.
    pub elapsed_ms: f64,
    /// Which roofline term dominated.
    pub bound: Boundedness,
    /// Mean SM busy fraction relative to the makespan (1.0 = perfectly
    /// balanced device; small values mean one SM was the long pole).
    pub sm_utilization: f64,
    /// Total work units charged by all warps.
    pub total_units: f64,
    /// Issue width after the low-occupancy penalty.
    pub effective_issue_width: f64,
    /// Per-SM busy time in milliseconds (index = SM id) — the device-level
    /// load-balance profile behind `sm_utilization`.
    pub sm_times_ms: Vec<f64>,
}

/// Result of a completed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Grid dimension launched.
    pub grid_dim: u32,
    /// Block dimension launched.
    pub block_dim: u32,
    /// Declared dynamic shared memory per block.
    pub shared_bytes: u32,
    /// Occupancy achieved by this shape.
    pub occupancy: Occupancy,
    /// Timing decomposition.
    pub timing: TimingBreakdown,
    /// Aggregate memory traffic.
    pub mem: MemSummary,
    /// Wall-clock milliseconds the *host* spent simulating (diagnostic
    /// only; never used in experiment outputs).
    pub host_wall_ms: f64,
}

impl LaunchReport {
    /// Simulated elapsed time in milliseconds — the number every
    /// experiment reports.
    pub fn elapsed_ms(&self) -> f64 {
        self.timing.elapsed_ms
    }

    /// Sum another launch into a cumulative timing (for multi-kernel
    /// algorithms such as SpGEMM's count+fill or iterative SSSP): elapsed
    /// times add, traffic adds, per-SM busy times merge element-wise (the
    /// kernels run back-to-back on the same SMs), utilization and
    /// boundedness are recomputed over the combined totals, and the rest
    /// keeps the later launch's values.
    pub fn accumulate(&mut self, other: &LaunchReport) {
        self.timing.elapsed_ms += other.timing.elapsed_ms;
        self.timing.compute_ms += other.timing.compute_ms;
        self.timing.memory_ms += other.timing.memory_ms;
        self.timing.overhead_ms += other.timing.overhead_ms;
        self.timing.total_units += other.timing.total_units;
        if self.timing.sm_times_ms.len() < other.timing.sm_times_ms.len() {
            self.timing.sm_times_ms.resize(other.timing.sm_times_ms.len(), 0.0);
        }
        for (mine, &theirs) in self
            .timing
            .sm_times_ms
            .iter_mut()
            .zip(&other.timing.sm_times_ms)
        {
            *mine += theirs;
        }
        let busy: f64 = self.timing.sm_times_ms.iter().sum();
        self.timing.sm_utilization = if self.timing.compute_ms > 0.0 {
            busy / (self.timing.compute_ms * self.timing.sm_times_ms.len().max(1) as f64)
        } else {
            0.0
        };
        self.timing.bound = if self.timing.compute_ms >= self.timing.memory_ms {
            Boundedness::Compute
        } else {
            Boundedness::Memory
        };
        self.mem = self.mem.merged(other.mem);
        self.host_wall_ms += other.host_wall_ms;
    }

    /// Fold the cost of a *failed* dispatch attempt into a cumulative
    /// timing: the attempt burned launch overhead (and wall-clock) but
    /// did **no** SM work and moved **no** memory, so only `overhead_ms`
    /// and `elapsed_ms` grow. Using [`Self::accumulate`] here would
    /// double-count the job's `sm_times_ms`, traffic, and work units
    /// once the retry succeeds — a retried request must charge its SM
    /// footprint exactly once, on the attempt that ran.
    pub fn fold_failed_attempt(&mut self, overhead_ms: f64) {
        self.timing.overhead_ms += overhead_ms;
        self.timing.elapsed_ms += overhead_ms;
        let busy: f64 = self.timing.sm_times_ms.iter().sum();
        self.timing.sm_utilization = if self.timing.compute_ms > 0.0 {
            busy / (self.timing.compute_ms * self.timing.sm_times_ms.len().max(1) as f64)
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::OccupancyLimit;

    fn report(ms: f64) -> LaunchReport {
        LaunchReport {
            grid_dim: 1,
            block_dim: 32,
            shared_bytes: 0,
            occupancy: Occupancy {
                blocks_per_sm: 1,
                resident_warps: 1,
                occupancy_frac: 0.1,
                limited_by: OccupancyLimit::Warps,
            },
            timing: TimingBreakdown {
                compute_ms: ms,
                memory_ms: 0.0,
                overhead_ms: 0.01,
                elapsed_ms: ms + 0.01,
                bound: Boundedness::Compute,
                sm_utilization: 1.0,
                total_units: 100.0,
                effective_issue_width: 4.0,
                sm_times_ms: vec![ms; 4],
            },
            mem: MemSummary {
                read_bytes: 10,
                ..Default::default()
            },
            host_wall_ms: 0.5,
        }
    }

    #[test]
    fn elapsed_ms_reads_timing() {
        assert!((report(2.0).elapsed_ms() - 2.01).abs() < 1e-12);
    }

    #[test]
    fn accumulate_adds_times_and_traffic() {
        let mut a = report(1.0);
        let b = report(2.0);
        a.accumulate(&b);
        assert!((a.elapsed_ms() - (1.01 + 2.01)).abs() < 1e-12);
        assert_eq!(a.mem.read_bytes, 20);
        assert!((a.timing.total_units - 200.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_merges_sm_times_element_wise() {
        // Regression: accumulate used to keep only self's sm_times_ms,
        // silently dropping the accumulated launch's per-SM profile.
        let mut a = report(1.0);
        let mut b = report(2.0);
        b.timing.sm_times_ms = vec![2.0, 0.5, 2.0, 0.5, 3.0, 3.0]; // more SMs than a
        a.accumulate(&b);
        assert_eq!(a.timing.sm_times_ms, vec![3.0, 1.5, 3.0, 1.5, 3.0, 3.0]);
        // Utilization recomputed over the merged profile: busy / (compute × SMs).
        let busy = 3.0 + 1.5 + 3.0 + 1.5 + 3.0 + 3.0;
        let expect = busy / (3.0 * 6.0);
        assert!((a.timing.sm_utilization - expect).abs() < 1e-12);
        assert_eq!(a.timing.bound, Boundedness::Compute);
    }

    #[test]
    fn accumulate_recomputes_boundedness() {
        let mut a = report(1.0);
        let mut b = report(0.1);
        b.timing.memory_ms = 50.0;
        a.accumulate(&b);
        assert_eq!(a.timing.bound, Boundedness::Memory);
    }

    #[test]
    fn failed_attempts_charge_overhead_without_double_counting_sm_work() {
        // Regression for retry accounting: a request that fails once and
        // then succeeds must carry ONE copy of its SM footprint plus the
        // failed attempt's overhead.
        let success = report(2.0);
        let mut retried = success.clone();
        retried.fold_failed_attempt(0.01);
        assert_eq!(
            retried.timing.sm_times_ms, success.timing.sm_times_ms,
            "a failed launch did no SM work"
        );
        assert_eq!(retried.mem, success.mem, "and moved no memory");
        assert!((retried.timing.total_units - success.timing.total_units).abs() < 1e-12);
        assert!((retried.timing.overhead_ms - (success.timing.overhead_ms + 0.01)).abs() < 1e-12);
        assert!((retried.elapsed_ms() - (success.elapsed_ms() + 0.01)).abs() < 1e-12);
        // The buggy alternative — accumulate()ing the attempt — doubles
        // the per-SM profile and traffic; prove the difference is real.
        let mut double = success.clone();
        double.accumulate(&success);
        assert_eq!(double.timing.sm_times_ms, vec![4.0; 4], "accumulate doubles SM time");
        assert_eq!(double.mem.read_bytes, 20, "accumulate doubles traffic");
        assert_eq!(retried.mem.read_bytes, 10);
    }

    #[test]
    fn accumulate_with_zero_compute_yields_zero_utilization() {
        let mut a = report(0.0);
        a.timing.sm_times_ms = vec![0.0; 4];
        let mut b = report(0.0);
        b.timing.sm_times_ms = vec![0.0; 4];
        a.accumulate(&b);
        assert_eq!(a.timing.sm_utilization, 0.0);
    }
}
