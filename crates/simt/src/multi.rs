//! Multi-device simulation — the paper's §8 future work ("expanding our
//! model to a multi-GPU environment, and implementing load-balancing
//! schedules that span across the GPU boundary").
//!
//! A [`MultiGpuSpec`] is `n` identical devices joined by an interconnect
//! (NVLink-class bandwidth and latency). Kernels launch per device;
//! [`combine`] folds the per-device reports into a node-level makespan:
//! devices run concurrently (max over devices) and the host-visible time
//! adds the interconnect transfers the algorithm needed (operand
//! broadcast, result gather). Exactly the same max/sum structure as the
//! intra-device model, one level up — which is why the paper's
//! load-balancing vocabulary transfers: *devices are just very large
//! processing elements, and the partition across them is a schedule.*

use crate::report::LaunchReport;
use crate::spec::GpuSpec;

/// A homogeneous multi-GPU node.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiGpuSpec {
    /// Per-device architecture.
    pub device: GpuSpec,
    /// Number of devices.
    pub num_devices: u32,
    /// Interconnect bandwidth per direction, GB/s (NVLink2 ≈ 150).
    pub link_bw_gbs: f64,
    /// Per-transfer interconnect latency, microseconds.
    pub link_latency_us: f64,
}

impl MultiGpuSpec {
    /// A DGX-1V-style node: `n` V100s over NVLink.
    pub fn dgx_v100(n: u32) -> Self {
        assert!(n >= 1, "need at least one device");
        Self {
            device: GpuSpec::v100(),
            num_devices: n,
            link_bw_gbs: 150.0,
            link_latency_us: 2.0,
        }
    }

    /// A test-sized node of tiny devices.
    pub fn test_tiny(n: u32) -> Self {
        Self {
            device: GpuSpec::test_tiny(),
            num_devices: n,
            link_bw_gbs: 10.0,
            link_latency_us: 1.0,
        }
    }

    /// Time in milliseconds to move `bytes` over the interconnect once.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.link_latency_us * 1e-3 + bytes as f64 / (self.link_bw_gbs * 1e9) * 1e3
    }
}

/// Result of a multi-device launch.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLaunchReport {
    /// Per-device launch reports, in device order.
    pub per_device: Vec<LaunchReport>,
    /// Interconnect time (broadcast + gather), milliseconds.
    pub comm_ms: f64,
    /// Node-level elapsed: slowest device plus communication.
    pub elapsed_ms: f64,
}

impl MultiLaunchReport {
    /// The slowest device's elapsed time.
    pub fn critical_device_ms(&self) -> f64 {
        self.per_device
            .iter()
            .map(|r| r.elapsed_ms())
            .fold(0.0, f64::max)
    }

    /// Ratio of slowest to mean device time (1.0 = perfectly balanced
    /// across devices) — the cross-device analogue of SM utilization.
    pub fn device_imbalance(&self) -> f64 {
        if self.per_device.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self.per_device.iter().map(|r| r.elapsed_ms()).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.critical_device_ms() / mean
        }
    }
}

/// Fold per-device reports plus the algorithm's interconnect traffic into
/// a node-level report. Devices run concurrently; transfers serialize
/// before/after (the conservative bulk-synchronous pattern).
pub fn combine(per_device: Vec<LaunchReport>, comm_bytes: u64, spec: &MultiGpuSpec) -> MultiLaunchReport {
    let comm_ms = if comm_bytes == 0 || spec.num_devices <= 1 {
        0.0
    } else {
        spec.transfer_ms(comm_bytes)
    };
    let critical = per_device
        .iter()
        .map(|r| r.elapsed_ms())
        .fold(0.0, f64::max);
    MultiLaunchReport {
        per_device,
        comm_ms,
        elapsed_ms: critical + comm_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{launch_threads, LaunchConfig};

    fn dummy_report(spec: &GpuSpec, work: f64) -> LaunchReport {
        launch_threads(spec, LaunchConfig::new(4, 32), |t| t.charge(work)).unwrap()
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let m = MultiGpuSpec::dgx_v100(4);
        let t = m.transfer_ms(150_000_000); // 1 ms at 150 GB/s
        assert!((t - (1.0 + 0.002)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn combine_takes_max_over_devices_plus_comm() {
        let m = MultiGpuSpec::test_tiny(2);
        let fast = dummy_report(&m.device, 10.0);
        let slow = dummy_report(&m.device, 100_000.0);
        let slow_ms = slow.elapsed_ms();
        let r = combine(vec![fast, slow], 10_000_000, &m);
        assert!((r.critical_device_ms() - slow_ms).abs() < 1e-12);
        assert!(r.comm_ms > 0.0);
        assert!((r.elapsed_ms - (slow_ms + r.comm_ms)).abs() < 1e-12);
        assert!(r.device_imbalance() > 1.5, "imbalance = {}", r.device_imbalance());
    }

    #[test]
    fn single_device_pays_no_comm() {
        let m = MultiGpuSpec::test_tiny(1);
        let r = combine(vec![dummy_report(&m.device, 5.0)], 123_456, &m);
        assert_eq!(r.comm_ms, 0.0);
        assert!((r.device_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = MultiGpuSpec::dgx_v100(0);
    }
}
