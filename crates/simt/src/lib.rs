//! # simt — a deterministic SIMT GPU execution simulator
//!
//! This crate is the hardware substrate for the Rust reproduction of
//! *"A Programming Model for GPU Load Balancing"* (PPoPP '23). The paper's
//! framework targets NVIDIA's CUDA execution model; this environment has no
//! GPU, so `simt` provides the closest synthetic equivalent: kernels are
//! written per-thread against a CUDA-like hierarchy (grid → block →
//! warp/group → lane), are executed **functionally** (real results are
//! computed — sequentially by default, or across host worker threads via
//! the bitwise-equivalent [`HostBackend`]), and are **timed analytically**
//! with a cost model that captures exactly the phenomena the paper studies:
//!
//! * **lockstep divergence** — a warp's cost is the *maximum* over its
//!   lanes, so an idle lane waiting on a heavy neighbour is paid for;
//! * **intra-SM throughput** — a streaming multiprocessor issues its
//!   resident warps at a bounded rate, so a block's cost is
//!   `max(critical-warp, total-work / issue-width)`;
//! * **oversubscription** — blocks are dispatched greedily to the
//!   least-loaded SM, so launching many more blocks than SMs smooths load,
//!   while a single long-pole block stretches the device makespan;
//! * **memory roofline** — total bytes moved divide by device bandwidth and
//!   the device time is the max of the compute and memory times;
//! * **schedule setup cost** — binary searches, prefix sums, and the
//!   abstraction's per-iteration range overhead are charged explicitly.
//!
//! ## Execution model
//!
//! A kernel is launched over a 1-D grid of 1-D blocks ([`fn@launch`],
//! [`LaunchConfig`]). Each block executes as a sequence of *phases*: within
//! a phase every lane runs a closure to completion; the end of a phase is a
//! barrier. This is the bulk-synchronous subset of CUDA — sufficient for
//! every schedule and kernel in the paper — and it keeps the simulator
//! deterministic and allocation-light. Cooperative groups
//! ([`GroupCtx`]) provide group-wide collectives (`reduce`, `exclusive
//! scan`, `ballot`) with logarithmic-step cost charging, generalizing warp-
//! and block-level cooperation exactly as §5.2.3 of the paper describes.
//!
//! Global memory is shared mutable state accessed through [`GlobalMem`],
//! which stores scalars in atomic cells (relaxed ordering), so racy kernels
//! are *wrong* but never undefined behaviour; `fetch_add`/`fetch_min` give
//! CUDA-style `atomicAdd`/`atomicMin` including the float variants.
//!
//! ## Quick example
//!
//! ```
//! use simt::{GpuSpec, LaunchConfig, GlobalMem, launch_threads};
//!
//! let spec = GpuSpec::v100();
//! let mut out = vec![0.0f32; 1024];
//! {
//!     let gout = GlobalMem::new(&mut out);
//!     let report = launch_threads(
//!         &spec,
//!         LaunchConfig::over_threads(1024, 256),
//!         |t| {
//!             let gid = t.global_thread_id() as usize;
//!             if gid < gout.len() {
//!                 gout.store(gid, gid as f32 * 2.0);
//!                 t.charge(1.0);
//!             }
//!         },
//!     )
//!     .unwrap();
//!     assert!(report.elapsed_ms() > 0.0);
//! }
//! assert_eq!(out[10], 20.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod cache;
pub mod cost;
pub mod error;
pub mod exchange;
pub mod fault;
pub mod group;
pub mod host;
pub mod lane;
pub mod launch;
pub mod memory;
pub mod multi;
pub mod occupancy;
pub mod report;
pub mod scheduler;
pub mod shared;
pub mod spec;
pub mod stream;
pub mod tracing;

pub use block::BlockCtx;
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use cost::{CostModel, MemCounters};
pub use error::{LaunchError, Result, SimError, SimResult};
pub use exchange::{halo_exchange, ExchangeCost};
pub use fault::{FaultCounters, FaultPlan};
pub use group::GroupCtx;
pub use host::HostBackend;
pub use lane::LaneCtx;
pub use launch::{
    launch, launch_groups, launch_groups_with_model, launch_threads, launch_threads_with_model,
    launch_with_model, BlockKernel, LaunchConfig,
};
pub use memory::{GlobalMem, Scalar};
pub use multi::{combine as combine_multi, MultiGpuSpec, MultiLaunchReport};
pub use occupancy::Occupancy;
pub use report::{LaunchReport, TimingBreakdown};
pub use shared::SharedBuf;
pub use spec::GpuSpec;
pub use stream::{DeviceSim, Event, JobReport, StreamId, StreamReport};
