//! Error types for kernel launches.

use std::fmt;

/// Errors produced when validating or executing a kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// `block_dim` exceeds the device's `max_threads_per_block`.
    BlockTooLarge {
        /// Requested threads per block.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// A zero-sized grid or block was requested.
    EmptyLaunch,
    /// Declared dynamic shared memory exceeds the per-block limit.
    SharedMemTooLarge {
        /// Requested bytes per block.
        requested: u32,
        /// Device limit per block.
        limit: u32,
    },
    /// A block allocated more shared memory at runtime than it declared at
    /// launch (CUDA would fault; we fail the launch deterministically).
    SharedMemOverflow {
        /// Block that overflowed.
        block_idx: u32,
        /// Bytes the block tried to hold live at once.
        used: u32,
        /// Bytes declared in the [`crate::LaunchConfig`].
        declared: u32,
    },
    /// Cooperative group size must be a power of two that divides the block
    /// or be a multiple of the block's warp count structure; see
    /// [`crate::BlockCtx::for_each_group`].
    BadGroupSize {
        /// Requested group size.
        group_size: u32,
        /// Block size it must tile.
        block_dim: u32,
    },
    /// The work description handed to the engine is malformed (e.g. a COO
    /// operand that is not in canonical row-major order). Surfaced as a
    /// configuration error instead of a panic so serving paths can fall
    /// back.
    InvalidWork {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BlockTooLarge { requested, limit } => write!(
                f,
                "block of {requested} threads exceeds device limit of {limit}"
            ),
            Self::EmptyLaunch => write!(f, "grid and block dimensions must be non-zero"),
            Self::SharedMemTooLarge { requested, limit } => write!(
                f,
                "declared shared memory {requested} B exceeds per-block limit {limit} B"
            ),
            Self::SharedMemOverflow {
                block_idx,
                used,
                declared,
            } => write!(
                f,
                "block {block_idx} held {used} B of shared memory live but declared only {declared} B"
            ),
            Self::BadGroupSize {
                group_size,
                block_dim,
            } => write!(
                f,
                "group size {group_size} does not evenly tile block of {block_dim} threads"
            ),
            Self::InvalidWork { reason } => write!(f, "invalid work description: {reason}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Convenience result alias for launch operations.
pub type Result<T> = std::result::Result<T, LaunchError>;

/// Errors produced when dispatching work onto a simulated device that may
/// be running under an injected [`FaultPlan`](crate::fault::FaultPlan).
///
/// [`LaunchError`] covers *static* validation failures (a shape the device
/// could never run); `SimError` adds the *dynamic* failures a resilient
/// runtime must survive: devices dying mid-run and transient launch
/// failures worth retrying. The fallible dispatch entry points
/// ([`DeviceSim::try_launch_at`](crate::stream::DeviceSim::try_launch_at),
/// [`DeviceSim::try_replay_named`](crate::stream::DeviceSim::try_replay_named))
/// return this type.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Static launch validation failed (never retryable).
    Launch(LaunchError),
    /// The device died (its [`FaultPlan`](crate::FaultPlan) kill tick passed); every future
    /// dispatch to it fails too. Jobs whose execution would cross the
    /// kill tick are lost and must be re-dispatched elsewhere.
    DeviceLost {
        /// Device index stamped on the device's trace events.
        device: u32,
        /// Device-clock time of the refused dispatch.
        at_ms: f64,
    },
    /// A kernel launch failed transiently (driver hiccup, ECC retry);
    /// the same dispatch may succeed if retried.
    TransientLaunch {
        /// Device index stamped on the device's trace events.
        device: u32,
        /// Device-clock time of the failed attempt.
        at_ms: f64,
    },
}

impl SimError {
    /// True if retrying the same dispatch may succeed (on this device or
    /// another): transient failures are retryable, a lost device is only
    /// recoverable by failing over, and validation errors never are.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::TransientLaunch { .. } | Self::DeviceLost { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Launch(e) => write!(f, "launch validation failed: {e}"),
            Self::DeviceLost { device, at_ms } => {
                write!(f, "device {device} lost at {at_ms:.4} ms")
            }
            Self::TransientLaunch { device, at_ms } => {
                write!(f, "transient launch failure on device {device} at {at_ms:.4} ms")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Launch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaunchError> for SimError {
    fn from(e: LaunchError) -> Self {
        Self::Launch(e)
    }
}

/// Result alias for fault-aware dispatch operations.
pub type SimResult<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = LaunchError::BlockTooLarge {
            requested: 2048,
            limit: 1024,
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("1024"));
        let e = LaunchError::BadGroupSize {
            group_size: 48,
            block_dim: 256,
        };
        assert!(e.to_string().contains("48"));
        let e = LaunchError::InvalidWork {
            reason: "COO entries not canonical".into(),
        };
        assert!(e.to_string().contains("invalid work"));
        assert!(e.to_string().contains("canonical"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LaunchError::EmptyLaunch);
        takes_err(&SimError::DeviceLost { device: 0, at_ms: 1.0 });
    }

    #[test]
    fn sim_errors_render_and_classify() {
        let lost = SimError::DeviceLost { device: 2, at_ms: 1.25 };
        assert!(lost.to_string().contains("device 2"));
        assert!(lost.is_retryable(), "failover to another device can recover");
        let transient = SimError::TransientLaunch { device: 0, at_ms: 0.5 };
        assert!(transient.to_string().contains("transient"));
        assert!(transient.is_retryable());
        let bad = SimError::from(LaunchError::EmptyLaunch);
        assert!(!bad.is_retryable());
        assert!(std::error::Error::source(&bad).is_some());
    }
}
