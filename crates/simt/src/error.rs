//! Error types for kernel launches.

use std::fmt;

/// Errors produced when validating or executing a kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// `block_dim` exceeds the device's `max_threads_per_block`.
    BlockTooLarge {
        /// Requested threads per block.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// A zero-sized grid or block was requested.
    EmptyLaunch,
    /// Declared dynamic shared memory exceeds the per-block limit.
    SharedMemTooLarge {
        /// Requested bytes per block.
        requested: u32,
        /// Device limit per block.
        limit: u32,
    },
    /// A block allocated more shared memory at runtime than it declared at
    /// launch (CUDA would fault; we fail the launch deterministically).
    SharedMemOverflow {
        /// Block that overflowed.
        block_idx: u32,
        /// Bytes the block tried to hold live at once.
        used: u32,
        /// Bytes declared in the [`crate::LaunchConfig`].
        declared: u32,
    },
    /// Cooperative group size must be a power of two that divides the block
    /// or be a multiple of the block's warp count structure; see
    /// [`crate::BlockCtx::for_each_group`].
    BadGroupSize {
        /// Requested group size.
        group_size: u32,
        /// Block size it must tile.
        block_dim: u32,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BlockTooLarge { requested, limit } => write!(
                f,
                "block of {requested} threads exceeds device limit of {limit}"
            ),
            Self::EmptyLaunch => write!(f, "grid and block dimensions must be non-zero"),
            Self::SharedMemTooLarge { requested, limit } => write!(
                f,
                "declared shared memory {requested} B exceeds per-block limit {limit} B"
            ),
            Self::SharedMemOverflow {
                block_idx,
                used,
                declared,
            } => write!(
                f,
                "block {block_idx} held {used} B of shared memory live but declared only {declared} B"
            ),
            Self::BadGroupSize {
                group_size,
                block_dim,
            } => write!(
                f,
                "group size {group_size} does not evenly tile block of {block_dim} threads"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Convenience result alias for launch operations.
pub type Result<T> = std::result::Result<T, LaunchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = LaunchError::BlockTooLarge {
            requested: 2048,
            limit: 1024,
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("1024"));
        let e = LaunchError::BadGroupSize {
            group_size: 48,
            block_dim: 256,
        };
        assert!(e.to_string().contains("48"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LaunchError::EmptyLaunch);
    }
}
