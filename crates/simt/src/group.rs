//! Cooperative groups: phased execution and group-wide collectives.
//!
//! This is the simulator's analogue of CUDA's Cooperative Groups model
//! (§5.2.3 of the paper): a *group* is a programmer-chosen collection of
//! consecutive threads of arbitrary power-of-two-free size that evenly
//! tiles the block. A group executes as a sequence of **phases**: within a
//! phase each lane runs a closure to completion, and the end of the phase
//! is a group-wide barrier. Collectives (`reduce`, `exclusive_scan`,
//! `ballot`, `broadcast`) operate on the per-lane values a phase produced
//! and charge the logarithmic step cost a tree implementation would pay.
//!
//! ## Cost semantics
//!
//! * A phase costs its **maximum lane cost** — every other lane in the sync
//!   domain idles until the slowest finishes (lockstep / barrier).
//! * For groups at least one warp wide, the sync domain is the group: the
//!   phase maximum is charged to *every warp the group covers*.
//! * For sub-warp groups, lanes of several groups share a warp and run in
//!   lockstep; the block aggregates per-phase maxima *across the groups in
//!   each warp* (see [`crate::BlockCtx::for_each_group`]), so a warp is
//!   charged the max over its co-resident groups, not their sum.

use crate::cost::{CostModel, MemCounters};
use crate::lane::LaneCtx;
use crate::shared::{SharedBuf, SharedTracker};

/// Execution context for one cooperative group within a block.
pub struct GroupCtx<'a> {
    group_idx: u32,
    group_size: u32,
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    warp_size: u32,
    model: &'a CostModel,
    counters: &'a MemCounters,
    shared: &'a SharedTracker,
    /// Max lane cost per completed phase (collectives append too).
    phase_maxima: Vec<f64>,
    phases_run: u32,
}

impl<'a> GroupCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        group_idx: u32,
        group_size: u32,
        block_idx: u32,
        block_dim: u32,
        grid_dim: u32,
        warp_size: u32,
        model: &'a CostModel,
        counters: &'a MemCounters,
        shared: &'a SharedTracker,
    ) -> Self {
        Self {
            group_idx,
            group_size,
            block_idx,
            block_dim,
            grid_dim,
            warp_size,
            model,
            counters,
            shared,
            phase_maxima: Vec::new(),
            phases_run: 0,
        }
    }

    // ---- identity --------------------------------------------------------

    /// Index of this group within its block.
    pub fn group_idx(&self) -> u32 {
        self.group_idx
    }

    /// Number of lanes in the group.
    pub fn size(&self) -> u32 {
        self.group_size
    }

    /// Groups per block.
    pub fn groups_per_block(&self) -> u32 {
        self.block_dim / self.group_size
    }

    /// Index of this group across the whole grid.
    pub fn global_group_id(&self) -> u64 {
        u64::from(self.block_idx) * u64::from(self.groups_per_block()) + u64::from(self.group_idx)
    }

    /// Total number of groups across the grid.
    pub fn num_groups_in_grid(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.groups_per_block())
    }

    /// `blockIdx.x` of the enclosing block.
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// `gridDim.x` of the launch.
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        self.model
    }

    // ---- shared memory ---------------------------------------------------

    /// Allocate a shared-memory buffer of `len` elements for this group.
    ///
    /// Debits the block's declared shared budget; overflow is detected at
    /// launch completion.
    pub fn alloc_shared<T: Copy + Default>(&mut self, len: usize) -> SharedBuf<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u32;
        let _ = self.shared.debit(bytes);
        SharedBuf::new(len)
    }

    // ---- phased execution ------------------------------------------------

    /// Run one phase: `f` executes once per lane; the phase ends with a
    /// group barrier. Returns the per-lane results.
    pub fn phase<T>(&mut self, mut f: impl FnMut(&LaneCtx<'_>) -> T) -> Vec<T> {
        let mut out = Vec::with_capacity(self.group_size as usize);
        let mut max_cost = 0.0f64;
        let prologue = if self.phases_run == 0 {
            self.model.thread_prologue_cost
        } else {
            0.0
        };
        for r in 0..self.group_size {
            let lane = LaneCtx::new(
                self.group_idx * self.group_size + r,
                self.block_idx,
                self.block_dim,
                self.grid_dim,
                self.warp_size,
                r,
                self.group_size,
                self.model,
            );
            lane.charge(prologue);
            out.push(f(&lane));
            max_cost = max_cost.max(lane.units());
            self.counters.merge(lane.counters());
        }
        self.phases_run += 1;
        self.phase_maxima.push(max_cost);
        out
    }

    /// Run one phase for side effects only.
    pub fn phase_for_each(&mut self, mut f: impl FnMut(&LaneCtx<'_>)) {
        let _ = self.phase(|l| f(l));
    }

    // ---- collectives -----------------------------------------------------

    fn charge_collective(&mut self) {
        self.phase_maxima.push(self.model.collective(self.group_size));
        for _ in 0..self.group_size {
            self.counters.add_shared();
        }
    }

    /// Charge the cost of one group-wide log-depth collective without a
    /// value computation — for algorithms (e.g. segmented reductions)
    /// whose functional result is produced lane-locally but whose cost is
    /// that of a tree reduction.
    pub fn charge_collective_step(&mut self) {
        self.charge_collective();
    }

    /// Group-wide exclusive prefix sum, in place. `vals.len()` must equal
    /// the group size. Returns the total (sum of all inputs).
    ///
    /// This is the collective the group-mapped schedule builds its shared
    /// atom-offset array with (§5.2.3).
    pub fn exclusive_scan(&mut self, vals: &mut [u64]) -> u64 {
        assert_eq!(
            vals.len(),
            self.group_size as usize,
            "scan input must have one element per lane"
        );
        self.charge_collective();
        let mut acc = 0u64;
        for v in vals.iter_mut() {
            let x = *v;
            *v = acc;
            acc += x;
        }
        acc
    }

    /// Group-wide sum reduction over per-lane values.
    pub fn reduce_sum_f64(&mut self, vals: &[f64]) -> f64 {
        assert_eq!(vals.len(), self.group_size as usize);
        self.charge_collective();
        vals.iter().sum()
    }

    /// Group-wide sum reduction over per-lane integer values.
    pub fn reduce_sum_u64(&mut self, vals: &[u64]) -> u64 {
        assert_eq!(vals.len(), self.group_size as usize);
        self.charge_collective();
        vals.iter().sum()
    }

    /// Group-wide maximum.
    pub fn reduce_max_u64(&mut self, vals: &[u64]) -> u64 {
        assert_eq!(vals.len(), self.group_size as usize);
        self.charge_collective();
        vals.iter().copied().max().unwrap_or(0)
    }

    /// Count of lanes whose predicate is true (CUDA `__ballot_sync` +
    /// popcount).
    pub fn ballot_count(&mut self, preds: &[bool]) -> u32 {
        assert_eq!(preds.len(), self.group_size as usize);
        self.charge_collective();
        preds.iter().filter(|&&p| p).count() as u32
    }

    /// Broadcast lane `src`'s value to the whole group (CUDA
    /// `__shfl_sync`). Cost: one collective step.
    pub fn broadcast<T: Copy>(&mut self, vals: &[T], src: u32) -> T {
        assert_eq!(vals.len(), self.group_size as usize);
        self.phase_maxima.push(self.model.scan_step_cost);
        vals[src as usize]
    }

    /// `__shfl_down_sync`: lane `r` receives lane `r + delta`'s value
    /// (lanes past the edge keep their own, like the hardware intrinsic).
    /// Cost: one collective step.
    pub fn shfl_down<T: Copy>(&mut self, vals: &[T], delta: u32) -> Vec<T> {
        assert_eq!(vals.len(), self.group_size as usize);
        self.phase_maxima.push(self.model.scan_step_cost);
        (0..vals.len())
            .map(|r| {
                let src = r + delta as usize;
                if src < vals.len() {
                    vals[src]
                } else {
                    vals[r]
                }
            })
            .collect()
    }

    /// `__shfl_up_sync`: lane `r` receives lane `r - delta`'s value (lanes
    /// below the edge keep their own). Cost: one collective step.
    pub fn shfl_up<T: Copy>(&mut self, vals: &[T], delta: u32) -> Vec<T> {
        assert_eq!(vals.len(), self.group_size as usize);
        self.phase_maxima.push(self.model.scan_step_cost);
        (0..vals.len())
            .map(|r| {
                if r >= delta as usize {
                    vals[r - delta as usize]
                } else {
                    vals[r]
                }
            })
            .collect()
    }

    /// `__shfl_xor_sync`: lane `r` exchanges with lane `r ^ mask` (the
    /// butterfly step of warp reductions). Requires a power-of-two group.
    /// Cost: one collective step.
    pub fn shfl_xor<T: Copy>(&mut self, vals: &[T], mask: u32) -> Vec<T> {
        assert_eq!(vals.len(), self.group_size as usize);
        assert!(
            self.group_size.is_power_of_two(),
            "xor shuffle needs a power-of-two group"
        );
        self.phase_maxima.push(self.model.scan_step_cost);
        (0..vals.len())
            .map(|r| vals[(r ^ mask as usize) % vals.len()])
            .collect()
    }

    /// Explicit extra barrier (phases already sync; this adds a zero-cost
    /// alignment point kept for API parity with CUDA's `group.sync()`).
    pub fn sync(&mut self) {
        self.phase_maxima.push(0.0);
    }

    pub(crate) fn into_phase_maxima(self) -> Vec<f64> {
        self.phase_maxima
    }
}

impl std::fmt::Debug for GroupCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCtx")
            .field("group_idx", &self.group_idx)
            .field("group_size", &self.group_size)
            .field("block_idx", &self.block_idx)
            .field("phases_run", &self.phases_run)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        model: &'a CostModel,
        counters: &'a MemCounters,
        shared: &'a SharedTracker,
    ) -> GroupCtx<'a> {
        GroupCtx::new(1, 8, 2, 32, 10, 8, model, counters, shared)
    }

    #[test]
    fn identity_math() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let g = ctx(&m, &c, &s);
        assert_eq!(g.groups_per_block(), 4);
        assert_eq!(g.global_group_id(), 2 * 4 + 1);
        assert_eq!(g.num_groups_in_grid(), 40);
    }

    #[test]
    fn phase_runs_every_lane_and_records_max_cost() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let ranks = g.phase(|l| {
            l.charge(f64::from(l.group_rank())); // lane r charges r units
            l.group_rank()
        });
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
        let maxima = g.into_phase_maxima();
        assert_eq!(maxima.len(), 1);
        // prologue + heaviest lane (rank 7)
        assert!((maxima[0] - (m.thread_prologue_cost + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn prologue_charged_only_on_first_phase() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        g.phase_for_each(|_| {});
        g.phase_for_each(|l| l.charge(1.0));
        let maxima = g.into_phase_maxima();
        assert!((maxima[0] - m.thread_prologue_cost).abs() < 1e-12);
        assert!((maxima[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exclusive_scan_matches_reference_and_returns_total() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let total = g.exclusive_scan(&mut v);
        assert_eq!(total, 31);
        assert_eq!(v, vec![0, 3, 4, 8, 9, 14, 23, 25]);
    }

    #[test]
    fn collectives_charge_log_steps() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let sum = g.reduce_sum_u64(&[1; 8]);
        assert_eq!(sum, 8);
        let maxima = g.into_phase_maxima();
        assert_eq!(maxima, vec![m.collective(8)]);
    }

    #[test]
    fn ballot_and_broadcast() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        assert_eq!(g.ballot_count(&[true, false, true, true, false, false, false, true]), 4);
        assert_eq!(g.broadcast(&[10, 20, 30, 40, 50, 60, 70, 80], 2), 30);
    }

    #[test]
    fn shuffles_follow_cuda_semantics() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let v = [10, 20, 30, 40, 50, 60, 70, 80];
        // down: lane r gets r+2; last two keep their own.
        assert_eq!(g.shfl_down(&v, 2), vec![30, 40, 50, 60, 70, 80, 70, 80]);
        // up: lane r gets r-2; first two keep their own.
        assert_eq!(g.shfl_up(&v, 2), vec![10, 20, 10, 20, 30, 40, 50, 60]);
        // xor: butterfly exchange with partner r ^ 1.
        assert_eq!(g.shfl_xor(&v, 1), vec![20, 10, 40, 30, 60, 50, 80, 70]);
    }

    #[test]
    fn butterfly_reduction_via_xor_shuffles() {
        // The classic warp-sum: log2(n) xor-shuffle + add rounds.
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let mut v: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut mask = 4u32;
        while mask >= 1 {
            let peer = g.shfl_xor(&v, mask);
            for (a, b) in v.iter_mut().zip(peer) {
                *a += b;
            }
            mask /= 2;
        }
        assert!(v.iter().all(|&x| x == 36), "every lane holds the total: {v:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn xor_shuffle_rejects_odd_groups() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = GroupCtx::new(0, 3, 0, 3, 1, 8, &m, &c, &s);
        let _ = g.shfl_xor(&[1, 2, 3], 1);
    }

    #[test]
    fn shared_alloc_debits_budget() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(64);
        let mut g = ctx(&m, &c, &s);
        let buf = g.alloc_shared::<u64>(8); // 64 bytes: exactly at budget
        assert_eq!(buf.len(), 8);
        assert!(!s.overflowed());
        let _buf2 = g.alloc_shared::<u64>(1);
        assert!(s.overflowed());
    }

    #[test]
    fn reduce_max_and_single_lane_group() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        assert_eq!(g.reduce_max_u64(&[3, 9, 1, 7, 2, 2, 8, 0]), 9);
        // Single-lane group: collectives degenerate gracefully.
        let mut g1 = GroupCtx::new(0, 1, 0, 8, 1, 8, &m, &c, &s);
        let mut v = vec![5u64];
        assert_eq!(g1.exclusive_scan(&mut v), 5);
        assert_eq!(v, vec![0]);
        assert_eq!(g1.reduce_sum_u64(&[42]), 42);
        assert_eq!(g1.ballot_count(&[true]), 1);
        assert_eq!(g1.broadcast(&[13], 0), 13);
    }

    #[test]
    fn sync_is_a_zero_cost_alignment_point() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        g.sync();
        g.phase_for_each(|_| {});
        let maxima = g.into_phase_maxima();
        assert_eq!(maxima[0], 0.0);
    }

    #[test]
    fn counters_flow_from_group_lanes() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        g.phase_for_each(|l| l.read_bytes(10));
        assert_eq!(c.read_bytes(), 80); // 8 lanes × 10 bytes
    }

    #[test]
    fn scan_then_ballot_accumulates_collective_costs() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let mut v = vec![1u64; 8];
        g.exclusive_scan(&mut v);
        g.ballot_count(&[false; 8]);
        let maxima = g.into_phase_maxima();
        assert_eq!(maxima.len(), 2);
        assert!(maxima.iter().all(|&x| (x - m.collective(8)).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "one element per lane")]
    fn scan_rejects_wrong_width() {
        let m = CostModel::standard();
        let c = MemCounters::new();
        let s = SharedTracker::new(1024);
        let mut g = ctx(&m, &c, &s);
        let mut v = vec![0u64; 3];
        g.exclusive_scan(&mut v);
    }
}
