//! Per-block execution context and cost aggregation.
//!
//! A [`BlockCtx`] drives one thread block. Kernels structure their work as
//! whole-block per-thread phases ([`BlockCtx::for_each_thread`]) or as
//! cooperative-group phases ([`BlockCtx::for_each_group`]); either way the
//! block records, per warp, the time the warp spends — including the idling
//! implied by lockstep execution and barriers — and hands the result to the
//! device-level makespan model.

use crate::cost::{CostModel, MemCounters, MemSummary};
use crate::error::LaunchError;
use crate::group::GroupCtx;
use crate::lane::LaneCtx;
use crate::shared::{SharedBuf, SharedTracker};
use crate::spec::GpuSpec;

/// Execution context for one simulated thread block.
pub struct BlockCtx<'a> {
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    spec: &'a GpuSpec,
    model: &'a CostModel,
    warp_costs: Vec<f64>,
    warp_active: Vec<f64>,
    counters: MemCounters,
    shared: SharedTracker,
    prologue_charged: bool,
    stats: bool,
    error: Option<LaunchError>,
}

/// Aggregated cost of one executed block, consumed by the timing model.
#[derive(Debug, Clone)]
pub struct BlockCost {
    /// Work units accumulated by each warp of the block.
    pub warp_costs: Vec<f64>,
    /// Sum of per-lane units per warp — the divergence profile behind
    /// `warp_costs` (a warp's cost is its *maximum* lane; this is the
    /// lane *total*, so `active / (warp_size × cost)` is the warp's mean
    /// lane activity). Collected only when the launch is traced
    /// (empty otherwise, so untraced launches allocate nothing extra);
    /// group phases record their barrier-aligned cost, i.e. no
    /// intra-group divergence is attributed.
    pub warp_active: Vec<f64>,
    /// Memory traffic and atomic counts.
    pub mem: MemSummary,
}

impl BlockCost {
    /// Cost of the slowest warp (the block's critical path).
    pub fn critical_warp(&self) -> f64 {
        self.warp_costs.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all warp costs (the block's issue-slot demand).
    pub fn total_units(&self) -> f64 {
        self.warp_costs.iter().sum()
    }
}

impl<'a> BlockCtx<'a> {
    #[cfg(test)]
    pub(crate) fn new(
        block_idx: u32,
        block_dim: u32,
        grid_dim: u32,
        shared_declared: u32,
        spec: &'a GpuSpec,
        model: &'a CostModel,
    ) -> Self {
        Self::with_stats(block_idx, block_dim, grid_dim, shared_declared, spec, model, false)
    }

    /// `stats` additionally collects per-warp lane-activity totals for
    /// tracing; off, the block allocates and computes nothing extra.
    pub(crate) fn with_stats(
        block_idx: u32,
        block_dim: u32,
        grid_dim: u32,
        shared_declared: u32,
        spec: &'a GpuSpec,
        model: &'a CostModel,
        stats: bool,
    ) -> Self {
        let num_warps = spec.warps_for(block_dim) as usize;
        Self {
            block_idx,
            block_dim,
            grid_dim,
            spec,
            model,
            warp_costs: vec![0.0; num_warps],
            warp_active: if stats { vec![0.0; num_warps] } else { Vec::new() },
            counters: MemCounters::new(),
            shared: SharedTracker::new(shared_declared),
            prologue_charged: false,
            stats,
            error: None,
        }
    }

    // ---- identity ----------------------------------------------------

    /// `blockIdx.x`.
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// `blockDim.x`.
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// `gridDim.x`.
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Warps in this block.
    pub fn num_warps(&self) -> u32 {
        self.warp_costs.len() as u32
    }

    /// Device warp width.
    pub fn warp_size(&self) -> u32 {
        self.spec.warp_size
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        self.model
    }

    // ---- shared memory -------------------------------------------------

    /// Allocate a block-wide shared-memory buffer.
    pub fn alloc_shared<T: Copy + Default>(&mut self, len: usize) -> SharedBuf<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u32;
        let _ = self.shared.debit(bytes);
        SharedBuf::new(len)
    }

    // ---- phased execution ------------------------------------------------

    /// Run `f` once per thread in the block.
    ///
    /// There is **no block barrier** implied: each warp is charged the
    /// maximum cost over its own lanes (lockstep divergence), independently
    /// of other warps. This is the execution shape of per-thread kernels
    /// like thread-mapped or merge-path SpMV. Call [`BlockCtx::sync`]
    /// afterwards if the kernel needs `__syncthreads` semantics.
    pub fn for_each_thread(&mut self, mut f: impl FnMut(&LaneCtx<'_>)) {
        let warp_size = self.spec.warp_size;
        let prologue = if self.prologue_charged {
            0.0
        } else {
            self.model.thread_prologue_cost
        };
        self.prologue_charged = true;
        let mut warp_max = vec![0.0f64; self.warp_costs.len()];
        for t in 0..self.block_dim {
            let lane = LaneCtx::new(
                t,
                self.block_idx,
                self.block_dim,
                self.grid_dim,
                warp_size,
                t,
                self.block_dim,
                self.model,
            );
            lane.charge(prologue);
            f(&lane);
            let w = (t / warp_size) as usize;
            warp_max[w] = warp_max[w].max(lane.units());
            if self.stats {
                self.warp_active[w] += lane.units();
            }
            self.counters.merge(lane.counters());
        }
        for (c, m) in self.warp_costs.iter_mut().zip(warp_max) {
            *c += m;
        }
    }

    /// Partition the block into cooperative groups of `group_size`
    /// consecutive threads and run `f` once per group.
    ///
    /// `group_size` must evenly tile the block. Group phases carry barrier
    /// semantics:
    ///
    /// * groups at least one warp wide charge each covered warp the
    ///   *group's* per-phase maximum (barrier across the group's warps);
    /// * sub-warp groups run lockstep with their warp-mates, so the warp is
    ///   charged, per phase, the maximum across all groups sharing it.
    pub fn for_each_group(&mut self, group_size: u32, mut f: impl FnMut(&mut GroupCtx<'_>)) {
        if group_size == 0 || !self.block_dim.is_multiple_of(group_size) {
            self.error = Some(LaunchError::BadGroupSize {
                group_size,
                block_dim: self.block_dim,
            });
            return;
        }
        let warp_size = self.spec.warp_size;
        let num_groups = self.block_dim / group_size;
        if group_size >= warp_size {
            // A group spans one or more whole warps.
            let warps_per_group = (group_size / warp_size).max(1) as usize;
            for g in 0..num_groups {
                let mut gc = GroupCtx::new(
                    g,
                    group_size,
                    self.block_idx,
                    self.block_dim,
                    self.grid_dim,
                    warp_size,
                    self.model,
                    &self.counters,
                    &self.shared,
                );
                f(&mut gc);
                let total: f64 = gc.into_phase_maxima().iter().sum();
                let first_warp = (g as usize) * warps_per_group;
                for w in first_warp..first_warp + warps_per_group {
                    self.warp_costs[w] += total;
                    if self.stats {
                        // Group phases are barrier-aligned: charge the full
                        // warp as active so no divergence is attributed.
                        self.warp_active[w] += total * f64::from(warp_size);
                    }
                }
            }
        } else {
            // Several groups share each warp; aggregate per-phase maxima.
            let groups_per_warp = warp_size / group_size;
            let mut warp_phase: Vec<Vec<f64>> = vec![Vec::new(); self.warp_costs.len()];
            for g in 0..num_groups {
                let mut gc = GroupCtx::new(
                    g,
                    group_size,
                    self.block_idx,
                    self.block_dim,
                    self.grid_dim,
                    warp_size,
                    self.model,
                    &self.counters,
                    &self.shared,
                );
                f(&mut gc);
                let maxima = gc.into_phase_maxima();
                let w = (g / groups_per_warp) as usize;
                let slot = &mut warp_phase[w];
                if slot.len() < maxima.len() {
                    slot.resize(maxima.len(), 0.0);
                }
                for (p, m) in maxima.into_iter().enumerate() {
                    slot[p] = slot[p].max(m);
                }
            }
            for (w, phases) in warp_phase.into_iter().enumerate() {
                let total = phases.iter().sum::<f64>();
                self.warp_costs[w] += total;
                if self.stats {
                    self.warp_active[w] += total * f64::from(warp_size);
                }
            }
        }
    }

    /// `__syncthreads`: aligns every warp of the block to the slowest one.
    pub fn sync(&mut self) {
        let max = self.warp_costs.iter().copied().fold(0.0, f64::max);
        for c in &mut self.warp_costs {
            *c = max;
        }
    }

    // ---- finalization ----------------------------------------------------

    pub(crate) fn finish(self) -> Result<BlockCost, LaunchError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.shared.overflowed() {
            return Err(LaunchError::SharedMemOverflow {
                block_idx: self.block_idx,
                used: self.shared.used(),
                declared: self.shared.declared(),
            });
        }
        Ok(BlockCost {
            warp_costs: self.warp_costs,
            warp_active: self.warp_active,
            mem: self.counters.snapshot(),
        })
    }
}

impl std::fmt::Debug for BlockCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCtx")
            .field("block_idx", &self.block_idx)
            .field("block_dim", &self.block_dim)
            .field("grid_dim", &self.grid_dim)
            .field("num_warps", &self.num_warps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block<'a>(spec: &'a GpuSpec, model: &'a CostModel, dim: u32) -> BlockCtx<'a> {
        BlockCtx::new(0, dim, 16, 4096, spec, model)
    }

    #[test]
    fn per_thread_phase_charges_warp_maximum() {
        let spec = GpuSpec::test_tiny(); // warp = 8
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 16); // 2 warps
        b.for_each_thread(|l| {
            // thread t charges t units: warp 0 max = 7, warp 1 max = 15.
            l.charge(f64::from(l.thread_idx()));
        });
        let cost = b.finish().unwrap();
        let p = model.thread_prologue_cost;
        assert_eq!(cost.warp_costs.len(), 2);
        assert!((cost.warp_costs[0] - (p + 7.0)).abs() < 1e-12);
        assert!((cost.warp_costs[1] - (p + 15.0)).abs() < 1e-12);
        assert!((cost.critical_warp() - (p + 15.0)).abs() < 1e-12);
        assert!((cost.total_units() - (2.0 * p + 22.0)).abs() < 1e-12);
    }

    #[test]
    fn sync_aligns_warps_to_slowest() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 16);
        b.for_each_thread(|l| l.charge(if l.warp_id() == 1 { 100.0 } else { 1.0 }));
        b.sync();
        let cost = b.finish().unwrap();
        assert_eq!(cost.warp_costs[0], cost.warp_costs[1]);
    }

    #[test]
    fn multi_warp_group_barrier_charges_all_covered_warps() {
        let spec = GpuSpec::test_tiny(); // warp = 8
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 16);
        // One group of 16 spanning both warps; lane 15 is the slowpoke.
        b.for_each_group(16, |g| {
            g.phase_for_each(|l| l.charge(if l.group_rank() == 15 { 50.0 } else { 1.0 }));
        });
        let cost = b.finish().unwrap();
        let expect = model.thread_prologue_cost + 50.0;
        assert!((cost.warp_costs[0] - expect).abs() < 1e-12);
        assert!((cost.warp_costs[1] - expect).abs() < 1e-12);
    }

    #[test]
    fn sub_warp_groups_share_a_warp_without_summing() {
        let spec = GpuSpec::test_tiny(); // warp = 8
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 8); // 1 warp, two groups of 4
        b.for_each_group(4, |g| {
            let heavy = if g.group_idx() == 0 { 10.0 } else { 30.0 };
            g.phase_for_each(|l| l.charge(if l.group_rank() == 0 { heavy } else { 1.0 }));
        });
        let cost = b.finish().unwrap();
        // Lockstep: warp pays max(10, 30), not 10 + 30.
        let expect = model.thread_prologue_cost + 30.0;
        assert!(
            (cost.warp_costs[0] - expect).abs() < 1e-12,
            "got {}",
            cost.warp_costs[0]
        );
    }

    #[test]
    fn bad_group_size_fails_launch() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 16);
        b.for_each_group(5, |_| {});
        assert!(matches!(
            b.finish(),
            Err(LaunchError::BadGroupSize { group_size: 5, .. })
        ));
    }

    #[test]
    fn shared_overflow_fails_launch() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut b = BlockCtx::new(3, 8, 16, 16, &spec, &model); // declared 16 B
        let _buf = b.alloc_shared::<u64>(4); // 32 B > 16 B
        assert!(matches!(
            b.finish(),
            Err(LaunchError::SharedMemOverflow { block_idx: 3, .. })
        ));
    }

    #[test]
    fn counters_flow_from_lanes_to_block_cost() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 8);
        b.for_each_thread(|l| {
            l.read_bytes(4);
            l.write_bytes(2);
        });
        let cost = b.finish().unwrap();
        assert_eq!(cost.mem.read_bytes, 8 * 4);
        assert_eq!(cost.mem.write_bytes, 8 * 2);
    }

    #[test]
    fn stats_off_leaves_warp_active_unallocated() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 16);
        b.for_each_thread(|l| l.charge(1.0));
        let cost = b.finish().unwrap();
        assert!(cost.warp_active.is_empty());
        assert_eq!(cost.warp_active.capacity(), 0, "no hidden allocation");
    }

    #[test]
    fn stats_on_collects_lane_activity_without_changing_costs() {
        let spec = GpuSpec::test_tiny(); // warp = 8
        let model = CostModel::standard();
        let run = |stats: bool| {
            let mut b = BlockCtx::with_stats(0, 8, 16, 4096, &spec, &model, stats);
            // Half the lanes do 10× the work: heavy divergence.
            b.for_each_thread(|l| l.charge(if l.lane_id() < 4 { 10.0 } else { 1.0 }));
            b.finish().unwrap()
        };
        let plain = run(false);
        let traced = run(true);
        assert_eq!(plain.warp_costs, traced.warp_costs, "stats must not perturb costs");
        let p = model.thread_prologue_cost;
        // Lane sum: 4×(p+10) + 4×(p+1) = 8p + 44.
        assert_eq!(traced.warp_active.len(), 1);
        assert!((traced.warp_active[0] - (8.0 * p + 44.0)).abs() < 1e-12);
        // Mean lane activity is well below 1.0 for this divergent phase.
        let frac = traced.warp_active[0] / (8.0 * traced.warp_costs[0]);
        assert!(frac < 0.8, "got {frac}");
    }

    #[test]
    fn stats_on_group_phase_reports_full_activity() {
        let spec = GpuSpec::test_tiny(); // warp = 8
        let model = CostModel::standard();
        let mut b = BlockCtx::with_stats(0, 16, 16, 4096, &spec, &model, true);
        b.for_each_group(16, |g| {
            g.phase_for_each(|l| l.charge(if l.group_rank() == 0 { 5.0 } else { 1.0 }));
        });
        let cost = b.finish().unwrap();
        // Barrier-aligned: every warp fully active for its charged cost.
        for (c, a) in cost.warp_costs.iter().zip(&cost.warp_active) {
            assert!((a - c * 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prologue_charged_once_across_thread_phases() {
        let spec = GpuSpec::test_tiny();
        let model = CostModel::standard();
        let mut b = block(&spec, &model, 8);
        b.for_each_thread(|_| {});
        b.for_each_thread(|_| {});
        let cost = b.finish().unwrap();
        assert!((cost.warp_costs[0] - model.thread_prologue_cost).abs() < 1e-12);
    }
}
