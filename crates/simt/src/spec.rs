//! Device specifications for the simulated GPU.
//!
//! A [`GpuSpec`] pins down the architectural parameters the timing model
//! needs: SM count, warp width, occupancy limits, issue throughput, clock,
//! and memory bandwidth. Presets are provided for the hardware classes the
//! paper and its related work discuss: the paper's own testbed (Tesla V100),
//! a newer NVIDIA part (A100), a consumer part (RTX 3090), and an AMD CDNA
//! part with 64-wide wavefronts (MI100) — the paper explicitly calls out
//! configurable group sizes as the portability story for 64-wide warps
//! (§5.2.3).


/// Architectural description of a simulated GPU.
///
/// All limits are per the vendor programming guides; the timing-model
/// parameters (`issue_width_per_sm`, `clock_ghz`, `mem_bw_gbs`,
/// `launch_overhead_us`) are calibrated so simulated SpMV magnitudes land in
/// the same regime as the paper's published CSV samples (tens of
/// microseconds for millions of nonzeros on a V100).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on NVIDIA, 64 on AMD CDNA).
    pub warp_size: u32,
    /// Maximum threads in one block.
    pub max_threads_per_block: u32,
    /// Maximum warps resident on one SM.
    pub max_warps_per_sm: u32,
    /// Maximum blocks resident on one SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory (scratchpad) available per SM, in bytes.
    pub shared_mem_per_sm: u32,
    /// Shared memory limit for a single block, in bytes.
    pub shared_mem_per_block: u32,
    /// Warp instructions the SM can issue per cycle (number of warp
    /// schedulers). This is the `C` in the block-cost formula
    /// `max(critical_warp, total_warp_work / C)`.
    pub issue_width_per_sm: u32,
    /// Core clock in GHz; converts work units (issue cycles) to seconds.
    pub clock_ghz: f64,
    /// Device memory bandwidth in GB/s for the roofline term.
    pub mem_bw_gbs: f64,
    /// Fixed host-side kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 (SXM2 16 GB) — the paper's evaluation platform.
    pub fn v100() -> Self {
        Self {
            name: "Tesla V100".into(),
            num_sms: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            shared_mem_per_block: 48 * 1024,
            issue_width_per_sm: 4,
            clock_ghz: 1.38,
            mem_bw_gbs: 900.0,
            launch_overhead_us: 12.0,
        }
    }

    /// NVIDIA A100 (SXM4 40 GB).
    pub fn a100() -> Self {
        Self {
            name: "A100".into(),
            num_sms: 108,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_block: 48 * 1024,
            issue_width_per_sm: 4,
            clock_ghz: 1.41,
            mem_bw_gbs: 1555.0,
            launch_overhead_us: 12.0,
        }
    }

    /// NVIDIA GeForce RTX 3090 (consumer Ampere).
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX 3090".into(),
            num_sms: 82,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 100 * 1024,
            shared_mem_per_block: 48 * 1024,
            issue_width_per_sm: 4,
            clock_ghz: 1.70,
            mem_bw_gbs: 936.0,
            launch_overhead_us: 10.0,
        }
    }

    /// AMD Instinct MI100 — 64-wide wavefronts, exercising the paper's
    /// claim (§5.2.3) that group-level scheduling ports to non-32 warps by
    /// changing one constant.
    pub fn mi100() -> Self {
        Self {
            name: "MI100".into(),
            num_sms: 120,
            warp_size: 64,
            max_threads_per_block: 1024,
            max_warps_per_sm: 40,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 64 * 1024,
            shared_mem_per_block: 64 * 1024,
            issue_width_per_sm: 4,
            clock_ghz: 1.50,
            mem_bw_gbs: 1228.0,
            launch_overhead_us: 14.0,
        }
    }

    /// A deliberately tiny device for tests: 4 SMs, 8-wide warps. Keeps
    /// unit tests fast while still exercising multi-SM dispatch, multi-warp
    /// blocks, and divergence accounting.
    pub fn test_tiny() -> Self {
        Self {
            name: "TestTiny".into(),
            num_sms: 4,
            warp_size: 8,
            max_threads_per_block: 256,
            max_warps_per_sm: 16,
            max_blocks_per_sm: 8,
            shared_mem_per_sm: 16 * 1024,
            shared_mem_per_block: 8 * 1024,
            issue_width_per_sm: 2,
            clock_ghz: 1.0,
            mem_bw_gbs: 100.0,
            launch_overhead_us: 1.0,
        }
    }

    /// Peak issue throughput in work units per second
    /// (`num_sms * issue_width * clock`).
    pub fn peak_units_per_sec(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.issue_width_per_sm) * self.clock_ghz * 1e9
    }

    /// Warps needed to hold `threads` threads (rounded up).
    pub fn warps_for(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_published_architecture() {
        let v = GpuSpec::v100();
        assert_eq!(v.num_sms, 80);
        assert_eq!(v.warp_size, 32);
        assert_eq!(v.max_warps_per_sm * v.warp_size, 2048); // 2048 threads/SM
    }

    #[test]
    fn warps_for_rounds_up() {
        let v = GpuSpec::v100();
        assert_eq!(v.warps_for(1), 1);
        assert_eq!(v.warps_for(32), 1);
        assert_eq!(v.warps_for(33), 2);
        assert_eq!(v.warps_for(256), 8);
        let amd = GpuSpec::mi100();
        assert_eq!(amd.warps_for(64), 1);
        assert_eq!(amd.warps_for(65), 2);
    }

    #[test]
    fn peak_throughput_is_positive_and_scales_with_sms() {
        let v = GpuSpec::v100();
        let a = GpuSpec::a100();
        assert!(a.peak_units_per_sec() > v.peak_units_per_sec());
    }

    #[test]
    fn default_is_v100() {
        assert_eq!(GpuSpec::default(), GpuSpec::v100());
    }

    #[test]
    fn mi100_has_wide_wavefronts() {
        assert_eq!(GpuSpec::mi100().warp_size, 64);
    }
}
