//! A set-associative LRU cache simulator — groundwork for the paper's
//! *second* future-work item (§8: "identifying an orthogonal model that
//! builds an abstraction for caching and locality into our existing
//! load-balancing framework").
//!
//! The timing model prices memory by bandwidth only; this module exists
//! for *analysis*: replay the address stream a schedule would generate
//! (e.g. SpMV's gathers from `x`) and measure how schedule choice changes
//! cache behaviour. The `locality_report` harness in the bench crate does
//! exactly that.


/// Geometry of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheConfig {
    /// V100's 6 MiB L2 (128-byte lines, modeled 16-way).
    pub fn v100_l2() -> Self {
        Self {
            size_bytes: 6 * 1024 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// One SM's 128 KiB L1/texture path (modeled 4-way).
    pub fn v100_l1() -> Self {
        Self {
            size_bytes: 128 * 1024,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes / u64::from(self.ways)).max(1)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (including cold misses).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of accesses served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    /// Per set: resident line tags, most-recently-used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Fresh, empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            sets: vec![Vec::new(); cfg.num_sets() as usize],
            stats: CacheStats::default(),
        }
    }

    /// Touch byte address `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.cfg.num_sets()) as usize;
        let tag = line / self.cfg.num_sets();
        let slot = &mut self.sets[set];
        if let Some(pos) = slot.iter().position(|&t| t == tag) {
            slot.remove(pos);
            slot.push(tag);
            self.stats.hits += 1;
            true
        } else {
            if slot.len() as u32 >= self.cfg.ways {
                slot.remove(0); // evict LRU
            }
            slot.push(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Geometry in use.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Clear contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        // 4 sets × 2 ways × 16-byte lines = 128 bytes.
        CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        }
    }

    #[test]
    fn geometry_math() {
        assert_eq!(tiny().num_sets(), 4);
        assert_eq!(CacheConfig::v100_l2().num_sets(), 3072);
    }

    #[test]
    fn same_line_hits_after_cold_miss() {
        let mut c = CacheSim::new(tiny());
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(15)); // same 16-byte line
        assert!(!c.access(16)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_the_oldest_way() {
        let mut c = CacheSim::new(tiny());
        // Three lines mapping to set 0: lines 0, 4, 8 (4 sets).
        let addr = |line: u64| line * 16;
        c.access(addr(0));
        c.access(addr(4));
        c.access(addr(0)); // refresh line 0
        c.access(addr(8)); // evicts line 4 (LRU)
        assert!(c.access(addr(0)), "line 0 refreshed, still resident");
        assert!(!c.access(addr(4)), "line 4 was evicted");
    }

    #[test]
    fn streaming_beyond_capacity_thrashes() {
        let mut c = CacheSim::new(tiny());
        for round in 0..3 {
            for line in 0..64u64 {
                let hit = c.access(line * 16);
                if round > 0 {
                    assert!(!hit, "working set 8x capacity cannot hit");
                }
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = CacheSim::new(tiny());
        for _ in 0..10 {
            for line in 0..4u64 {
                c.access(line * 16); // one line per set
            }
        }
        let s = c.stats();
        assert_eq!(s.misses, 4, "only cold misses");
        assert_eq!(s.hits, 36);
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = CacheSim::new(tiny());
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "cold again after reset");
    }
}
