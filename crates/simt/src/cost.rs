//! The analytic cost model.
//!
//! Lanes charge abstract *work units* (one unit ≈ one issue-slot cycle of
//! one warp scheduler). The constants below assign unit costs to the
//! operations the paper's kernels and schedules perform. They are not
//! microarchitecturally exact; they are calibrated so that the *relative*
//! behaviour the paper reports emerges: memory-bound SpMV near the
//! roofline, merge-path setup visible only on small inputs, an abstraction
//! overhead of a few percent, and atomics that are noticeably more
//! expensive than plain accesses.

use std::cell::Cell;

/// Unit costs for simulated operations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of processing one work atom (e.g. one nonzero in SpMV): the
    /// loads, the FMA, and index arithmetic.
    pub atom_cost: f64,
    /// Per-tile bookkeeping cost (e.g. starting a new row: reading the row
    /// extent, writing the accumulated sum).
    pub tile_cost: f64,
    /// Extra cost charged *per range iteration* by the framework's
    /// composable ranges — the abstraction overhead Figure 2 measures.
    /// Hand-fused baseline kernels do not pay this.
    pub range_overhead: f64,
    /// Cost of one step of a binary search (merge-path setup, group-mapped
    /// `get_tile`).
    pub search_step_cost: f64,
    /// Cost per step of a parallel scan/reduce collective (the whole
    /// collective charges `ceil(log2(n)) * scan_step_cost`).
    pub scan_step_cost: f64,
    /// Cost of one global-memory atomic (CAS loop body, contention aside).
    pub atomic_cost: f64,
    /// Cost of a shared-memory access.
    pub shared_access_cost: f64,
    /// Bytes of global traffic attributed to processing one atom in a
    /// streaming sparse kernel (value + column index + gathered vector
    /// element, amortized).
    pub bytes_per_atom: f64,
    /// Bytes of global traffic attributed to tile bookkeeping (row offset
    /// read + result write, amortized).
    pub bytes_per_tile: f64,
    /// Fixed per-thread kernel prologue cost (register setup, index math).
    pub thread_prologue_cost: f64,
    /// Resident warps an SM needs before issue slots are fully hidden;
    /// below this the effective issue width degrades linearly (the
    /// low-occupancy penalty).
    pub latency_hiding_warps: f64,
    /// Slowdown multiplier for critical-path work that runs with nothing
    /// left to overlap it: a lone warp grinding through a serialized row
    /// is *memory-latency* bound (each iteration waits on dependent
    /// loads), roughly an order of magnitude slower per atom than the
    /// issue-rate cost charged when other warps hide the latency.
    pub latency_stall: f64,
}

impl CostModel {
    /// Default calibration used across the reproduction.
    ///
    /// `atom_cost` is set slightly *below* the compute/bandwidth balance
    /// point (`bytes_per_atom × issue_rate / bandwidth ≈ 5.9` units on the
    /// V100 spec), so a well-balanced streaming kernel rides the memory
    /// roofline — the measured reality for merge-path SpMV on V100 —
    /// while schedule overheads (searches, collectives, idle lanes) can
    /// push a kernel compute-bound.
    pub fn standard() -> Self {
        Self {
            atom_cost: 3.0,
            tile_cost: 4.0,
            range_overhead: 0.18,
            search_step_cost: 4.0,
            scan_step_cost: 3.0,
            atomic_cost: 24.0,
            shared_access_cost: 1.0,
            bytes_per_atom: 12.0,
            bytes_per_tile: 8.0,
            thread_prologue_cost: 8.0,
            latency_hiding_warps: 16.0,
            latency_stall: 10.0,
        }
    }

    /// A variant with the abstraction's per-iteration range overhead
    /// disabled — used by the hand-fused baselines and by the overhead
    /// ablation (Ablation C in DESIGN.md).
    pub fn fused() -> Self {
        Self {
            range_overhead: 0.0,
            ..Self::standard()
        }
    }

    /// Work units for a binary search over `n` elements.
    pub fn binary_search(&self, n: u64) -> f64 {
        let steps = if n <= 1 { 1 } else { 64 - (n - 1).leading_zeros() as u64 };
        self.search_step_cost * steps as f64
    }

    /// Setup cost of a two-level merge-path partition, per thread: the
    /// global diagonal search is done once per *block* (amortized to ~one
    /// step per thread) and each thread then searches its block's tile in
    /// shared memory — `2 × log2(block_items)` scratchpad steps. This is
    /// how CUB (and the paper's framework) keep merge-path setup off the
    /// critical path; charging a full global `log2(n)` search per thread
    /// would make merge-path compute-bound, which contradicts its
    /// measured near-roofline bandwidth.
    pub fn merge_setup(&self, block_items: u64) -> f64 {
        let steps = if block_items <= 1 {
            1
        } else {
            64 - (block_items - 1).leading_zeros() as u64
        };
        2.0 * self.shared_access_cost * steps as f64 + self.search_step_cost
    }

    /// Work units charged to every participating lane by a log-depth
    /// collective (reduce/scan/ballot) over `n` lanes.
    pub fn collective(&self, n: u32) -> f64 {
        let steps = if n <= 1 {
            1
        } else {
            u64::from(32 - (n - 1).leading_zeros())
        };
        self.scan_step_cost * steps as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::standard()
    }
}

/// Per-scope memory-traffic counters.
///
/// Interior-mutable so ranges and kernels can record traffic through a
/// shared reference (several iterator adaptors may alias one lane context).
#[derive(Debug, Default)]
pub struct MemCounters {
    read_bytes: Cell<u64>,
    write_bytes: Cell<u64>,
    atomic_ops: Cell<u64>,
    shared_accesses: Cell<u64>,
}

impl MemCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` bytes read from global memory.
    pub fn add_read(&self, n: u64) {
        self.read_bytes.set(self.read_bytes.get() + n);
    }

    /// Record `n` bytes written to global memory.
    pub fn add_write(&self, n: u64) {
        self.write_bytes.set(self.write_bytes.get() + n);
    }

    /// Record one global atomic operation.
    pub fn add_atomic(&self) {
        self.atomic_ops.set(self.atomic_ops.get() + 1);
    }

    /// Record one shared-memory access.
    pub fn add_shared(&self) {
        self.shared_accesses.set(self.shared_accesses.get() + 1);
    }

    /// Bytes read so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.get()
    }

    /// Bytes written so far.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.get()
    }

    /// Total global traffic (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.get() + self.write_bytes.get()
    }

    /// Number of global atomics so far.
    pub fn atomic_ops(&self) -> u64 {
        self.atomic_ops.get()
    }

    /// Number of shared-memory accesses so far.
    pub fn shared_accesses(&self) -> u64 {
        self.shared_accesses.get()
    }

    /// Fold another counter set into this one.
    pub fn merge(&self, other: &MemCounters) {
        self.add_read(other.read_bytes());
        self.add_write(other.write_bytes());
        self.atomic_ops
            .set(self.atomic_ops.get() + other.atomic_ops());
        self.shared_accesses
            .set(self.shared_accesses.get() + other.shared_accesses());
    }

    /// Snapshot into a plain, `Send` summary.
    pub fn snapshot(&self) -> MemSummary {
        MemSummary {
            read_bytes: self.read_bytes(),
            write_bytes: self.write_bytes(),
            atomic_ops: self.atomic_ops(),
            shared_accesses: self.shared_accesses(),
        }
    }
}

/// Plain-data snapshot of [`MemCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemSummary {
    /// Bytes read from global memory.
    pub read_bytes: u64,
    /// Bytes written to global memory.
    pub write_bytes: u64,
    /// Global atomic operations.
    pub atomic_ops: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
}

impl MemSummary {
    /// Total global traffic.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Elementwise sum.
    pub fn merged(self, other: MemSummary) -> MemSummary {
        MemSummary {
            read_bytes: self.read_bytes + other.read_bytes,
            write_bytes: self.write_bytes + other.write_bytes,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            shared_accesses: self.shared_accesses + other.shared_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_search_cost_is_logarithmic() {
        let c = CostModel::standard();
        assert_eq!(c.binary_search(1), c.search_step_cost);
        assert_eq!(c.binary_search(2), c.search_step_cost);
        assert_eq!(c.binary_search(1024), 10.0 * c.search_step_cost);
        assert_eq!(c.binary_search(1025), 11.0 * c.search_step_cost);
    }

    #[test]
    fn collective_cost_is_logarithmic_in_group_size() {
        let c = CostModel::standard();
        assert_eq!(c.collective(32), 5.0 * c.scan_step_cost);
        assert_eq!(c.collective(256), 8.0 * c.scan_step_cost);
        assert_eq!(c.collective(1), c.scan_step_cost);
    }

    #[test]
    fn fused_model_drops_only_range_overhead() {
        let s = CostModel::standard();
        let f = CostModel::fused();
        assert_eq!(f.range_overhead, 0.0);
        assert_eq!(f.atom_cost, s.atom_cost);
        assert_eq!(f.atomic_cost, s.atomic_cost);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let a = MemCounters::new();
        a.add_read(100);
        a.add_write(40);
        a.add_atomic();
        let b = MemCounters::new();
        b.add_read(1);
        b.add_shared();
        a.merge(&b);
        assert_eq!(a.read_bytes(), 101);
        assert_eq!(a.write_bytes(), 40);
        assert_eq!(a.total_bytes(), 141);
        assert_eq!(a.atomic_ops(), 1);
        assert_eq!(a.shared_accesses(), 1);
        let snap = a.snapshot();
        assert_eq!(snap.total_bytes(), 141);
        let sum = snap.merged(snap);
        assert_eq!(sum.read_bytes, 202);
    }
}
