//! Scoped tracing for the one-shot launch path.
//!
//! [`DeviceSim`](crate::stream::DeviceSim) carries its sink explicitly,
//! but the one-shot launchers ([`launch`](crate::launch::launch) and
//! friends) are free functions called from deep inside every kernel in
//! the workspace — threading an `Option<&dyn TraceSink>` through all of
//! them would put tracing in every kernel signature. Instead, a sink is
//! installed for a lexical scope on the current thread:
//!
//! ```
//! use std::sync::Arc;
//! use simt::{GpuSpec, LaunchConfig};
//!
//! let recorder = Arc::new(trace::Recorder::new());
//! let report = simt::tracing::scoped(recorder.clone(), "saxpy", || {
//!     simt::launch_threads(&GpuSpec::test_tiny(), LaunchConfig::new(4, 32), |t| {
//!         t.charge(1.0);
//!     })
//! })
//! .unwrap();
//! assert!(!recorder.is_empty());
//! assert!(report.elapsed_ms() > 0.0);
//! ```
//!
//! The guarantee that matters: **tracing never perturbs results**. A
//! sink only observes the timing model's intermediate values; when no
//! sink is installed, the launch path performs one thread-local read
//! per *launch* (not per block or lane), allocates nothing extra, and
//! produces bit-identical [`LaunchReport`](crate::report::LaunchReport)s
//! — `tests/trace_profile.rs` asserts exact equality.

use std::cell::RefCell;
use std::sync::Arc;

use trace::TraceSink;

type Entry = (Arc<dyn TraceSink>, &'static str);

thread_local! {
    static STACK: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
}

struct Guard;

impl Drop for Guard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Run `f` with `sink` installed as the current thread's trace sink;
/// kernel spans emitted inside the scope are labelled `label`. Scopes
/// nest (the innermost wins) and are panic-safe.
pub fn scoped<R>(sink: Arc<dyn TraceSink>, label: &'static str, f: impl FnOnce() -> R) -> R {
    STACK.with(|s| s.borrow_mut().push((sink, label)));
    let _guard = Guard;
    f()
}

/// The innermost installed sink and label, if any.
pub(crate) fn current() -> Option<Entry> {
    STACK.with(|s| s.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::NullSink;

    #[test]
    fn scope_installs_and_removes() {
        assert!(current().is_none());
        scoped(Arc::new(NullSink), "outer", || {
            assert_eq!(current().unwrap().1, "outer");
            scoped(Arc::new(NullSink), "inner", || {
                assert_eq!(current().unwrap().1, "inner");
            });
            assert_eq!(current().unwrap().1, "outer");
        });
        assert!(current().is_none());
    }

    #[test]
    fn scope_is_panic_safe() {
        let r = std::panic::catch_unwind(|| {
            scoped(Arc::new(NullSink), "boom", || panic!("inside scope"));
        });
        assert!(r.is_err());
        assert!(current().is_none(), "guard must pop on unwind");
    }
}
