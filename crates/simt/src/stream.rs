//! Streams, events, and a shared-device timeline — CUDA's concurrency
//! surface on the analytic makespan model.
//!
//! [`launch`](crate::launch::launch) answers "how long does this kernel
//! take on an idle device?". A serving workload asks a different question:
//! *many* kernels, submitted over time, sharing one device. This module
//! models that the way hardware does:
//!
//! * **Streams are FIFO** — a kernel on a stream starts only after the
//!   stream's previous kernel finished.
//! * **Streams overlap** — kernels on *different* streams may run
//!   concurrently. Blocks dispatch onto the device's SMs wherever capacity
//!   frees up first (the gigathread engine's greedy least-loaded rule, now
//!   across launches): a kernel that cannot fill the device leaves SMs for
//!   a concurrent kernel, which is exactly the underutilization-recovery
//!   that makes streams profitable on hardware.
//! * **Events order work across streams** — [`DeviceSim::record_event`]
//!   marks the completion of everything enqueued on a stream so far;
//!   [`DeviceSim::wait_event`] holds a stream's next kernels until the
//!   event resolves.
//!
//! Because the simulator is analytic, kernels still *execute* (host-side,
//! functionally) at submission; only their *timing* is resolved against the
//! shared SM timeline. Two simplifications are deliberate and documented:
//! memory bandwidth is charged per launch (concurrent launches do not slow
//! each other's DRAM traffic down), and a launch reserves its SMs for its
//! compute time only. Both err toward optimism for heavily overlapped
//! memory-bound mixes; relative comparisons between pool sizes and
//! schedules — what the serving experiments report — are unaffected.

use crate::cost::{CostModel, MemSummary};
use crate::error::{Result, SimError, SimResult};
use crate::fault::{FaultCounters, FaultPlan, FaultRng};
use crate::host::HostBackend;
use crate::launch::{run_blocks, validate, BlockKernel, LaunchConfig};
use crate::report::{Boundedness, LaunchReport, TimingBreakdown};
use crate::spec::GpuSpec;
use std::sync::Arc;
use trace::{FaultKind, KernelId, StreamOpKind, TraceEvent, TraceSink};

/// Handle to one FIFO work queue on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(u32);

impl StreamId {
    /// The stream's index on its device (the value trace events carry).
    pub fn index(&self) -> u32 {
        self.0
    }
}

/// A recorded marker: "everything enqueued on stream S up to this point".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event(usize);

/// Timing of one kernel on the shared device timeline.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The stream the kernel ran on.
    pub stream: StreamId,
    /// When the kernel became eligible (stream ready + waits + not-before).
    pub start_ms: f64,
    /// When the kernel completed.
    pub end_ms: f64,
    /// The launch's own report; `timing.elapsed_ms == end_ms - start_ms`
    /// *on this shared timeline* (≥ the idle-device elapsed time).
    pub report: LaunchReport,
}

impl JobReport {
    /// Shared-timeline latency of this kernel.
    pub fn elapsed_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Per-stream accounting returned by [`DeviceSim::stream_report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamReport {
    /// The stream.
    pub stream: StreamId,
    /// Kernels completed on this stream.
    pub jobs: usize,
    /// Completion time of the stream's last kernel (0 if none ran).
    pub elapsed_ms: f64,
    /// Sum of kernel (end - start) spans on this stream.
    pub busy_ms: f64,
}

#[derive(Debug, Clone)]
struct StreamState {
    ready_ms: f64,
    jobs: usize,
    busy_ms: f64,
}

/// Live fault-injection state of one device: the attached plan, the
/// per-SM multipliers derived from it, the sequential per-dispatch
/// transient-failure stream, and counters of what actually fired.
#[derive(Debug, Clone)]
struct DeviceFaults {
    plan: FaultPlan,
    multipliers: Vec<f64>,
    rng: FaultRng,
    counters: FaultCounters,
}

/// One simulated device with a shared SM timeline, multiple streams, and
/// events. The in-flight-kernel counterpart of [`GpuSpec`] +
/// [`launch`](crate::launch::launch).
#[derive(Debug, Clone)]
pub struct DeviceSim {
    spec: GpuSpec,
    model: CostModel,
    /// Per-SM time at which the SM's queued compute drains (ms).
    sm_free: Vec<f64>,
    /// Per-SM cumulative busy time (ms), for occupancy accounting.
    sm_busy: Vec<f64>,
    streams: Vec<StreamState>,
    events: Vec<f64>,
    jobs_done: usize,
    makespan_ms: f64,
    /// Attached trace sink; `None` keeps every path allocation-free.
    sink: Option<Arc<dyn TraceSink>>,
    /// Device index stamped on emitted events.
    device_id: u32,
    /// Injected fault state; `None` keeps every path bitwise identical
    /// to a healthy device.
    faults: Option<DeviceFaults>,
    /// Host execution backend override; `None` defers to the ambient
    /// [`crate::host::current`] resolution (TLS scope, then env).
    host_backend: Option<HostBackend>,
}

impl DeviceSim {
    /// A device with the standard cost model.
    pub fn new(spec: GpuSpec) -> Self {
        Self::with_model(spec, CostModel::standard())
    }

    /// A device with an explicit cost model.
    pub fn with_model(spec: GpuSpec, model: CostModel) -> Self {
        let n = spec.num_sms as usize;
        Self {
            spec,
            model,
            sm_free: vec![0.0; n],
            sm_busy: vec![0.0; n],
            streams: Vec::new(),
            events: Vec::new(),
            jobs_done: 0,
            makespan_ms: 0.0,
            sink: None,
            device_id: 0,
            faults: None,
            host_backend: None,
        }
    }

    /// The device's architecture.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Attach a trace sink; subsequent launches, replays, and stream ops
    /// emit events stamped with `device_id`. Timing results are unchanged
    /// — the sink only observes the shared-timeline placement the device
    /// computes anyway.
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>, device_id: u32) {
        self.sink = Some(sink);
        self.device_id = device_id;
    }

    /// Detach any trace sink.
    pub fn clear_trace(&mut self) {
        self.sink = None;
    }

    /// Pin the host execution backend for this device's launches.
    ///
    /// Simulated timing, reports, and results are bitwise identical for
    /// every backend (see [`crate::host`]); only host wall-clock
    /// changes. `None` (the default) defers to the ambient thread-scoped
    /// backend or the `LOOPS_HOST_THREADS` process default.
    pub fn set_host_backend(&mut self, backend: HostBackend) {
        self.host_backend = Some(backend);
    }

    /// Attach a fault plan: subsequent dispatches run under the plan's
    /// degraded SMs, stall/kill windows, and transient launch failures.
    /// Derives the per-SM multipliers now (emitting one
    /// [`TraceEvent::Fault`] per degraded SM) and resets the plan's
    /// per-dispatch failure stream, so attaching the same plan twice
    /// reproduces the same fault sequence bitwise. Use the `try_*`
    /// dispatch entry points after this — the infallible ones panic if a
    /// fault fires.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let multipliers: Vec<f64> = (0..self.sm_free.len())
            .map(|i| plan.sm_multiplier(i as u32))
            .collect();
        let mut counters = FaultCounters::default();
        for &m in &multipliers {
            if m < 1.0 {
                counters.degraded_sms += 1;
                if let Some(sink) = &self.sink {
                    sink.event(&TraceEvent::Fault {
                        device: self.device_id,
                        kind: FaultKind::SmDegraded,
                        ts_ms: 0.0,
                        value: m,
                    });
                }
            }
        }
        self.faults = Some(DeviceFaults {
            rng: FaultRng::seed_from_u64(plan.seed),
            plan,
            multipliers,
            counters,
        });
    }

    /// Detach any fault plan; the device is healthy again (counters are
    /// discarded — read [`Self::fault_counters`] first if needed).
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Counters of faults that have actually fired (all zero without a
    /// plan).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// True if the attached plan's kill tick has passed at `t_ms`: every
    /// dispatch at or after that time fails with
    /// [`SimError::DeviceLost`].
    pub fn is_dead_at(&self, t_ms: f64) -> bool {
        self.faults
            .as_ref()
            .and_then(|f| f.plan.kill_at_ms)
            .is_some_and(|k| t_ms >= k)
    }

    /// The throughput multiplier of SM `sm` under the attached plan
    /// (1.0 when healthy). Dividing a time by 1.0 is bit-exact, so the
    /// no-plan and healthy-plan paths stay bitwise identical.
    fn sm_mult(&self, sm: usize) -> f64 {
        match &self.faults {
            Some(f) => f.multipliers[sm],
            None => 1.0,
        }
    }

    /// Run one dispatch attempt through the attached plan's fault
    /// sequence: push the start past any stall window, refuse it if the
    /// device is dead, then draw from the transient-failure stream. A
    /// transient failure still burns the launch overhead at the head of
    /// `stream_idx`, so a retry on the same stream starts later. Returns
    /// the (possibly stalled) start time.
    fn fault_gate(&mut self, stream_idx: usize, mut start: f64) -> SimResult<f64> {
        let device = self.device_id;
        let overhead_ms = self.spec.launch_overhead_us * 1e-3;
        let Some(f) = self.faults.as_mut() else {
            return Ok(start);
        };
        if let Some(at) = f.plan.stall_at_ms {
            let window_end = at + f.plan.stall_ms;
            if start >= at && start < window_end {
                f.counters.stalled_dispatches += 1;
                if let Some(sink) = &self.sink {
                    sink.event(&TraceEvent::Fault {
                        device,
                        kind: FaultKind::Stall,
                        ts_ms: start,
                        value: window_end,
                    });
                }
                start = window_end;
            }
        }
        if let Some(kill) = f.plan.kill_at_ms {
            if start >= kill {
                f.counters.lost_dispatches += 1;
                if let Some(sink) = &self.sink {
                    sink.event(&TraceEvent::Fault {
                        device,
                        kind: FaultKind::DeviceLost,
                        ts_ms: start,
                        value: start,
                    });
                }
                return Err(SimError::DeviceLost { device, at_ms: start });
            }
        }
        if f.plan.launch_fail_prob > 0.0 && f.rng.chance(f.plan.launch_fail_prob) {
            f.counters.transient_launch_failures += 1;
            if let Some(sink) = &self.sink {
                sink.event(&TraceEvent::Fault {
                    device,
                    kind: FaultKind::TransientLaunch,
                    ts_ms: start,
                    value: start,
                });
            }
            let st = &mut self.streams[stream_idx];
            st.ready_ms = st.ready_ms.max(start + overhead_ms);
            return Err(SimError::TransientLaunch { device, at_ms: start });
        }
        Ok(start)
    }

    /// Open a new stream (its FIFO starts empty and ready at t = 0).
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(StreamState {
            ready_ms: 0.0,
            jobs: 0,
            busy_ms: 0.0,
        });
        StreamId(self.streams.len() as u32 - 1)
    }

    /// Launch a kernel on `stream`, eligible to start immediately.
    pub fn launch<K: BlockKernel>(
        &mut self,
        stream: StreamId,
        cfg: LaunchConfig,
        kernel: &K,
    ) -> Result<JobReport> {
        self.launch_at(stream, cfg, kernel, 0.0)
    }

    /// Launch a kernel on `stream`, eligible no earlier than
    /// `not_before_ms` on the device clock (an arrival time in a serving
    /// workload). Executes the kernel functionally now; resolves its
    /// timing against the shared SM timeline and returns the placement.
    ///
    /// Infallible with respect to injected faults: if the device has a
    /// [`FaultPlan`] and a dynamic fault fires, this panics — callers
    /// that attach plans must use [`Self::try_launch_at`] and handle
    /// [`SimError`]. (Degraded SMs never fail a dispatch, so plans that
    /// only degrade are safe on this path.)
    pub fn launch_at<K: BlockKernel>(
        &mut self,
        stream: StreamId,
        cfg: LaunchConfig,
        kernel: &K,
        not_before_ms: f64,
    ) -> Result<JobReport> {
        match self.try_launch_at(stream, cfg, kernel, not_before_ms) {
            Ok(j) => Ok(j),
            Err(SimError::Launch(e)) => Err(e),
            Err(e) => panic!("injected fault on infallible dispatch path: {e}; use try_launch_at"),
        }
    }

    /// [`Self::launch_at`] for devices running under a [`FaultPlan`]:
    /// surfaces dynamic faults ([`SimError::DeviceLost`],
    /// [`SimError::TransientLaunch`]) instead of panicking, so a runtime
    /// can retry or fail over. Stall windows delay the start; degraded
    /// SMs stretch per-SM drain times (timing only — functional results
    /// are computed before timing resolution and are never affected).
    pub fn try_launch_at<K: BlockKernel>(
        &mut self,
        stream: StreamId,
        cfg: LaunchConfig,
        kernel: &K,
        not_before_ms: f64,
    ) -> SimResult<JobReport> {
        let occ = validate(&self.spec, &cfg)?;
        let s = stream.0 as usize;
        assert!(s < self.streams.len(), "unknown stream {stream:?}");
        let start = self.streams[s].ready_ms.max(not_before_ms);
        let start = self.fault_gate(s, start)?;

        // Explicit sink wins; fall back to a thread-scoped one so
        // `simt::tracing::scoped` also covers stream launches.
        let scoped = if self.sink.is_none() {
            crate::tracing::current()
        } else {
            None
        };
        let sink: Option<(&dyn TraceSink, &'static str)> = self
            .sink
            .as_deref()
            .map(|s| (s, "kernel"))
            .or(scoped.as_ref().map(|(s, l)| (s.as_ref(), *l)));
        let kernel_id = sink.map(|_| KernelId::next());
        let t0 = std::time::Instant::now();
        let blocks = match self.host_backend {
            Some(b) => crate::host::scoped(b, || {
                run_blocks(&self.spec, &self.model, &cfg, kernel, sink.is_some())
            })?,
            None => run_blocks(&self.spec, &self.model, &cfg, kernel, sink.is_some())?,
        };
        let host_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Greedy block dispatch against the shared per-SM timeline,
        // mirroring `scheduler::device_time` but with non-zero SM start
        // offsets left by earlier launches.
        let hide = (f64::from(occ.resident_warps) / self.model.latency_hiding_warps).min(1.0);
        let eff_issue = (f64::from(self.spec.issue_width_per_sm) * hide).max(1e-9);
        let cycles_to_ms = 1.0 / (self.spec.clock_ghz * 1e9) * 1e3;

        let num_sms = self.sm_free.len();
        // Working finish times: an idle SM can start this job at `start`.
        let mut t: Vec<f64> = self.sm_free.iter().map(|&f| f.max(start)).collect();
        let mut critical = vec![0.0f64; num_sms];
        let mut used = vec![false; num_sms];
        let mut mem = MemSummary::default();
        let mut total_units = 0.0;
        for (bi, b) in blocks.iter().enumerate() {
            let (sm, _) = t
                .iter()
                .enumerate()
                .fold((0usize, f64::INFINITY), |(bi, bv), (i, &v)| {
                    if v < bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
            let units = b.total_units();
            total_units += units;
            // A degraded SM drains its queue slower (÷ its throughput
            // multiplier); ÷1.0 is bit-exact, so healthy paths are
            // bitwise unchanged.
            let m = self.sm_mult(sm);
            let block_start = t[sm];
            t[sm] += units / eff_issue * cycles_to_ms / m;
            critical[sm] = critical[sm].max(b.critical_warp() * cycles_to_ms / m);
            used[sm] = true;
            mem = mem.merged(b.mem);
            if let (Some((sink, _)), Some(kid)) = (sink, kernel_id) {
                sink.event(&TraceEvent::Block {
                    kernel: kid,
                    device: self.device_id,
                    block: bi as u32,
                    sm: sm as u32,
                    start_ms: block_start,
                    end_ms: t[sm],
                });
                for (w, (&cost, &active)) in b.warp_costs.iter().zip(&b.warp_active).enumerate() {
                    let frac = if cost > 0.0 {
                        (active / (f64::from(self.spec.warp_size) * cost)).clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    sink.event(&TraceEvent::Warp {
                        kernel: kid,
                        block: bi as u32,
                        warp: w as u32,
                        units: cost,
                        active_frac: frac,
                    });
                }
            }
        }
        // Latency-exposure: a warp outliving its SM's queued work stalls.
        let mut compute_end = start;
        let mut busy = 0.0f64;
        let mut ends = vec![0.0f64; num_sms];
        for i in 0..num_sms {
            if !used[i] {
                continue;
            }
            let job_start_i = self.sm_free[i].max(start);
            let load = t[i] - job_start_i;
            let end = t[i] + (critical[i] - load).max(0.0) * self.model.latency_stall;
            ends[i] = end;
            busy += end - job_start_i;
            compute_end = compute_end.max(end);
        }
        let compute_ms = compute_end - start;
        let utilization = if compute_ms > 0.0 {
            busy / (compute_ms * num_sms as f64)
        } else {
            0.0
        };
        let bw_frac = if mem.total_bytes() == 0 {
            1.0
        } else {
            (utilization * 4.0).clamp(0.05, 1.0)
        };
        let memory_ms = mem.total_bytes() as f64 / (self.spec.mem_bw_gbs * 1e9 * bw_frac) * 1e3;
        let overhead_ms = self.spec.launch_overhead_us * 1e-3;
        let end = compute_ms.max(memory_ms) + overhead_ms + start;

        if let (Some((sink, label)), Some(kid)) = (sink, kernel_id) {
            sink.event(&TraceEvent::Kernel {
                id: kid,
                name: label,
                device: self.device_id,
                stream: stream.0,
                start_ms: start,
                end_ms: end,
                grid_dim: cfg.grid_dim,
                block_dim: cfg.block_dim,
            });
        }

        // Commit: SMs stay reserved for their compute; the stream advances
        // to full completion.
        for i in 0..num_sms {
            if used[i] {
                let job_start_i = self.sm_free[i].max(start);
                self.sm_busy[i] += ends[i] - job_start_i;
                self.sm_free[i] = self.sm_free[i].max(ends[i]);
            }
        }
        let st = &mut self.streams[s];
        st.ready_ms = end;
        st.jobs += 1;
        st.busy_ms += end - start;
        self.jobs_done += 1;
        self.makespan_ms = self.makespan_ms.max(end);

        let timing = TimingBreakdown {
            compute_ms,
            memory_ms,
            overhead_ms,
            elapsed_ms: end - start,
            bound: if compute_ms >= memory_ms {
                Boundedness::Compute
            } else {
                Boundedness::Memory
            },
            sm_utilization: utilization,
            total_units,
            effective_issue_width: eff_issue,
            sm_times_ms: ends
                .iter()
                .enumerate()
                .map(|(i, &e)| if used[i] { e - start } else { 0.0 })
                .collect(),
        };
        Ok(JobReport {
            stream,
            start_ms: start,
            end_ms: end,
            report: LaunchReport {
                grid_dim: cfg.grid_dim,
                block_dim: cfg.block_dim,
                shared_bytes: cfg.shared_bytes,
                occupancy: occ,
                timing,
                mem,
                host_wall_ms,
            },
        })
    }

    /// Enqueue a kernel whose cost was already measured solo (a
    /// [`LaunchReport`] from the one-shot `launch_*` functions) without
    /// re-executing it. The job's *footprint* — how many SMs it occupies,
    /// for how long — is taken from the report and placed greedily onto
    /// the shared timeline, so streams overlap and contend exactly as
    /// with [`Self::launch_at`]. This is the serving-runtime entry point:
    /// application kernels (SpMV under any schedule, including
    /// multi-launch ones like LRB) run functionally once through their
    /// normal path, then their reports are replayed onto device streams.
    ///
    /// Footprint approximation: the job occupies `k =
    /// ⌈sm_utilization · num_sms⌉` SMs for its solo `compute_ms` (the
    /// solo makespan already folds in the launch's internal imbalance);
    /// memory and overhead are charged as in `launch_at`.
    pub fn replay(
        &mut self,
        stream: StreamId,
        report: &LaunchReport,
        not_before_ms: f64,
    ) -> JobReport {
        self.replay_named(stream, report, not_before_ms, "replay")
    }

    /// [`Self::replay`] with an explicit kernel name for the trace; the
    /// serving runtime passes the schedule label here so the Perfetto
    /// timeline reads "spmv/merge-path" instead of "replay".
    ///
    /// Infallible with respect to injected faults: panics if a dynamic
    /// fault fires — devices with a [`FaultPlan`] attached must use
    /// [`Self::try_replay_named`].
    pub fn replay_named(
        &mut self,
        stream: StreamId,
        report: &LaunchReport,
        not_before_ms: f64,
        name: &'static str,
    ) -> JobReport {
        match self.try_replay_named(stream, report, not_before_ms, name) {
            Ok(j) => j,
            Err(e) => panic!("injected fault on infallible replay path: {e}; use try_replay_named"),
        }
    }

    /// [`Self::replay_named`] for devices running under a [`FaultPlan`]:
    /// surfaces dynamic faults instead of panicking. Beyond the dispatch
    /// gate (stall / dead device / transient launch failure), a replayed
    /// job whose execution would still be running at the plan's kill
    /// tick is **lost mid-run**: the call fails with
    /// [`SimError::DeviceLost`] and commits *nothing* — no SM time, no
    /// stream advance, no trace spans — so the caller re-dispatches the
    /// whole job on a surviving device without double-charging this one.
    pub fn try_replay_named(
        &mut self,
        stream: StreamId,
        report: &LaunchReport,
        not_before_ms: f64,
        name: &'static str,
    ) -> SimResult<JobReport> {
        let s = stream.0 as usize;
        assert!(s < self.streams.len(), "unknown stream {stream:?}");
        let start = self.streams[s].ready_ms.max(not_before_ms);
        let start = self.fault_gate(s, start)?;

        let num_sms = self.sm_free.len();
        let solo_sms = report.timing.sm_times_ms.len().max(1);
        let span = report.timing.compute_ms;
        let k = if span > 0.0 {
            ((report.timing.sm_utilization * solo_sms as f64).ceil() as usize).clamp(1, num_sms)
        } else {
            0
        };

        // Plan the placement first (k least-loaded SMs, `span` each on
        // the SM's own clock, stretched on degraded SMs); commit only
        // after the kill check below so a lost job leaves no trace.
        let mut order: Vec<usize> = (0..num_sms).collect();
        order.sort_by(|&a, &b| {
            self.sm_free[a]
                .partial_cmp(&self.sm_free[b])
                .expect("SM times are finite")
                .then(a.cmp(&b))
        });
        order.truncate(k);
        let mut placements: Vec<(usize, f64, f64)> = Vec::with_capacity(k);
        let mut compute_end = start;
        for &i in &order {
            let job_start_i = self.sm_free[i].max(start);
            let end_i = job_start_i + span / self.sm_mult(i);
            placements.push((i, job_start_i, end_i));
            compute_end = compute_end.max(end_i);
        }
        let compute_ms = compute_end - start;
        let utilization = if num_sms > 0 {
            k as f64 / num_sms as f64
        } else {
            0.0
        };
        let bw_frac = if report.mem.total_bytes() == 0 {
            1.0
        } else {
            (utilization * 4.0).clamp(0.05, 1.0)
        };
        let memory_ms =
            report.mem.total_bytes() as f64 / (self.spec.mem_bw_gbs * 1e9 * bw_frac) * 1e3;
        let overhead_ms = report.timing.overhead_ms;
        let end = compute_ms.max(memory_ms) + overhead_ms + start;

        // Mid-run kill: the job started before the kill tick but would
        // still be running when the device dies — it is lost, and
        // nothing above was committed.
        if let Some(f) = self.faults.as_mut() {
            if let Some(kill) = f.plan.kill_at_ms {
                if end > kill {
                    f.counters.lost_dispatches += 1;
                    if let Some(sink) = &self.sink {
                        sink.event(&TraceEvent::Fault {
                            device: self.device_id,
                            kind: FaultKind::DeviceLost,
                            ts_ms: kill,
                            value: start,
                        });
                    }
                    return Err(SimError::DeviceLost {
                        device: self.device_id,
                        at_ms: kill,
                    });
                }
            }
        }

        // Commit the planned placement.
        let kernel_id = self.sink.as_ref().map(|_| KernelId::next());
        for (bi, &(i, job_start_i, end_i)) in placements.iter().enumerate() {
            self.sm_busy[i] += end_i - job_start_i;
            self.sm_free[i] = self.sm_free[i].max(end_i);
            if let (Some(sink), Some(kid)) = (&self.sink, kernel_id) {
                sink.event(&TraceEvent::Block {
                    kernel: kid,
                    device: self.device_id,
                    block: bi as u32,
                    sm: i as u32,
                    start_ms: job_start_i,
                    end_ms: end_i,
                });
            }
        }

        if let (Some(sink), Some(kid)) = (&self.sink, kernel_id) {
            sink.event(&TraceEvent::Kernel {
                id: kid,
                name,
                device: self.device_id,
                stream: stream.0,
                start_ms: start,
                end_ms: end,
                grid_dim: report.grid_dim,
                block_dim: report.block_dim,
            });
        }

        let st = &mut self.streams[s];
        st.ready_ms = end;
        st.jobs += 1;
        st.busy_ms += end - start;
        self.jobs_done += 1;
        self.makespan_ms = self.makespan_ms.max(end);

        let mut rep = report.clone();
        rep.timing.compute_ms = compute_ms;
        rep.timing.memory_ms = memory_ms;
        rep.timing.elapsed_ms = end - start;
        rep.timing.sm_utilization = utilization;
        Ok(JobReport {
            stream,
            start_ms: start,
            end_ms: end,
            report: rep,
        })
    }

    /// Record an event on `stream`: it resolves when everything enqueued
    /// on the stream so far has completed.
    pub fn record_event(&mut self, stream: StreamId) -> Event {
        let t = self.streams[stream.0 as usize].ready_ms;
        self.events.push(t);
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::StreamOp {
                device: self.device_id,
                stream: stream.0,
                op: StreamOpKind::RecordEvent,
                ts_ms: t,
            });
        }
        Event(self.events.len() - 1)
    }

    /// Make `stream` wait for `event`: kernels launched on the stream
    /// after this call start no earlier than the event's resolution time.
    pub fn wait_event(&mut self, stream: StreamId, event: Event) {
        let t = self.events[event.0];
        let st = &mut self.streams[stream.0 as usize];
        st.ready_ms = st.ready_ms.max(t);
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::StreamOp {
                device: self.device_id,
                stream: stream.0,
                op: StreamOpKind::WaitEvent,
                ts_ms: t,
            });
        }
    }

    /// The time at which `stream`'s queue drains.
    pub fn stream_ready_ms(&self, stream: StreamId) -> f64 {
        self.streams[stream.0 as usize].ready_ms
    }

    /// Per-stream accounting.
    pub fn stream_report(&self, stream: StreamId) -> StreamReport {
        let st = &self.streams[stream.0 as usize];
        StreamReport {
            stream,
            jobs: st.jobs,
            elapsed_ms: if st.jobs > 0 { st.ready_ms } else { 0.0 },
            busy_ms: st.busy_ms,
        }
    }

    /// Device-wide completion time: when the last queued kernel finishes.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Kernels completed on this device.
    pub fn jobs_done(&self) -> usize {
        self.jobs_done
    }

    /// Mean SM busy fraction over the device makespan so far (0 if idle).
    /// This is the serving-level occupancy number: how much of the device
    /// the submitted mix actually used.
    pub fn sm_occupancy(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.sm_busy.iter().sum();
        busy / (self.makespan_ms * self.sm_busy.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockCtx;

    /// A balanced compute kernel: `grid` blocks, every thread charges
    /// `units`.
    fn charge_kernel(units: f64) -> impl Fn(&mut BlockCtx<'_>) + Sync {
        move |b: &mut BlockCtx<'_>| b.for_each_thread(|t| t.charge(units))
    }

    fn solo_elapsed(spec: &GpuSpec, cfg: LaunchConfig, units: f64) -> f64 {
        let mut dev = DeviceSim::new(spec.clone());
        let s = dev.create_stream();
        dev.launch(s, cfg, &charge_kernel(units)).unwrap().elapsed_ms()
    }

    #[test]
    fn different_streams_overlap_on_underutilized_device() {
        let spec = GpuSpec::v100(); // 80 SMs
        let cfg = LaunchConfig::new(40, 256); // each kernel fills half
        let solo = solo_elapsed(&spec, cfg, 1_000.0);
        let mut dev = DeviceSim::new(spec);
        let (s1, s2) = (dev.create_stream(), dev.create_stream());
        let k = charge_kernel(1_000.0);
        let j1 = dev.launch(s1, cfg, &k).unwrap();
        let j2 = dev.launch(s2, cfg, &k).unwrap();
        let combined = j1.end_ms.max(j2.end_ms);
        assert!(
            combined < 2.0 * solo * 0.75,
            "combined {combined} vs serialized {}",
            2.0 * solo
        );
        // Both started at t = 0 — true concurrency, not queueing.
        assert_eq!(j1.start_ms, 0.0);
        assert_eq!(j2.start_ms, 0.0);
    }

    #[test]
    fn same_stream_serializes_fifo() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let mut dev = DeviceSim::new(spec);
        let s = dev.create_stream();
        let k = charge_kernel(1_000.0);
        let j1 = dev.launch(s, cfg, &k).unwrap();
        let j2 = dev.launch(s, cfg, &k).unwrap();
        assert!(
            j2.start_ms >= j1.end_ms,
            "FIFO: j2 start {} < j1 end {}",
            j2.start_ms,
            j1.end_ms
        );
    }

    #[test]
    fn event_orders_across_streams() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let mut dev = DeviceSim::new(spec);
        let (producer, consumer) = (dev.create_stream(), dev.create_stream());
        let k = charge_kernel(1_000.0);
        let j1 = dev.launch(producer, cfg, &k).unwrap();
        let ev = dev.record_event(producer);
        dev.wait_event(consumer, ev);
        let j2 = dev.launch(consumer, cfg, &k).unwrap();
        assert!(
            j2.start_ms >= j1.end_ms,
            "event wait: consumer started {} before producer ended {}",
            j2.start_ms,
            j1.end_ms
        );
    }

    #[test]
    fn event_before_work_is_a_no_op() {
        let spec = GpuSpec::v100();
        let mut dev = DeviceSim::new(spec);
        let (a, b) = (dev.create_stream(), dev.create_stream());
        let ev = dev.record_event(a); // nothing enqueued: resolves at 0
        dev.wait_event(b, ev);
        let j = dev
            .launch(b, LaunchConfig::new(8, 64), &charge_kernel(10.0))
            .unwrap();
        assert_eq!(j.start_ms, 0.0);
    }

    #[test]
    fn not_before_delays_start() {
        let spec = GpuSpec::v100();
        let mut dev = DeviceSim::new(spec);
        let s = dev.create_stream();
        let j = dev
            .launch_at(s, LaunchConfig::new(8, 64), &charge_kernel(10.0), 3.5)
            .unwrap();
        assert_eq!(j.start_ms, 3.5);
        assert!(dev.makespan_ms() > 3.5);
    }

    #[test]
    fn saturating_kernels_gain_nothing_from_streams() {
        // Each kernel already fills all 80 SMs evenly: overlap cannot help.
        // (Compute-dominated so the once-per-launch overhead is noise.)
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(160, 256);
        let solo = solo_elapsed(&spec, cfg, 100_000.0);
        let mut dev = DeviceSim::new(spec);
        let (s1, s2) = (dev.create_stream(), dev.create_stream());
        let k = charge_kernel(100_000.0);
        dev.launch(s1, cfg, &k).unwrap();
        let j2 = dev.launch(s2, cfg, &k).unwrap();
        assert!(
            j2.end_ms >= 1.8 * solo,
            "two saturating kernels {} vs solo {solo}",
            j2.end_ms
        );
    }

    #[test]
    fn stream_reports_count_jobs_and_spans() {
        let spec = GpuSpec::v100();
        let mut dev = DeviceSim::new(spec);
        let s = dev.create_stream();
        let k = charge_kernel(100.0);
        dev.launch(s, LaunchConfig::new(8, 64), &k).unwrap();
        dev.launch(s, LaunchConfig::new(8, 64), &k).unwrap();
        let r = dev.stream_report(s);
        assert_eq!(r.jobs, 2);
        assert!(r.elapsed_ms > 0.0);
        assert!((r.busy_ms - r.elapsed_ms).abs() < 1e-9, "FIFO stream is span-busy");
        assert_eq!(dev.jobs_done(), 2);
        assert!(dev.sm_occupancy() > 0.0);
    }

    #[test]
    fn replayed_reports_match_live_launch_behaviour() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        // Measure solo with the one-shot path.
        let solo = crate::launch::launch_with_model(
            &spec,
            &CostModel::standard(),
            cfg,
            &charge_kernel(100_000.0),
        )
        .unwrap();
        // Replay on an idle device ≈ solo elapsed.
        let mut dev = DeviceSim::new(spec.clone());
        let s = dev.create_stream();
        let j = dev.replay(s, &solo, 0.0);
        let rel = (j.elapsed_ms() - solo.elapsed_ms()).abs() / solo.elapsed_ms();
        assert!(rel < 0.05, "idle replay {} vs solo {}", j.elapsed_ms(), solo.elapsed_ms());
        // Two half-device replays on different streams overlap...
        let mut dev = DeviceSim::new(spec.clone());
        let (s1, s2) = (dev.create_stream(), dev.create_stream());
        let j1 = dev.replay(s1, &solo, 0.0);
        let j2 = dev.replay(s2, &solo, 0.0);
        assert!(j1.end_ms.max(j2.end_ms) < 1.5 * solo.elapsed_ms());
        // ...but serialize on the same stream.
        let mut dev = DeviceSim::new(spec);
        let s = dev.create_stream();
        let j1 = dev.replay(s, &solo, 0.0);
        let j2 = dev.replay(s, &solo, 0.0);
        assert!(j2.start_ms >= j1.end_ms);
    }

    #[test]
    fn kernels_still_compute_correct_results() {
        let spec = GpuSpec::v100();
        let mut dev = DeviceSim::new(spec);
        let (s1, s2) = (dev.create_stream(), dev.create_stream());
        let n = 1024usize;
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        {
            let ga = crate::memory::GlobalMem::new(&mut a);
            dev.launch(s1, LaunchConfig::over_threads(n as u64, 128), &|blk: &mut BlockCtx<'_>| {
                blk.for_each_thread(|t| {
                    let i = t.global_thread_id() as usize;
                    if i < n {
                        ga.store(i, i as u64 * 3);
                    }
                });
            })
            .unwrap();
            let gb = crate::memory::GlobalMem::new(&mut b);
            dev.launch(s2, LaunchConfig::over_threads(n as u64, 128), &|blk: &mut BlockCtx<'_>| {
                blk.for_each_thread(|t| {
                    let i = t.global_thread_id() as usize;
                    if i < n {
                        gb.store(i, i as u64 + 7);
                    }
                });
            })
            .unwrap();
        }
        assert!(a.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
        assert!(b.iter().enumerate().all(|(i, &v)| v == i as u64 + 7));
    }

    #[test]
    fn traced_device_matches_untraced_and_spans_nest() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let k = charge_kernel(1_000.0);
        let run = |sink: Option<Arc<trace::Recorder>>| {
            let mut dev = DeviceSim::new(spec.clone());
            if let Some(s) = &sink {
                dev.set_trace(s.clone(), 2);
            }
            let (s1, s2) = (dev.create_stream(), dev.create_stream());
            let j1 = dev.launch(s1, cfg, &k).unwrap();
            let ev = dev.record_event(s1);
            dev.wait_event(s2, ev);
            let j2 = dev.launch_at(s2, cfg, &k, 0.5).unwrap();
            (j1, j2, dev.makespan_ms())
        };
        let rec = Arc::new(trace::Recorder::new());
        let (p1, p2, pm) = run(None);
        let (t1, t2, tm) = run(Some(rec.clone()));
        assert_eq!(p1.start_ms, t1.start_ms);
        assert_eq!(p2.end_ms, t2.end_ms);
        assert_eq!(pm, tm);
        let mut rep_p = p2.report.clone();
        let mut rep_t = t2.report.clone();
        rep_p.host_wall_ms = 0.0;
        rep_t.host_wall_ms = 0.0;
        assert_eq!(rep_p, rep_t);

        let data = rec.snapshot();
        let kernels: Vec<_> = data.kernels().collect();
        assert_eq!(kernels.len(), 2);
        // Every block span sits inside its kernel's span.
        for ev in &data.events {
            if let TraceEvent::Block { kernel, start_ms, end_ms, .. } = ev {
                let span = kernels
                    .iter()
                    .find_map(|k| match k {
                        TraceEvent::Kernel { id, start_ms, end_ms, .. } if id == kernel => {
                            Some((*start_ms, *end_ms))
                        }
                        _ => None,
                    })
                    .expect("block references a recorded kernel");
                assert!(*start_ms >= span.0 - 1e-12 && *end_ms <= span.1 + 1e-12);
            }
        }
        // Both stream ops were recorded.
        let ops = data
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::StreamOp { .. }))
            .count();
        assert_eq!(ops, 2);
    }

    #[test]
    fn replay_named_emits_kernel_and_footprint_blocks() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let solo = crate::launch::launch_with_model(
            &spec,
            &CostModel::standard(),
            cfg,
            &charge_kernel(100_000.0),
        )
        .unwrap();
        let rec = Arc::new(trace::Recorder::new());
        let mut traced_dev = DeviceSim::new(spec.clone());
        traced_dev.set_trace(rec.clone(), 0);
        let s = traced_dev.create_stream();
        let jt = traced_dev.replay_named(s, &solo, 0.0, "spmv/merge-path");
        // Identical placement to an untraced device.
        let mut plain_dev = DeviceSim::new(spec);
        let sp = plain_dev.create_stream();
        let jp = plain_dev.replay(sp, &solo, 0.0);
        assert_eq!(jp.start_ms, jt.start_ms);
        assert_eq!(jp.end_ms, jt.end_ms);
        let data = rec.snapshot();
        assert!(data
            .kernels()
            .any(|k| matches!(k, TraceEvent::Kernel { name: "spmv/merge-path", .. })));
        assert!(data.blocks > 0, "footprint blocks recorded");
    }

    fn solo_report(spec: &GpuSpec, cfg: LaunchConfig, units: f64) -> LaunchReport {
        crate::launch::launch_with_model(spec, &CostModel::standard(), cfg, &charge_kernel(units))
            .unwrap()
    }

    #[test]
    fn healthy_fault_plan_is_bitwise_transparent() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let solo = solo_report(&spec, cfg, 50_000.0);
        let run = |plan: Option<FaultPlan>| {
            let mut dev = DeviceSim::new(spec.clone());
            if let Some(p) = plan {
                dev.set_fault_plan(p);
            }
            let s = dev.create_stream();
            let j1 = dev.try_launch_at(s, cfg, &charge_kernel(1_000.0), 0.0).unwrap();
            let j2 = dev.try_replay_named(s, &solo, 0.0, "replay").unwrap();
            (j1.start_ms, j1.end_ms, j2.start_ms, j2.end_ms, dev.makespan_ms())
        };
        assert_eq!(run(None), run(Some(FaultPlan::healthy(99))));
        assert_eq!(
            DeviceSim::new(spec).fault_counters(),
            FaultCounters::default()
        );
    }

    #[test]
    fn degraded_sms_stretch_timing_but_never_results() {
        let spec = GpuSpec::v100();
        let plan = FaultPlan::healthy(11).with_degraded_sms(0.6, 0.3, 0.7);
        let n = 512usize;
        let run = |plan: Option<FaultPlan>| {
            let mut dev = DeviceSim::new(spec.clone());
            if let Some(p) = plan {
                dev.set_fault_plan(p);
            }
            let s = dev.create_stream();
            let mut out = vec![0u64; n];
            let end = {
                let g = crate::memory::GlobalMem::new(&mut out);
                dev.try_launch_at(
                    s,
                    LaunchConfig::over_threads(n as u64, 64),
                    &|blk: &mut BlockCtx<'_>| {
                        blk.for_each_thread(|t| {
                            let i = t.global_thread_id() as usize;
                            if i < n {
                                g.store(i, i as u64 * 5);
                                t.charge(200.0);
                            }
                        });
                    },
                    0.0,
                )
                .unwrap()
                .end_ms
            };
            (out, end)
        };
        let (healthy_out, healthy_end) = run(None);
        let (degraded_out, degraded_end) = run(Some(plan));
        assert_eq!(healthy_out, degraded_out, "degradation is timing-only");
        assert!(
            degraded_end > healthy_end,
            "degraded {degraded_end} vs healthy {healthy_end}"
        );
        let mut dev = DeviceSim::new(spec);
        dev.set_fault_plan(plan);
        assert!(dev.fault_counters().degraded_sms > 0);
    }

    #[test]
    fn stall_window_pushes_dispatches_past_it() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let solo = solo_report(&spec, cfg, 50_000.0);
        let mut dev = DeviceSim::new(spec);
        dev.set_fault_plan(FaultPlan::healthy(1).with_stall(2.0, 3.0));
        let s = dev.create_stream();
        let j = dev.try_replay_named(s, &solo, 2.5, "replay").unwrap();
        assert_eq!(j.start_ms, 5.0, "start pushed to the stall window's end");
        assert_eq!(dev.fault_counters().stalled_dispatches, 1);
        // Dispatches outside the window are untouched.
        let j2 = dev.try_replay_named(s, &solo, 0.0, "replay").unwrap();
        assert_eq!(j2.start_ms, j.end_ms);
    }

    #[test]
    fn killed_device_refuses_work_and_loses_mid_run_jobs_without_commit() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(40, 256);
        let solo = solo_report(&spec, cfg, 200_000.0);
        assert!(solo.elapsed_ms() > 0.05, "need a job long enough to cross the kill tick");
        let mut dev = DeviceSim::new(spec);
        dev.set_fault_plan(FaultPlan::healthy(1).with_kill_at(solo.elapsed_ms() * 0.5));
        let s = dev.create_stream();
        // Starts before the kill tick but would finish after it: lost.
        let err = dev.try_replay_named(s, &solo, 0.0, "replay").unwrap_err();
        assert!(matches!(err, SimError::DeviceLost { .. }));
        assert!(err.is_retryable());
        // Nothing committed: the device looks untouched.
        assert_eq!(dev.jobs_done(), 0);
        assert_eq!(dev.stream_ready_ms(s), 0.0);
        assert_eq!(dev.makespan_ms(), 0.0);
        // At/after the kill tick the device is dead to new work too.
        assert!(dev.is_dead_at(solo.elapsed_ms()));
        let err = dev
            .try_replay_named(s, &solo, solo.elapsed_ms(), "replay")
            .unwrap_err();
        assert!(matches!(err, SimError::DeviceLost { .. }));
        assert_eq!(dev.fault_counters().lost_dispatches, 2);
        // A short job that completes before the kill tick still runs.
        let quick = solo_report(dev.spec(), LaunchConfig::new(8, 64), 10.0);
        let j = dev.try_replay_named(s, &quick, 0.0, "replay").unwrap();
        assert!(j.end_ms < solo.elapsed_ms() * 0.5);
        assert_eq!(dev.jobs_done(), 1);
    }

    #[test]
    fn transient_failures_are_seed_deterministic_and_burn_overhead() {
        let spec = GpuSpec::v100();
        let cfg = LaunchConfig::new(8, 64);
        let solo = solo_report(&spec, cfg, 100.0);
        let plan = FaultPlan::healthy(21).with_flaky_launches(0.4);
        let run = |plan: FaultPlan| {
            let mut dev = DeviceSim::new(spec.clone());
            dev.set_fault_plan(plan);
            let s = dev.create_stream();
            let pattern: Vec<bool> = (0..32)
                .map(|_| dev.try_replay_named(s, &solo, 0.0, "replay").is_ok())
                .collect();
            (pattern, dev.stream_ready_ms(s), dev.fault_counters())
        };
        let (pat_a, ready_a, counters_a) = run(plan);
        let (pat_b, ready_b, counters_b) = run(plan);
        assert_eq!(pat_a, pat_b, "same seed, same failure sequence");
        assert_eq!(ready_a, ready_b, "bitwise-identical timelines");
        assert_eq!(counters_a, counters_b);
        let fails = pat_a.iter().filter(|ok| !**ok).count();
        assert!(fails > 3 && fails < 29, "~40% failures, got {fails}/32");
        assert_eq!(counters_a.transient_launch_failures, fails as u64);
        // A failed attempt burned launch overhead at the stream head.
        let mut healthy = DeviceSim::new(spec.clone());
        let hs = healthy.create_stream();
        for _ in pat_a.iter().filter(|ok| **ok) {
            healthy.replay_named(hs, &solo, 0.0, "replay");
        }
        assert!(
            ready_a > healthy.stream_ready_ms(hs),
            "flaky stream {ready_a} should trail healthy {}",
            healthy.stream_ready_ms(hs)
        );
        // A different seed draws a different sequence.
        let (pat_c, _, _) = run(FaultPlan::healthy(22).with_flaky_launches(0.4));
        assert_ne!(pat_a, pat_c);
    }

    #[test]
    fn infallible_paths_panic_on_injected_faults() {
        let spec = GpuSpec::v100();
        let solo = solo_report(&spec, LaunchConfig::new(8, 64), 100.0);
        let mut dev = DeviceSim::new(spec);
        dev.set_fault_plan(FaultPlan::healthy(1).with_kill_at(0.0));
        let s = dev.create_stream();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.replay_named(s, &solo, 0.0, "replay");
        }));
        assert!(r.is_err(), "replay_named must panic on a dead device");
    }

    #[test]
    fn unknown_stream_panics() {
        let spec = GpuSpec::test_tiny();
        let mut dev = DeviceSim::new(spec.clone());
        let mut other = DeviceSim::new(spec);
        let s = other.create_stream();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = dev.launch(s, LaunchConfig::new(1, 32), &charge_kernel(1.0));
        }));
        assert!(r.is_err());
    }
}
